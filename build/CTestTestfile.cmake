# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/test_coloring[1]_include.cmake")
include("/root/repo/build/test_extensions[1]_include.cmake")
include("/root/repo/build/test_fuzz[1]_include.cmake")
include("/root/repo/build/test_graph[1]_include.cmake")
include("/root/repo/build/test_integration[1]_include.cmake")
include("/root/repo/build/test_io[1]_include.cmake")
include("/root/repo/build/test_matching_1eps[1]_include.cmake")
include("/root/repo/build/test_matching_base[1]_include.cmake")
include("/root/repo/build/test_matching_det[1]_include.cmake")
include("/root/repo/build/test_matching_fast[1]_include.cmake")
include("/root/repo/build/test_matching_lr[1]_include.cmake")
include("/root/repo/build/test_maxis[1]_include.cmake")
include("/root/repo/build/test_mis[1]_include.cmake")
include("/root/repo/build/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/test_run_many[1]_include.cmake")
include("/root/repo/build/test_sim[1]_include.cmake")
include("/root/repo/build/test_support[1]_include.cmake")
