// Decentralized job assignment via weighted matching.
//
// Workers and jobs form a bipartite graph; an edge's weight is the value
// of assigning that worker to that job. No coordinator: the assignment is
// computed by the participants in CONGEST. We compare
//   * the 2-approximate local-ratio matching (Thm 2.10),
//   * the (2+ε) weighted pipeline (Appendix B.1),
//   * the simple proposal algorithm (Appendix B.4),
// against the exact bipartite optimum.
#include <iostream>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/lr_matching.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"

using namespace distapx;

int main() {
  Rng rng(11);
  constexpr NodeId kWorkers = 150, kJobs = 120;
  const Graph market = gen::bipartite_gnp(kWorkers, kJobs, 0.06, rng);
  const EdgeWeights value =
      gen::uniform_edge_weights(market.num_edges(), 1000, rng);

  std::cout << "market: " << kWorkers << " workers, " << kJobs
            << " jobs, " << market.num_edges() << " qualified pairs, Δ="
            << market.max_degree() << "\n\n";

  const auto opt = exact_mwm_bipartite(market, value);
  const Weight opt_value = matching_weight(value, opt.matching);
  std::cout << "exact optimum: " << opt.matching.size()
            << " assignments, value " << opt_value << "\n\n";

  const auto lr = run_lr_matching(market, value, 1);
  std::cout << "[Thm 2.10, 2-approx] " << lr.matching.size()
            << " assignments, value " << matching_weight(value, lr.matching)
            << " (" << lr.metrics.rounds << " rounds, "
            << lr.metrics.max_edge_bits << " bits/edge/round max)\n";

  Weighted2EpsParams w2;
  w2.epsilon = 0.25;
  const auto fast = run_weighted_2eps_matching(market, value, 1, w2);
  std::cout << "[App B.1, (2+ε)-approx] " << fast.matching.size()
            << " assignments, value "
            << matching_weight(value, fast.matching) << " ("
            << fast.rounds_parallel << " parallel rounds)\n";

  const auto parts = try_bipartition(market);
  ProposalParams pp;
  pp.epsilon = 0.2;
  const auto prop = run_proposal_matching_bipartite(market, *parts, 1, pp);
  std::cout << "[App B.4, proposals] " << prop.matching.size()
            << " assignments, value "
            << matching_weight(value, prop.matching) << " ("
            << prop.metrics.rounds << " rounds, " << prop.unlucky.size()
            << " unlucky workers)\n\n";

  for (const auto& [name, m] :
       {std::pair{std::string("lr"), lr.matching},
        {std::string("w2eps"), fast.matching},
        {std::string("proposal"), prop.matching}}) {
    if (!is_matching(market, m)) {
      std::cout << name << ": INVALID matching!\n";
      return 1;
    }
  }
  std::cout << "all assignments conflict-free; ratios vs OPT: "
            << static_cast<double>(opt_value) /
                   matching_weight(value, lr.matching)
            << " / "
            << static_cast<double>(opt_value) /
                   matching_weight(value, fast.matching)
            << "\n";
  return 0;
}
