// Robot-swarm pairing via near-optimal distributed matching.
//
// Robots within communication range can pair up for a cooperative task;
// the objective is to pair as many robots as possible. A maximal matching
// only guarantees half the optimum; the paper's (1+ε) algorithm
// (Thm B.12) gets arbitrarily close, still with purely local
// communication. We run it on a random geometric swarm and compare
// against exact (blossom) and the (2+ε) baseline.
#include <cmath>
#include <iostream>

#include "graph/algos.hpp"
#include "graph/graph.hpp"
#include "matching/blossom.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "support/random.hpp"

using namespace distapx;

namespace {

Graph swarm_graph(NodeId n, double range, Rng& rng) {
  std::vector<std::pair<double, double>> pos(n);
  for (auto& [x, y] : pos) {
    x = rng.next_double();
    y = rng.next_double();
  }
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      if (std::sqrt(dx * dx + dy * dy) <= range) b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace

int main() {
  Rng rng(21);
  const Graph swarm = swarm_graph(200, 0.08, rng);
  std::cout << "swarm: n=" << swarm.num_nodes() << " m=" << swarm.num_edges()
            << " Δ=" << swarm.max_degree() << "\n\n";

  const auto opt = blossom_mcm(swarm);
  std::cout << "exact maximum pairing (centralized blossom): "
            << opt.matching.size() << " pairs\n";

  Nmm2EpsParams coarse;
  coarse.epsilon = 0.25;
  const auto nmm = run_nmm_2eps_matching(swarm, 1, coarse);
  std::cout << "[Thm 3.2, (2+ε)] " << nmm.matching.size() << " pairs in "
            << nmm.super_rounds << " super-rounds\n";

  McmCongestParams fine;
  fine.epsilon = 1.0 / 3.0;
  const auto mcm = run_mcm_1eps_congest(swarm, 1, fine);
  std::cout << "[Thm B.12, (1+ε)] " << mcm.matching.size() << " pairs over "
            << mcm.stages << " bipartition stages ("
            << mcm.deactivated.size() << " robots deactivated)\n\n";

  if (!is_matching(swarm, nmm.matching) || !is_matching(swarm, mcm.matching)) {
    std::cout << "INVALID pairing!\n";
    return 1;
  }
  std::cout << "pairing rates vs optimum: (2+ε): "
            << 100.0 * nmm.matching.size() / opt.matching.size()
            << "%   (1+ε): "
            << 100.0 * mcm.matching.size() / opt.matching.size() << "%\n";
  return 0;
}
