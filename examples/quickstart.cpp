// Quickstart: the three headline algorithms of the paper on one small
// weighted graph.
//
//   $ ./quickstart
//
// Walks through (1) the Δ-approximate weighted MaxIS (Algorithm 2),
// (2) the 2-approximate weighted matching on the line graph (Thm 2.10),
// and (3) the fast (2+ε) matching (Thm 3.2), printing solutions and the
// CONGEST round/bit accounting for each.
#include <iostream>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/lr_matching.hpp"
#include "matching/nmm_2eps.hpp"
#include "maxis/layered_maxis.hpp"

using namespace distapx;

int main() {
  // A 6x6 grid: 36 nodes, Δ = 4.
  const Graph g = gen::grid(6, 6);
  Rng rng(2024);
  const NodeWeights node_w = gen::uniform_node_weights(g.num_nodes(), 100, rng);
  const EdgeWeights edge_w = gen::uniform_edge_weights(g.num_edges(), 100, rng);

  std::cout << "graph: 6x6 grid, n=" << g.num_nodes()
            << " m=" << g.num_edges() << " Δ=" << g.max_degree() << "\n\n";

  // 1. Δ-approximate maximum weight independent set (Algorithm 2).
  const auto maxis = run_layered_maxis(g, node_w, /*seed=*/1);
  std::cout << "[Algorithm 2] MaxIS: " << maxis.independent_set.size()
            << " nodes, weight " << set_weight(node_w, maxis.independent_set)
            << "  (" << maxis.metrics.rounds << " CONGEST rounds, max "
            << maxis.metrics.max_edge_bits << " bits/edge/round, cap "
            << maxis.metrics.bandwidth_cap << ")\n";
  std::cout << "  independent? "
            << (is_independent_set(g, maxis.independent_set) ? "yes" : "NO")
            << "\n\n";

  // 2. 2-approximate maximum weight matching: Algorithm 2 on the line
  // graph through the congestion-free aggregation mechanism (Thm 2.10).
  const auto mwm = run_lr_matching(g, edge_w, /*seed=*/1);
  std::cout << "[Thm 2.10] 2-approx MWM: " << mwm.matching.size()
            << " edges, weight " << matching_weight(edge_w, mwm.matching)
            << "  (" << mwm.metrics.rounds << " physical rounds, max "
            << mwm.metrics.max_edge_bits << " bits/edge/round)\n";
  std::cout << "  matching? " << (is_matching(g, mwm.matching) ? "yes" : "NO")
            << "\n\n";

  // 3. (2+ε)-approximate maximum cardinality matching in
  // O(log Δ / log log Δ) rounds (Thm 3.2).
  Nmm2EpsParams fast;
  fast.epsilon = 0.25;
  const auto mcm = run_nmm_2eps_matching(g, /*seed=*/1, fast);
  std::cout << "[Thm 3.2] (2+ε) MCM: " << mcm.matching.size()
            << " edges in " << mcm.super_rounds << " super-rounds ("
            << mcm.metrics.rounds << " physical), "
            << mcm.undecided_edges.size() << " edges left undecided\n";
  return 0;
}
