// Wireless transmission scheduling via distributed MaxIS.
//
// The classic motivation for distributed MaxIS: radios that are within
// interference range cannot transmit in the same slot, and each radio has
// a utility (queued traffic) for transmitting now. Picking the
// transmitting set = maximum weight independent set of the conflict
// graph, computed *by the radios themselves* in CONGEST.
//
// The example builds a random unit-disk-style conflict graph, runs both
// distributed Δ-approximations (Algorithm 2 randomized; Algorithm 3
// deterministic on a coloring), and compares utility and round cost.
#include <cmath>
#include <iostream>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/greedy_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "support/random.hpp"

using namespace distapx;

namespace {

/// Unit-disk conflict graph: radios at random points in the unit square;
/// an edge whenever two radios are within `radius`.
Graph unit_disk(NodeId n, double radius, Rng& rng,
                std::vector<std::pair<double, double>>* positions) {
  positions->resize(n);
  for (auto& [x, y] : *positions) {
    x = rng.next_double();
    y = rng.next_double();
  }
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = (*positions)[u].first - (*positions)[v].first;
      const double dy = (*positions)[u].second - (*positions)[v].second;
      if (std::sqrt(dx * dx + dy * dy) <= radius) b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace

int main() {
  Rng rng(7);
  std::vector<std::pair<double, double>> pos;
  const Graph conflicts = unit_disk(300, 0.09, rng, &pos);
  // Utility = queued packets, heavy-tailed.
  const NodeWeights traffic =
      gen::exponential_node_weights(conflicts.num_nodes(), 1 << 10, rng);

  std::cout << "conflict graph: n=" << conflicts.num_nodes()
            << " m=" << conflicts.num_edges()
            << " Δ=" << conflicts.max_degree() << "\n\n";

  const Weight total_demand = [&] {
    Weight t = 0;
    for (Weight w : traffic) t += w;
    return t;
  }();

  // Randomized Algorithm 2.
  const auto alg2 = run_layered_maxis(conflicts, traffic, 1);
  std::cout << "[Algorithm 2] schedule " << alg2.independent_set.size()
            << " radios, utility " << set_weight(traffic, alg2.independent_set)
            << " / " << total_demand << " demand, "
            << alg2.metrics.rounds << " rounds\n";

  // Deterministic Algorithm 3 (randomized O(log n) coloring black box).
  const auto alg3 =
      run_coloring_maxis(conflicts, traffic, ColoringSource::kRandomized, 2);
  std::cout << "[Algorithm 3] schedule " << alg3.independent_set.size()
            << " radios, utility " << set_weight(traffic, alg3.independent_set)
            << ", coloring " << alg3.coloring_metrics.rounds
            << " + selection " << alg3.maxis_metrics.rounds << " rounds ("
            << alg3.num_colors << " colors)\n";

  // Centralized greedy for context.
  const auto greedy = greedy_maxis(conflicts, traffic);
  std::cout << "[centralized greedy] utility "
            << set_weight(traffic, greedy.independent_set) << "\n\n";

  const bool ok1 = is_independent_set(conflicts, alg2.independent_set);
  const bool ok2 = is_independent_set(conflicts, alg3.independent_set);
  std::cout << "interference-free: alg2=" << (ok1 ? "yes" : "NO")
            << " alg3=" << (ok2 ? "yes" : "NO") << "\n";
  return ok1 && ok2 ? 0 : 1;
}
