// Exact maximum-weight independent set baselines for ratio measurement.
//
// Two regimes:
//  * exact_maxis — branch & bound over 64-bit adjacency masks (n <= 64);
//    used by tests and benches on small instances of any topology.
//  * exact_maxis_forest — O(n) weighted DP on forests; lets Table-1 benches
//    report true ratios on trees/paths/caterpillars at any scale.
//
// (For large bipartite *unweighted* instances, König's theorem via
// Hopcroft–Karp lives in the matching module: exact_mis_size_bipartite.)
#pragma once

#include "graph/graph.hpp"
#include "maxis/maxis.hpp"

namespace distapx {

/// Exact maximum-weight IS; requires g.num_nodes() <= 64.
MaxIsResult exact_maxis(const Graph& g, const NodeWeights& w);

/// Exact maximum-weight IS on a forest (throws if g has a cycle).
MaxIsResult exact_maxis_forest(const Graph& g, const NodeWeights& w);

}  // namespace distapx
