// Sequential weight-greedy MaxIS baseline (pick the heaviest remaining
// node, discard its neighborhood). Used in benches to contextualize the
// local-ratio algorithms' quality.
#pragma once

#include "graph/graph.hpp"
#include "maxis/maxis.hpp"

namespace distapx {

MaxIsResult greedy_maxis(const Graph& g, const NodeWeights& w);

}  // namespace distapx
