// Common result type for maximum-weight-independent-set algorithms.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace distapx {

struct MaxIsResult {
  std::vector<NodeId> independent_set;
  sim::RunMetrics metrics;  ///< zeroed for sequential algorithms
};

}  // namespace distapx
