#include "maxis/local_ratio_base.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {

void LocalRatioNodeBase::init(sim::Ctx& ctx) {
  undecided_nbr_.assign(ctx.degree(), true);
  pending_.assign(ctx.degree(), false);
  if (w_ <= 0) {
    announce_removed_and_halt(ctx);
  }
}

bool LocalRatioNodeBase::process_control_messages(sim::Ctx& ctx) {
  bool added_neighbor = false;
  for (const auto& d : ctx.inbox()) {
    if (d.msg.type() == kMsgRemoved) {
      undecided_nbr_[d.port] = false;
      pending_[d.port] = false;
    } else if (d.msg.type() == kMsgAdded) {
      // Only candidates can hear addedToIS (an undecided neighbor would
      // still be in the sender's pending set, blocking its join).
      DISTAPX_ENSURE_MSG(role_ == Role::kCandidate,
                         "undecided node " << ctx.id()
                                           << " received addedToIS");
      added_neighbor = true;
    }
  }
  if (added_neighbor) {
    announce_removed_and_halt(ctx);
    return false;
  }
  return true;
}

bool LocalRatioNodeBase::try_join(sim::Ctx& ctx) {
  if (role_ != Role::kCandidate) return true;
  if (std::any_of(pending_.begin(), pending_.end(),
                  [](bool p) { return p; })) {
    return true;
  }
  ctx.broadcast(sim::Message(kMsgAdded));
  ctx.halt(kOutInIs);
  return false;
}

bool LocalRatioNodeBase::apply_reductions(sim::Ctx& ctx) {
  Weight total = 0;
  for (const auto& d : ctx.inbox()) {
    if (d.msg.type() != kMsgReduce) continue;
    DISTAPX_ENSURE_MSG(role_ == Role::kUndecided,
                       "candidate " << ctx.id() << " received reduce()");
    total += static_cast<Weight>(d.msg.field(0));
    // The sender became a candidate; it is no longer undecided.
    undecided_nbr_[d.port] = false;
  }
  if (total == 0) return true;
  w_ -= total;
  if (w_ <= 0) {
    announce_removed_and_halt(ctx);
    return false;
  }
  return true;
}

void LocalRatioNodeBase::become_candidate(sim::Ctx& ctx, int reduce_bits) {
  DISTAPX_ASSERT(role_ == Role::kUndecided);
  role_ = Role::kCandidate;
  pending_ = undecided_nbr_;
  sim::Message m(kMsgReduce);
  m.push(static_cast<std::uint64_t>(w_), reduce_bits);
  send_to_undecided(ctx, m);
  w_ = 0;
}

void LocalRatioNodeBase::send_to_undecided(sim::Ctx& ctx,
                                           const sim::Message& m) {
  for (std::uint32_t p = 0; p < undecided_nbr_.size(); ++p) {
    if (undecided_nbr_[p]) ctx.send(p, m);
  }
}

void LocalRatioNodeBase::announce_removed_and_halt(sim::Ctx& ctx) {
  ctx.broadcast(sim::Message(kMsgRemoved));
  ctx.halt(kOutNotInIs);
}

bool LocalRatioNodeBase::has_undecided_neighbor() const {
  return std::any_of(undecided_nbr_.begin(), undecided_nbr_.end(),
                     [](bool u) { return u; });
}

}  // namespace distapx
