// Shared node-program machinery for the distributed local-ratio MaxIS
// algorithms (Algorithms 2 and 3).
//
// Both algorithms share the removal/addition structure of Sec. 2.2:
//  * an undecided node tracks which neighbors are still undecided;
//  * a selected node becomes a *candidate*: it sends reduce(w) to its
//    undecided neighbors, records them as its `pending` set, and waits;
//  * a node whose weight drops to zero or below announces removed() and
//    halts NotInIS;
//  * a candidate whose pending set has fully resolved (every member
//    announced removed) joins the IS, announces addedToIS() and halts; a
//    candidate hearing addedToIS() from any physical neighbor announces
//    removed() and halts NotInIS.
//
// The addition order that emerges is the reverse of candidacy order, which
// is exactly the stack unwind of Algorithm 1, so Lemma 2.2 applies and the
// result is a Δ-approximation.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "maxis/maxis.hpp"
#include "mis/mis.hpp"
#include "sim/network.hpp"

namespace distapx {

/// Message types shared by the local-ratio node programs.
enum LocalRatioMsg : std::uint32_t {
  kMsgLayer = 1,   ///< Alg 2: current weight layer
  kMsgValue = 2,   ///< Alg 2: MIS-selection value / presence
  kMsgReduce = 3,  ///< weight reduction amount (sender became candidate)
  kMsgRemoved = 4, ///< sender halted NotInIS
  kMsgAdded = 5,   ///< sender joined the IS
};

/// Base class holding the candidate/undecided bookkeeping.
class LocalRatioNodeBase : public sim::NodeProgram {
 protected:
  enum class Role { kUndecided, kCandidate };

  explicit LocalRatioNodeBase(Weight initial_weight)
      : w_(initial_weight) {}

  void init(sim::Ctx& ctx) override;

  /// Handles kMsgRemoved / kMsgAdded uniformly; call first every round.
  /// Returns false if this node halted (caller must return immediately).
  bool process_control_messages(sim::Ctx& ctx);

  /// If a candidate's pending set is empty, joins the IS (halts). Returns
  /// false if the node halted.
  bool try_join(sim::Ctx& ctx);

  /// Applies a batch of kMsgReduce deliveries (undecided nodes only);
  /// announces removal and halts if the weight drops to <= 0. Returns
  /// false if the node halted.
  bool apply_reductions(sim::Ctx& ctx);

  /// Transition to candidate: snapshot pending, send reduce(w) to all
  /// undecided neighbors, zero the weight.
  void become_candidate(sim::Ctx& ctx, int reduce_bits);

  void send_to_undecided(sim::Ctx& ctx, const sim::Message& m);
  void announce_removed_and_halt(sim::Ctx& ctx);

  [[nodiscard]] bool has_undecided_neighbor() const;

  Weight w_;
  Role role_ = Role::kUndecided;
  std::vector<bool> undecided_nbr_;  ///< per port
  std::vector<bool> pending_;        ///< per port; meaningful as candidate
};

}  // namespace distapx
