// Algorithm 2: distributed Δ-approximation for weighted MaxIS in CONGEST
// (paper Sec. 2.2, Theorem 2.3), running in O(MIS(G) · log W) rounds.
//
// Nodes are layered by weight (L_i = {v : 2^{i-1} < w(v) <= 2^i}); a node
// may take part in the MIS selection only while no undecided neighbor sits
// in a higher layer, so adjacent participants always share a layer and the
// topmost layer never waits. Selected nodes perform the local-ratio weight
// reduction of Algorithm 1; reduced-to-zero nodes are removed; candidates
// join the IS in reverse removal order (see local_ratio_base.hpp).
//
// Each super-iteration is 4 rounds:
//   phase 0  candidates try to join; undecided nodes broadcast their layer
//   phase 1  eligible nodes (no higher-layer undecided neighbor) broadcast
//            a selection value
//   phase 2  selection winners become candidates and send reduce(w)
//   phase 3  reductions are applied; dead nodes announce removed()
//
// The per-iteration MIS black box is pluggable (the E9 ablation): one Luby
// iteration (the paper's CONGEST instantiation), a fair-coin marking
// iteration, or the deterministic id-greedy rule.
#pragma once

#include "maxis/local_ratio_base.hpp"
#include "maxis/maxis.hpp"

namespace distapx {

/// Per-iteration selection rule among eligible nodes.
enum class MisSelectionRule {
  kLubyValue,  ///< random value, strict local maximum wins
  kCoin,       ///< mark w.p. 1/2, win if marked and no marked neighbor
  kIdGreedy,   ///< deterministic: highest id among eligible neighbors wins
};

struct LayeredMaxIsParams {
  MisSelectionRule rule = MisSelectionRule::kLubyValue;
  /// Ablation (bench_ablation_layers): when false, every undecided node is
  /// always MIS-eligible regardless of neighbor layers. Correctness (the
  /// Δ-approximation) is unaffected — Lemma 2.2 holds for any independent
  /// set — but the O(MIS·log W) round bound of Theorem 2.3 is lost.
  bool use_layers = true;
};

/// Factory: `max_weight` is the global W (the paper assumes W <= poly(n)).
sim::ProgramFactory make_layered_maxis_program(const Graph& g,
                                               const NodeWeights& w,
                                               Weight max_weight,
                                               LayeredMaxIsParams params = {});

/// Convenience runner under CONGEST.
MaxIsResult run_layered_maxis(const Graph& g, const NodeWeights& w,
                              std::uint64_t seed,
                              LayeredMaxIsParams params = {},
                              std::uint32_t max_rounds = 1u << 20);

}  // namespace distapx
