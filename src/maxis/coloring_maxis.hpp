// Algorithm 3: coloring-based deterministic Δ-approximation for weighted
// MaxIS (paper Sec. 2.3), O(#colors) rounds after a (Δ+1)-coloring.
//
// Nodes are prioritized by color instead of weight layer: an undecided node
// whose color is a local maximum among undecided neighbors performs the
// local-ratio weight reduction and becomes a candidate. After at most Δ+1
// sweeps every node is a candidate or removed; candidates then join in
// reverse removal order exactly as in Algorithm 2. With the [BEK14] black
// box this is O(Δ + log* n) rounds; see DESIGN.md for our coloring
// substitution (Linial O(Δ² + log* n) or randomized O(log n)).
//
// Two rounds per sweep:
//   phase 0  candidates try to join; locally-max-color nodes send reduce(w)
//   phase 1  reductions applied; dead nodes announce removed()
#pragma once

#include "coloring/coloring.hpp"
#include "maxis/local_ratio_base.hpp"
#include "maxis/maxis.hpp"

namespace distapx {

/// Which coloring substrate to run first.
enum class ColoringSource {
  kLinial,      ///< deterministic (O(Δ² + log* n) rounds)
  kRandomized,  ///< randomized (O(log n) rounds)
};

struct ColoringMaxIsResult {
  std::vector<NodeId> independent_set;
  sim::RunMetrics coloring_metrics;  ///< the black-box coloring phase
  sim::RunMetrics maxis_metrics;     ///< the Algorithm 3 phase proper
  Color num_colors = 0;
};

/// Runs Algorithm 3 on a precomputed proper coloring (phase metrics only
/// cover the MaxIS part).
ColoringMaxIsResult run_coloring_maxis_with(
    const Graph& g, const NodeWeights& w, const std::vector<Color>& colors,
    std::uint32_t max_rounds = 1u << 20);

/// Full pipeline: coloring black box, then Algorithm 3.
ColoringMaxIsResult run_coloring_maxis(const Graph& g, const NodeWeights& w,
                                       ColoringSource source,
                                       std::uint64_t seed = 1,
                                       std::uint32_t max_rounds = 1u << 20);

}  // namespace distapx
