#include "maxis/coloring_maxis.hpp"

#include <algorithm>
#include <memory>

#include "coloring/linial.hpp"
#include "coloring/rand_coloring.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

class ColoringMaxIsProgram final : public LocalRatioNodeBase {
 public:
  ColoringMaxIsProgram(Weight weight, Color color, int color_bits,
                       int reduce_bits)
      : LocalRatioNodeBase(weight),
        color_(color),
        color_bits_(color_bits),
        reduce_bits_(reduce_bits) {}

  void init(sim::Ctx& ctx) override {
    nbr_color_.assign(ctx.degree(), 0);
    // Colors are static: announce once, before the weight machinery may
    // halt us, so neighbors always have our color on file.
    sim::Message m(kMsgValue);
    m.push(color_, color_bits_);
    ctx.broadcast(m);
    LocalRatioNodeBase::init(ctx);
  }

  void round(sim::Ctx& ctx) override {
    // The one-time color announcements arrive in round 1.
    for (const auto& d : ctx.inbox()) {
      if (d.msg.type() == kMsgValue) {
        nbr_color_[d.port] = static_cast<Color>(d.msg.field(0));
      }
    }
    if (!process_control_messages(ctx)) return;
    const std::uint32_t phase = (ctx.round() - 1) % 2;
    if (phase == 0) {
      if (!try_join(ctx)) return;
      if (role_ == Role::kUndecided && locally_max_color()) {
        become_candidate(ctx, reduce_bits_);
      }
    } else {
      if (role_ != Role::kUndecided) return;
      if (!apply_reductions(ctx)) return;
    }
  }

 private:
  [[nodiscard]] bool locally_max_color() const {
    for (std::uint32_t p = 0; p < undecided_nbr_.size(); ++p) {
      if (undecided_nbr_[p] && nbr_color_[p] > color_) return false;
    }
    return true;
  }

  Color color_;
  int color_bits_;
  int reduce_bits_;
  std::vector<Color> nbr_color_;
};

void fill_is(const sim::RunResult& run, std::vector<NodeId>& out) {
  for (NodeId v = 0; v < run.outputs.size(); ++v) {
    if (run.outputs[v] == kOutInIs) out.push_back(v);
  }
}

}  // namespace

ColoringMaxIsResult run_coloring_maxis_with(const Graph& g,
                                            const NodeWeights& w,
                                            const std::vector<Color>& colors,
                                            std::uint32_t max_rounds) {
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  DISTAPX_ENSURE_MSG(is_proper_coloring(g, colors),
                     "Algorithm 3 requires a proper coloring");
  Color num_colors = 0;
  for (Color c : colors) num_colors = std::max(num_colors, c + 1);
  const Weight max_w =
      w.empty() ? 1 : std::max<Weight>(1, *std::max_element(w.begin(),
                                                            w.end()));
  const int color_bits = bits_for_count(std::max<Color>(num_colors, 2));
  const int reduce_bits = bits_for_value(static_cast<std::uint64_t>(max_w));

  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = 1;  // Algorithm 3 proper is deterministic
  opts.max_rounds = max_rounds;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto run = net.run(
      [&](NodeId v) {
        return std::make_unique<ColoringMaxIsProgram>(
            w[v], colors[v], color_bits, reduce_bits);
      },
      opts);
  DISTAPX_ENSURE_MSG(run.metrics.completed,
                     "coloring MaxIS hit the round cap");

  ColoringMaxIsResult out;
  out.maxis_metrics = run.metrics;
  out.num_colors = num_colors;
  fill_is(run, out.independent_set);
  return out;
}

ColoringMaxIsResult run_coloring_maxis(const Graph& g, const NodeWeights& w,
                                       ColoringSource source,
                                       std::uint64_t seed,
                                       std::uint32_t max_rounds) {
  ColoringResult coloring =
      source == ColoringSource::kLinial
          ? linial_coloring(g, max_rounds)
          : randomized_coloring(g, seed, max_rounds);
  auto out = run_coloring_maxis_with(g, w, coloring.colors, max_rounds);
  out.coloring_metrics = coloring.metrics;
  return out;
}

}  // namespace distapx
