#include "maxis/greedy_maxis.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace distapx {

MaxIsResult greedy_maxis(const Graph& g, const NodeWeights& w) {
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return w[a] != w[b] ? w[a] > w[b] : a < b;
  });
  std::vector<bool> blocked(g.num_nodes(), false);
  MaxIsResult result;
  for (NodeId v : order) {
    if (blocked[v] || w[v] <= 0) continue;
    result.independent_set.push_back(v);
    blocked[v] = true;
    for (const HalfEdge& he : g.neighbors(v)) blocked[he.to] = true;
  }
  return result;
}

}  // namespace distapx
