#include "maxis/exact.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "support/assert.hpp"

namespace distapx {
namespace {

/// Branch & bound state over bitmasks.
class MaxIsSolver {
 public:
  MaxIsSolver(const Graph& g, const NodeWeights& w) : w_(w) {
    n_ = g.num_nodes();
    adj_.assign(n_, 0);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      adj_[u] |= std::uint64_t{1} << v;
      adj_[v] |= std::uint64_t{1} << u;
    }
  }

  std::uint64_t solve() {
    std::uint64_t all = n_ == 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << n_) - 1;
    // Non-positive-weight nodes can never help.
    for (NodeId v = 0; v < n_; ++v) {
      if (w_[v] <= 0) all &= ~(std::uint64_t{1} << v);
    }
    best_weight_ = 0;
    best_set_ = 0;
    recurse(all, 0, 0);
    return best_set_;
  }

  [[nodiscard]] Weight best_weight() const noexcept { return best_weight_; }

 private:
  void recurse(std::uint64_t candidates, std::uint64_t chosen,
               Weight weight) {
    if (weight > best_weight_) {
      best_weight_ = weight;
      best_set_ = chosen;
    }
    if (candidates == 0) return;
    // Upper bound: all remaining candidates taken.
    Weight bound = weight;
    for (std::uint64_t rest = candidates; rest != 0; rest &= rest - 1) {
      bound += w_[static_cast<NodeId>(std::countr_zero(rest))];
    }
    if (bound <= best_weight_) return;
    // Branch on the candidate with the most candidate-neighbors (fail
    // first); include it, then exclude it.
    NodeId pick = 0;
    int best_deg = -1;
    for (std::uint64_t rest = candidates; rest != 0; rest &= rest - 1) {
      const auto v = static_cast<NodeId>(std::countr_zero(rest));
      const int deg = std::popcount(adj_[v] & candidates);
      if (deg > best_deg) {
        best_deg = deg;
        pick = v;
      }
    }
    const std::uint64_t bit = std::uint64_t{1} << pick;
    recurse(candidates & ~(adj_[pick] | bit), chosen | bit,
            weight + w_[pick]);
    recurse(candidates & ~bit, chosen, weight);
  }

  const NodeWeights& w_;
  NodeId n_ = 0;
  std::vector<std::uint64_t> adj_;
  Weight best_weight_ = 0;
  std::uint64_t best_set_ = 0;
};

}  // namespace

MaxIsResult exact_maxis(const Graph& g, const NodeWeights& w) {
  DISTAPX_ENSURE_MSG(g.num_nodes() <= 64,
                     "exact_maxis supports at most 64 nodes; use "
                     "exact_maxis_forest or a structured family");
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  MaxIsSolver solver(g, w);
  const std::uint64_t set = solver.solve();
  MaxIsResult result;
  for (std::uint64_t rest = set; rest != 0; rest &= rest - 1) {
    result.independent_set.push_back(
        static_cast<NodeId>(std::countr_zero(rest)));
  }
  return result;
}

MaxIsResult exact_maxis_forest(const Graph& g, const NodeWeights& w) {
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  const NodeId n = g.num_nodes();
  DISTAPX_ENSURE_MSG(g.num_edges() < n || n == 0,
                     "exact_maxis_forest requires an acyclic graph");
  // Iterative rooted DP: take[v] = w(v) + sum skip[c]; skip[v] = sum
  // max(take[c], skip[c]).
  std::vector<Weight> take(n, 0), skip(n, 0);
  std::vector<NodeId> parent(n, kInvalidNode), order;
  std::vector<bool> visited(n, false);
  order.reserve(n);
  for (NodeId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<NodeId> stack{root};
    visited[root] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const HalfEdge& he : g.neighbors(v)) {
        if (!visited[he.to]) {
          visited[he.to] = true;
          parent[he.to] = v;
          stack.push_back(he.to);
        } else {
          DISTAPX_ENSURE_MSG(he.to == parent[v],
                             "cycle detected; not a forest");
        }
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    take[v] = w[v];
    skip[v] = 0;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (he.to == parent[v]) continue;
      take[v] += skip[he.to];
      skip[v] += std::max(take[he.to], skip[he.to]);
    }
  }
  // Reconstruct.
  MaxIsResult result;
  std::vector<std::pair<NodeId, bool>> walk;  // (node, may_take)
  for (NodeId root = 0; root < n; ++root) {
    if (parent[root] == kInvalidNode) walk.emplace_back(root, true);
  }
  while (!walk.empty()) {
    const auto [v, may_take] = walk.back();
    walk.pop_back();
    const bool taking = may_take && take[v] > skip[v];
    if (taking) result.independent_set.push_back(v);
    for (const HalfEdge& he : g.neighbors(v)) {
      if (he.to == parent[v]) continue;
      walk.emplace_back(he.to, !taking);
    }
  }
  std::sort(result.independent_set.begin(), result.independent_set.end());
  return result;
}

}  // namespace distapx
