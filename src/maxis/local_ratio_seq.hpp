// Algorithm 1: the sequential local-ratio Δ-approximation meta-algorithm
// for maximum weight independent set (paper Sec. 2.1).
//
// Each iteration picks an independent set U of the surviving graph, reduces
// w(u) from every neighbor of each u ∈ U, pushes U on a stack, and recurses
// on the positive-weight remainder. Unwinding the stack adds each u that
// has no neighbor already in the solution. Lemma 2.2 + Theorem 2.1 (the
// local ratio theorem of [BNBYF+01]) give the Δ-approximation regardless of
// how U is chosen — the policy only affects iteration count, which is what
// the distributed algorithms optimize.
#pragma once

#include "graph/graph.hpp"
#include "maxis/maxis.hpp"
#include "support/random.hpp"

namespace distapx {

/// Policy for selecting the independent set U of each iteration.
enum class LocalRatioPolicy {
  /// Single maximum-weight node (the classic sequential local ratio
  /// [BYBFR04]; Θ(n) iterations).
  kSingleMaxWeight,
  /// Greedy MIS over all surviving nodes.
  kGreedyMis,
  /// Greedy MIS over the topmost weight layer only (the selection
  /// Algorithm 2 effectively makes; O(log W) iterations).
  kTopLayerMis,
};

struct SeqLocalRatioStats {
  std::uint32_t iterations = 0;
};

/// Runs Algorithm 1. Nodes with non-positive weight are never selected.
MaxIsResult seq_local_ratio_maxis(const Graph& g, const NodeWeights& w,
                                  LocalRatioPolicy policy,
                                  SeqLocalRatioStats* stats = nullptr);

}  // namespace distapx
