#include "maxis/layered_maxis.hpp"

#include <algorithm>
#include <memory>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

// Layer of a positive weight: index i with 2^{i-1} < w <= 2^i.
std::uint32_t layer_of(Weight w) {
  DISTAPX_ASSERT(w > 0);
  return static_cast<std::uint32_t>(
      ceil_log2(static_cast<std::uint64_t>(w)));
}

constexpr int kLayerBits = 7;  // layers fit in [0, 63]

class LayeredProgram final : public LocalRatioNodeBase {
 public:
  LayeredProgram(Weight weight, LayeredMaxIsParams params, int value_bits,
                 int reduce_bits)
      : LocalRatioNodeBase(weight),
        params_(params),
        value_bits_(value_bits),
        reduce_bits_(reduce_bits) {}

  void init(sim::Ctx& ctx) override {
    LocalRatioNodeBase::init(ctx);
    nbr_layer_.assign(ctx.degree(), 0);
  }

  void round(sim::Ctx& ctx) override {
    const std::uint32_t phase = (ctx.round() - 1) % 4;
    if (!process_control_messages(ctx)) return;
    switch (phase) {
      case 0: {
        if (!try_join(ctx)) return;
        if (role_ == Role::kUndecided) {
          sim::Message m(kMsgLayer);
          m.push(layer_of(w_), kLayerBits);
          send_to_undecided(ctx, m);
        }
        break;
      }
      case 1: {
        if (role_ != Role::kUndecided) break;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kMsgLayer) {
            nbr_layer_[d.port] =
                static_cast<std::uint32_t>(d.msg.field(0));
          }
        }
        eligible_ = true;
        if (params_.use_layers) {
          const std::uint32_t mine = layer_of(w_);
          for (std::uint32_t p = 0; p < undecided_nbr_.size(); ++p) {
            if (undecided_nbr_[p] && nbr_layer_[p] > mine) {
              eligible_ = false;
              break;
            }
          }
        }
        if (eligible_) send_selection_value(ctx);
        break;
      }
      case 2: {
        if (role_ != Role::kUndecided || !eligible_) break;
        if (selection_won(ctx)) {
          become_candidate(ctx, reduce_bits_);
        }
        break;
      }
      case 3: {
        if (role_ != Role::kUndecided) break;
        if (!apply_reductions(ctx)) return;
        break;
      }
      default:
        break;
    }
  }

 private:
  void send_selection_value(sim::Ctx& ctx) {
    switch (params_.rule) {
      case MisSelectionRule::kLubyValue: {
        value_ = ctx.rng().next() &
                 ((std::uint64_t{1} << value_bits_) - 1);
        sim::Message m(kMsgValue);
        m.push(value_, value_bits_);
        send_to_undecided(ctx, m);
        break;
      }
      case MisSelectionRule::kCoin: {
        marked_ = ctx.rng().bernoulli(0.5);
        if (marked_) {
          send_to_undecided(ctx, sim::Message(kMsgValue));
        }
        break;
      }
      case MisSelectionRule::kIdGreedy: {
        send_to_undecided(ctx, sim::Message(kMsgValue));
        break;
      }
    }
  }

  [[nodiscard]] bool selection_won(sim::Ctx& ctx) const {
    switch (params_.rule) {
      case MisSelectionRule::kLubyValue: {
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() != kMsgValue) continue;
          const std::uint64_t theirs = d.msg.field(0);
          const NodeId their_id = ctx.neighbor(d.port);
          if (theirs > value_ ||
              (theirs == value_ && their_id > ctx.id())) {
            return false;
          }
        }
        return true;
      }
      case MisSelectionRule::kCoin: {
        if (!marked_) return false;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kMsgValue) return false;
        }
        return true;
      }
      case MisSelectionRule::kIdGreedy: {
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kMsgValue &&
              ctx.neighbor(d.port) > ctx.id()) {
            return false;
          }
        }
        return true;
      }
    }
    return false;
  }

  LayeredMaxIsParams params_;
  int value_bits_;
  int reduce_bits_;
  std::vector<std::uint32_t> nbr_layer_;
  std::uint64_t value_ = 0;
  bool marked_ = false;
  bool eligible_ = false;
};

}  // namespace

sim::ProgramFactory make_layered_maxis_program(const Graph& g,
                                               const NodeWeights& w,
                                               Weight max_weight,
                                               LayeredMaxIsParams params) {
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  const int value_bits =
      2 * bits_for_count(std::max<NodeId>(g.num_nodes(), 2));
  const int reduce_bits =
      bits_for_value(static_cast<std::uint64_t>(std::max<Weight>(
          max_weight, 1)));
  return [&w, params, value_bits, reduce_bits](NodeId v) {
    return std::make_unique<LayeredProgram>(w[v], params, value_bits,
                                            reduce_bits);
  };
}

MaxIsResult run_layered_maxis(const Graph& g, const NodeWeights& w,
                              std::uint64_t seed, LayeredMaxIsParams params,
                              std::uint32_t max_rounds) {
  const Weight max_w =
      w.empty() ? 1 : *std::max_element(w.begin(), w.end());
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.max_rounds = max_rounds;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto result =
      net.run(make_layered_maxis_program(g, w, max_w, params), opts);
  DISTAPX_ENSURE_MSG(result.metrics.completed,
                     "layered MaxIS hit the round cap");
  MaxIsResult out;
  out.metrics = result.metrics;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.outputs[v] == kOutInIs) out.independent_set.push_back(v);
  }
  return out;
}

}  // namespace distapx
