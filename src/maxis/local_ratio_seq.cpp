#include "maxis/local_ratio_seq.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

/// Greedy MIS restricted to `eligible` nodes, highest weight first.
std::vector<NodeId> greedy_is(const Graph& g, const NodeWeights& w,
                              const std::vector<bool>& eligible) {
  std::vector<NodeId> order;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (eligible[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return w[a] != w[b] ? w[a] > w[b] : a < b;
  });
  std::vector<bool> blocked(g.num_nodes(), false);
  std::vector<NodeId> set;
  for (NodeId v : order) {
    if (blocked[v]) continue;
    set.push_back(v);
    for (const HalfEdge& he : g.neighbors(v)) blocked[he.to] = true;
  }
  return set;
}

}  // namespace

MaxIsResult seq_local_ratio_maxis(const Graph& g, const NodeWeights& w_in,
                                  LocalRatioPolicy policy,
                                  SeqLocalRatioStats* stats) {
  DISTAPX_ENSURE(w_in.size() == g.num_nodes());
  NodeWeights w = w_in;
  std::vector<bool> alive(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) alive[v] = w[v] > 0;

  std::vector<std::vector<NodeId>> stack;
  std::uint32_t iterations = 0;

  auto any_alive = [&] {
    return std::any_of(alive.begin(), alive.end(), [](bool a) { return a; });
  };

  while (any_alive()) {
    ++iterations;
    std::vector<NodeId> u_set;
    switch (policy) {
      case LocalRatioPolicy::kSingleMaxWeight: {
        NodeId best = kInvalidNode;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (alive[v] && (best == kInvalidNode || w[v] > w[best])) best = v;
        }
        u_set.push_back(best);
        break;
      }
      case LocalRatioPolicy::kGreedyMis:
        u_set = greedy_is(g, w, alive);
        break;
      case LocalRatioPolicy::kTopLayerMis: {
        // Topmost layer L_i = {v : 2^{i-1} < w(v) <= 2^i}.
        int top = -1;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (alive[v]) {
            top = std::max(
                top, ceil_log2(static_cast<std::uint64_t>(w[v])));
          }
        }
        std::vector<bool> in_top(g.num_nodes(), false);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          in_top[v] =
              alive[v] &&
              ceil_log2(static_cast<std::uint64_t>(w[v])) == top;
        }
        u_set = greedy_is(g, w, in_top);
        break;
      }
    }
    DISTAPX_ASSERT(!u_set.empty());

    // Weight reduction (Alg 1 lines 9-11): since U is independent, the
    // amounts are the unmodified w(u) values.
    std::vector<Weight> amount(u_set.size());
    for (std::size_t i = 0; i < u_set.size(); ++i) amount[i] = w[u_set[i]];
    for (std::size_t i = 0; i < u_set.size(); ++i) {
      const NodeId u = u_set[i];
      for (const HalfEdge& he : g.neighbors(u)) {
        if (alive[he.to]) w[he.to] -= amount[i];
      }
      w[u] = 0;
      alive[u] = false;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v] && w[v] <= 0) alive[v] = false;
    }
    stack.push_back(std::move(u_set));
  }

  // Unwind (Alg 1 lines 13-14): add u unless a neighbor is already in.
  std::vector<bool> in_solution(g.num_nodes(), false);
  MaxIsResult result;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (NodeId u : *it) {
      bool blocked = false;
      for (const HalfEdge& he : g.neighbors(u)) {
        if (in_solution[he.to]) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        in_solution[u] = true;
        result.independent_set.push_back(u);
      }
    }
  }
  if (stats != nullptr) stats->iterations = iterations;
  return result;
}

}  // namespace distapx
