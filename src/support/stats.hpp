// Small statistics toolkit for the benchmark harness: streaming summaries,
// percentiles and least-squares fits used to report round-complexity shapes.
#pragma once

#include <cstddef>
#include <vector>

namespace distapx {

/// Streaming min/max/mean/variance accumulator (Welford).
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation (0 for fewer than two observations).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Percentile of a sample (linear interpolation); q in [0,1].
double percentile(std::vector<double> xs, double q);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

}  // namespace distapx
