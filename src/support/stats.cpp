#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace distapx {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Summary::min() const noexcept { return n_ ? min_ : 0.0; }
double Summary::max() const noexcept { return n_ ? max_ : 0.0; }
double Summary::mean() const noexcept { return n_ ? mean_ : 0.0; }

double Summary::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double percentile(std::vector<double> xs, double q) {
  DISTAPX_ENSURE(!xs.empty());
  DISTAPX_ENSURE(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  DISTAPX_ENSURE(xs.size() == ys.size());
  DISTAPX_ENSURE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace distapx
