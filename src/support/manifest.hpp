// Append-only on-disk manifests (line-oriented record journals).
//
// The cache manager (service/cache_manager.hpp) tracks per-entry metadata
// — sizes and last-access order — in a journal it can append to cheaply
// from many processes at once and replay on open. This module provides
// that primitive generically: a manifest is a text file of one record per
// line, `tag field field ...`, whitespace-separated.
//
// Durability model: the manifest is *advisory* metadata. Appends are
// single-write lines on an O_APPEND stream, so concurrent appenders from
// different processes interleave at line granularity in the common case;
// a torn or malformed line (crash mid-write, pathological interleaving)
// is skipped by read_manifest rather than failing the load. Consumers
// must treat the replayed records as hints and keep ground truth
// elsewhere (for the cache: the entry files themselves, which are
// immutable and checksummed). compact_manifest rewrites atomically via
// temp + rename, so readers never observe a half-written manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace distapx {

/// One manifest line: a tag and its fields ("F ab12... 97" ->
/// tag="F", fields={"ab12...", "97"}).
struct ManifestRecord {
  std::string tag;
  std::vector<std::string> fields;
};

/// Replays every well-formed line of `path` in file order. A missing file
/// is an empty manifest; malformed lines (empty, torn) are skipped.
std::vector<ManifestRecord> read_manifest(const std::string& path);

/// Appends records to `path`, one line each, in O_APPEND mode (each call
/// reopens the stream, so concurrent appenders from other processes land
/// at the current end of file). Returns false if the write failed —
/// manifest appends are advisory, so callers typically shrug.
bool append_manifest(const std::string& path,
                     const std::vector<ManifestRecord>& records);

/// Atomically replaces `path` with exactly `records` (temp + rename).
/// Returns false on failure, leaving the old manifest intact.
bool compact_manifest(const std::string& path,
                      const std::vector<ManifestRecord>& records);

}  // namespace distapx
