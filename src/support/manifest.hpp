// Append-only on-disk manifests (line-oriented record journals).
//
// The cache manager (service/cache_manager.hpp) tracks per-entry metadata
// — sizes and last-access order — in a journal it can append to cheaply
// from many processes at once and replay on open. This module provides
// that primitive generically: a manifest is a text file of one record per
// line, `tag field field ...`, whitespace-separated.
//
// Durability model: the manifest is *advisory* metadata. Appends are
// single-write lines on an O_APPEND stream, so concurrent appenders from
// different processes interleave at line granularity in the common case;
// a torn or malformed line (crash mid-write, pathological interleaving)
// is skipped by read_manifest rather than failing the load. Consumers
// must treat the replayed records as hints and keep ground truth
// elsewhere (for the cache: the entry files themselves, which are
// immutable and checksummed). compact_manifest rewrites atomically via
// temp + rename, so readers never observe a half-written manifest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace distapx {

/// One manifest line: a tag and its fields ("F ab12... 97" ->
/// tag="F", fields={"ab12...", "97"}).
struct ManifestRecord {
  std::string tag;
  std::vector<std::string> fields;
};

/// The record as one line, trailing newline included ("F ab12... 97\n").
/// The cache manager also uses this as the payload syntax for its
/// changelog records (support/changelog.hpp), so a manifest line means
/// the same thing whether it lives in a text journal or a framed one.
std::string format_manifest_line(const ManifestRecord& record);

/// Inverse of format_manifest_line for one line (no trailing newline
/// required): nullopt for a blank/torn line.
std::optional<ManifestRecord> parse_manifest_line(std::string_view line);

/// Replays every well-formed line of `path` in file order. A missing file
/// is an empty manifest; malformed lines (empty, torn) are skipped.
std::vector<ManifestRecord> read_manifest(const std::string& path);

/// Appends records to `path`, one line each, in O_APPEND mode (each call
/// reopens the stream, so concurrent appenders from other processes land
/// at the current end of file). Returns false if the write failed, after
/// emitting a rate-limited warn — manifest data is advisory (loss
/// degrades LRU precision, never correctness), but a persistently
/// unwritable journal is an operational fault the log must surface, not
/// the silent shrug it used to be. Callers that own a metrics registry
/// should additionally count the failure (the cache manager bumps
/// manifest_append_failures_total).
bool append_manifest(const std::string& path,
                     const std::vector<ManifestRecord>& records);

/// Atomically replaces `path` with exactly `records` (temp + rename).
/// Returns false on failure, leaving the old manifest intact.
bool compact_manifest(const std::string& path,
                      const std::vector<ManifestRecord>& records);

}  // namespace distapx
