#include "support/procstat.hpp"

#include <sys/resource.h>

#include <filesystem>
#include <system_error>

#include "support/metrics.hpp"

namespace distapx::procstat {

namespace {

double timeval_seconds(const timeval& tv) noexcept {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) / 1e6;
}

std::int64_t count_open_fds() noexcept {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (ec) return -1;
  std::int64_t n = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++n;
  }
  // The iterator itself holds one descriptor while we scan.
  return n > 0 ? n - 1 : n;
}

}  // namespace

ProcessUsage sample_process_usage() {
  ProcessUsage u;
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    u.cpu_seconds = timeval_seconds(ru.ru_utime) + timeval_seconds(ru.ru_stime);
    // Linux reports ru_maxrss in kibibytes.
    u.max_rss_bytes = static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
    u.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    u.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  }
  u.open_fds = count_open_fds();
  return u;
}

void install_process_metrics(metrics::Registry& reg) {
  // Resolve every handle up front: the refresh hook runs inside
  // snapshot() and must not register names (see set_refresh_hook).
  auto& cpu = reg.float_gauge("process_cpu_seconds_total");
  auto& rss = reg.gauge("process_max_rss_bytes");
  auto& minflt = reg.gauge("process_minor_faults_total");
  auto& majflt = reg.gauge("process_major_faults_total");
  auto& fds = reg.gauge("process_open_fds");
  const auto refresh = [&cpu, &rss, &minflt, &majflt, &fds] {
    const ProcessUsage u = sample_process_usage();
    cpu.set(u.cpu_seconds);
    rss.set(u.max_rss_bytes);
    minflt.set(static_cast<std::int64_t>(u.minor_faults));
    majflt.set(static_cast<std::int64_t>(u.major_faults));
    fds.set(u.open_fds);
  };
  refresh();  // gauges are live even before the first scrape
  reg.set_refresh_hook(refresh);
}

}  // namespace distapx::procstat
