#include "support/fingerprint.hpp"

#include <bit>
#include <cstring>

namespace distapx {

namespace {

/// SplitMix64 finalizer: an invertible 64-bit mix with full avalanche.
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    s[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return s;
}

std::optional<Fingerprint> Fingerprint::from_hex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  Fingerprint fp;
  for (int i = 0; i < 32; ++i) {
    const char c = s[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    (i < 16 ? fp.hi : fp.lo) = ((i < 16 ? fp.hi : fp.lo) << 4) | digit;
  }
  return fp;
}

Fingerprinter& Fingerprinter::add_u64(std::uint64_t v) noexcept {
  // Lane-distinct round constants keep (hi, lo) from collapsing into one
  // 64-bit state; the golden-ratio increment breaks fixed points at 0.
  hi_ = mix(hi_ ^ (v + 0x9e3779b97f4a7c15ULL));
  lo_ = mix(lo_ ^ (v + 0xd1b54a32d192ed03ULL));
  ++words_;
  return *this;
}

Fingerprinter& Fingerprinter::add_i64(std::int64_t v) noexcept {
  return add_u64(static_cast<std::uint64_t>(v));
}

Fingerprinter& Fingerprinter::add_u32(std::uint32_t v) noexcept {
  return add_u64(0x3200000000000000ULL | v);  // width tag
}

Fingerprinter& Fingerprinter::add_bool(bool v) noexcept {
  return add_u64(0x0100000000000000ULL | (v ? 1 : 0));
}

Fingerprinter& Fingerprinter::add_double(double v) noexcept {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

Fingerprinter& Fingerprinter::add_string(std::string_view s) noexcept {
  add_u64(0x5300000000000000ULL | s.size());  // length prefix + tag
  std::uint64_t word = 0;
  unsigned filled = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      add_u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) add_u64(word);
  return *this;
}

Fingerprint Fingerprinter::digest() const noexcept {
  // Finalize a copy so the accumulator can keep absorbing afterwards.
  Fingerprint fp;
  const std::uint64_t h = mix(hi_ ^ mix(words_));
  const std::uint64_t l = mix(lo_ ^ mix(words_ + 0x9e3779b97f4a7c15ULL));
  // Cross the lanes once so neither output word depends on only half of
  // the absorbed state.
  fp.hi = mix(h + (l << 1));
  fp.lo = mix(l + (h << 1));
  return fp;
}

Fingerprint fingerprint_bytes(const void* data, std::size_t size) noexcept {
  Fingerprinter fp;
  fp.add_string(std::string_view(static_cast<const char*>(data), size));
  return fp.digest();
}

}  // namespace distapx
