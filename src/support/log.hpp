// Leveled, rate-limited, structured logging for the serving tier.
//
// One line per event, machine-parsable key=value fields, written to
// stderr (stdout stays reserved for results — CSV rows, reports, counter
// prints — which scripts pipe and cmp):
//
//   ts=2026-08-09T12:34:56.789Z level=info event=conn_accepted conn=3
//   ts=... level=warn event=protocol_error conn=7 err="bad-magic"
//       suppressed=12  (one line on the wire; wrapped here for width)
//
// Values containing spaces, quotes, '=' or control characters are quoted
// with backslash escapes; everything else is emitted bare. The `event`
// field is a stable identifier (snake_case); free-form detail goes in
// named fields, never in the event name.
//
// Rate limiting: each event name gets a token bucket (default 10 lines/s,
// burst 50) so a misbehaving peer hammering protocol errors cannot turn
// the log into the bottleneck — or fill a disk. Dropped lines are counted
// and the next allowed line of that event carries `suppressed=N`, so the
// information that a storm happened survives even though its lines do
// not. The limiter applies per event name; error-level lines share the
// same buckets (an error storm is still a storm).
//
// The global level is process-wide (`--log-level` on the serving CLIs;
// default info). Filtering happens before field formatting, so disabled
// levels cost one relaxed atomic load.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace distapx::logx {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Stable lowercase name ("debug", "info", "warn", "error", "off").
const char* level_name(Level lv) noexcept;
/// Inverse of level_name; nullopt on anything else.
std::optional<Level> parse_level(std::string_view text) noexcept;

void set_level(Level lv) noexcept;
Level level() noexcept;

/// One key=value field. Construction renders the value to a string; keys
/// must be bare identifiers (they are emitted unquoted).
struct Field {
  std::string_view key;
  std::string value;

  Field(std::string_view k, std::string_view v) : key(k), value(v) {}
  Field(std::string_view k, const char* v) : key(k), value(v) {}
  Field(std::string_view k, const std::string& v) : key(k), value(v) {}
  Field(std::string_view k, unsigned long long v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, unsigned long v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, unsigned v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, long long v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, long v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, double v);
  Field(std::string_view k, bool v) : key(k), value(v ? "1" : "0") {}
};

/// Emits one line (subject to level filtering and the per-event rate
/// limit). Thread-safe; the line is written with a single fwrite so
/// concurrent loggers never interleave mid-line.
void log(Level lv, std::string_view event,
         std::initializer_list<Field> fields = {});

inline void debug(std::string_view event,
                  std::initializer_list<Field> fields = {}) {
  log(Level::kDebug, event, fields);
}
inline void info(std::string_view event,
                 std::initializer_list<Field> fields = {}) {
  log(Level::kInfo, event, fields);
}
inline void warn(std::string_view event,
                 std::initializer_list<Field> fields = {}) {
  log(Level::kWarn, event, fields);
}
inline void error(std::string_view event,
                  std::initializer_list<Field> fields = {}) {
  log(Level::kError, event, fields);
}

/// Token bucket: starts full at `burst` tokens, refills at
/// `tokens_per_sec`, each allowed event spends one token. Time is passed
/// in explicitly (seconds on any monotone clock) so tests can pin the
/// schedule without sleeping; the logger feeds it steady_clock.
class RateLimiter {
 public:
  RateLimiter(double tokens_per_sec, double burst) noexcept
      : per_sec_(tokens_per_sec), burst_(burst), tokens_(burst) {}

  /// True when the event may proceed (a token was spent).
  bool allow(double now_seconds) noexcept;

  /// Denied count since the last allowed event; reset by the next allow.
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }

 private:
  double per_sec_;
  double burst_;
  double tokens_;
  double last_ = 0;
  bool started_ = false;
  std::uint64_t suppressed_ = 0;
};

/// Rate limit applied per event name by log(). Defaults: 10/s, burst 50.
/// Changing it resets existing per-event buckets.
void set_rate_limit(double tokens_per_sec, double burst);

/// Test seams: replace the stderr sink with a line collector, and the
/// wall clock the rate limiter reads. Null restores the default.
void set_sink_for_testing(std::function<void(const std::string&)> sink);
void set_clock_for_testing(std::function<double()> now_seconds);

/// Formats the value part of one field exactly as log() would (bare or
/// quoted+escaped). Exposed for the format tests.
std::string format_value(std::string_view value);

}  // namespace distapx::logx
