#include "support/fsutil.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <system_error>

#include "support/metrics.hpp"

namespace distapx::fsutil {

namespace fs = std::filesystem;

namespace {

std::atomic<bool> g_force_copy{false};
std::atomic<Durability> g_durability{Durability::kFull};
std::atomic<std::uint64_t> g_fsync_total{0};
std::atomic<metrics::Counter*> g_fsync_counter{nullptr};

[[noreturn]] void throw_move_error(const fs::path& from, const fs::path& to,
                                   const std::error_code& ec) {
  throw fs::filesystem_error("cannot move file", from, to, ec);
}

void count_fsync() noexcept {
  g_fsync_total.fetch_add(1, std::memory_order_relaxed);
  if (metrics::Counter* c = g_fsync_counter.load(std::memory_order_relaxed)) {
    c->inc();
  }
}

}  // namespace

void set_force_copy_move_for_testing(bool force) noexcept {
  g_force_copy.store(force, std::memory_order_relaxed);
}

void set_durability(Durability level) noexcept {
  g_durability.store(level, std::memory_order_relaxed);
}

Durability durability() noexcept {
  return g_durability.load(std::memory_order_relaxed);
}

std::optional<Durability> parse_durability(std::string_view text) noexcept {
  if (text == "none") return Durability::kNone;
  if (text == "full") return Durability::kFull;
  return std::nullopt;
}

std::uint64_t fsync_total() noexcept {
  return g_fsync_total.load(std::memory_order_relaxed);
}

void set_fsync_counter(metrics::Counter* counter) noexcept {
  g_fsync_counter.store(counter, std::memory_order_relaxed);
}

bool sync_fd(int fd) noexcept {
  if (durability() == Durability::kNone) return true;
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc == 0) count_fsync();
  return rc == 0;
}

bool sync_file(const fs::path& path) noexcept {
  if (durability() == Durability::kNone) return true;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = sync_fd(fd);
  ::close(fd);
  return ok;
}

bool sync_dir(const fs::path& dir) noexcept {
  if (durability() == Durability::kNone) return true;
  // O_DIRECTORY so a plain file at `dir` is an error, not a silent sync of
  // the wrong object. fsync (not fdatasync): directory metadata IS the
  // data being made durable here.
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  if (rc == 0) count_fsync();
  return rc == 0;
}

bool write_file_durable(const fs::path& path, std::string_view content,
                        std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + " " + path.string() + ": " + std::strerror(errno);
    }
    return false;
  };
  fs::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const fs::path tmp =
      dir / (".pub-tmp." + std::to_string(::getpid()) + "." +
             path.filename().string());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return fail("cannot create temp for");
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::error_code ignore;
      fs::remove(tmp, ignore);
      return fail("cannot write");
    }
    off += static_cast<std::size_t>(n);
  }
  // Data blocks first, then the rename, then the directory entry: after
  // the final sync the new name durably refers to complete content.
  if (!sync_fd(fd)) {
    ::close(fd);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return fail("cannot sync");
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    if (error != nullptr) {
      *error = "cannot publish " + path.string() + ": " + ec.message();
    }
    return false;
  }
  if (!sync_dir(dir)) return fail("cannot sync directory of");
  return true;
}

void move_file(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  if (!g_force_copy.load(std::memory_order_relaxed)) {
    fs::rename(from, to, ec);
    if (!ec) return;
    // EXDEV is the expected reason to fall through; for anything else
    // (source missing, destination dir absent) the copy below fails with
    // the same diagnosis, so no need to special-case here.
  }

  // Copy to a temp name *in the destination directory*, then rename into
  // place: the destination name never exposes a partial file, and the
  // final rename is same-directory so it cannot hit EXDEV itself.
  const fs::path tmp =
      to.parent_path() /
      (".move-tmp." + std::to_string(::getpid()) + "." + to.filename().string());
  fs::copy_file(from, tmp, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw_move_error(from, to, ec);
  }
  fs::rename(tmp, to, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw_move_error(from, to, ec);
  }
  fs::remove(from, ec);
  if (ec) {
    // The destination is complete; a source that cannot be removed would
    // be re-claimed by the spool scan forever, so it is still an error.
    throw_move_error(from, to, ec);
  }
}

}  // namespace distapx::fsutil
