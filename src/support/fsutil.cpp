#include "support/fsutil.hpp"

#include <unistd.h>

#include <atomic>
#include <string>
#include <system_error>

namespace distapx::fsutil {

namespace fs = std::filesystem;

namespace {

std::atomic<bool> g_force_copy{false};

[[noreturn]] void throw_move_error(const fs::path& from, const fs::path& to,
                                   const std::error_code& ec) {
  throw fs::filesystem_error("cannot move file", from, to, ec);
}

}  // namespace

void set_force_copy_move_for_testing(bool force) noexcept {
  g_force_copy.store(force, std::memory_order_relaxed);
}

void move_file(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  if (!g_force_copy.load(std::memory_order_relaxed)) {
    fs::rename(from, to, ec);
    if (!ec) return;
    // EXDEV is the expected reason to fall through; for anything else
    // (source missing, destination dir absent) the copy below fails with
    // the same diagnosis, so no need to special-case here.
  }

  // Copy to a temp name *in the destination directory*, then rename into
  // place: the destination name never exposes a partial file, and the
  // final rename is same-directory so it cannot hit EXDEV itself.
  const fs::path tmp =
      to.parent_path() /
      (".move-tmp." + std::to_string(::getpid()) + "." + to.filename().string());
  fs::copy_file(from, tmp, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw_move_error(from, to, ec);
  }
  fs::rename(tmp, to, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw_move_error(from, to, ec);
  }
  fs::remove(from, ec);
  if (ec) {
    // The destination is complete; a source that cannot be removed would
    // be re-claimed by the spool scan forever, so it is still an error.
    throw_move_error(from, to, ec);
  }
}

}  // namespace distapx::fsutil
