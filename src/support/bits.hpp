// Bit-width bookkeeping for CONGEST message accounting.
//
// The CONGEST model caps each edge at O(log n) bits per round. Algorithms
// declare the width of every field they send; these helpers compute the
// minimal widths for the value ranges actually used.
#pragma once

#include <bit>
#include <cstdint>

namespace distapx {

/// Bits needed to represent any value in [0, v] (at least 1).
constexpr int bits_for_value(std::uint64_t v) noexcept {
  return v == 0 ? 1 : std::bit_width(v);
}

/// Bits needed to represent any of `count` distinct values (e.g. node IDs
/// in a graph of `count` nodes). At least 1.
constexpr int bits_for_count(std::uint64_t count) noexcept {
  return count <= 1 ? 1 : std::bit_width(count - 1);
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : std::bit_width(x - 1);
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : std::bit_width(x) - 1;
}

/// Iterated logarithm base 2 (number of times log2 must be applied to reach
/// a value <= 1). log_star(1)=0, log_star(2)=1, log_star(16)=3, ...
constexpr int log_star(double x) noexcept {
  int it = 0;
  while (x > 1.0) {
    // Manual log2 via bit_width on the integer part; precise enough for the
    // integral arguments used in round-bound formulas.
    const auto xi = static_cast<std::uint64_t>(x);
    x = xi >= 2 ? static_cast<double>(std::bit_width(xi) - 1) : 0.0;
    ++it;
  }
  return it;
}

}  // namespace distapx
