// Stable 128-bit content fingerprinting.
//
// The result cache (service/result_cache.hpp) addresses entries by a
// fingerprint of the run's full input description — canonical generator
// spec, algorithm id, seed, engine version — so the hash must be a pure
// function of the fed values: independent of platform, endianness,
// standard library, pointer layout, and process. std::hash offers none of
// those guarantees, so this module defines its own construction on top of
// the SplitMix64 finalizer (support/random.hpp uses the same mix).
//
// The construction is two parallel 64-bit lanes, each absorbing every
// 64-bit word through mix(state ^ word) with lane-distinct round
// constants. Strings are length-prefixed and packed into little-endian
// words, so "ab" + "c" and "a" + "bc" fingerprint differently. This is a
// non-cryptographic hash: collisions are astronomically unlikely for the
// cache's workload (< 2^-64 per pair), but nothing here resists an
// adversary crafting inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace distapx {

/// A 128-bit digest, comparable and hex-printable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, hi word first ("00ab...").
  [[nodiscard]] std::string hex() const;

  /// Inverse of hex(): exactly 32 hex digits (either case), or nullopt.
  /// The cache manager uses this to recover a key from an entry path.
  static std::optional<Fingerprint> from_hex(std::string_view s);
};

/// Streaming fingerprint accumulator. Feed order matters; every add_*
/// call, including the type tag implicit in its width handling, is part of
/// the digested content.
class Fingerprinter {
 public:
  Fingerprinter& add_u64(std::uint64_t v) noexcept;
  Fingerprinter& add_i64(std::int64_t v) noexcept;
  Fingerprinter& add_u32(std::uint32_t v) noexcept;
  Fingerprinter& add_bool(bool v) noexcept;
  /// Bit pattern of the double (so 0.25 and 0.250000001 differ, and the
  /// digest never depends on decimal formatting).
  Fingerprinter& add_double(double v) noexcept;
  /// Length-prefixed; bytes packed little-endian into 64-bit words.
  Fingerprinter& add_string(std::string_view s) noexcept;

  [[nodiscard]] Fingerprint digest() const noexcept;

 private:
  std::uint64_t hi_ = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractions
  std::uint64_t lo_ = 0xbb67ae8584caa73bULL;
  std::uint64_t words_ = 0;  ///< absorbed word count, folded into digest()
};

/// One-shot convenience for raw bytes.
Fingerprint fingerprint_bytes(const void* data, std::size_t size) noexcept;

}  // namespace distapx
