// File-descriptor plumbing shared by the networking layer (src/net/).
//
// The socket tier deals in raw POSIX fds: listening sockets, accepted
// connections, and the self-pipe that wakes the server's poll loop from
// signal handlers and worker threads. These helpers pin down the three
// things every call site would otherwise re-implement slightly
// differently: RAII ownership (Fd), EINTR-safe full writes that never
// raise SIGPIPE (write_fully uses send(MSG_NOSIGNAL) on sockets), and the
// self-pipe trick (Pipe::poke is async-signal-safe).
#pragma once

#include <sys/types.h>

#include <cstddef>

namespace distapx::fdio {

/// Move-only owner of one POSIX fd; closes on destruction (EINTR on
/// close(2) is ignored — POSIX leaves the fd state unspecified and
/// retrying can close a recycled descriptor).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on; returns false on fcntl failure (errno is left set).
bool set_nonblocking(int fd) noexcept;

/// Writes the whole buffer to a *blocking* fd, retrying on EINTR and
/// short writes. Sockets are written with send(MSG_NOSIGNAL) so a peer
/// that hung up yields EPIPE instead of killing the process. Returns
/// false on error (errno is left set).
bool write_fully(int fd, const void* data, std::size_t n) noexcept;

/// One read(2), retried on EINTR only. Returns the byte count, 0 on EOF,
/// -1 on error (including EAGAIN on nonblocking fds; errno distinguishes).
ssize_t read_some(int fd, void* buf, std::size_t n) noexcept;

/// Self-pipe for waking a poll loop: both ends nonblocking and
/// close-on-exec. poke() is async-signal-safe (one write(2), full-pipe
/// overflow deliberately ignored — the wakeup is already pending);
/// drain() empties the read end.
class Pipe {
 public:
  /// Throws std::runtime_error if pipe2 fails.
  Pipe();

  [[nodiscard]] int read_fd() const noexcept { return read_.get(); }
  void poke() noexcept;
  void drain() noexcept;

 private:
  Fd read_;
  Fd write_;
};

}  // namespace distapx::fdio
