#include "support/random.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace distapx {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  std::uint64_t h = splitmix64(state);
  state ^= b;
  return h ^ splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  return Rng(hash_combine(s_[0] ^ s_[2], stream_id));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  DISTAPX_ASSERT(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  DISTAPX_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  DISTAPX_ENSURE(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace distapx
