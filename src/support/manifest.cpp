#include "support/manifest.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace distapx {

namespace fs = std::filesystem;

namespace {

std::string format_line(const ManifestRecord& record) {
  std::string line = record.tag;
  for (const std::string& f : record.fields) {
    line += ' ';
    line += f;
  }
  line += '\n';
  return line;
}

}  // namespace

std::vector<ManifestRecord> read_manifest(const std::string& path) {
  std::vector<ManifestRecord> records;
  std::ifstream is(path);
  if (!is) return records;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream tokens(line);
    ManifestRecord record;
    if (!(tokens >> record.tag)) continue;  // blank or torn line: skip
    std::string field;
    while (tokens >> field) record.fields.push_back(std::move(field));
    records.push_back(std::move(record));
  }
  return records;
}

bool append_manifest(const std::string& path,
                     const std::vector<ManifestRecord>& records) {
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  // One buffered write per call keeps whole lines contiguous; O_APPEND
  // (ios::app) makes each underlying write land at the live end of file
  // even with concurrent appenders.
  std::string buf;
  for (const ManifestRecord& r : records) buf += format_line(r);
  os << buf;
  os.flush();
  return static_cast<bool>(os);
}

bool compact_manifest(const std::string& path,
                      const std::vector<ManifestRecord>& records) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    for (const ManifestRecord& r : records) os << format_line(r);
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace distapx
