#include "support/manifest.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/log.hpp"

namespace distapx {

namespace fs = std::filesystem;

std::string format_manifest_line(const ManifestRecord& record) {
  std::string line = record.tag;
  for (const std::string& f : record.fields) {
    line += ' ';
    line += f;
  }
  line += '\n';
  return line;
}

std::optional<ManifestRecord> parse_manifest_line(std::string_view line) {
  std::istringstream tokens{std::string(line)};
  ManifestRecord record;
  if (!(tokens >> record.tag)) return std::nullopt;  // blank or torn line
  std::string field;
  while (tokens >> field) record.fields.push_back(std::move(field));
  return record;
}

std::vector<ManifestRecord> read_manifest(const std::string& path) {
  std::vector<ManifestRecord> records;
  std::ifstream is(path);
  if (!is) return records;
  std::string line;
  while (std::getline(is, line)) {
    if (auto record = parse_manifest_line(line)) {
      records.push_back(std::move(*record));
    }
  }
  return records;
}

bool append_manifest(const std::string& path,
                     const std::vector<ManifestRecord>& records) {
  std::ofstream os(path, std::ios::app);
  bool ok = static_cast<bool>(os);
  if (ok) {
    // One buffered write per call keeps whole lines contiguous; O_APPEND
    // (ios::app) makes each underlying write land at the live end of file
    // even with concurrent appenders.
    std::string buf;
    for (const ManifestRecord& r : records) buf += format_manifest_line(r);
    os << buf;
    os.flush();
    ok = static_cast<bool>(os);
  }
  if (!ok) {
    // Advisory data, but a journal that stops persisting is a disk-full /
    // permissions fault the operator must hear about. logx rate-limits
    // per event name, so a hot loop cannot flood the log.
    logx::warn("manifest_append_failed",
               {{"path", path}, {"records", records.size()}});
  }
  return ok;
}

bool compact_manifest(const std::string& path,
                      const std::vector<ManifestRecord>& records) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    for (const ManifestRecord& r : records) os << format_manifest_line(r);
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace distapx
