// Strict whole-token number parsing.
//
// The generator-spec and job-file parsers both need "this token is a
// number, entirely, or it is an error" — std::stoul/strtod prefix
// semantics silently accept "12x". These helpers return std::nullopt on
// anything but a fully-consumed, in-range, finite value; callers shape the
// error message (SpecError, JobError, usage_error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace distapx {

/// Non-negative integer; the whole token must be digits and the value at
/// most `max_value`.
std::optional<std::uint64_t> parse_uint_strict(const std::string& token,
                                               std::uint64_t max_value);

/// Finite double in plain decimal notation. The whole token must parse;
/// "inf"/"nan" (every caller feeds the value into arithmetic that assumes
/// finiteness), hex floats ("0x1p3"), values that overflow to infinity
/// ("1e999"), and leading/trailing whitespace are all rejected — strtod
/// alone accepts several of those.
std::optional<double> parse_double_strict(const std::string& token);

/// Byte size with an optional binary suffix: "4096", "64k", "8M", "2g"
/// (k/m/g are case-insensitive powers of 1024). Rejects anything else,
/// including fractional sizes and values that overflow uint64 after
/// scaling. Used by the --cache-budget flags and the cache subcommand.
std::optional<std::uint64_t> parse_size_bytes(const std::string& token);

}  // namespace distapx
