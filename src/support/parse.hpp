// Strict whole-token number parsing.
//
// The generator-spec and job-file parsers both need "this token is a
// number, entirely, or it is an error" — std::stoul/strtod prefix
// semantics silently accept "12x". These helpers return std::nullopt on
// anything but a fully-consumed, in-range, finite value; callers shape the
// error message (SpecError, JobError, usage_error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace distapx {

/// Non-negative integer; the whole token must be digits and the value at
/// most `max_value`.
std::optional<std::uint64_t> parse_uint_strict(const std::string& token,
                                               std::uint64_t max_value);

/// Finite double; the whole token must parse ("inf"/"nan" are rejected —
/// every caller feeds the value into arithmetic that assumes finiteness).
std::optional<double> parse_double_strict(const std::string& token);

}  // namespace distapx
