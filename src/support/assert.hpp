// Always-on invariant checking.
//
// distapx is a correctness-first research library: algorithm invariants are
// enforced in release builds too. DISTAPX_ENSURE throws (it reports a
// violated precondition or invariant the caller can catch in tests);
// DISTAPX_ASSERT compiles away in NDEBUG builds and guards internal
// consistency checks that are too hot to keep in release mode.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace distapx {

/// Thrown when a DISTAPX_ENSURE condition fails.
class EnsureError final : public std::logic_error {
 public:
  explicit EnsureError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void ensure_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "ENSURE failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw EnsureError(os.str());
}
}  // namespace detail

}  // namespace distapx

#define DISTAPX_ENSURE(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::distapx::detail::ensure_fail(#cond, __FILE__, __LINE__, {});       \
  } while (0)

#define DISTAPX_ENSURE_MSG(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream distapx_os_;                                      \
      distapx_os_ << msg;                                                  \
      ::distapx::detail::ensure_fail(#cond, __FILE__, __LINE__,            \
                                     distapx_os_.str());                   \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define DISTAPX_ASSERT(cond) ((void)0)
#else
#define DISTAPX_ASSERT(cond) DISTAPX_ENSURE(cond)
#endif
