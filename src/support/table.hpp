// Console table / CSV rendering for the benchmark harness.
//
// Benches print the same rows/series the paper's Table 1 reports; Table
// keeps formatting concerns out of the experiment code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace distapx {

/// Column-aligned console table that can also dump itself as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `prec` significant decimals.
  static std::string fmt(double v, int prec = 3);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// JSON array of objects keyed by the headers. Cells that parse as plain
  /// numbers are emitted as JSON numbers, everything else as strings.
  void write_json(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace distapx
