// In-process metrics registry: the one place every subsystem's counters,
// gauges, and latency histograms live, and the one snapshot every stats
// surface renders from.
//
// Before this layer each tier invented its own stats struct (socket-server
// counters, daemon report fields, cache hit atomics) and the numbers could
// disagree between surfaces. Now the flow is: subsystems bump named
// metrics in a Registry (lock-free atomics on the hot path; a mutex only
// on first registration of a name), and every consumer — the STATS frame,
// the CLI's final counter print, the HTTP /metrics endpoint, the typed
// SocketServerStats/CacheStats views — reads one Snapshot, so the socket
// API and the admin endpoint can never tell different stories.
//
// Concurrency model: metric handles returned by counter()/gauge()/
// histogram() are stable for the Registry's lifetime (node-based storage;
// registration never moves an existing metric). All updates and reads are
// relaxed atomics — these are independent monotone counters and samples,
// never used to synchronize anything — so updates from any number of
// threads and snapshot() from any other thread are race-free under TSan.
// A snapshot is per-metric atomic, not cross-metric consistent: two
// counters read microseconds apart may straddle an update. That skew is
// inherent to live scraping and harmless for monotone series.
//
// Naming: metric names are plain identifiers, optionally with one
// Prometheus-style label suffix baked into the name ("run_latency_ms" or
// "run_latency_ms{algo=\"luby\"}"). Counters end in _total by convention.
// render_prometheus() prefixes everything with "distapx_" and groups
// same-base labeled series under one # TYPE header. Metric names are a
// stable interface (dashboards and CI assert on them): renames follow the
// same discipline as kEngineVersion bumps — documented in the README
// inventory, never silent.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace distapx::metrics {

/// Monotone event counter. inc() returns the post-increment value, so a
/// caller can use the counter itself as a sequence source (the socket
/// server derives submit numbers this way) instead of keeping a shadow.
class Counter {
 public:
  std::uint64_t inc(std::uint64_t by = 1) noexcept {
    return v_.fetch_add(by, std::memory_order_relaxed) + by;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, open connections, drain state).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Gauge for values that are fractional by nature (CPU seconds). Kept
/// separate from Gauge so integer series stay exact in every renderer.
class FloatGauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// A histogram's state at one instant. `counts[i]` is the number of
/// observations in bucket i (NOT cumulative): bucket i < bounds.size()
/// holds observations v <= bounds[i] (and > bounds[i-1]); the final
/// element is the overflow (+Inf) bucket. `count` is the sum of counts —
/// always self-consistent with the buckets, even when the snapshot raced
/// concurrent observes.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0;

  /// Bucket-interpolated quantile, q in [0, 1]: find the bucket holding
  /// the rank-q observation and interpolate linearly inside it (the first
  /// bucket interpolates from 0, the overflow bucket pins to the last
  /// bound — an unbounded tail has no upper edge to interpolate toward).
  /// Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-bucket histogram. Buckets are chosen at registration and never
/// change; observe() is three relaxed atomic adds plus a branch-free-ish
/// upper_bound over ~20 doubles.
///
/// Besides the cumulative counts, each histogram keeps a rotating pair of
/// sampling windows (~60s each) so readers can report "recent" quantiles
/// — p95 over the last minute or two — next to the all-time ones. The
/// hot path only bumps the active window's bucket; rotation happens
/// lazily inside recent(), never on observe(). Prometheus rendering is
/// cumulative-only and unaffected.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an overflow bucket is added
  /// implicitly.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Merged view of the two sampling windows: everything observed within
  /// roughly the last one to two window lengths. `now_seconds` is any
  /// monotone clock in seconds (the registry feeds steady_clock; tests
  /// pass synthetic time). Rotates windows as a side effect — a window
  /// older than one length is retired, older than two is discarded. The
  /// returned snapshot has sum == 0 (windows track counts only; quantile
  /// interpolation never reads sum).
  [[nodiscard]] HistogramSnapshot recent(double now_seconds) const;

  /// Window length in seconds (fixed; exposed for tests and docs).
  [[nodiscard]] double window_seconds() const noexcept {
    return window_len_;
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0};

  // Two windows of bounds_.size()+1 buckets each, stored back to back;
  // active_ indexes which half observe() bumps. rotate_mu_ serializes
  // rotation decisions (readers only — the hot path never takes it).
  mutable std::vector<std::atomic<std::uint64_t>> wincounts_;
  mutable std::atomic<std::uint32_t> active_{0};
  double window_len_ = 60.0;
  mutable std::mutex rotate_mu_;
  mutable double window_start_ = 0;  ///< guarded by rotate_mu_
  mutable bool window_started_ = false;
};

/// Default latency ladder in milliseconds: 10µs to 10s, roughly 2.5x per
/// step. Covers a cache hit (~tens of µs) through a long sweep (seconds)
/// with enough resolution for p50/p95/p99 interpolation.
const std::vector<double>& default_latency_buckets_ms();

/// One registry's state at one instant; everything is sorted by name.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
  };
  struct FloatSample {
    std::string name;
    double value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot hist;
    HistogramSnapshot recent;  ///< rotating-window view at snapshot time
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<FloatSample> floats;
  std::vector<HistogramSample> histograms;

  /// Value of a counter/gauge by exact name; `fallback` when absent (a
  /// series that has never been bumped may not exist yet).
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t gauge_or(std::string_view name,
                                      std::int64_t fallback = 0) const;
  [[nodiscard]] double float_or(std::string_view name,
                                double fallback = 0) const;
  /// Null when absent.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
};

/// Named-metric registry. Each serving process owns one and threads it
/// through its components (socket server -> cache -> batch server), so
/// every counter in that process lands in the same /metrics page; tests
/// construct private registries per fixture.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under `name`, creating it on first
  /// use. The returned reference is stable for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  FloatGauge& float_gauge(std::string_view name);
  /// Re-registering an existing histogram name returns the existing
  /// instance; its buckets are fixed by the first registration.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds);

  /// Hook invoked at the start of every snapshot(), before any lock is
  /// held — the place to refresh sampled gauges (rusage, fd counts) so
  /// each scrape sees current values. The hook must only touch metric
  /// handles it already resolved; registering new names from inside it
  /// deadlocks. One hook per registry; setting replaces.
  void set_refresh_hook(std::function<void()> hook);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<FloatGauge>, std::less<>> floats_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  mutable std::mutex hook_mu_;  ///< guards refresh_hook_ set vs. call
  std::function<void()> refresh_hook_;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: one # TYPE
/// header per metric base name (label variants grouped), cumulative
/// _bucket/_sum/_count series per histogram, `prefix` prepended to every
/// name.
std::string render_prometheus(const Snapshot& snap,
                              std::string_view prefix = "distapx_");

}  // namespace distapx::metrics
