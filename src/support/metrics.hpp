// In-process metrics registry: the one place every subsystem's counters,
// gauges, and latency histograms live, and the one snapshot every stats
// surface renders from.
//
// Before this layer each tier invented its own stats struct (socket-server
// counters, daemon report fields, cache hit atomics) and the numbers could
// disagree between surfaces. Now the flow is: subsystems bump named
// metrics in a Registry (lock-free atomics on the hot path; a mutex only
// on first registration of a name), and every consumer — the STATS frame,
// the CLI's final counter print, the HTTP /metrics endpoint, the typed
// SocketServerStats/CacheStats views — reads one Snapshot, so the socket
// API and the admin endpoint can never tell different stories.
//
// Concurrency model: metric handles returned by counter()/gauge()/
// histogram() are stable for the Registry's lifetime (node-based storage;
// registration never moves an existing metric). All updates and reads are
// relaxed atomics — these are independent monotone counters and samples,
// never used to synchronize anything — so updates from any number of
// threads and snapshot() from any other thread are race-free under TSan.
// A snapshot is per-metric atomic, not cross-metric consistent: two
// counters read microseconds apart may straddle an update. That skew is
// inherent to live scraping and harmless for monotone series.
//
// Naming: metric names are plain identifiers, optionally with one
// Prometheus-style label suffix baked into the name ("run_latency_ms" or
// "run_latency_ms{algo=\"luby\"}"). Counters end in _total by convention.
// render_prometheus() prefixes everything with "distapx_" and groups
// same-base labeled series under one # TYPE header. Metric names are a
// stable interface (dashboards and CI assert on them): renames follow the
// same discipline as kEngineVersion bumps — documented in the README
// inventory, never silent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace distapx::metrics {

/// Monotone event counter. inc() returns the post-increment value, so a
/// caller can use the counter itself as a sequence source (the socket
/// server derives submit numbers this way) instead of keeping a shadow.
class Counter {
 public:
  std::uint64_t inc(std::uint64_t by = 1) noexcept {
    return v_.fetch_add(by, std::memory_order_relaxed) + by;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, open connections, drain state).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A histogram's state at one instant. `counts[i]` is the number of
/// observations in bucket i (NOT cumulative): bucket i < bounds.size()
/// holds observations v <= bounds[i] (and > bounds[i-1]); the final
/// element is the overflow (+Inf) bucket. `count` is the sum of counts —
/// always self-consistent with the buckets, even when the snapshot raced
/// concurrent observes.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0;

  /// Bucket-interpolated quantile, q in [0, 1]: find the bucket holding
  /// the rank-q observation and interpolate linearly inside it (the first
  /// bucket interpolates from 0, the overflow bucket pins to the last
  /// bound — an unbounded tail has no upper edge to interpolate toward).
  /// Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-bucket histogram. Buckets are chosen at registration and never
/// change; observe() is two relaxed atomic adds plus a branch-free-ish
/// upper_bound over ~20 doubles.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an overflow bucket is added
  /// implicitly.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0};
};

/// Default latency ladder in milliseconds: 10µs to 10s, roughly 2.5x per
/// step. Covers a cache hit (~tens of µs) through a long sweep (seconds)
/// with enough resolution for p50/p95/p99 interpolation.
const std::vector<double>& default_latency_buckets_ms();

/// One registry's state at one instant; everything is sorted by name.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter/gauge by exact name; `fallback` when absent (a
  /// series that has never been bumped may not exist yet).
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t gauge_or(std::string_view name,
                                      std::int64_t fallback = 0) const;
  /// Null when absent.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
};

/// Named-metric registry. Each serving process owns one and threads it
/// through its components (socket server -> cache -> batch server), so
/// every counter in that process lands in the same /metrics page; tests
/// construct private registries per fixture.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under `name`, creating it on first
  /// use. The returned reference is stable for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Re-registering an existing histogram name returns the existing
  /// instance; its buckets are fixed by the first registration.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: one # TYPE
/// header per metric base name (label variants grouped), cumulative
/// _bucket/_sum/_count series per histogram, `prefix` prepended to every
/// name.
std::string render_prometheus(const Snapshot& snap,
                              std::string_view prefix = "distapx_");

}  // namespace distapx::metrics
