#include "support/trace.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace distapx::trace {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t ns_between(SteadyClock::time_point a,
                         SteadyClock::time_point b) noexcept {
  return b > a ? static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                         .count())
               : 0;
}

std::uint64_t wall_unix_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool env_disables_tracing() noexcept {
  const char* v = std::getenv("DISTAPX_TRACE");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0;
}

std::atomic<bool>& enabled_flag() noexcept {
  // First use reads the environment once; set_enabled overrides later.
  static std::atomic<bool> flag{!env_disables_tracing()};
  return flag;
}

thread_local Context g_context;

// ---- little-endian scalar packing (encoding only; never on the wire
// protocol — slots live in process memory, but a fixed byte order keeps
// encode/decode trivially symmetric) ---------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

bool get_u64(std::string_view& in, std::uint64_t& v) noexcept {
  if (in.size() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  in.remove_prefix(8);
  return true;
}

bool get_u32(std::string_view& in, std::uint32_t& v) noexcept {
  if (in.size() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  in.remove_prefix(4);
  return true;
}

bool get_u16(std::string_view& in, std::uint16_t& v) noexcept {
  if (in.size() < 2) return false;
  v = static_cast<std::uint16_t>(
      static_cast<unsigned char>(in[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(in[1])) << 8));
  in.remove_prefix(2);
  return true;
}

bool get_string(std::string_view& in, std::string& out) noexcept {
  std::uint16_t len = 0;
  if (!get_u16(in, len)) return false;
  if (in.size() < len) return false;
  out.assign(in.substr(0, len));
  in.remove_prefix(len);
  return true;
}

void put_string(std::string& out, std::string_view s) {
  const std::size_t len = std::min<std::size_t>(s.size(), 0xffff);
  put_u16(out, static_cast<std::uint16_t>(len));
  out.append(s.substr(0, len));
}

/// Bytes one span costs in the encoding (u32 parent + 2 u64 times + two
/// length-prefixed strings).
std::size_t span_encoded_size(const Span& s) noexcept {
  return 4 + 8 + 8 + 2 + std::min<std::size_t>(s.name.size(), 0xffff) + 2 +
         std::min<std::size_t>(s.notes.size(), 0xffff);
}

std::string iso_utc(std::uint64_t unix_ms) {
  const time_t secs = static_cast<time_t>(unix_ms / 1000);
  struct tm tm_utc;
  ::gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---- Collector -----------------------------------------------------------

Collector::Collector(std::uint64_t id, std::string endpoint)
    : id_(id), endpoint_(std::move(endpoint)), t0_(SteadyClock::now()) {
  trace_.id = id_;
  trace_.endpoint = endpoint_;
  trace_.start_unix_ms = wall_unix_ms();
}

std::uint32_t Collector::begin(std::string_view name, std::uint32_t parent) {
  const std::uint64_t start = ns_between(t0_, SteadyClock::now());
  const std::lock_guard<std::mutex> lock(mu_);
  if (trace_.spans.size() >= kMaxSpansPerTrace) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.id = static_cast<std::uint32_t>(trace_.spans.size() + 1);
  s.parent = parent;
  s.name = name;
  s.start_ns = start;
  trace_.spans.push_back(std::move(s));
  return trace_.spans.back().id;
}

void Collector::end(std::uint32_t span) noexcept {
  if (span == 0) return;
  const std::uint64_t now = ns_between(t0_, SteadyClock::now());
  const std::lock_guard<std::mutex> lock(mu_);
  if (span <= trace_.spans.size()) trace_.spans[span - 1].end_ns = now;
}

void Collector::annotate(std::uint32_t span, std::string_view key,
                         std::string_view value) {
  if (span == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (span > trace_.spans.size()) return;
  std::string& notes = trace_.spans[span - 1].notes;
  if (!notes.empty()) notes += ' ';
  notes.append(key);
  notes += '=';
  notes.append(value);
}

void Collector::annotate(std::uint32_t span, std::string_view key,
                         std::uint64_t value) {
  annotate(span, key, std::to_string(value));
}

std::uint64_t Collector::elapsed_ns() const noexcept {
  return ns_between(t0_, SteadyClock::now());
}

Trace Collector::snapshot() const {
  const std::uint64_t now = ns_between(t0_, SteadyClock::now());
  const std::lock_guard<std::mutex> lock(mu_);
  Trace t = trace_;
  t.duration_ns = now;
  t.dropped_spans = dropped_;
  return t;
}

Trace Collector::finish() {
  const std::uint64_t now = ns_between(t0_, SteadyClock::now());
  const std::lock_guard<std::mutex> lock(mu_);
  for (Span& s : trace_.spans) {
    if (s.end_ns == 0) s.end_ns = now;
  }
  trace_.duration_ns = now;
  trace_.dropped_spans = dropped_;
  return std::move(trace_);
}

// ---- thread-local context ------------------------------------------------

Context current() noexcept { return g_context; }

ContextGuard::ContextGuard(Context ctx) noexcept : prev_(g_context) {
  g_context = ctx;
}

ContextGuard::~ContextGuard() { g_context = prev_; }

ScopedSpan::ScopedSpan(std::string_view name) noexcept
    : collector_(g_context.collector), prev_(g_context) {
  if (collector_ == nullptr) return;
  span_ = collector_->begin(name, g_context.parent);
  if (span_ != 0) g_context = Context{collector_, span_};
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr) return;
  collector_->end(span_);
  g_context = prev_;
}

void ScopedSpan::annotate(std::string_view key, std::string_view value) {
  if (collector_ != nullptr) collector_->annotate(span_, key, value);
}

void ScopedSpan::annotate(std::string_view key, std::uint64_t value) {
  annotate(key, std::to_string(value));
}

void annotate_current(std::string_view key, std::string_view value) {
  if (g_context.collector != nullptr && g_context.parent != 0) {
    g_context.collector->annotate(g_context.parent, key, value);
  }
}

void annotate_current(std::string_view key, std::uint64_t value) {
  annotate_current(key, std::to_string(value));
}

// ---- encoding ------------------------------------------------------------

std::string encode_trace(const Trace& t, std::uint64_t stamp,
                         std::size_t max_bytes) {
  std::string out;
  out.reserve(std::min<std::size_t>(max_bytes, 4096));
  put_u64(out, stamp);
  put_u64(out, t.id);
  put_u64(out, t.start_unix_ms);
  put_u64(out, t.duration_ns);
  put_string(out, t.endpoint);
  // Span count and the dropped tally are patched after the cut is known.
  const std::size_t count_pos = out.size();
  put_u32(out, 0);  // encoded span count
  put_u32(out, 0);  // dropped spans (collector drops + encoding cut)
  std::uint32_t encoded = 0;
  for (const Span& s : t.spans) {
    if (out.size() + span_encoded_size(s) > max_bytes) break;
    put_u32(out, s.parent);
    put_u64(out, s.start_ns);
    put_u64(out, s.end_ns);
    put_string(out, s.name);
    put_string(out, s.notes);
    ++encoded;
  }
  const std::uint32_t dropped =
      t.dropped_spans +
      static_cast<std::uint32_t>(t.spans.size() - encoded);
  std::string patch;
  put_u32(patch, encoded);
  put_u32(patch, dropped);
  out.replace(count_pos, patch.size(), patch);
  return out;
}

bool decode_trace(std::string_view bytes, Trace& out,
                  std::uint64_t* stamp_out) {
  std::string_view in = bytes;
  std::uint64_t stamp = 0;
  Trace t;
  std::uint32_t count = 0;
  if (!get_u64(in, stamp) || !get_u64(in, t.id) ||
      !get_u64(in, t.start_unix_ms) || !get_u64(in, t.duration_ns) ||
      !get_string(in, t.endpoint) || !get_u32(in, count) ||
      !get_u32(in, t.dropped_spans)) {
    return false;
  }
  if (count > kMaxSpansPerTrace) return false;
  t.spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Span s;
    s.id = i + 1;
    if (!get_u32(in, s.parent) || !get_u64(in, s.start_ns) ||
        !get_u64(in, s.end_ns) || !get_string(in, s.name) ||
        !get_string(in, s.notes)) {
      return false;
    }
    if (s.parent > count) return false;
    t.spans.push_back(std::move(s));
  }
  out = std::move(t);
  if (stamp_out != nullptr) *stamp_out = stamp;
  return true;
}

// ---- TraceSink -----------------------------------------------------------

TraceSink::TraceSink(SinkOptions opts) : opts_(opts) {
  if (opts_.recent_slots == 0) opts_.recent_slots = 1;
  if (opts_.slot_bytes < 256) opts_.slot_bytes = 256;
  // One leading word carries the encoded byte length.
  words_per_slot_ = 1 + (opts_.slot_bytes + 7) / 8;
  ring_ = std::vector<Slot>(opts_.recent_slots);
  for (Slot& s : ring_) {
    s.words =
        std::make_unique<std::atomic<std::uint64_t>[]>(words_per_slot_);
  }
}

void TraceSink::write_slot(Slot& slot, const std::string& encoded) const {
  // Claim the stamp: CAS even -> odd. A concurrent writer on this very
  // slot (only possible after lapping the whole ring mid-write, or in the
  // slowest-K tables where the writer mutex already prevents it) makes us
  // spin briefly instead of interleaving stores.
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot.seq.compare_exchange_weak(seq, seq + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      break;
    }
    if (seq & 1) seq = slot.seq.load(std::memory_order_relaxed);
  }
  // The acquire half of the CAS keeps these stores from hoisting above
  // the odd stamp; the release store below keeps them from sinking past
  // the even one. Readers reject any copy whose two stamp loads disagree.
  slot.words[0].store(static_cast<std::uint64_t>(encoded.size()),
                      std::memory_order_relaxed);
  std::size_t w = 1;
  for (std::size_t off = 0; off < encoded.size(); off += 8, ++w) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, encoded.size() - off);
    std::memcpy(&word, encoded.data() + off, n);
    slot.words[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
}

bool TraceSink::read_slot(const Slot& slot, std::string& out) const {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0) return false;  // never written
    if (s1 & 1) continue;       // writer mid-copy; retry
    const std::uint64_t len = slot.words[0].load(std::memory_order_relaxed);
    if (len > opts_.slot_bytes) return false;
    out.resize(len);
    std::size_t w = 1;
    for (std::size_t off = 0; off < len; off += 8, ++w) {
      const std::uint64_t word =
          slot.words[w].load(std::memory_order_relaxed);
      const std::size_t n = std::min<std::size_t>(8, len - off);
      std::memcpy(out.data() + off, &word, n);
    }
    // The copy is only good if no writer touched the slot in between:
    // loads above may not sink past this fence, and the stamp must match.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == s1) return true;
  }
  return false;  // persistently contended; skip this slot
}

TraceSink::SlowTable& TraceSink::table_for(const std::string& endpoint) {
  const std::lock_guard<std::mutex> lock(tables_mu_);
  auto it = tables_.find(endpoint);
  if (it == tables_.end()) {
    auto table = std::make_unique<SlowTable>();
    table->slots = std::vector<Slot>(opts_.slowest_per_endpoint);
    for (Slot& s : table->slots) {
      s.words =
          std::make_unique<std::atomic<std::uint64_t>[]>(words_per_slot_);
    }
    table->durations = std::make_unique<std::atomic<std::uint64_t>[]>(
        opts_.slowest_per_endpoint);
    it = tables_.emplace(endpoint, std::move(table)).first;
  }
  return *it->second;
}

void TraceSink::publish(const Trace& t) {
  const std::uint64_t stamp =
      published_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string encoded = encode_trace(t, stamp, opts_.slot_bytes);
  const std::uint64_t slot_index =
      head_.fetch_add(1, std::memory_order_relaxed) % ring_.size();
  write_slot(ring_[slot_index], encoded);

  if (opts_.slowest_per_endpoint == 0) return;
  SlowTable& table = table_for(t.endpoint);
  // Fast reject without the writer mutex: table full and this trace is no
  // slower than the slowest-K floor.
  if (table.filled.load(std::memory_order_relaxed) >=
          opts_.slowest_per_endpoint &&
      t.duration_ns <= table.floor.load(std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(table.writer_mu);
  std::size_t victim = 0;
  std::uint64_t victim_duration = ~std::uint64_t{0};
  for (std::size_t i = 0; i < table.slots.size(); ++i) {
    const std::uint64_t d =
        table.durations[i].load(std::memory_order_relaxed);
    if (d == 0) {  // empty slot wins outright
      victim = i;
      victim_duration = 0;
      break;
    }
    if (d < victim_duration) {
      victim = i;
      victim_duration = d;
    }
  }
  if (victim_duration != 0 && t.duration_ns <= victim_duration) return;
  write_slot(table.slots[victim], encoded);
  table.durations[victim].store(t.duration_ns == 0 ? 1 : t.duration_ns,
                                std::memory_order_relaxed);
  std::size_t filled = 0;
  std::uint64_t floor = ~std::uint64_t{0};
  for (std::size_t i = 0; i < table.slots.size(); ++i) {
    const std::uint64_t d =
        table.durations[i].load(std::memory_order_relaxed);
    if (d == 0) continue;
    ++filled;
    floor = std::min(floor, d);
  }
  table.filled.store(filled, std::memory_order_relaxed);
  table.floor.store(filled >= table.slots.size() ? floor : 0,
                    std::memory_order_relaxed);
}

std::vector<Trace> TraceSink::recent() const {
  std::vector<std::pair<std::uint64_t, Trace>> stamped;
  stamped.reserve(ring_.size());
  std::string bytes;
  for (const Slot& slot : ring_) {
    if (!read_slot(slot, bytes)) continue;
    Trace t;
    std::uint64_t stamp = 0;
    if (!decode_trace(bytes, t, &stamp)) continue;
    stamped.emplace_back(stamp, std::move(t));
  }
  std::sort(stamped.begin(), stamped.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Trace> out;
  out.reserve(stamped.size());
  for (auto& [stamp, t] : stamped) out.push_back(std::move(t));
  return out;
}

std::vector<std::pair<std::string, std::vector<Trace>>> TraceSink::slowest()
    const {
  std::vector<std::pair<std::string, const SlowTable*>> tables;
  {
    const std::lock_guard<std::mutex> lock(tables_mu_);
    tables.reserve(tables_.size());
    for (const auto& [name, table] : tables_) {
      tables.emplace_back(name, table.get());
    }
  }
  std::vector<std::pair<std::string, std::vector<Trace>>> out;
  std::string bytes;
  for (const auto& [name, table] : tables) {
    std::vector<Trace> traces;
    for (const Slot& slot : table->slots) {
      if (!read_slot(slot, bytes)) continue;
      Trace t;
      if (!decode_trace(bytes, t, nullptr)) continue;
      traces.push_back(std::move(t));
    }
    std::sort(traces.begin(), traces.end(), [](const Trace& a,
                                               const Trace& b) {
      return a.duration_ns != b.duration_ns ? a.duration_ns > b.duration_ns
                                            : a.id < b.id;
    });
    out.emplace_back(name, std::move(traces));
  }
  return out;
}

// ---- rendering -----------------------------------------------------------

std::string format_duration_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string render_trace_tree(const Trace& t) {
  std::string out = "trace " + std::to_string(t.id) +
                    " endpoint=" + t.endpoint +
                    " start=" + iso_utc(t.start_unix_ms) +
                    " duration=" + format_duration_ms(t.duration_ns) +
                    " spans=" + std::to_string(t.spans.size());
  if (t.dropped_spans != 0) {
    out += " dropped=" + std::to_string(t.dropped_spans);
  }
  out += '\n';
  // Children grouped by parent; within a parent, start order (ties by
  // id, which is start order at the collector).
  std::vector<std::vector<std::uint32_t>> children(t.spans.size() + 1);
  for (const Span& s : t.spans) {
    if (s.parent <= t.spans.size()) children[s.parent].push_back(s.id);
  }
  // The longest name per depth would be nicer, but a fixed pad keeps the
  // renderer single-pass; names are short by convention.
  const auto render = [&](auto&& self, std::uint32_t parent,
                          int depth) -> void {
    for (const std::uint32_t id : children[parent]) {
      const Span& s = t.spans[id - 1];
      out.append(static_cast<std::size_t>(2 * (depth + 1)), ' ');
      out += s.name;
      const std::size_t pad = s.name.size() < 16 ? 16 - s.name.size() : 1;
      out.append(pad, ' ');
      out += format_duration_ms(s.duration_ns(t.duration_ns));
      if (s.end_ns == 0) out += " (open)";
      if (!s.notes.empty()) {
        out += ' ';
        out += s.notes;
      }
      out += '\n';
      self(self, id, depth + 1);
    }
  };
  render(render, 0, 0);
  return out;
}

std::string flatten_spans(const Trace& t) {
  std::string out;
  for (const Span& s : t.spans) {
    if (s.parent != 0) continue;  // top level only
    if (!out.empty()) out += ' ';
    out += s.name;
    out += '=';
    out += format_duration_ms(s.duration_ns(t.duration_ns));
  }
  return out;
}

std::string render_tracez(const TraceSink& sink) {
  std::string out = "tracez: per-job span traces (text form)\n";
  out += "published_total " + std::to_string(sink.published_total()) + '\n';
  const std::vector<Trace> recent = sink.recent();
  out += "\n== recent traces (newest first, " +
         std::to_string(recent.size()) + " retained) ==\n";
  for (const Trace& t : recent) {
    out += '\n';
    out += render_trace_tree(t);
  }
  for (const auto& [endpoint, traces] : sink.slowest()) {
    out += "\n== slowest endpoint=" + endpoint + " (" +
           std::to_string(traces.size()) + " retained) ==\n";
    for (const Trace& t : traces) {
      out += '\n';
      out += render_trace_tree(t);
    }
  }
  return out;
}

}  // namespace distapx::trace
