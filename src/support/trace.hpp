// Per-job tracing: where one request's time actually went.
//
// The metrics registry (support/metrics.hpp) answers "how is the server
// doing in aggregate"; this subsystem answers "where did SUBMIT #42's
// 180ms go" — queue wait vs lane execution vs cache misses vs response
// flush. The model is deliberately small:
//
//   Span      one named, monotonic-clock interval inside a trace, with an
//             optional parent (tree structure) and free-form key=value
//             annotations ("algo=luby seed=3 outcome=hit").
//   Trace     all spans of one unit of served work — one SUBMIT on the
//             socket tier (trace id = submit_no), one spool file in the
//             daemon — plus its endpoint name and total duration.
//   Collector the per-job span builder the serving layers thread through
//             themselves (explicitly, or via the thread-local Context so
//             deep layers like ResultCache can annotate the span that is
//             currently open without signature changes).
//   TraceSink the server-wide retention buffer: a fixed-slot,
//             seqlock-stamped ring of the last N completed traces, plus a
//             "slowest K per endpoint" reservoir. GET /tracez renders
//             both; `submit --trace` echoes one trace before it is even
//             published.
//
// Cost model: tracing is always-on. When the runtime kill switch is off
// (DISTAPX_TRACE=off, or set_enabled(false)), the serving layers create
// no Collector and every ScopedSpan/annotate_current call is one
// thread-local load and a null check. When on, opening+closing a span is
// two steady_clock reads and one short uncontended mutex-protected append
// to the job's own Collector; publication into the sink happens once per
// *job* (not per span) and copies the encoded trace into a slot as
// relaxed atomic words under a seqlock stamp, so concurrent /tracez
// readers never lock writers out and never observe a torn trace —
// a reader that catches a slot mid-write simply retries or skips it.
//
// Nothing here participates in the determinism contract: traces carry
// wall-clock timings only and never touch RESULT payload bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace distapx::trace {

// ---- runtime kill switch -------------------------------------------------

/// Global gate the serving layers check before creating a Collector.
/// Initialized once from the environment: DISTAPX_TRACE=off|0|false
/// disables tracing at startup (the bench's baseline); anything else —
/// including the variable being unset — leaves it on.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// ---- the span/trace model ------------------------------------------------

/// One interval. Times are nanoseconds relative to the trace's start on
/// the same steady clock; end_ns == 0 marks a span that was still open
/// when the trace was snapshotted (rendered with a trailing "(open)").
struct Span {
  std::uint32_t id = 0;      ///< 1-based index into Trace::spans
  std::uint32_t parent = 0;  ///< 1-based parent id; 0 = top level
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::string notes;  ///< preformatted "k=v k2=v2" annotations

  [[nodiscard]] std::uint64_t duration_ns(
      std::uint64_t fallback_end = 0) const noexcept {
    const std::uint64_t end = end_ns != 0 ? end_ns : fallback_end;
    return end > start_ns ? end - start_ns : 0;
  }
};

/// One completed (or snapshotted) unit of work. Spans are in start order;
/// a child's parent always has a smaller id, so the tree renders in one
/// forward pass.
struct Trace {
  std::uint64_t id = 0;        ///< submit_no / spool sequence
  std::string endpoint;        ///< "submit", "spool", ...
  std::uint64_t start_unix_ms = 0;  ///< wall clock, display only
  std::uint64_t duration_ns = 0;    ///< trace start -> finish/snapshot
  std::uint32_t dropped_spans = 0;  ///< beyond kMaxSpansPerTrace or slot space
  std::vector<Span> spans;
};

/// Hard cap on spans one Collector retains (a 500-seed sweep would
/// otherwise grow a trace without bound); begin() past the cap counts
/// into dropped_spans and returns the no-op span id 0.
inline constexpr std::uint32_t kMaxSpansPerTrace = 512;

/// Builds one job's Trace. Thread-safe: the socket lane and every
/// BatchServer worker it fans out to append to the same Collector (one
/// short mutex hold per operation — span granularity is per algorithm
/// run, so contention is negligible next to the work being measured).
class Collector {
 public:
  Collector(std::uint64_t id, std::string endpoint);

  /// Opens a span; returns its 1-based id (0 when the cap is hit — every
  /// other member treats id 0 as a no-op, so callers never branch).
  std::uint32_t begin(std::string_view name, std::uint32_t parent = 0);
  void end(std::uint32_t span) noexcept;
  /// Appends "key=value" to the span's notes.
  void annotate(std::uint32_t span, std::string_view key,
                std::string_view value);
  void annotate(std::uint32_t span, std::string_view key, std::uint64_t value);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  /// Nanoseconds since the trace started (the collector's own clock).
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept;

  /// A copy of the trace as of now: open spans keep end_ns == 0,
  /// duration_ns = elapsed so far. This is what `submit --trace` echoes
  /// (the respond span cannot be closed before the response is sent).
  [[nodiscard]] Trace snapshot() const;

  /// Closes every open span at now and returns the final trace. The
  /// collector may not be used afterwards.
  Trace finish();

 private:
  const std::uint64_t id_;
  const std::string endpoint_;
  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  Trace trace_;  ///< guarded by mu_ (id/endpoint/start duplicated at finish)
  std::uint32_t dropped_ = 0;
};

// ---- thread-local context ------------------------------------------------
//
// Deep layers (ResultCache, CacheManager) annotate the span that is
// currently open on this thread without their signatures knowing about
// tracing. The owner of a Collector installs it with a ContextGuard; a
// ScopedSpan then nests beneath whatever span is current.

struct Context {
  Collector* collector = nullptr;
  std::uint32_t parent = 0;
};

[[nodiscard]] Context current() noexcept;

/// RAII: installs `ctx` as this thread's context, restores the previous
/// one on destruction. BatchServer workers install their job's context.
class ContextGuard {
 public:
  explicit ContextGuard(Context ctx) noexcept;
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Context prev_;
};

/// RAII span under the current thread-local context: opens a child of the
/// current parent, becomes the current parent itself, closes and restores
/// on destruction. A no-op (one TLS load) when no context is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void annotate(std::string_view key, std::string_view value);
  void annotate(std::string_view key, std::uint64_t value);

 private:
  Collector* collector_;
  std::uint32_t span_ = 0;
  Context prev_;
};

/// Annotates the span currently open on this thread (the innermost
/// ScopedSpan / the installed parent); no-op without a context. This is
/// how ResultCache reports hit/miss/rejected and CacheManager reports
/// evictions into the span that wrapped the call.
void annotate_current(std::string_view key, std::string_view value);
void annotate_current(std::string_view key, std::uint64_t value);

// ---- the retention sink --------------------------------------------------

struct SinkOptions {
  std::size_t recent_slots = 128;        ///< last-N ring
  std::size_t slowest_per_endpoint = 8;  ///< reservoir size K
  /// Byte budget per slot; a trace whose encoding exceeds it keeps its
  /// earliest spans and counts the rest into dropped_spans.
  std::size_t slot_bytes = 16 * 1024;
};

/// Server-wide retention: the last N completed traces plus the slowest K
/// per endpoint. publish() is called once per completed job; readers
/// (GET /tracez) decode slots without taking any writer-side lock.
///
/// Concurrency: every slot is an array of relaxed-atomic words stamped
/// with a seqlock sequence. Writers claim a slot's stamp with a CAS to an
/// odd value, copy the encoded trace word-by-word, then release-store the
/// even successor; readers copy the words between two stamp loads and
/// discard the copy unless both loads agree on an even value. Slot
/// assignment is a single fetch_add on the ring head, so concurrent
/// publishers collide on one slot only after lapping the whole ring
/// mid-write — and then the stamp CAS makes the late writer spin, never
/// tear. The slowest-K tables serialize *writers* through a small mutex
/// (publication is per job, not per span); their readers use the same
/// lock-free slot protocol.
class TraceSink {
 public:
  explicit TraceSink(SinkOptions opts = {});
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void publish(const Trace& t);

  /// Decoded retained traces, newest first. Size <= recent_slots.
  [[nodiscard]] std::vector<Trace> recent() const;
  /// Per endpoint (sorted by name), the retained slowest traces, slowest
  /// first. Size of each <= slowest_per_endpoint.
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<Trace>>>
  slowest() const;

  [[nodiscard]] std::uint64_t published_total() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const SinkOptions& options() const noexcept { return opts_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = never written; odd = busy
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  };
  struct SlowTable {
    std::mutex writer_mu;
    std::vector<Slot> slots;
    /// Duration per slot, 0 = empty. The fast reject path (full table,
    /// new trace no slower than the floor) reads `floor` only.
    std::unique_ptr<std::atomic<std::uint64_t>[]> durations;
    std::atomic<std::uint64_t> floor{0};  ///< min duration once full
    std::atomic<std::size_t> filled{0};
  };

  void write_slot(Slot& slot, const std::string& encoded) const;
  [[nodiscard]] bool read_slot(const Slot& slot, std::string& out) const;
  SlowTable& table_for(const std::string& endpoint);

  SinkOptions opts_;
  std::size_t words_per_slot_;
  std::vector<Slot> ring_;
  std::atomic<std::uint64_t> head_{0};       ///< next ring slot (mod size)
  std::atomic<std::uint64_t> published_{0};  ///< also the publish stamp
  mutable std::mutex tables_mu_;  ///< guards the map, never the slots
  std::map<std::string, std::unique_ptr<SlowTable>> tables_;
};

// ---- encoding & rendering ------------------------------------------------

/// Compact binary encoding of a trace, truncated to `max_bytes` (whole
/// spans only; the cut count lands in dropped_spans). `stamp` orders
/// decoded traces newest-first. Exposed for the torn-read tests.
std::string encode_trace(const Trace& t, std::uint64_t stamp,
                         std::size_t max_bytes);
/// Strict inverse; false on any truncation or length inconsistency (a
/// torn slot copy must never decode). `stamp_out` may be null.
bool decode_trace(std::string_view bytes, Trace& out,
                  std::uint64_t* stamp_out);

/// "12.345ms" — fixed sub-ms precision so columns align in /tracez.
std::string format_duration_ms(std::uint64_t ns);

/// The indented text tree of one trace:
///   trace 42 endpoint=submit start=2026-08-09T12:34:56Z duration=18.402ms
///     recv            0.031ms
///     queue-wait      2.114ms
///     lane-execute   15.902ms
///       cache-lookup  0.019ms seed=1 outcome=hit
///     respond         0.287ms
std::string render_trace_tree(const Trace& t);

/// Top-level spans flattened to one logfmt-friendly token:
/// "recv=0.031ms queue-wait=2.114ms lane-execute=15.902ms" — the
/// slow_job log line's span breakdown.
std::string flatten_spans(const Trace& t);

/// The whole GET /tracez page: recent traces (newest first), then the
/// slowest-K reservoir per endpoint.
std::string render_tracez(const TraceSink& sink);

}  // namespace distapx::trace
