#include "support/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace distapx::failpoint {

namespace {

/// Number of currently-armed failpoints: the only state the hot path
/// reads. 0 means hit() returns after one relaxed load.
std::atomic<int> g_armed_count{0};
std::atomic<std::uint64_t> g_hits_total{0};

std::mutex& mu() {
  static std::mutex m;
  return m;
}

std::map<std::string, Mode>& armed_map() {
  static std::map<std::string, Mode> m;
  return m;
}

/// Parses DISTAPX_FAILPOINT ("name" or "name:abort") exactly once per
/// process, on the first hit(). Lets CI crash a CLI binary at a named
/// instant without any test-only flag surface.
void arm_from_env_once() {
  static const bool done = [] {
    const char* env = std::getenv("DISTAPX_FAILPOINT");
    if (env == nullptr || *env == '\0') return true;
    std::string spec(env);
    Mode mode = Mode::kThrow;
    if (const auto colon = spec.rfind(":abort");
        colon != std::string::npos && colon + 6 == spec.size()) {
      spec.resize(colon);
      mode = Mode::kAbort;
    }
    if (!spec.empty()) arm(spec, mode);
    return true;
  }();
  (void)done;
}

}  // namespace

void arm(const std::string& name, Mode mode) {
  const std::lock_guard<std::mutex> lock(mu());
  auto& map = armed_map();
  const auto [it, inserted] = map.insert_or_assign(name, mode);
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void disarm_all() noexcept {
  const std::lock_guard<std::mutex> lock(mu());
  armed_map().clear();
  g_armed_count.store(0, std::memory_order_relaxed);
}

bool armed(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu());
  return armed_map().count(name) != 0;
}

void hit(const char* name) {
  arm_from_env_once();
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  Mode mode;
  {
    const std::lock_guard<std::mutex> lock(mu());
    auto& map = armed_map();
    const auto it = map.find(name);
    if (it == map.end()) return;
    mode = it->second;
    // One-shot: the simulated crash happens once; the recovery that
    // follows (same process in tests) runs with the failpoint gone.
    map.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  g_hits_total.fetch_add(1, std::memory_order_relaxed);
  if (mode == Mode::kAbort) std::abort();
  throw Failure(name);
}

std::uint64_t hits_total() noexcept {
  return g_hits_total.load(std::memory_order_relaxed);
}

}  // namespace distapx::failpoint
