#include "support/changelog.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "support/fingerprint.hpp"
#include "support/fsutil.hpp"

namespace distapx {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'X', 'L', 'G'};
constexpr std::uint32_t kFormatVersion = 1;
/// magic + format version + reserved u64.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
/// u32 length + u64 checksum.
constexpr std::size_t kFrameBytes = 4 + 8;

std::atomic<bool> g_fail_writes{false};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::string header_bytes() {
  std::string h(kMagic, 4);
  put_u32(h, kFormatVersion);
  put_u64(h, 0);  // reserved
  return h;
}

void encode_frame(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, fingerprint_bytes(payload.data(), payload.size()).lo);
  out.append(payload);
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads the whole file behind `fd`. False only on a read error.
bool read_all(int fd, std::string& out) {
  out.clear();
  char buf[1 << 16];
  std::uint64_t off = 0;
  for (;;) {
    const ssize_t n = ::pread(fd, buf, sizeof buf, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
    off += static_cast<std::uint64_t>(n);
  }
}

struct ParsedFile {
  std::vector<std::string> records;
  std::uint64_t payload_bytes = 0;
  /// File offset just past the last valid record: everything beyond is a
  /// torn/corrupt tail.
  std::uint64_t valid_end = 0;
};

/// Walks the framed records after the header and stops at the first frame
/// that is incomplete, oversized, or checksum-mismatched. Never throws:
/// the caller decides whether the cut bytes are crash residue (tail:
/// truncate) or corruption to report (snapshot: keep replay prefix).
ParsedFile parse_records(const std::string& image) {
  ParsedFile out;
  out.valid_end = kHeaderBytes;
  const auto* base = reinterpret_cast<const unsigned char*>(image.data());
  std::uint64_t pos = kHeaderBytes;
  while (pos + kFrameBytes <= image.size()) {
    const std::uint32_t len = get_u32(base + pos);
    if (len > Changelog::kMaxRecordBytes) break;  // insane length: torn
    if (pos + kFrameBytes + len > image.size()) break;  // incomplete
    const std::uint64_t want = get_u64(base + pos + 4);
    const char* payload = image.data() + pos + kFrameBytes;
    if (fingerprint_bytes(payload, len).lo != want) break;  // torn/corrupt
    out.records.emplace_back(payload, len);
    out.payload_bytes += len;
    pos += kFrameBytes + len;
    out.valid_end = pos;
  }
  return out;
}

/// True iff the image carries this module's header. `why` distinguishes
/// foreign magic from an unsupported version for the error message.
bool header_ok(const std::string& image, std::string* why) {
  if (std::memcmp(image.data(), kMagic, 4) != 0) {
    *why = "not a changelog (foreign magic)";
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(image.data());
  if (get_u32(p + 4) != kFormatVersion) {
    *why = "unsupported changelog format version";
    return false;
  }
  return true;
}

}  // namespace

void Changelog::set_write_failure_for_testing(bool fail) noexcept {
  g_fail_writes.store(fail, std::memory_order_relaxed);
}

Changelog::Changelog(std::string base_path) : base_(std::move(base_path)) {
  // ---- snapshot (read-only; absent is fine) ----
  const std::string snap = snapshot_path();
  const int sfd = ::open(snap.c_str(), O_RDONLY | O_CLOEXEC);
  if (sfd >= 0) {
    std::string image;
    const bool read_ok = read_all(sfd, image);
    ::close(sfd);
    if (!read_ok) throw ChangelogError("cannot read " + snap);
    if (image.size() >= kHeaderBytes) {
      std::string why;
      if (!header_ok(image, &why)) {
        throw ChangelogError(snap + ": " + why);
      }
      ParsedFile parsed = parse_records(image);
      // A snapshot is written atomically, so a short tail here is external
      // corruption, not crash residue: replay the valid prefix, leave the
      // file for the operator, and account the cut.
      state_.torn_bytes += image.size() - parsed.valid_end;
      snapshot_records_ = parsed.records.size();
      snapshot_payload_bytes_ = parsed.payload_bytes;
      state_.snapshot = std::move(parsed.records);
    } else if (!image.empty()) {
      throw ChangelogError(snap + ": not a changelog (short header)");
    }
  }

  // ---- tail (read-write; created if absent) ----
  const std::string log = log_path();
  log_fd_ = ::open(log.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC,
                   0644);
  if (log_fd_ < 0) {
    throw ChangelogError("cannot open " + log + ": " + std::strerror(errno));
  }
  std::string image;
  if (!read_all(log_fd_, image)) {
    ::close(log_fd_);
    log_fd_ = -1;
    throw ChangelogError("cannot read " + log);
  }
  if (image.size() < kHeaderBytes) {
    // Empty (fresh) or torn mid-header-write: both become a clean header.
    // A nonempty prefix shorter than the header cannot be foreign data we
    // should preserve — foreign detection needs the magic, which needs 4+
    // bytes, checked below for full-size files; for sub-header files the
    // worst case is discarding < 16 junk bytes.
    if (::ftruncate(log_fd_, 0) != 0) {
      ::close(log_fd_);
      log_fd_ = -1;
      throw ChangelogError("cannot initialize " + log);
    }
    const std::string header = header_bytes();
    if (!write_all(log_fd_, header.data(), header.size())) {
      ::close(log_fd_);
      log_fd_ = -1;
      throw ChangelogError("cannot initialize " + log);
    }
    fsutil::sync_fd(log_fd_);
    return;
  }
  std::string why;
  if (!header_ok(image, &why)) {
    ::close(log_fd_);
    log_fd_ = -1;
    throw ChangelogError(log + ": " + why);
  }
  ParsedFile parsed = parse_records(image);
  if (parsed.valid_end < image.size()) {
    // Torn tail: cut back to the valid prefix so future appends extend
    // clean state. This is the expected residue of a crash mid-append.
    state_.torn_bytes += image.size() - parsed.valid_end;
    if (::ftruncate(log_fd_, static_cast<off_t>(parsed.valid_end)) != 0) {
      ::close(log_fd_);
      log_fd_ = -1;
      throw ChangelogError("cannot repair torn tail of " + log);
    }
  }
  tail_records_ = parsed.records.size();
  tail_payload_bytes_ = parsed.payload_bytes;
  state_.tail = std::move(parsed.records);
}

Changelog::~Changelog() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

bool Changelog::append_frames_locked(const std::string& frames,
                                     std::uint64_t records,
                                     std::uint64_t payload_size) {
  if (g_fail_writes.load(std::memory_order_relaxed) ||
      !write_all(log_fd_, frames.data(), frames.size()) ||
      !fsutil::sync_fd(log_fd_)) {
    // A partial write leaves a torn frame; the next open truncates it.
    ++write_failures_;
    return false;
  }
  tail_records_ += records;
  tail_payload_bytes_ += payload_size;
  return true;
}

bool Changelog::append(std::string_view payload) {
  std::string frames;
  frames.reserve(kFrameBytes + payload.size());
  encode_frame(frames, payload);
  const std::lock_guard<std::mutex> lock(mu_);
  return append_frames_locked(frames, 1, payload.size());
}

bool Changelog::append_batch(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return true;
  // One write + one fdatasync for the whole batch: the per-record
  // durability cost amortizes, and O_APPEND keeps the batch contiguous
  // even with appenders in other processes.
  std::string frames;
  std::uint64_t payload_size = 0;
  for (const std::string& p : payloads) {
    encode_frame(frames, p);
    payload_size += p.size();
  }
  const std::lock_guard<std::mutex> lock(mu_);
  return append_frames_locked(frames, payloads.size(), payload_size);
}

bool Changelog::snapshot(const std::vector<std::string>& records) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (g_fail_writes.load(std::memory_order_relaxed)) {
    ++write_failures_;
    return false;
  }
  const std::string tmp =
      base_ + ".snap.tmp." + std::to_string(::getpid());
  std::string image = header_bytes();
  std::uint64_t payload_size = 0;
  for (const std::string& r : records) {
    encode_frame(image, r);
    payload_size += r.size();
  }
  const auto fail = [&] {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    ++write_failures_;
    return false;
  };
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return fail();
  if (!write_all(fd, image.data(), image.size()) || !fsutil::sync_fd(fd)) {
    ::close(fd);
    return fail();
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, snapshot_path(), ec);
  if (ec) return fail();
  // The rename itself must survive power loss before the tail may be
  // reset — otherwise a crash could surface the *old* snapshot with a
  // *new* (already-emptied) tail and silently lose records.
  fs::path dir = fs::path(base_).parent_path();
  if (dir.empty()) dir = ".";
  if (!fsutil::sync_dir(dir)) return fail();
  // A crash exactly here leaves the old tail alongside the new snapshot:
  // replay duplicates those records, which consumers absorb idempotently.
  if (::ftruncate(log_fd_, static_cast<off_t>(kHeaderBytes)) != 0) {
    ++write_failures_;
    return false;
  }
  fsutil::sync_fd(log_fd_);
  snapshot_records_ = records.size();
  snapshot_payload_bytes_ = payload_size;
  tail_records_ = 0;
  tail_payload_bytes_ = 0;
  return true;
}

std::uint64_t Changelog::tail_records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tail_records_;
}

std::uint64_t Changelog::snapshot_records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return snapshot_records_;
}

std::uint64_t Changelog::write_failures() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return write_failures_;
}

std::uint64_t Changelog::payload_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tail_payload_bytes_ + snapshot_payload_bytes_;
}

}  // namespace distapx
