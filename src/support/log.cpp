#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>

namespace distapx::logx {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};

std::mutex g_mu;  // guards everything below + line emission ordering
std::function<void(const std::string&)> g_sink;       // null -> stderr
std::function<double()> g_clock;                      // null -> steady_clock
double g_rate_per_sec = 10.0;
double g_rate_burst = 50.0;
std::map<std::string, RateLimiter, std::less<>> g_limiters;

double now_seconds_locked() {
  if (g_clock) return g_clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ISO-8601 UTC with millisecond precision. Wall-clock time, not the
/// rate-limiter clock: timestamps are for correlating with other systems.
std::string format_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof buf - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* level_name(Level lv) noexcept {
  switch (lv) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "?";
}

std::optional<Level> parse_level(std::string_view text) noexcept {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off") return Level::kOff;
  return std::nullopt;
}

void set_level(Level lv) noexcept {
  g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

Field::Field(std::string_view k, double v) : key(k) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  value = buf;
}

bool RateLimiter::allow(double now_seconds) noexcept {
  if (!started_) {
    started_ = true;
    last_ = now_seconds;
  }
  if (now_seconds > last_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * per_sec_);
    last_ = now_seconds;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    suppressed_ = 0;
    return true;
  }
  ++suppressed_;
  return false;
}

void set_rate_limit(double tokens_per_sec, double burst) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_rate_per_sec = tokens_per_sec;
  g_rate_burst = burst;
  g_limiters.clear();
}

void set_sink_for_testing(std::function<void(const std::string&)> sink) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_sink = std::move(sink);
}

void set_clock_for_testing(std::function<double()> now_seconds) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_clock = std::move(now_seconds);
}

std::string format_value(std::string_view value) {
  if (!needs_quoting(value)) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void log(Level lv, std::string_view event,
         std::initializer_list<Field> fields) {
  if (static_cast<int>(lv) < g_level.load(std::memory_order_relaxed)) return;
  if (lv == Level::kOff) return;

  const std::lock_guard<std::mutex> lock(g_mu);
  auto it = g_limiters.find(event);
  if (it == g_limiters.end()) {
    it = g_limiters
             .emplace(std::string(event),
                      RateLimiter(g_rate_per_sec, g_rate_burst))
             .first;
  }
  const std::uint64_t suppressed_before = it->second.suppressed();
  if (!it->second.allow(now_seconds_locked())) return;

  std::string line = "ts=" + format_timestamp();
  line += " level=";
  line += level_name(lv);
  line += " event=";
  line += format_value(event);
  for (const Field& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += format_value(f.value);
  }
  if (suppressed_before > 0) {
    line += " suppressed=" + std::to_string(suppressed_before);
  }
  line += '\n';
  if (g_sink) {
    g_sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace distapx::logx
