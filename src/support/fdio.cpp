#include "support/fdio.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace distapx::fdio {

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_fully(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  bool use_send = true;  // flips off on ENOTSOCK (pipes, regular files)
  while (n > 0) {
    ssize_t w = use_send ? ::send(fd, p, n, MSG_NOSIGNAL) : ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (use_send && errno == ENOTSOCK) {
        use_send = false;
        continue;
      }
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

ssize_t read_some(int fd, void* buf, std::size_t n) noexcept {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

Pipe::Pipe() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error(std::string("pipe2: ") + std::strerror(errno));
  }
  read_.reset(fds[0]);
  write_.reset(fds[1]);
}

void Pipe::poke() noexcept {
  const char byte = 'x';
  // A full pipe means a wakeup is already queued; EINTR on this one-byte
  // write is equally ignorable for the same reason a retry loop would be
  // wrong in a signal handler context.
  [[maybe_unused]] const ssize_t w = ::write(write_.get(), &byte, 1);
}

void Pipe::drain() noexcept {
  char buf[256];
  while (::read(read_.get(), buf, sizeof buf) > 0) {
  }
}

}  // namespace distapx::fdio
