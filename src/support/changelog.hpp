// Write-ahead changelog: a framed, checksummed, torn-tail-tolerant
// append-only record log with snapshot + compaction.
//
// manifest.hpp's line-oriented journal was the prototype: append cheaply,
// replay on open, tolerate a torn tail. This module is the generalized,
// binary-safe version the serving tier's crash-recovery is built on. A
// changelog at base path P owns two files:
//
//   P.log    the tail: header + framed records, appended in arrival order
//   P.snap   the snapshot: same format, atomically replaced by snapshot()
//
// Record frame (little-endian):
//   u32  payload length                        (<= kMaxRecordBytes)
//   u64  checksum = fingerprint_bytes(payload).lo
//   u8[] payload (opaque bytes; consumers define their own record syntax)
//
// Replay on open = every snapshot record, then every valid tail record.
// The tail is scanned front to back and cut at the first frame that is
// incomplete, oversized, or checksum-mismatched: a crash mid-append (torn
// tail) silently loses only the torn record, and the file is truncated
// back to the valid prefix so later appends extend clean state instead of
// interleaving with garbage. A file that exists but does not carry this
// module's magic is *foreign* and open throws rather than clobbering it.
//
// snapshot(records) compacts: the records are written to a temp file,
// fdatasync'd, renamed over P.snap, the directory is fsync'd (so the
// rename itself survives power loss), and only then is the tail reset to
// empty. A crash between the rename and the reset leaves records present
// in both files; replay then delivers them twice, so consumers MUST apply
// records idempotently (all current consumers do: cache-manifest F/T
// records are upserts/touches, daemon P/D records are set operations).
//
// fsync discipline follows the process-wide fsutil durability knob: at
// kFull every append batch is fdatasync'd before append() returns (a
// record the caller saw accepted survives power loss), at kNone appends
// are buffered-write only. Appends never throw: a failed append returns
// false and is counted, because every current consumer treats the log as
// recovery metadata whose loss degrades to recompute, never to wrong
// results.
//
// Thread safety: append/append_batch/snapshot/counters may be called from
// any thread (one internal mutex); replayed() is immutable post-open.
// Cross-process appenders interleave at batch granularity (O_APPEND, one
// write per batch) but snapshot() is last-writer-wins — multi-process use
// stays advisory, exactly like the old manifest.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace distapx {

/// Open failure: unopenable path, or an existing file that is not a
/// changelog (foreign magic / unsupported version). Never thrown for a
/// torn tail — that is the expected crash residue and is repaired.
struct ChangelogError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Everything open() recovered, in replay order (snapshot first).
struct ChangelogState {
  std::vector<std::string> snapshot;  ///< records from P.snap
  std::vector<std::string> tail;      ///< valid records from P.log
  /// Bytes cut from the tail at open (torn final record). 0 after a
  /// clean shutdown.
  std::uint64_t torn_bytes = 0;
};

class Changelog {
 public:
  /// Hard ceiling on one record's payload; a length field above it is
  /// treated as tail corruption. Generous enough for a max-size socket
  /// job frame.
  static constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

  /// Opens (creating if absent) the changelog at `base_path` ("...": the
  /// files are base_path + ".log" / ".snap"). Replays both files and
  /// truncates a torn tail. Throws ChangelogError on foreign files or
  /// unopenable paths.
  explicit Changelog(std::string base_path);
  ~Changelog();

  Changelog(const Changelog&) = delete;
  Changelog& operator=(const Changelog&) = delete;

  [[nodiscard]] const std::string& base_path() const noexcept {
    return base_;
  }
  [[nodiscard]] std::string log_path() const { return base_ + ".log"; }
  [[nodiscard]] std::string snapshot_path() const { return base_ + ".snap"; }

  /// What open() replayed. Stable for the changelog's lifetime (appends
  /// after open are NOT reflected here — the caller just made them).
  [[nodiscard]] const ChangelogState& replayed() const noexcept {
    return state_;
  }

  /// Appends one record (or a batch as a single write + single sync) to
  /// the tail; at fsutil::Durability::kFull the data is fdatasync'd
  /// before returning. False on write/sync failure (counted, never
  /// thrown).
  bool append(std::string_view payload);
  bool append_batch(const std::vector<std::string>& payloads);

  /// Atomically replaces the snapshot with exactly `records` and resets
  /// the tail (compaction). Durable against power loss once it returns
  /// true (at kFull): temp + fdatasync + rename + directory fsync.
  bool snapshot(const std::vector<std::string>& records);

  /// Records currently in the on-disk tail (replayed survivors + appends
  /// since open; reset to 0 by snapshot()). Consumers use this for their
  /// compaction trigger.
  [[nodiscard]] std::uint64_t tail_records() const;

  /// Records in the snapshot file (as of the last open() or snapshot()).
  [[nodiscard]] std::uint64_t snapshot_records() const;

  /// append/snapshot calls that returned false.
  [[nodiscard]] std::uint64_t write_failures() const;

  /// Record payload bytes on disk across both files (headers and frame
  /// overhead excluded — an empty changelog reports 0 even though the
  /// files carry headers).
  [[nodiscard]] std::uint64_t payload_bytes() const;

  /// Test seam: while set, every append/append_batch/snapshot in the
  /// process fails (returns false) without touching the disk — the only
  /// portable way to exercise append-failure accounting once a log fd is
  /// open (root ignores permission bits).
  static void set_write_failure_for_testing(bool fail) noexcept;

 private:
  bool append_frames_locked(const std::string& frames, std::uint64_t records,
                            std::uint64_t payload_size);

  std::string base_;
  mutable std::mutex mu_;
  int log_fd_ = -1;
  ChangelogState state_;
  std::uint64_t tail_records_ = 0;
  std::uint64_t snapshot_records_ = 0;
  std::uint64_t tail_payload_bytes_ = 0;
  std::uint64_t snapshot_payload_bytes_ = 0;
  std::uint64_t write_failures_ = 0;
};

}  // namespace distapx
