// Deterministic, splittable pseudo-random number generation.
//
// Every randomized algorithm in distapx takes an explicit 64-bit seed and
// derives per-node RNG streams from it, so whole simulator runs are
// reproducible bit-for-bit. The generator is xoshiro256**, seeded through
// SplitMix64 (the construction recommended by the xoshiro authors).
#pragma once

#include <cstdint>
#include <vector>

namespace distapx {

/// SplitMix64 step: used for seeding and for cheap stateless hashing of
/// (seed, node-id) pairs into independent streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of two 64-bit values into one well-distributed 64-bit value.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random> and
/// <algorithm> facilities, but the members below avoid libstdc++
/// distribution objects so results are identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent stream for a sub-entity (e.g. a node id).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace distapx
