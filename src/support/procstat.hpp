// Process self-tracking: rusage-derived CPU/memory/fault gauges plus the
// open-fd count, refreshed on every metrics snapshot.
//
// Serving processes run for days; "how much CPU has this server burned"
// and "is RSS creeping" are the first questions during an incident, and
// answering them from the outside (ps, /proc scraping by an operator)
// loses history and correlation with the serving metrics. Instead the
// process samples itself: install_process_metrics() registers the gauges
// below and hooks Registry::snapshot() so every scrape — /metrics,
// /statusz, the STATS frame, the CLI final report — carries values
// sampled at scrape time, with zero cost between scrapes.
//
// Gauge inventory (names are part of the stable metrics contract):
//   process_cpu_seconds_total    user+system CPU, fractional seconds
//   process_max_rss_bytes        peak resident set size
//   process_minor_faults_total   page reclaims (no I/O)
//   process_major_faults_total   page faults that hit the disk
//   process_open_fds             currently open descriptors (-1 when
//                                /proc/self/fd is unavailable)
#pragma once

#include <cstdint>

namespace distapx::metrics {
class Registry;
}

namespace distapx::procstat {

/// One sample of the process's own resource usage (getrusage RUSAGE_SELF
/// plus a /proc/self/fd scan).
struct ProcessUsage {
  double cpu_seconds = 0;        ///< ru_utime + ru_stime
  std::int64_t max_rss_bytes = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::int64_t open_fds = -1;  ///< -1 when the fd directory can't be read
};

ProcessUsage sample_process_usage();

/// Registers the process_* gauges in `reg` and installs a snapshot
/// refresh hook that re-samples them on every scrape. Replaces any
/// previously installed hook on that registry.
void install_process_metrics(metrics::Registry& reg);

}  // namespace distapx::procstat
