#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace distapx::metrics {

namespace {

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shortest round-trip-ish rendering for bucket bounds and sums ("0.25",
/// "10", "2.5e+06") — %g keeps the ladder values readable, which matters
/// because they appear in le="..." labels dashboards match on.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Splits "name{label=\"x\"}" into the base name and the label block
/// (empty when unlabeled). The base is what # TYPE lines are keyed on.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Joins an existing label block with one more label: `{a="b"}` + le
/// becomes `{a="b",le="0.5"}`, no block becomes `{le="0.5"}`.
std::string with_le_label(std::string_view labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  std::string out(labels.substr(0, labels.size() - 1));  // drop '}'
  out += ",le=\"" + le + "\"}";
  return out;
}

}  // namespace

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // The rank-q observation, 1-based; ceil so q=0.5 over 2 observations
  // picks the first (conservative, matches nearest-rank conventions).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] < rank) {
      cum += counts[i];
      continue;
    }
    // rank falls inside bucket i. The overflow bucket has no upper edge:
    // pin to the last finite bound rather than invent an extrapolation.
    if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double into =
        static_cast<double>(rank - cum) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * into;
  }
  return bounds.empty() ? 0 : bounds.back();  // unreachable when consistent
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      wincounts_(2 * (bounds_.size() + 1)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DISTAPX_ENSURE_MSG(bounds_[i - 1] < bounds_[i],
                       "histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::size_t stride = counts_.size();
  wincounts_[active_.load(std::memory_order_relaxed) * stride + bucket]
      .fetch_add(1, std::memory_order_relaxed);
  // No atomic<double>::fetch_add before C++20 library support settles;
  // a CAS loop is equivalent and contention here is negligible.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::recent(double now_seconds) const {
  const std::size_t stride = counts_.size();
  {
    const std::lock_guard<std::mutex> lock(rotate_mu_);
    if (!window_started_) {
      window_started_ = true;
      window_start_ = now_seconds;
    } else if (now_seconds - window_start_ >= 2 * window_len_) {
      // Both windows are stale; nothing observed lately counts as recent.
      for (auto& c : wincounts_) c.store(0, std::memory_order_relaxed);
      window_start_ = now_seconds;
    } else if (now_seconds - window_start_ >= window_len_) {
      // Retire the active window, clear and activate the other one.
      const std::uint32_t next =
          1 - active_.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < stride; ++i) {
        wincounts_[next * stride + i].store(0, std::memory_order_relaxed);
      }
      active_.store(next, std::memory_order_relaxed);
      window_start_ = now_seconds;
    }
  }
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(stride);
  for (std::size_t i = 0; i < stride; ++i) {
    const std::uint64_t n =
        wincounts_[i].load(std::memory_order_relaxed) +
        wincounts_[stride + i].load(std::memory_order_relaxed);
    s.counts.push_back(n);
    s.count += n;
  }
  return s;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    const std::uint64_t n = c.load(std::memory_order_relaxed);
    s.counts.push_back(n);
    s.count += n;
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> kBuckets{
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1,    2.5,  5,    10,
      25,   50,    100,  250,  500,  1000, 2500, 5000, 10000};
  return kBuckets;
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t fallback) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

std::int64_t Snapshot::gauge_or(std::string_view name,
                                std::int64_t fallback) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

double Snapshot::float_or(std::string_view name, double fallback) const {
  for (const auto& f : floats) {
    if (f.name == name) return f.value;
  }
  return fallback;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

FloatGauge& Registry::float_gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = floats_.find(name);
  if (it != floats_.end()) return *it->second;
  return *floats_.emplace(std::string(name), std::make_unique<FloatGauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

void Registry::set_refresh_hook(std::function<void()> hook) {
  const std::lock_guard<std::mutex> lock(hook_mu_);
  refresh_hook_ = std::move(hook);
}

Snapshot Registry::snapshot() const {
  std::function<void()> hook;
  {
    const std::lock_guard<std::mutex> lock(hook_mu_);
    hook = refresh_hook_;
  }
  // Run before taking mu_ so a hook that resolves handles up front but
  // still calls into the registry cannot deadlock against us.
  if (hook) hook();
  const double now = steady_now_seconds();
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.floats.reserve(floats_.size());
  for (const auto& [name, f] : floats_) {
    s.floats.push_back({name, f->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot(), h->recent(now)});
  }
  return s;
}

std::string render_prometheus(const Snapshot& snap, std::string_view prefix) {
  std::string out;
  const auto type_header = [&](std::string_view base, const char* type,
                               std::string_view& last_base) {
    if (base == last_base) return;  // label variants share one header
    last_base = base;
    out += "# TYPE ";
    out += prefix;
    out += base;
    out += ' ';
    out += type;
    out += '\n';
  };

  std::string_view last_base;
  for (const auto& c : snap.counters) {
    const auto [base, labels] = split_labels(c.name);
    type_header(base, "counter", last_base);
    out += prefix;
    out += base;
    out += labels;
    out += ' ' + std::to_string(c.value) + '\n';
  }
  last_base = {};
  for (const auto& g : snap.gauges) {
    const auto [base, labels] = split_labels(g.name);
    type_header(base, "gauge", last_base);
    out += prefix;
    out += base;
    out += labels;
    out += ' ' + std::to_string(g.value) + '\n';
  }
  last_base = {};
  for (const auto& f : snap.floats) {
    const auto [base, labels] = split_labels(f.name);
    type_header(base, "gauge", last_base);
    out += prefix;
    out += base;
    out += labels;
    out += ' ' + format_double(f.value) + '\n';
  }
  last_base = {};
  for (const auto& h : snap.histograms) {
    const auto [base, labels] = split_labels(h.name);
    type_header(base, "histogram", last_base);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.hist.counts.size(); ++i) {
      cum += h.hist.counts[i];
      const std::string le = i < h.hist.bounds.size()
                                 ? format_double(h.hist.bounds[i])
                                 : std::string("+Inf");
      out += prefix;
      out += base;
      out += "_bucket" + with_le_label(labels, le) + ' ' +
             std::to_string(cum) + '\n';
    }
    out += prefix;
    out += base;
    out += "_sum";
    out += labels;
    out += ' ' + format_double(h.hist.sum) + '\n';
    out += prefix;
    out += base;
    out += "_count";
    out += labels;
    out += ' ' + std::to_string(h.hist.count) + '\n';
  }
  return out;
}

}  // namespace distapx::metrics
