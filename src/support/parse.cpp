#include "support/parse.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace distapx {

std::optional<std::uint64_t> parse_uint_strict(const std::string& token,
                                               std::uint64_t max_value) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      value > max_value) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double_strict(const std::string& token) {
  if (token.empty()) return std::nullopt;
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + token.size() || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace distapx
