#include "support/parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace distapx {

namespace {

/// The decimal grammar parse_double_strict accepts: [+-] digits [. digits]
/// [eE [+-] digits], with at least one digit somewhere in the mantissa.
/// strtod alone also accepts "inf", "nan", hex floats, and leading
/// whitespace — every one of which has leaked through a "strict" parser
/// built on full-consumption checks alone.
bool is_plain_decimal(const std::string& token) {
  std::size_t i = 0;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
  std::size_t mantissa_digits = 0;
  while (i < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[i]))) {
    ++i;
    ++mantissa_digits;
  }
  if (i < token.size() && token[i] == '.') {
    ++i;
    while (i < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[i]))) {
      ++i;
      ++mantissa_digits;
    }
  }
  if (mantissa_digits == 0) return false;
  if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
    ++i;
    if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[i]))) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  return i == token.size();
}

}  // namespace

std::optional<std::uint64_t> parse_uint_strict(const std::string& token,
                                               std::uint64_t max_value) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      value > max_value) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double_strict(const std::string& token) {
  // Grammar first: this rejects "inf"/"nan"/hex floats/whitespace before
  // strtod ever sees them, so the only strtod outcomes left to police are
  // full consumption and overflow-to-infinity ("1e999" -> HUGE_VAL).
  if (!is_plain_decimal(token)) return std::nullopt;
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + token.size() || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::uint64_t> parse_size_bytes(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t shift = 0;
  std::string digits = token;
  switch (token.back()) {
    case 'k': case 'K': shift = 10; break;
    case 'm': case 'M': shift = 20; break;
    case 'g': case 'G': shift = 30; break;
    default: break;
  }
  if (shift != 0) digits.pop_back();
  const auto value = parse_uint_strict(digits, UINT64_MAX >> shift);
  if (!value) return std::nullopt;
  return *value << shift;
}

}  // namespace distapx
