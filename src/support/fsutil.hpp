// Filesystem helpers shared by the service layer.
//
// move_file is the daemon's spool-move primitive (spool -> done/failed)
// and the cache manager's quarantine move. rename(2) is atomic but fails
// with EXDEV when source and destination sit on different filesystems
// (spool on tmpfs, done/ on disk; cache and quarantine on separate
// mounts). The fallback must preserve the visibility guarantee rename
// gives for free: a reader listing the destination directory either sees
// the complete file or no file — never a half-copied one. So the copy
// lands in a hidden temp name next to the destination and is renamed into
// place (same directory, so that rename cannot itself hit EXDEV); only
// then is the source removed.
//
// Durability: rename makes publication *atomic* but not *durable* — after
// a power loss, a renamed file can surface empty or truncated because the
// data blocks were never flushed, and the rename itself can be undone
// because the directory entry was never flushed. The sync_* helpers below
// close both holes: fdatasync the file before renaming it into place,
// fsync the parent directory after. They honor a process-wide Durability
// knob (the CLI's --durability flag): at kNone every sync is a no-op
// (benchmarks, throwaway caches), at kFull (the default) each helper
// issues the real syscall and bumps a process-wide fsync counter, which
// is mirrored into a metrics Counter ("fsync_total") when a serving
// process registers one — so benches and /metrics can show what
// durability costs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace distapx::metrics {
class Counter;
}

namespace distapx::fsutil {

/// Moves `from` to `to`: rename when possible, temp-copy + rename +
/// remove-source across filesystems. Throws std::filesystem::
/// filesystem_error on failure; on any failure the destination path
/// either holds the complete file or nothing (temp droppings are
/// cleaned up), and the source survives unless the move fully succeeded.
void move_file(const std::filesystem::path& from,
               const std::filesystem::path& to);

/// Test seam: when set, move_file skips the rename(2) fast path and
/// always exercises the cross-filesystem copy fallback — a single-mount
/// test box cannot produce a real EXDEV. Not for production use.
void set_force_copy_move_for_testing(bool force) noexcept;

// ---- durability knob ------------------------------------------------------

enum class Durability {
  kNone,  ///< never fsync: fast, crash leaves torn/empty published files
  kFull,  ///< fdatasync data before rename, fsync directories after
};

/// Process-wide durability level; kFull until set otherwise. The sync_*
/// helpers below consult it, so flipping the knob changes every
/// publication path at once (the CLI's --durability flag).
void set_durability(Durability level) noexcept;
[[nodiscard]] Durability durability() noexcept;

/// "none"/"full" -> the level; nullopt for anything else (CLI parsing).
std::optional<Durability> parse_durability(std::string_view text) noexcept;

/// Lifetime count of fsync/fdatasync syscalls this process issued through
/// the helpers below (kNone no-ops are not counted). Benches read this to
/// price durability.
[[nodiscard]] std::uint64_t fsync_total() noexcept;

/// Mirrors every future fsync into `counter` (a registry's "fsync_total")
/// so /metrics and `cache stats` see the same number the process-wide
/// count does. Null detaches. The counter must outlive its registration;
/// serving CLIs pass the process registry, which lives to exit.
void set_fsync_counter(metrics::Counter* counter) noexcept;

/// fdatasync(fd) when durability is kFull; no-op (returns true) at kNone.
/// Returns false only on a real fdatasync failure.
bool sync_fd(int fd) noexcept;

/// Opens `path` read-only and sync_fd's it (for files written through
/// buffered streams that are already closed). False if the open or sync
/// fails; no-op true at kNone.
bool sync_file(const std::filesystem::path& path) noexcept;

/// fsyncs the *directory* `dir`, making renames/creates inside it
/// durable. No-op true at kNone; false on open/fsync failure.
bool sync_dir(const std::filesystem::path& dir) noexcept;

/// Durable publication: writes `content` to a hidden temp name in the
/// destination directory, syncs it, renames into place, and syncs the
/// parent directory — a crash at any instant leaves either the complete
/// previous state or the complete new file, and once this returns true
/// the file survives power loss (at kFull). Returns false with the
/// reason in `*error` (when non-null) on any failure; the destination is
/// never left partial and temp droppings are removed.
bool write_file_durable(const std::filesystem::path& path,
                        std::string_view content,
                        std::string* error = nullptr);

}  // namespace distapx::fsutil
