// Filesystem helpers shared by the service layer.
//
// move_file is the daemon's spool-move primitive (spool -> done/failed)
// and the cache manager's quarantine move. rename(2) is atomic but fails
// with EXDEV when source and destination sit on different filesystems
// (spool on tmpfs, done/ on disk; cache and quarantine on separate
// mounts). The fallback must preserve the visibility guarantee rename
// gives for free: a reader listing the destination directory either sees
// the complete file or no file — never a half-copied one. So the copy
// lands in a hidden temp name next to the destination and is renamed into
// place (same directory, so that rename cannot itself hit EXDEV); only
// then is the source removed.
#pragma once

#include <filesystem>

namespace distapx::fsutil {

/// Moves `from` to `to`: rename when possible, temp-copy + rename +
/// remove-source across filesystems. Throws std::filesystem::
/// filesystem_error on failure; on any failure the destination path
/// either holds the complete file or nothing (temp droppings are
/// cleaned up), and the source survives unless the move fully succeeded.
void move_file(const std::filesystem::path& from,
               const std::filesystem::path& to);

/// Test seam: when set, move_file skips the rename(2) fast path and
/// always exercises the cross-filesystem copy fallback — a single-mount
/// test box cannot produce a real EXDEV. Not for production use.
void set_force_copy_move_for_testing(bool force) noexcept;

}  // namespace distapx::fsutil
