// Injectable failure points for crash testing.
//
// Durability code is only as good as its crash coverage, and the crashes
// that matter land *between* two filesystem operations — after a result is
// published but before the job file moves, after a changelog append but
// before the snapshot rename. A failpoint names such an instant:
// production code calls `failpoint::hit("daemon_publish_move")` at the
// vulnerable point, and a test (or CI, via the DISTAPX_FAILPOINT
// environment variable) arms that name to either throw or abort() there,
// simulating a kill -9 at exactly the worst moment.
//
// Cost model: hit() is one relaxed atomic load when nothing is armed, so
// failpoints are compiled into release builds and the tested binary is
// the shipped binary. Arming is one-shot — a triggered failpoint disarms
// itself, so the restarted-recovery path in the same process (or the same
// test) runs clean.
//
// Environment arming (for e2e crash tests that cannot reach the C++ API):
//   DISTAPX_FAILPOINT=daemon_publish_move         -> throw Failure
//   DISTAPX_FAILPOINT=daemon_publish_move:abort   -> abort() (SIGABRT,
//                                                    like a kill -9)
// The variable is read once, at the first hit() in the process.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace distapx::failpoint {

/// Thrown by an armed failpoint in kThrow mode. Deliberately NOT derived
/// from the service layer's JobError: recovery code catches and rethrows
/// it so a simulated crash is never mistaken for a quarantinable job
/// failure.
struct Failure : std::runtime_error {
  explicit Failure(const std::string& name)
      : std::runtime_error("failpoint hit: " + name) {}
};

enum class Mode {
  kThrow,  ///< hit() throws Failure (unit tests: "crash" = unwound stack)
  kAbort,  ///< hit() calls abort()  (e2e tests: a real dead process)
};

/// Arms `name`: the next hit(name) triggers once, then disarms itself.
void arm(const std::string& name, Mode mode = Mode::kThrow);

/// Disarms everything (test teardown).
void disarm_all() noexcept;

/// True if `name` is currently armed (test introspection).
[[nodiscard]] bool armed(const std::string& name);

/// Triggers if `name` is armed (throw or abort per its mode), else
/// returns immediately. One relaxed atomic load when nothing is armed.
void hit(const char* name);

/// Lifetime count of triggered failpoints (test assertion helper).
[[nodiscard]] std::uint64_t hits_total() noexcept;

}  // namespace distapx::failpoint
