#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace distapx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DISTAPX_ENSURE(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  DISTAPX_ENSURE_MSG(cells.size() == headers_.size(),
                     "row width " << cells.size() << " != header width "
                                  << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c]
         << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << esc(headers_[c]) << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      os << esc(row[c]) << (c + 1 < row.size() ? "," : "\n");
}

}  // namespace distapx
