#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace distapx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DISTAPX_ENSURE(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  DISTAPX_ENSURE_MSG(cells.size() == headers_.size(),
                     "row width " << cells.size() << " != header width "
                                  << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c]
         << (c + 1 < row.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << esc(headers_[c]) << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      os << esc(row[c]) << (c + 1 < row.size() ? "," : "\n");
}

namespace {

/// Conservative "already valid JSON number" test: optional minus, digits
/// without a leading zero (RFC 8259 forbids 007), optional fraction. (No
/// exponents — the tables never emit them.)
bool is_plain_number(const std::string& s) {
  std::size_t i = s.size() && s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  if (s[i] == '0' && i + 1 < s.size() && s[i + 1] != '.') return false;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] >= '0' && s[i] <= '9') {
      digits = true;
    } else if (s[i] == '.' && !dot && digits && i + 1 < s.size()) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(ch >> 4) & 0xf]
             << "0123456789abcdef"[ch & 0xf];
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void Table::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      write_json_string(os, headers_[c]);
      os << ": ";
      if (is_plain_number(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        write_json_string(os, rows_[r][c]);
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

}  // namespace distapx
