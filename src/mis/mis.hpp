// Common result types for independent-set algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace distapx {

/// Node outputs used by every IS-producing distributed algorithm.
enum IsOutput : std::int64_t {
  kOutNotInIs = 0,
  kOutInIs = 1,
  /// Nearly-maximal algorithms may leave nodes undecided (Thm 3.1's small
  /// failure probability); such nodes halt with this output.
  kOutUndecided = 2,
};

/// Result of a distributed IS computation.
struct IsResult {
  std::vector<NodeId> independent_set;
  std::vector<NodeId> undecided;  ///< empty for exact-MIS algorithms
  sim::RunMetrics metrics;
};

/// Collects the IS (and undecided leftovers) from per-node outputs.
inline IsResult collect_is(const std::vector<std::int64_t>& outputs,
                           sim::RunMetrics metrics) {
  IsResult r;
  r.metrics = metrics;
  for (NodeId v = 0; v < outputs.size(); ++v) {
    if (outputs[v] == kOutInIs) {
      r.independent_set.push_back(v);
    } else if (outputs[v] == kOutUndecided) {
      r.undecided.push_back(v);
    }
  }
  return r;
}

}  // namespace distapx
