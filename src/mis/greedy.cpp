#include "mis/greedy.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace distapx {

std::vector<NodeId> greedy_mis(const Graph& g,
                               const std::vector<NodeId>& order) {
  DISTAPX_ENSURE(order.size() == g.num_nodes());
  std::vector<bool> blocked(g.num_nodes(), false);
  std::vector<NodeId> mis;
  for (NodeId v : order) {
    DISTAPX_ENSURE(v < g.num_nodes());
    if (blocked[v]) continue;
    mis.push_back(v);
    blocked[v] = true;
    for (const HalfEdge& he : g.neighbors(v)) blocked[he.to] = true;
  }
  return mis;
}

std::vector<NodeId> greedy_mis(const Graph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  return greedy_mis(g, order);
}

std::vector<NodeId> greedy_mis_random(const Graph& g, Rng& rng) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  return greedy_mis(g, order);
}

}  // namespace distapx
