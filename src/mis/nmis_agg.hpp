// Nearly-maximal IS as a *local aggregation algorithm* (paper Sec. 3.1 +
// Thm 3.2): the same K-factor dynamics as ghaffari_nmis.hpp, but expressed
// in the publish/aggregate model so it can run on line graphs via the
// Theorem 2.8 mechanism without congestion. Running it on L(G) computes a
// nearly-maximal *matching*, the core of the (2+ε)-approximation.
#pragma once

#include "graph/graph.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/mis.hpp"
#include "sim/aggregation.hpp"

namespace distapx {

/// The NMIS dynamics as an AggProgram. One super-round per NMIS iteration.
///
/// State fields: [status(2b: 0 active / 1 joined / 2 removed / 3 undecided),
/// exponent, marked(1b)]. Aggregates: OR(neighbor joined),
/// OR(neighbor active & marked), SUM(neighbor active probability, fixed
/// point 2^-30).
class NmisAggProgram final : public sim::AggProgram {
 public:
  NmisAggProgram(std::uint32_t max_degree, NmisParams params);

  [[nodiscard]] std::vector<int> state_bits() const override;
  [[nodiscard]] std::vector<sim::Aggregator> aggregators() const override;
  void init(sim::AggCtx& ctx) override;
  void round(sim::AggCtx& ctx) override;

  [[nodiscard]] std::uint32_t iterations() const noexcept {
    return iterations_;
  }

 private:
  NmisParams params_;
  std::uint32_t iterations_;
  int exp_bits_;
};

/// NMIS via aggregation on the nodes of g (reference / testing).
IsResult run_nmis_agg_on_nodes(const Graph& g, std::uint64_t seed,
                               NmisParams params = {});

/// Nearly-maximal matching: NMIS on L(g) via the Thm 2.8 mechanism.
/// Outputs are per *edge* of g; the returned "independent_set" holds EdgeIds
/// of matched edges and "undecided" holds leftover edges.
struct NmMatchingResult {
  std::vector<EdgeId> matching;
  std::vector<EdgeId> undecided;
  sim::RunMetrics metrics;
  std::uint32_t super_rounds = 0;
};
NmMatchingResult run_nearly_maximal_matching(const Graph& g,
                                             std::uint64_t seed,
                                             NmisParams params = {});

}  // namespace distapx
