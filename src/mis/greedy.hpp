// Sequential greedy MIS baselines (verification and ablation reference).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distapx {

/// Greedy MIS scanning nodes in the given order.
std::vector<NodeId> greedy_mis(const Graph& g,
                               const std::vector<NodeId>& order);

/// Greedy MIS in id order.
std::vector<NodeId> greedy_mis(const Graph& g);

/// Greedy MIS in uniformly random order.
std::vector<NodeId> greedy_mis_random(const Graph& g, Rng& rng);

}  // namespace distapx
