#include "mis/nmis_agg.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

constexpr std::uint64_t kFx = std::uint64_t{1} << 30;

enum Status : std::uint64_t {
  kActive = 0,
  kJoined = 1,
  kRemoved = 2,
  kUndecided = 3,
};

// State field indices.
constexpr std::size_t kStatus = 0;
constexpr std::size_t kExponent = 1;
constexpr std::size_t kMarked = 2;
constexpr std::size_t kIteration = 3;  // local counter, not transmitted info
                                       // but kept in state for simplicity

std::uint64_t prob_fx(std::uint32_t K, std::uint64_t j) {
  std::uint64_t denom = 1;
  for (std::uint64_t i = 0; i < j; ++i) {
    if (denom > kFx) return 0;
    denom *= K;
  }
  return kFx / denom;
}

}  // namespace

NmisAggProgram::NmisAggProgram(std::uint32_t max_degree, NmisParams params)
    : params_(params),
      iterations_(nmis_iteration_budget(max_degree, params)),
      exp_bits_(std::max(
          4, bits_for_value(static_cast<std::uint64_t>(iterations_) + 1))) {}

std::vector<int> NmisAggProgram::state_bits() const {
  return {2, exp_bits_, 1, std::max(4, bits_for_value(iterations_ + 1))};
}

std::vector<sim::Aggregator> NmisAggProgram::aggregators() const {
  const std::uint32_t K = params_.K;
  std::vector<sim::Aggregator> aggs;
  aggs.push_back(sim::agg_or([](std::span<const std::uint64_t> s) {
    return static_cast<std::uint64_t>(s[kStatus] == kJoined);
  }));
  aggs.push_back(sim::agg_or([](std::span<const std::uint64_t> s) {
    return static_cast<std::uint64_t>(s[kStatus] == kActive &&
                                      s[kMarked] != 0);
  }));
  aggs.push_back(sim::agg_sum(
      [K](std::span<const std::uint64_t> s) {
        return s[kStatus] == kActive ? prob_fx(K, s[kExponent])
                                     : std::uint64_t{0};
      },
      /*result_bits=*/50));
  return aggs;
}

void NmisAggProgram::init(sim::AggCtx& ctx) {
  auto st = ctx.state();
  st[kStatus] = kActive;
  st[kExponent] = 1;
  st[kIteration] = 0;
  if (ctx.degree() == 0) {
    st[kStatus] = kJoined;
    ctx.halt(kOutInIs);
    return;
  }
  st[kMarked] = static_cast<std::uint64_t>(
      ctx.rng().bernoulli(std::pow(static_cast<double>(params_.K), -1.0)));
}

void NmisAggProgram::round(sim::AggCtx& ctx) {
  auto st = ctx.state();
  const auto aggs = ctx.aggregates();
  const bool nbr_joined = aggs[0] != 0;
  const bool nbr_marked = aggs[1] != 0;
  const std::uint64_t d_fx = aggs[2];

  if (nbr_joined) {
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  if (st[kMarked] != 0 && !nbr_marked) {
    st[kStatus] = kJoined;
    ctx.halt(kOutInIs);
    return;
  }
  if (st[kIteration] + 1 >= iterations_) {
    st[kStatus] = kUndecided;
    ctx.halt(kOutUndecided);
    return;
  }
  ++st[kIteration];
  if (d_fx >= 2 * kFx) {
    st[kExponent] = std::min<std::uint64_t>(
        st[kExponent] + 1, (std::uint64_t{1} << exp_bits_) - 1);
  } else if (st[kExponent] > 1) {
    --st[kExponent];
  }
  st[kMarked] = static_cast<std::uint64_t>(ctx.rng().bernoulli(
      std::pow(static_cast<double>(params_.K),
               -static_cast<double>(st[kExponent]))));
}

IsResult run_nmis_agg_on_nodes(const Graph& g, std::uint64_t seed,
                               NmisParams params) {
  NmisAggProgram prog(g.max_degree(), params);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto result = sim::run_on_nodes(g, prog, opts);
  DISTAPX_ENSURE(result.metrics.completed);
  return collect_is(result.outputs, result.metrics);
}

NmMatchingResult run_nearly_maximal_matching(const Graph& g,
                                             std::uint64_t seed,
                                             NmisParams params) {
  // Line-graph max degree: an edge {u,v} has deg(u)+deg(v)-2 line-neighbors.
  std::uint32_t line_delta = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    line_delta = std::max(line_delta, g.degree(u) + g.degree(v) - 2);
  }
  NmisAggProgram prog(std::max<std::uint32_t>(line_delta, 1), params);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto result = sim::run_on_line_graph(g, prog, opts);
  DISTAPX_ENSURE(result.metrics.completed);
  NmMatchingResult out;
  out.metrics = result.metrics;
  out.super_rounds = result.super_rounds;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (result.outputs[e] == kOutInIs) {
      out.matching.push_back(e);
    } else if (result.outputs[e] == kOutUndecided) {
      out.undecided.push_back(e);
    }
  }
  return out;
}

}  // namespace distapx
