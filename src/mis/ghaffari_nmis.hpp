// The paper's modified nearly-maximal independent set algorithm (Sec. 3.1),
// a faster variant of Ghaffari's MIS core [Gha16].
//
// Dynamics: every node holds a marking probability p_t(v) = K^{-j}, starting
// at 1/K. Its effective degree is d_t(v) = sum of neighbors' probabilities.
// Each iteration the node marks itself with probability p_t(v); a marked
// node with no marked neighbor joins the IS (removing its neighborhood).
// Probabilities update:  p/K if d_t >= 2, else min(K*p, 1/K).
//
// Theorem 3.1: after beta*(log Δ / log K + K^2 log(1/δ)) iterations each
// node fails to be covered with probability at most δ. With the paper's
// K = Θ(log^0.1 Δ) this is O(log Δ / log log Δ) rounds. Ghaffari's original
// algorithm is the K = 2 special case (O(log Δ) rounds), so this one module
// provides both, and the K sweep is the bench_ablation_K experiment.
//
// Nodes that are neither in the IS nor covered when the budget expires halt
// with kOutUndecided; run_nmis_then_luby finishes them off with Luby to
// yield a true MIS (the "black-box MIS" ablation of Algorithm 2).
#pragma once

#include <cstdint>

#include "mis/mis.hpp"
#include "sim/network.hpp"

namespace distapx {

struct NmisParams {
  /// Probability-update base K >= 2. The paper's choice is Θ(log^0.1 Δ);
  /// for practical Δ that is 2, and larger K trades the log Δ/log K term
  /// against the K^2 log(1/δ) term (the E6 ablation).
  std::uint32_t K = 2;
  /// Per-node failure probability target δ.
  double delta = 1.0 / 64.0;
  /// The "large enough constant" β of Theorem 3.1.
  double beta = 1.5;
  /// Explicit iteration budget; 0 derives it from Theorem 3.1's formula.
  std::uint32_t iterations = 0;
};

/// Theorem 3.1 iteration budget: beta * (log Δ / log K + K^2 ln(1/δ)).
std::uint32_t nmis_iteration_budget(std::uint32_t max_degree,
                                    const NmisParams& params);

/// Factory for the message-passing NMIS node program (3 rounds/iteration).
sim::ProgramFactory make_nmis_program(const Graph& g, NmisParams params);

/// Runs NMIS on g. The result may have `undecided` nodes.
IsResult run_nmis(const Graph& g, std::uint64_t seed, NmisParams params = {});

/// NMIS followed by Luby on the undecided remainder: a true MIS whose
/// metrics are the sum of both phases.
IsResult run_nmis_then_luby(const Graph& g, std::uint64_t seed,
                            NmisParams params = {});

}  // namespace distapx
