#include "mis/luby.hpp"

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

enum MsgType : std::uint32_t { kValue = 1, kJoin = 2, kRemoved = 3 };

class LubyProgram final : public sim::NodeProgram {
 public:
  explicit LubyProgram(int value_bits) : value_bits_(value_bits) {}

  void init(sim::Ctx& ctx) override {
    alive_.assign(ctx.degree(), true);
    if (ctx.degree() == 0) {
      // Isolated nodes are trivially in every MIS.
      ctx.halt(kOutInIs);
    }
  }

  void round(sim::Ctx& ctx) override {
    const std::uint32_t phase = (ctx.round() - 1) % 3;
    switch (phase) {
      case 0: {  // process removals, send values
        for (const auto& d : ctx.inbox()) {
          DISTAPX_ASSERT(d.msg.type() == kRemoved);
          alive_[d.port] = false;
        }
        if (!any_alive()) {
          // All neighbors decided without excluding us: we join.
          ctx.halt(kOutInIs);
          return;
        }
        value_ = ctx.rng().next() &
                 ((std::uint64_t{1} << value_bits_) - 1);
        sim::Message m(kValue);
        m.push(value_, value_bits_);
        send_alive(ctx, m);
        break;
      }
      case 1: {  // decide
        bool winner = true;
        for (const auto& d : ctx.inbox()) {
          DISTAPX_ASSERT(d.msg.type() == kValue);
          const std::uint64_t theirs = d.msg.field(0);
          const NodeId their_id = ctx.neighbor(d.port);
          if (theirs > value_ ||
              (theirs == value_ && their_id > ctx.id())) {
            winner = false;
          }
        }
        if (winner) {
          send_alive(ctx, sim::Message(kJoin));
          ctx.halt(kOutInIs);
        }
        break;
      }
      case 2: {  // removed by a joining neighbor
        bool joined_neighbor = false;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kJoin) joined_neighbor = true;
        }
        if (joined_neighbor) {
          send_alive(ctx, sim::Message(kRemoved));
          ctx.halt(kOutNotInIs);
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  [[nodiscard]] bool any_alive() const {
    for (bool a : alive_) {
      if (a) return true;
    }
    return false;
  }

  void send_alive(sim::Ctx& ctx, const sim::Message& m) {
    for (std::uint32_t p = 0; p < alive_.size(); ++p) {
      if (alive_[p]) ctx.send(p, m);
    }
  }

  int value_bits_;
  std::uint64_t value_ = 0;
  std::vector<bool> alive_;
};

}  // namespace

sim::ProgramFactory make_luby_program(const Graph& g) {
  const int value_bits = 2 * bits_for_count(std::max<NodeId>(g.num_nodes(), 2));
  return [value_bits](NodeId) {
    return std::make_unique<LubyProgram>(value_bits);
  };
}

IsResult run_luby_mis(const Graph& g, std::uint64_t seed,
                      std::uint32_t max_rounds) {
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.max_rounds = max_rounds;
  const auto result = net.run(make_luby_program(g), opts);
  DISTAPX_ENSURE_MSG(result.metrics.completed, "Luby MIS hit the round cap");
  return collect_is(result.outputs, result.metrics);
}

}  // namespace distapx
