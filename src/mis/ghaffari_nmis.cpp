#include "mis/ghaffari_nmis.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "graph/algos.hpp"
#include "mis/luby.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

// Fixed-point scale for effective-degree sums: deterministic across
// platforms, resolution 2^-30 (probabilities below that are ~0 anyway).
constexpr std::uint64_t kFx = std::uint64_t{1} << 30;

std::uint64_t prob_fx(std::uint32_t K, std::uint32_t j) {
  // K^{-j} in fixed point via integer division; saturates to 0.
  std::uint64_t denom = 1;
  for (std::uint32_t i = 0; i < j; ++i) {
    if (denom > kFx) return 0;
    denom *= K;
  }
  return kFx / denom;
}

double prob_double(std::uint32_t K, std::uint32_t j) {
  return std::pow(static_cast<double>(K), -static_cast<double>(j));
}

enum MsgType : std::uint32_t {
  kExponent = 1,
  kMarked = 2,
  kJoin = 3,
  kRemoved = 4,
};

class NmisProgram final : public sim::NodeProgram {
 public:
  NmisProgram(NmisParams params, std::uint32_t iterations, int exp_bits)
      : params_(params), iterations_(iterations), exp_bits_(exp_bits) {}

  void init(sim::Ctx& ctx) override {
    alive_.assign(ctx.degree(), true);
    if (ctx.degree() == 0) {
      ctx.halt(kOutInIs);
    }
  }

  void round(sim::Ctx& ctx) override {
    const std::uint32_t phase = (ctx.round() - 1) % 3;
    switch (phase) {
      case 0: {
        // Process join/removal notices from the previous iteration.
        bool neighbor_joined = false;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kJoin) neighbor_joined = true;
          if (d.msg.type() == kRemoved) alive_[d.port] = false;
        }
        if (neighbor_joined) {
          send_alive(ctx, sim::Message(kRemoved));
          ctx.halt(kOutNotInIs);
          return;
        }
        if (iteration_ >= iterations_) {
          ctx.halt(kOutUndecided);
          return;
        }
        if (!any_alive()) {
          ctx.halt(kOutInIs);
          return;
        }
        sim::Message m(kExponent);
        m.push(exponent_, exp_bits_);
        send_alive(ctx, m);
        break;
      }
      case 1: {
        // Effective degree from neighbors' probabilities; mark. The inbox
        // may also hold kRemoved notices from nodes that died in phase 0.
        std::uint64_t d_fx = 0;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kRemoved) {
            alive_[d.port] = false;
            continue;
          }
          DISTAPX_ASSERT(d.msg.type() == kExponent);
          d_fx += prob_fx(params_.K,
                          static_cast<std::uint32_t>(d.msg.field(0)));
        }
        high_degree_ = d_fx >= 2 * kFx;
        marked_ = ctx.rng().bernoulli(prob_double(params_.K, exponent_));
        if (marked_) {
          send_alive(ctx, sim::Message(kMarked));
        }
        break;
      }
      case 2: {
        bool neighbor_marked = false;
        for (const auto& d : ctx.inbox()) {
          if (d.msg.type() == kMarked) neighbor_marked = true;
        }
        if (marked_ && !neighbor_marked) {
          send_alive(ctx, sim::Message(kJoin));
          ctx.halt(kOutInIs);
          return;
        }
        // p_{t+1} = p/K if d_t >= 2 else min(K p, 1/K).
        if (high_degree_) {
          ++exponent_;
        } else if (exponent_ > 1) {
          --exponent_;
        }
        exponent_ = std::min(exponent_,
                             (std::uint32_t{1} << exp_bits_) - 1);
        ++iteration_;
        break;
      }
      default:
        break;
    }
  }

 private:
  [[nodiscard]] bool any_alive() const {
    return std::any_of(alive_.begin(), alive_.end(),
                       [](bool a) { return a; });
  }

  void send_alive(sim::Ctx& ctx, const sim::Message& m) {
    for (std::uint32_t p = 0; p < alive_.size(); ++p) {
      if (alive_[p]) ctx.send(p, m);
    }
  }

  NmisParams params_;
  std::uint32_t iterations_;
  int exp_bits_;
  std::uint32_t exponent_ = 1;  // p = K^{-exponent}
  std::uint32_t iteration_ = 0;
  bool marked_ = false;
  bool high_degree_ = false;
  std::vector<bool> alive_;
};

}  // namespace

std::uint32_t nmis_iteration_budget(std::uint32_t max_degree,
                                    const NmisParams& params) {
  if (params.iterations > 0) return params.iterations;
  DISTAPX_ENSURE(params.K >= 2);
  DISTAPX_ENSURE(params.delta > 0 && params.delta < 1);
  const double log_delta =
      std::log2(static_cast<double>(std::max<std::uint32_t>(max_degree, 2)));
  const double term1 = log_delta / std::log2(static_cast<double>(params.K));
  const double term2 = static_cast<double>(params.K) * params.K *
                       std::log(1.0 / params.delta);
  return static_cast<std::uint32_t>(
      std::ceil(params.beta * (term1 + term2))) + 1;
}

sim::ProgramFactory make_nmis_program(const Graph& g, NmisParams params) {
  const std::uint32_t iters = nmis_iteration_budget(g.max_degree(), params);
  const int exp_bits =
      std::max(4, bits_for_value(static_cast<std::uint64_t>(iters) + 1));
  return [params, iters, exp_bits](NodeId) {
    return std::make_unique<NmisProgram>(params, iters, exp_bits);
  };
}

IsResult run_nmis(const Graph& g, std::uint64_t seed, NmisParams params) {
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const auto result = net.run(make_nmis_program(g, params), opts);
  DISTAPX_ENSURE(result.metrics.completed);
  return collect_is(result.outputs, result.metrics);
}

IsResult run_nmis_then_luby(const Graph& g, std::uint64_t seed,
                            NmisParams params) {
  IsResult first = run_nmis(g, seed, params);
  if (first.undecided.empty()) return first;

  // Undecided nodes have no neighbor in the IS (joins are processed before
  // the budget check), so an MIS of their induced subgraph completes the IS.
  std::vector<bool> keep(g.num_nodes(), false);
  for (NodeId v : first.undecided) keep[v] = true;
  const auto sub = induced_subgraph(g, keep);
  IsResult finish = run_luby_mis(sub.graph, hash_combine(seed, 0x10b5));
  for (NodeId v : finish.independent_set) {
    first.independent_set.push_back(sub.original_id[v]);
  }
  first.undecided.clear();
  first.metrics.rounds += finish.metrics.rounds;
  first.metrics.messages += finish.metrics.messages;
  first.metrics.total_bits += finish.metrics.total_bits;
  first.metrics.max_edge_bits =
      std::max(first.metrics.max_edge_bits, finish.metrics.max_edge_bits);
  return first;
}

}  // namespace distapx
