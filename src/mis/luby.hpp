// Luby's randomized MIS [Lub86] as a CONGEST node program.
//
// This is the black-box MIS the paper plugs into Algorithm 2 for its
// CONGEST bound (O(MIS(G) log W) with MIS(G) = O(log n) w.h.p.).
//
// Protocol (3 rounds per iteration):
//   phase 0  process removals announced last iteration; broadcast a fresh
//            random value to surviving neighbors
//   phase 1  a node whose (value, id) is a strict local maximum joins the
//            IS, announces kJoin, halts with kOutInIs
//   phase 2  nodes that heard kJoin announce kRemoved and halt with
//            kOutNotInIs
#pragma once

#include "mis/mis.hpp"
#include "sim/network.hpp"

namespace distapx {

/// Factory for the per-node Luby program on an n-node network.
sim::ProgramFactory make_luby_program(const Graph& g);

/// Convenience runner: Luby MIS on g under CONGEST.
IsResult run_luby_mis(const Graph& g, std::uint64_t seed,
                      std::uint32_t max_rounds = 1u << 20);

}  // namespace distapx
