#include "service/batch_server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/genspec.hpp"
#include "graph/io.hpp"
#include "matching/lr_matching.hpp"
#include "matching/lr_matching_det.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/luby.hpp"
#include "service/result_cache.hpp"
#include "sim/run_many.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace distapx::service {

namespace {

sim::RunOptions run_opts(const JobSpec& spec, std::uint64_t seed) {
  sim::RunOptions o;
  o.policy = spec.policy;
  o.seed = seed;
  o.max_rounds = spec.max_rounds;
  return o;
}

RunRow row_from(const sim::RunMetrics& m, std::uint64_t seed) {
  RunRow row;
  row.seed = seed;
  row.rounds = m.rounds;
  row.messages = m.messages;
  row.total_bits = m.total_bits;
  row.max_edge_bits = m.max_edge_bits;
  row.completed = m.completed;
  return row;
}

/// Runs a single-program IS algorithm on the worker's leased Network and
/// scores the IS against `score_weights` (nullptr = cardinality).
RunRow run_is_program(const ResolvedJob& job, NetworkLease& lease,
                      std::uint64_t seed, const sim::ProgramFactory& factory,
                      const NodeWeights* score_weights) {
  auto& net = lease.acquire(job.graph);
  const auto r = net.run(factory, run_opts(job.spec, seed));
  RunRow row = row_from(r.metrics, seed);
  for (NodeId v = 0; v < job.graph.num_nodes(); ++v) {
    if (r.outputs[v] == kOutInIs) {
      ++row.solution_size;
      row.objective += score_weights ? (*score_weights)[v] : 1;
    }
  }
  return row;
}

RunRow matching_row(const std::vector<EdgeId>& matching,
                    const EdgeWeights* score_weights, RunRow row) {
  row.solution_size = matching.size();
  row.objective = score_weights
                      ? matching_weight(*score_weights, matching)
                      : static_cast<Weight>(matching.size());
  return row;
}

/// The per-algorithm run adapters. Single-program algorithms reuse the
/// leased Network; multi-phase pipelines run their own internal networks
/// (their internal bandwidth policies match the paper's analysis, so the
/// job's policy applies only to leased runs).
RunRow dispatch(const ResolvedJob& job, NetworkLease& lease,
                std::uint64_t seed) {
  const JobSpec& spec = job.spec;
  const std::string& a = spec.algorithm;
  if (a == "luby") {
    return run_is_program(job, lease, seed, make_luby_program(job.graph),
                          nullptr);
  }
  if (a == "nmis") {
    return run_is_program(job, lease, seed,
                          make_nmis_program(job.graph, NmisParams{}), nullptr);
  }
  if (a == "maxis-alg2") {
    const Weight max_w =
        job.node_weights.empty()
            ? 1
            : *std::max_element(job.node_weights.begin(),
                                job.node_weights.end());
    return run_is_program(
        job, lease, seed,
        make_layered_maxis_program(job.graph, job.node_weights, max_w),
        &job.node_weights);
  }
  if (a == "maxis-alg3") {
    const auto r = run_coloring_maxis(job.graph, job.node_weights,
                                      ColoringSource::kLinial, seed,
                                      spec.max_rounds);
    RunRow row = row_from(r.coloring_metrics, seed);
    row.rounds += r.maxis_metrics.rounds;
    row.messages += r.maxis_metrics.messages;
    row.total_bits += r.maxis_metrics.total_bits;
    row.max_edge_bits = std::max(row.max_edge_bits,
                                 r.maxis_metrics.max_edge_bits);
    row.completed = r.coloring_metrics.completed &&
                    r.maxis_metrics.completed;
    row.solution_size = r.independent_set.size();
    row.objective = set_weight(job.node_weights, r.independent_set);
    return row;
  }
  if (a == "mwm-lr") {
    const auto r = run_lr_matching(job.graph, job.edge_weights, seed);
    return matching_row(r.matching, &job.edge_weights,
                        row_from(r.metrics, seed));
  }
  if (a == "mwm-lr-det") {
    const auto r = run_lr_matching_deterministic(job.graph, job.edge_weights);
    RunRow row = row_from(r.coloring_metrics, seed);
    row.rounds += r.matching_metrics.rounds;
    row.messages += r.matching_metrics.messages;
    row.total_bits += r.matching_metrics.total_bits;
    row.max_edge_bits = std::max(row.max_edge_bits,
                                 r.matching_metrics.max_edge_bits);
    row.completed = r.coloring_metrics.completed &&
                    r.matching_metrics.completed;
    return matching_row(r.matching, &job.edge_weights, row);
  }
  if (a == "mcm-2eps") {
    Nmm2EpsParams p;
    p.epsilon = spec.eps;
    const auto r = run_nmm_2eps_matching(job.graph, seed, p);
    return matching_row(r.matching, nullptr, row_from(r.metrics, seed));
  }
  if (a == "mwm-2eps") {
    Weighted2EpsParams p;
    p.epsilon = spec.eps;
    const auto r =
        run_weighted_2eps_matching(job.graph, job.edge_weights, seed, p);
    return matching_row(r.matching, &job.edge_weights,
                        row_from(r.metrics, seed));
  }
  if (a == "mcm-1eps") {
    McmCongestParams p;
    p.epsilon = spec.eps;
    const auto r = run_mcm_1eps_congest(job.graph, seed, p);
    RunRow row;
    row.seed = seed;
    row.rounds = r.rounds;
    row.completed = true;  // the stage budget always terminates
    return matching_row(r.matching, nullptr, row);
  }
  if (a == "proposal") {
    ProposalParams p;
    p.epsilon = spec.eps;
    const auto r = run_proposal_matching(job.graph, seed, p);
    return matching_row(r.matching, nullptr, row_from(r.metrics, seed));
  }
  throw JobError("unknown algorithm \"" + a + "\"");
}

}  // namespace

ResolvedJob resolve_job(JobSpec spec) {
  // Validate before materializing anything: a typo'd algorithm must not
  // cost a multi-million-edge graph generation first.
  if (!is_known_algorithm(spec.algorithm)) {
    throw JobError("unknown algorithm \"" + spec.algorithm + "\"");
  }

  ResolvedJob job;
  job.spec = std::move(spec);
  job.cache_key_prefix = job_fingerprinter(job.spec);

  // Same derivation as the single-run CLI: one RNG stream seeds the
  // generator and then the weights, so a job's workload is a pure function
  // of (source, gseed, maxw).
  Rng rng(hash_combine(job.spec.graph_seed, 0xc11));
  std::optional<EdgeWeights> loaded_ew;
  if (!job.spec.gen_spec.empty()) {
    job.graph = gen::from_spec(job.spec.gen_spec, rng);
  } else {
    auto loaded = io::load_edge_list(job.spec.graph_file);
    job.graph = std::move(loaded.graph);
    loaded_ew = std::move(loaded.edge_weights);
  }
  job.node_weights =
      gen::uniform_node_weights(job.graph.num_nodes(), job.spec.max_w, rng);
  job.edge_weights =
      loaded_ew ? std::move(*loaded_ew)
                : gen::uniform_edge_weights(job.graph.num_edges(),
                                            job.spec.max_w, rng);
  return job;
}

std::size_t BatchServer::submit(JobSpec spec) {
  if (spec.name.empty()) spec.name = "job" + std::to_string(jobs_.size());
  jobs_.push_back(resolve_job(std::move(spec)));
  return jobs_.size() - 1;
}

void BatchServer::submit_all(const std::vector<JobSpec>& specs) {
  for (const JobSpec& spec : specs) submit(spec);
}

BatchResult BatchServer::serve() {
  // Shard: one unit per (job, seed index), flattened in submission order.
  // Workers pull from one global queue, so the pool stays saturated across
  // job boundaries — no per-job fork/join barrier.
  struct Unit {
    std::uint32_t job;
    std::uint32_t run;
  };
  std::vector<Unit> units;
  std::vector<std::vector<RunRow>> rows(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const std::uint32_t n_seeds = jobs_[j].spec.num_seeds;
    rows[j].resize(n_seeds);
    for (std::uint32_t r = 0; r < n_seeds; ++r) {
      units.push_back({static_cast<std::uint32_t>(j), r});
    }
  }

  const unsigned workers = sim::resolve_threads(opts_.threads, units.size());
  const auto start = std::chrono::steady_clock::now();

  // Metrics land in the caller's registry when one is wired (the serving
  // tiers), or in this throwaway when not (pure batch runs) — either way
  // the hot loop below is branch-free on instrumentation.
  metrics::Registry local_registry;
  metrics::Registry& reg =
      opts_.registry != nullptr ? *opts_.registry : local_registry;
  metrics::Counter& runs_total = reg.counter("runs_total");
  metrics::Counter& runs_computed = reg.counter("runs_computed_total");
  // Per-job histogram handles resolved once, outside the unit loop: the
  // registry lookup (mutex + map walk) must not sit on the per-seed path.
  std::vector<metrics::Histogram*> job_hist(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    job_hist[j] = &reg.histogram(
        "run_latency_ms{algo=\"" + jobs_[j].spec.algorithm + "\"}",
        metrics::default_latency_buckets_ms());
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto timed_dispatch = [&](const ResolvedJob& job, NetworkLease& lease,
                            std::uint64_t seed, std::uint32_t job_index) {
    const auto t0 = std::chrono::steady_clock::now();
    RunRow row = dispatch(job, lease, seed);
    job_hist[job_index]->observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    runs_computed.inc();
    return row;
  };
  auto drain = [&] {
    NetworkLease lease;  // one reusable Network per worker
    // Worker threads are fresh — the submitting thread's context does not
    // propagate — so the job's collector is installed explicitly here.
    const trace::ContextGuard trace_guard(
        trace::Context{opts_.trace, opts_.trace_parent});
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= units.size()) return;
      const Unit u = units[i];
      const ResolvedJob& job = jobs_[u.job];
      try {
        const std::uint64_t seed = job.spec.seed_at(u.run);
        runs_total.inc();
        if (opts_.cache != nullptr) {
          const Fingerprint key =
              run_fingerprint(job.cache_key_prefix, seed);
          bool hit = false;
          {
            trace::ScopedSpan span("cache-lookup");
            span.annotate("seed", seed);
            if (auto cached = opts_.cache->lookup(key)) {
              rows[u.job][u.run] = *cached;
              hit = true;
            }
          }
          if (hit) {
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          {
            trace::ScopedSpan span("compute");
            span.annotate("algo", job.spec.algorithm);
            span.annotate("seed", seed);
            rows[u.job][u.run] = timed_dispatch(job, lease, seed, u.job);
          }
          try {
            trace::ScopedSpan span("cache-store");
            span.annotate("seed", seed);
            opts_.cache->store(key, rows[u.job][u.run]);
          } catch (const JobError&) {
            // A fill failure (disk full, unwritable cache dir) degrades
            // this unit to uncached serving; the computed row is already
            // in hand and must not be discarded, let alone fail the
            // batch. The next lookup of this key simply misses again.
          }
        } else {
          trace::ScopedSpan span("compute");
          span.annotate("algo", job.spec.algorithm);
          span.annotate("seed", seed);
          rows[u.job][u.run] = timed_dispatch(job, lease, seed, u.job);
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        next.store(units.size());  // cancel the remaining queue
        return;
      }
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(drain);
    for (auto& th : pool) th.join();
  }
  if (error) std::rethrow_exception(error);

  BatchResult result;
  result.cache_hits = cache_hits.load(std::memory_order_relaxed);
  result.threads_used = workers;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.jobs.reserve(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const ResolvedJob& job = jobs_[j];
    JobResult jr;
    jr.name = job.spec.name;
    jr.algorithm = job.spec.algorithm;
    jr.source = !job.spec.gen_spec.empty() ? job.spec.gen_spec
                                           : job.spec.graph_file;
    jr.n = job.graph.num_nodes();
    jr.m = job.graph.num_edges();
    jr.max_degree = job.graph.max_degree();
    jr.rows = std::move(rows[j]);

    Summary rounds, messages, bits, objective;
    for (const RunRow& row : jr.rows) {
      rounds.add(static_cast<double>(row.rounds));
      messages.add(static_cast<double>(row.messages));
      bits.add(static_cast<double>(row.total_bits));
      objective.add(static_cast<double>(row.objective));
      jr.all_completed = jr.all_completed && row.completed;
    }
    if (!jr.rows.empty()) {
      jr.mean_rounds = rounds.mean();
      jr.mean_messages = messages.mean();
      jr.mean_bits = bits.mean();
      jr.mean_objective = objective.mean();
      jr.min_objective = jr.rows.front().objective;
      jr.max_objective = jr.rows.front().objective;
      for (const RunRow& row : jr.rows) {
        jr.min_objective = std::min(jr.min_objective, row.objective);
        jr.max_objective = std::max(jr.max_objective, row.objective);
      }
    }
    result.total_runs += jr.rows.size();
    result.jobs.push_back(std::move(jr));
  }
  result.computed = result.total_runs - result.cache_hits;
  return result;
}

Table summary_table(const BatchResult& r) {
  Table t({"job", "algo", "source", "n", "m", "maxdeg", "runs",
           "mean_rounds", "mean_msgs", "mean_bits", "mean_obj", "min_obj",
           "max_obj", "completed"});
  for (const JobResult& j : r.jobs) {
    t.add_row({j.name, j.algorithm, j.source,
               Table::fmt(static_cast<std::uint64_t>(j.n)),
               Table::fmt(static_cast<std::uint64_t>(j.m)),
               Table::fmt(static_cast<std::uint64_t>(j.max_degree)),
               Table::fmt(static_cast<std::uint64_t>(j.rows.size())),
               Table::fmt(j.mean_rounds, 1), Table::fmt(j.mean_messages, 1),
               Table::fmt(j.mean_bits, 1), Table::fmt(j.mean_objective, 1),
               Table::fmt(static_cast<std::int64_t>(j.min_objective)),
               Table::fmt(static_cast<std::int64_t>(j.max_objective)),
               j.all_completed ? "yes" : "NO"});
  }
  return t;
}

Table runs_table(const BatchResult& r) {
  Table t({"job", "algo", "seed", "rounds", "messages", "total_bits",
           "max_edge_bits", "completed", "size", "objective"});
  for (const JobResult& j : r.jobs) {
    for (const RunRow& row : j.rows) {
      t.add_row({j.name, j.algorithm, Table::fmt(row.seed),
                 Table::fmt(static_cast<std::uint64_t>(row.rounds)),
                 Table::fmt(row.messages), Table::fmt(row.total_bits),
                 Table::fmt(static_cast<std::uint64_t>(row.max_edge_bits)),
                 row.completed ? "1" : "0", Table::fmt(row.solution_size),
                 Table::fmt(static_cast<std::int64_t>(row.objective))});
    }
  }
  return t;
}

}  // namespace distapx::service
