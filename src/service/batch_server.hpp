// Sharded multi-graph batch serving.
//
// PR 1's sim::run_many made one (graph, algorithm) pair fast across seeds;
// this subsystem serves an arbitrary *mix* of jobs — different graphs,
// different algorithms, different seed ranges — over one shared worker
// pool. Every job is sharded into per-seed work units; workers pull units
// from one global queue, so a long job's tail no longer idles the threads
// that finished a short job (the win bench_batch_serving measures).
//
// Each worker owns one reusable sim::Network through a NetworkLease and
// rebinds it only when the unit it picked up belongs to a different graph
// than the previous one — serving heterogeneous jobs back-to-back settles
// into zero allocation once the largest graph in the mix has been seen.
//
// Determinism contract (tested by test_batch_server.cpp): RunRow i of job
// j depends only on (spec_j, seed) — never on the thread count, on
// scheduling order, or on what other jobs share the pool — and equals what
// a sequential per-job run would produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/job_spec.hpp"
#include "sim/network.hpp"
#include "support/fingerprint.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace distapx::service {

/// One (job, seed) execution, reduced to a uniform row.
struct RunRow {
  std::uint64_t seed = 0;
  std::uint32_t rounds = 0;        ///< simulator rounds (summed over phases)
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint32_t max_edge_bits = 0;
  bool completed = false;
  std::uint64_t solution_size = 0;  ///< |IS| or |matching|
  Weight objective = 0;             ///< weighted value (= size if unweighted)

  friend bool operator==(const RunRow&, const RunRow&) = default;
};

/// A JobSpec with its workload materialized: the graph is generated or
/// loaded once (deterministically from spec.graph_seed) and weights are
/// sampled once. Per-seed execution is dispatched on spec.algorithm:
/// single-program algorithms run on the worker's leased Network,
/// multi-phase pipelines (mwm-2eps, mcm-1eps, ...) run their own internal
/// networks.
struct ResolvedJob {
  JobSpec spec;
  Graph graph;
  NodeWeights node_weights;
  EdgeWeights edge_weights;
  /// Per-job result-cache key prefix (job_fingerprinter, result_cache.hpp)
  /// — per-seed keys absorb just the seed instead of re-canonicalizing the
  /// spec on every unit.
  Fingerprinter cache_key_prefix;
};

/// Materializes a spec (throws JobError / gen::SpecError / EnsureError on
/// an unknown algorithm, malformed spec, or unreadable graph file).
ResolvedJob resolve_job(JobSpec spec);

/// Per-worker cache of one reusable Network, rebound lazily as the worker
/// serves work units from different jobs.
class NetworkLease {
 public:
  sim::Network& acquire(const Graph& g) {
    if (bound_ != &g) {
      net_.rebind(g);
      bound_ = &g;
    }
    return net_;
  }

 private:
  sim::Network net_;
  const Graph* bound_ = nullptr;
};

struct JobResult {
  std::string name;
  std::string algorithm;
  std::string source;  ///< gen spec or file path
  NodeId n = 0;
  EdgeId m = 0;
  std::uint32_t max_degree = 0;
  std::vector<RunRow> rows;  ///< indexed like the job's seed range

  // Aggregates over rows (folded in seed order — deterministic):
  double mean_rounds = 0;
  double mean_messages = 0;
  double mean_bits = 0;
  double mean_objective = 0;
  Weight min_objective = 0;
  Weight max_objective = 0;
  bool all_completed = true;
};

struct BatchResult {
  std::vector<JobResult> jobs;  ///< in submission order
  std::uint64_t total_runs = 0;
  std::uint64_t cache_hits = 0;  ///< runs served from the result cache
  std::uint64_t computed = 0;    ///< runs actually executed
  unsigned threads_used = 0;
  double wall_seconds = 0;  ///< timing only; excluded from determinism
};

class ResultCache;  // service/result_cache.hpp

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency (clamped to the unit count).
  unsigned threads = 0;
  /// Optional result cache: hits skip execution, misses are computed and
  /// filled. Rows are bit-identical either way (the cache stores the full
  /// RunRow keyed on everything it depends on — see result_cache.hpp).
  /// Open the cache with a byte budget (ResultCache's second constructor
  /// argument, the CLI's --cache-budget) to keep it LRU-bounded while
  /// serving. Not owned; must outlive serve().
  ResultCache* cache = nullptr;
  /// Metrics destination: per-algorithm run_latency_ms histograms and the
  /// runs_total / runs_computed_total counters. Null = metrics are
  /// dropped (pure batch CLI runs pay nothing); the serving tiers pass
  /// their process registry. Not owned; must outlive serve().
  metrics::Registry* registry = nullptr;
  /// Span destination: each (job, seed) unit records cache-lookup /
  /// compute / cache-store child spans under `trace_parent` (the caller's
  /// open span — the socket lane's lane-execute, the daemon's file span).
  /// Null = no tracing. Not owned; must outlive serve(). The collector is
  /// thread-safe, so all workers share it.
  trace::Collector* trace = nullptr;
  std::uint32_t trace_parent = 0;
};

/// Shards submitted jobs into per-seed work units and serves them over one
/// shared worker pool.
class BatchServer {
 public:
  explicit BatchServer(BatchOptions opts = {}) : opts_(opts) {}

  /// Materializes and enqueues a job; returns its index. Throws on a spec
  /// that cannot be resolved (nothing is partially enqueued).
  std::size_t submit(JobSpec spec);

  /// Convenience: submit every job of a parsed file.
  void submit_all(const std::vector<JobSpec>& specs);

  [[nodiscard]] std::size_t num_jobs() const noexcept { return jobs_.size(); }
  [[nodiscard]] const ResolvedJob& job(std::size_t i) const {
    return jobs_.at(i);
  }

  /// Runs every remaining (job, seed) unit to completion and returns the
  /// structured results. Rethrows the first per-run exception after the
  /// pool drains. May be called once per submitted batch; jobs stay
  /// submitted, so a second serve() re-runs the same batch.
  BatchResult serve();

 private:
  BatchOptions opts_;
  std::vector<ResolvedJob> jobs_;
};

// ---- report emission (console / CSV / JSON via support/table) ------------

/// One row per job: aggregates.
Table summary_table(const BatchResult& r);

/// One row per run: the raw RunRows (the determinism witness).
Table runs_table(const BatchResult& r);

}  // namespace distapx::service
