// Long-lived spool-serving daemon.
//
// The batch server (batch_server.hpp) serves one job file per process
// invocation; the daemon turns that into a service: it watches a spool
// directory for job files, runs each through a BatchServer backed by an
// optional result cache (result_cache.hpp), and publishes per-file results
// next to the spool. Producers submit work with an atomic rename into the
// spool — write "sweep.tmp", rename to "sweep.job" — so the daemon never
// reads a half-written file; only names ending in ".job" are claimed.
//
// Spool layout (all created by the constructor):
//   <spool>/NAME.job              incoming work, claimed in lexicographic
//                                 name order (deterministic)
//   <spool>/done/NAME.job         processed job file (moved, audit trail)
//   <spool>/done/NAME.summary.csv one row per job (aggregates)
//   <spool>/done/NAME.runs.csv    one row per run (determinism witness)
//   <spool>/done/NAME.report.txt  served/computed/hit-rate counters
//   <spool>/failed/NAME.job       quarantined malformed file
//   <spool>/failed/NAME.error     its line-numbered diagnostic
//   <spool>/journal.{log,snap}    claim/publish changelog (crash recovery)
//   <spool>/stop                  sentinel: daemon removes it and exits
//
// Crash safety: results are published with write_file_durable (temp +
// fdatasync + rename + directory fsync), and the publish -> move window is
// journaled in a write-ahead changelog (support/changelog.hpp): `P NAME`
// lands durably after the three done-files exist and before the job file
// moves, `D NAME` after the move. A daemon restarted over a spool whose
// predecessor died inside that window finds the P-without-D record, sees
// the done files already complete, and *resumes*: it finishes the move
// without recomputing and without rewriting a single published byte —
// each result is published exactly once (spool_resumed_total counts
// these). A P-without-D whose job file already left the spool (crash
// after move, before D) is settled at startup. The journal is compacted
// to a snapshot of still-pending claims on every open.
//
// Determinism contract: NAME.summary.csv and NAME.runs.csv are pure
// functions of the job file's content (and kEngineVersion) — independent
// of thread count, of cache warmth, and of what else sits in the spool.
// The report.txt counters (hit rate, wall time) are operational telemetry
// and deliberately live outside that contract.
//
// A malformed job file is quarantined with its JobError and the daemon
// keeps serving; it never wedges the spool. A file that cannot be *moved*
// out of the spool (done/failed unwritable, disk full) is pinned in-memory
// and skipped on later scans instead of being re-served every poll cycle;
// restart the daemon after fixing the filesystem to retry it. run() is
// cleanly stoppable via request_stop() (from another thread or a signal
// handler) or by touching the "stop" sentinel from outside the process.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "service/result_cache.hpp"
#include "support/changelog.hpp"
#include "support/trace.hpp"

namespace distapx::service {

struct DaemonOptions {
  std::string spool_dir;  ///< required; created if absent
  /// Result-cache directory; empty = serve without a cache.
  std::string cache_dir;
  /// Byte budget for the cache (ResultCache open-with-budget semantics:
  /// evict to budget at open, re-enforce on every fill). 0 = unbounded;
  /// nonzero without cache_dir is a JobError.
  std::uint64_t cache_budget = 0;
  /// Worker threads per job file (BatchOptions::threads semantics).
  unsigned threads = 0;
  /// Upper bound on the delay between spool scans in run(), in
  /// milliseconds. run() backs off exponentially while the spool stays
  /// empty — the scan after a served file comes almost immediately, then
  /// 2x per empty scan up to this cap — so a busy spool is drained with
  /// low latency and an idle daemon stops burning a fixed-rate stat loop.
  std::uint32_t poll_ms = 200;
  /// Stop after serving this many job files (0 = no limit). Lets tests and
  /// one-shot CLI invocations bound the daemon's lifetime.
  std::uint64_t max_files = 0;
  /// Metrics destination, shared with the cache and batch servers; the
  /// CLI passes the process registry so --admin scrapes the daemon too.
  /// Null -> a private registry. Not owned; must outlive the daemon.
  metrics::Registry* registry = nullptr;
  /// Where completed per-file traces are published (recent ring +
  /// slowest-K, rendered by GET /tracez). Null = per-file traces are not
  /// built at all. Not owned; must outlive the daemon.
  trace::TraceSink* trace_sink = nullptr;
  /// A job file whose end-to-end trace exceeds this many milliseconds
  /// emits one rate-limited `event=slow_job` log line with the flattened
  /// span breakdown. 0 = disabled (the default).
  std::uint32_t slow_ms = 0;
};

/// Outcome of one job file, as recorded in done/NAME.report.txt.
struct JobFileReport {
  std::string name;   ///< job-file stem ("sweep" for sweep.job)
  bool ok = false;
  /// True when this file's results were already published by a previous
  /// (crashed) daemon and only the spool move was finished here — no
  /// recompute, no rewrite, and the run counters below stay zero (the
  /// published report.txt has the originals).
  bool resumed = false;
  std::string error;  ///< the quarantining diagnostic when !ok
  std::uint64_t runs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t computed = 0;
  double wall_seconds = 0;

  [[nodiscard]] double hit_rate() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(runs);
  }
};

/// The idle-poll backoff schedule run() follows: 1ms after activity,
/// doubling per empty scan, capped at `cap_ms` (a zero cap polls as fast
/// as the scan itself — the old poll_ms=0 busy-drain behavior). Exposed
/// so tests can pin the schedule without timing a sleep loop.
std::uint32_t next_idle_wait_ms(std::uint32_t current_ms,
                                std::uint32_t cap_ms) noexcept;

class Daemon {
 public:
  /// Creates the spool layout (and the cache, when configured). Throws
  /// JobError if a directory cannot be created.
  explicit Daemon(DaemonOptions opts);

  /// Serves one job file already inside the spool: parse, serve, publish
  /// results, move to done/ (or quarantine to failed/). Never throws on a
  /// bad job file — the failure becomes the report.
  JobFileReport process_file(const std::string& path);

  /// One spool scan: claims every *.job file in lexicographic name order.
  std::vector<JobFileReport> drain_once();

  /// Poll loop: drain, sleep poll_ms, repeat — until request_stop(), the
  /// stop sentinel, or max_files. Returns reports in processing order.
  std::vector<JobFileReport> run();

  /// Safe from other threads and from signal handlers.
  void request_stop() noexcept { stop_.store(true); }

  [[nodiscard]] bool stop_requested() const noexcept { return stop_.load(); }
  [[nodiscard]] const DaemonOptions& options() const noexcept { return opts_; }
  /// Null when no cache_dir was configured.
  [[nodiscard]] ResultCache* cache() noexcept {
    return cache_ ? &*cache_ : nullptr;
  }
  /// The registry this daemon instruments (configured or private).
  [[nodiscard]] metrics::Registry& registry() noexcept { return *reg_; }
  /// The claim/publish journal (for tests asserting record counts).
  [[nodiscard]] const Changelog& journal() const noexcept { return *journal_; }

 private:
  DaemonOptions opts_;
  /// Fallback when options carried no registry; before cache_ so the
  /// cache can share it.
  std::unique_ptr<metrics::Registry> own_registry_;
  metrics::Registry* reg_ = nullptr;
  std::optional<ResultCache> cache_;  ///< engaged iff cache_dir is set
  /// Claim/publish changelog at <spool>/journal; always engaged after
  /// construction (optional only for deferred init).
  std::optional<Changelog> journal_;
  /// Job names with a replayed `P` record and no `D`: published by a
  /// crashed predecessor, awaiting resume. Drained by process_file.
  std::unordered_set<std::string> published_;
  std::atomic<bool> stop_{false};
  std::uint64_t served_ = 0;
  /// Trace-id sequence for per-file traces (ids are per-daemon, like the
  /// socket tier's submit numbers are per-server).
  std::uint64_t trace_seq_ = 0;
  /// Job-file names that could not be moved out of the spool: skipped by
  /// drain_once so a broken done/failed directory cannot busy-loop run().
  std::unordered_set<std::string> stuck_;
};

}  // namespace distapx::service
