// Cache lifecycle management: size accounting, LRU eviction under a byte
// budget, and scan/verify/repair for result-cache directories.
//
// PR 3's ResultCache can only grow; this layer makes a cache directory a
// managed resource. A CacheManager tracks per-entry metadata — size, a
// logical last-access sequence, the key fingerprint recovered from the
// entry path — in memory, persisted through a write-ahead changelog
// (support/changelog.hpp) at <dir>/manifest{.snap,.log}: the snapshot
// holds one `F hex size` record per live entry in LRU order, the tail
// accumulates `F` (fill) and `T` (touch) records between compactions.
//
// Opening is O(snapshot + tail), not O(directory): when the changelog
// carries state, replaying it reconstructs the accounting without
// touching a single entry file (cache_open_replays_total). Only a
// directory with no journal at all — fresh, populated by an unbudgeted
// writer, or carrying a pre-changelog text manifest — pays a full
// recursive scan (cache_open_scans_total), after which a snapshot is
// written so the next open replays. Legacy text manifest.log files are
// migrated in place: their line records seed the recency order, then the
// file is rewritten in changelog format.
//
// Safety model — everything here is *advisory* except the deletes:
//   - Entries are immutable, checksummed, recomputable files published by
//     temp + rename. Evicting any entry is always safe: the worst outcome
//     is a future miss and recompute. So approximate accounting (a
//     concurrent process filling or evicting behind our back, a snapshot
//     gone stale against the directory) can never corrupt results, only
//     make eviction less precise; rescan() and verify() re-sync with the
//     directory when precision matters.
//   - Eviction unlinks atomically and tolerates entries already deleted
//     by a concurrent manager (fs::remove on a missing file is a no-op
//     here, not an error).
//   - The changelog absorbs torn tails (crash mid-append) by replaying
//     the valid prefix; entries absent from the journal rank least-recent
//     with a deterministic hex tie-break. Journal write failures are
//     counted (manifest_append_failures_total) and warned, never thrown.
//
// verify() walks the directory (ground truth, not the in-memory map) and
// validates every entry file with the exact machinery lookup() uses
// (check_entry_file: length/magic/format/engine/key-echo/checksum), so
// anything lookup would reject, verify detects — and can quarantine into
// <dir>/quarantine/ or delete. It also adopts valid entries the journal
// did not know about, so a verify doubles as reconciliation.
// distapx_cli's `cache` subcommand fronts all of this for operators.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "service/result_cache.hpp"
#include "support/changelog.hpp"
#include "support/fingerprint.hpp"
#include "support/manifest.hpp"
#include "support/metrics.hpp"

namespace distapx::service {

/// One live entry's metadata, as tracked by the manager.
struct CacheEntryInfo {
  Fingerprint key;
  std::uint64_t size = 0;
  /// Logical last-access sequence: higher = more recently used. 0 for
  /// entries never seen in the journal (they evict first).
  std::uint64_t last_access = 0;
};

/// Directory-level accounting for `cache stats`.
struct CacheDirStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;          ///< sum of live entry sizes
  /// Journal record bytes on disk (snapshot + tail payloads; file-format
  /// framing excluded, so a cleared cache reports 0).
  std::uint64_t manifest_bytes = 0;
  std::uint64_t quarantined = 0;    ///< files under <dir>/quarantine/
};

/// The CacheDirStats a registry snapshot implies (gauges cache_entries,
/// cache_bytes, cache_manifest_bytes, cache_quarantined). stats() refreshes
/// the disk-derived gauges before they are read, so `cache stats` renders
/// from the same snapshot as every other surface.
CacheDirStats cache_dir_stats_from(const metrics::Snapshot& snap);

/// Outcome of one gc() pass.
struct GcReport {
  std::uint64_t evicted_entries = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t live_entries = 0;
  std::uint64_t live_bytes = 0;
};

/// What verify() should do with an invalid entry.
enum class RepairMode {
  kReport,      ///< count and list only
  kQuarantine,  ///< move into <dir>/quarantine/ (default repair)
  kDelete,      ///< unlink
};

/// One invalid entry found by verify().
struct VerifyFinding {
  std::string path;    ///< relative to the cache dir
  EntryStatus status = EntryStatus::kOk;
};

/// Outcome of one verify() walk.
struct VerifyReport {
  std::uint64_t checked = 0;      ///< entry files examined
  std::uint64_t ok = 0;
  std::uint64_t invalid = 0;      ///< failed validation
  std::uint64_t quarantined = 0;  ///< moved to quarantine/
  std::uint64_t deleted = 0;      ///< unlinked
  std::uint64_t foreign = 0;      ///< non-entry files left untouched
  std::vector<VerifyFinding> findings;  ///< the invalid entries
};

/// Outcome of one prewarm() pass (journal-driven page-cache warmup).
struct PrewarmReport {
  std::uint64_t checked = 0;  ///< journal-known entries visited
  std::uint64_t ok = 0;       ///< validated (and now page-cache-resident)
  std::uint64_t invalid = 0;  ///< failed validation or already gone
  std::uint64_t bytes = 0;    ///< bytes of validated entries
};

class CacheManager {
 public:
  /// Opens `dir`: replays the manifest changelog when it carries state
  /// (O(snapshot + tail), no directory walk), full-scans otherwise. The
  /// directory is created if absent (so `cache stats` on a fresh path
  /// works); throws JobError when it cannot be.
  ///
  /// `registry` receives the cache_entries/cache_bytes gauges and the
  /// eviction counters (null -> a private registry; instrumentation is
  /// unconditional either way). Not owned; must outlive the manager.
  explicit CacheManager(std::string dir,
                        metrics::Registry* registry = nullptr);

  /// Flushes buffered journal appends.
  ~CacheManager();

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// The changelog base: the on-disk files are manifest_path() + ".log"
  /// and + ".snap".
  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string quarantine_dir() const;

  /// Records a fill: updates the in-memory map and buffers an `F` journal
  /// record. Thread-safe; journal writes are batched (flushed every
  /// kJournalFlushBatch records, on compaction, and at destruction) so
  /// the per-record cost under the lock is an in-memory push — one
  /// fdatasync per flushed batch, not per record. The journal snapshots
  /// (compacts) once the tail outgrows the live-entry count, so a warm
  /// long-lived daemon's manifest stays bounded. Append failures are
  /// counted and warned, never thrown (advisory metadata).
  void record_put(const Fingerprint& key, std::uint64_t size);

  /// Records a hit (touch): bumps the entry's access sequence and buffers
  /// a `T` record (same batching as record_put). An entry this manager
  /// has never seen (filled by another process) is adopted by stat-ing
  /// the file.
  void record_get(const Fingerprint& key);

  [[nodiscard]] std::uint64_t live_bytes() const;
  [[nodiscard]] std::uint64_t live_entries() const;

  /// Live entries in eviction order (least recently used first; ties by
  /// key hex, so the order is deterministic).
  [[nodiscard]] std::vector<CacheEntryInfo> entries_lru() const;

  /// Also publishes the manifest/quarantine gauges (the walk happens here
  /// anyway), so a snapshot taken right after carries all four series.
  [[nodiscard]] CacheDirStats stats() const;

  /// The registry this manager instruments (configured or private).
  [[nodiscard]] metrics::Registry& registry() noexcept { return *reg_; }

  /// The journal (for tests asserting tail/snapshot record counts).
  [[nodiscard]] const Changelog* journal() const noexcept {
    return changelog_ ? &*changelog_ : nullptr;
  }

  /// Evicts least-recently-used entries until live_bytes() <= budget.
  /// Unlinks are atomic and tolerant of entries a concurrent process
  /// already deleted; an entry whose unlink genuinely fails (permissions,
  /// read-only fs) stays accounted as live, so the report never claims a
  /// budget the disk does not meet. Compacts the journal (writes a fresh
  /// snapshot) when anything was evicted.
  GcReport gc(std::uint64_t budget_bytes);

  /// Walks the directory and validates every entry file; invalid entries
  /// are reported, quarantined, or deleted per `mode`. Foreign files
  /// (anything that is not a well-formed entry path, e.g. stray temp
  /// droppings) are counted but never touched. Valid entries the journal
  /// missed are adopted, and the journal is re-snapshotted after repairs.
  VerifyReport verify(RepairMode mode);

  /// Deletes every entry, the journal, and the quarantine dir. Returns
  /// the number of entries removed.
  std::uint64_t clear();

  /// Re-syncs the in-memory map with the directory (cross-process
  /// convergence); known entries keep their access order. Writes a fresh
  /// snapshot so the next open replays the converged state.
  void rescan();

  /// Flushes pending journal records and compacts into a fresh snapshot
  /// (one `F` record per live entry in LRU order, empty tail). The next
  /// open replays this state in O(entries) without a directory walk.
  void checkpoint();

  /// Journal-driven prewarm: validates every journal-known entry with the
  /// lookup machinery, faulting the entry files into the page cache so a
  /// following sweep's hits never stall on cold reads. Never modifies the
  /// directory (invalid entries are verify's job).
  PrewarmReport prewarm() const;

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t last_access = 0;
  };

  /// Buffered journal records per flush; keeps file I/O off the hot
  /// lookup path (one in-memory push per hit, one append batch — one
  /// fdatasync — per kJournalFlushBatch records).
  static constexpr std::size_t kJournalFlushBatch = 64;

  /// Opens (or migrates, or rebuilds) the changelog at manifest_path().
  /// Returns the legacy text manifest's records when a pre-changelog
  /// journal was migrated — the constructor's scan uses them as the
  /// recency seed. Empty otherwise.
  std::vector<ManifestRecord> open_journal();
  /// Rebuilds the map from the replayed changelog (no directory I/O).
  void replay_locked(std::uint64_t* replayed_records);
  /// Rebuilds the map from a recursive directory walk; `recency` records
  /// (legacy manifest lines or replayed journal) seed the access order.
  void scan_locked(const std::vector<ManifestRecord>& recency);
  /// Applies one journal record to the map (idempotent: replay may
  /// deliver a record twice after a crash between snapshot and tail
  /// reset).
  void apply_record_locked(const ManifestRecord& rec);
  /// Publishes entries_/live_bytes_ to the cache_entries / cache_bytes
  /// gauges; call after any change to the live accounting.
  void publish_gauges_locked() noexcept;
  void buffer_journal_locked(ManifestRecord record);
  void flush_journal_locked();
  /// Snapshot + tail reset; counts and warns on failure.
  void checkpoint_locked();
  /// Live entries in eviction order (least recent first, hex tie-break).
  [[nodiscard]] std::vector<std::pair<std::string, Entry>> lru_sorted_locked()
      const;

  std::string dir_;
  /// Fallback registry (see constructor); declared before the metric
  /// references that bind to it.
  std::unique_ptr<metrics::Registry> own_registry_;
  metrics::Registry* reg_ = nullptr;
  metrics::Gauge& entries_gauge_;
  metrics::Gauge& bytes_gauge_;
  metrics::Gauge& manifest_bytes_gauge_;
  metrics::Gauge& quarantined_gauge_;
  metrics::Counter& evicted_entries_;
  metrics::Counter& evicted_bytes_;
  metrics::Counter& open_scans_;
  metrics::Counter& open_replays_;
  metrics::Counter& append_failures_;
  mutable std::mutex mu_;
  std::optional<Changelog> changelog_;
  /// key hex -> metadata. std::map keeps deterministic iteration for the
  /// hex tie-break in eviction order.
  std::map<std::string, Entry> entries_;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t next_access_ = 1;
  std::vector<ManifestRecord> pending_journal_;
};

}  // namespace distapx::service
