#include "service/job_spec.hpp"

#include <fstream>
#include <sstream>

#include "graph/genspec.hpp"
#include "support/parse.hpp"

namespace distapx::service {

namespace {

[[noreturn]] void fail(const std::string& why) { throw JobError(why); }

std::uint64_t parse_uint(const std::string& key, const std::string& tok,
                         std::uint64_t max_value) {
  const auto value = parse_uint_strict(tok, max_value);
  if (!value) {
    fail(key + "=" + tok + " is not an integer in [0, " +
         std::to_string(max_value) + "]");
  }
  return *value;
}

double parse_double(const std::string& key, const std::string& tok) {
  const auto value = parse_double_strict(tok);
  if (!value) fail(key + "=" + tok + " is not a finite number");
  return *value;
}

/// "F:C" or "C" -> (first, count).
void parse_seeds(const std::string& tok, JobSpec& spec) {
  const auto colon = tok.find(':');
  if (colon == std::string::npos) {
    spec.first_seed = 1;
    spec.num_seeds = static_cast<std::uint32_t>(
        parse_uint("seeds", tok, 1u << 24));
  } else {
    spec.first_seed = parse_uint("seeds", tok.substr(0, colon), UINT64_MAX);
    spec.num_seeds = static_cast<std::uint32_t>(
        parse_uint("seeds", tok.substr(colon + 1), 1u << 24));
  }
  if (spec.num_seeds == 0) fail("seeds=" + tok + " requests zero runs");
}

/// "congest", "congest:MULT" or "local".
sim::BandwidthPolicy parse_policy(const std::string& tok) {
  if (tok == "local") return sim::BandwidthPolicy::local();
  const std::string prefix = "congest";
  if (tok == prefix) return sim::BandwidthPolicy::congest(32);
  if (tok.rfind(prefix + ":", 0) == 0) {
    const auto mult = static_cast<std::uint32_t>(parse_uint(
        "policy", tok.substr(prefix.size() + 1), 1u << 20));
    if (mult == 0) fail("policy=" + tok + " has a zero multiplier");
    return sim::BandwidthPolicy::congest(mult);
  }
  fail("policy=" + tok + " (want congest[:MULT] or local)");
}

}  // namespace

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = {
      "luby",    "nmis",       "maxis-alg2", "maxis-alg3", "mwm-lr",
      "mwm-lr-det", "mcm-2eps", "mwm-2eps",   "mcm-1eps",   "proposal"};
  return names;
}

bool is_known_algorithm(const std::string& name) {
  for (const auto& known : algorithm_names()) {
    if (known == name) return true;
  }
  return false;
}

JobSpec parse_job_line(const std::string& line) {
  JobSpec spec;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("token \"" + token + "\" is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) fail("empty value for key \"" + key + "\"");
    if (key == "gen") {
      try {
        gen::parse_spec(value);  // validate family/arity/values up front
      } catch (const gen::SpecError& e) {
        fail(e.what());
      }
      spec.gen_spec = value;
    } else if (key == "file") {
      spec.graph_file = value;
    } else if (key == "algo") {
      spec.algorithm = value;
    } else if (key == "seeds") {
      parse_seeds(value, spec);
    } else if (key == "name") {
      spec.name = value;
    } else if (key == "gseed") {
      spec.graph_seed = parse_uint(key, value, UINT64_MAX);
    } else if (key == "policy") {
      spec.policy = parse_policy(value);
    } else if (key == "eps") {
      spec.eps = parse_double(key, value);
      if (spec.eps <= 0) fail("eps must be positive");
    } else if (key == "maxw") {
      spec.max_w = static_cast<Weight>(parse_uint(key, value, 1u << 30));
      if (spec.max_w == 0) fail("maxw must be positive");
    } else if (key == "rounds") {
      spec.max_rounds = static_cast<std::uint32_t>(
          parse_uint(key, value, 1u << 30));
    } else {
      fail("unknown key \"" + key + "\"");
    }
  }
  if (spec.algorithm.empty()) fail("missing required key algo=");
  if (!is_known_algorithm(spec.algorithm)) {
    fail("unknown algorithm \"" + spec.algorithm + "\"");
  }
  if (spec.gen_spec.empty() == spec.graph_file.empty()) {
    fail("exactly one of gen= / file= is required");
  }
  return spec;
}

std::vector<JobSpec> parse_job_file(std::istream& is) {
  std::vector<JobSpec> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      jobs.push_back(parse_job_line(line));
    } catch (const JobError& e) {
      fail("line " + std::to_string(line_no) + ": " + e.what());
    }
    if (jobs.back().name.empty()) {
      jobs.back().name = "job" + std::to_string(jobs.size() - 1);
    }
  }
  return jobs;
}

std::vector<JobSpec> load_job_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open job file " + path);
  return parse_job_file(is);
}

}  // namespace distapx::service
