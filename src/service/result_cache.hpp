// Content-addressed on-disk cache of per-run results.
//
// Every RunRow the batch server produces is a deterministic function of
// (workload description, algorithm, seed, engine version) — the same
// determinism contract test_batch_server.cpp asserts across thread counts.
// That makes each run perfectly memoizable: the cache addresses one RunRow
// by a 128-bit fingerprint of the run's full input description and serves
// repeated experiment sweeps from disk instead of recomputing them.
//
// Key derivation (run_fingerprint): kEngineVersion, the algorithm id, the
// *canonical* generator spec (gen::canonical_spec, so "gnp:0100:0.50" and
// "gnp:100:.5" share entries) or the graph file path, graph_seed, max_w,
// the bandwidth policy, eps, max_rounds, and the run seed. Anything that
// can change a row changes the key; bump kEngineVersion whenever engine
// semantics change so stale caches turn into misses, never wrong answers.
//
// On-disk layout: <dir>/<hh>/<hex28>.rr, two-level fan-out on the first
// two hex digits. Entries are written to a unique temp file and renamed
// into place, so readers never observe a partial entry and concurrent
// fills of the same key are safe (last rename wins; the content is
// identical by construction). Every entry carries magic, format + engine
// versions, the full key, and a trailing checksum; lookup() treats any
// mismatch — corruption, truncation, foreign file, stale version — as a
// miss, so the worst failure mode is recomputation.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "support/fingerprint.hpp"

namespace distapx::service {

/// Bump when the engine or any algorithm changes behavior: old entries
/// must stop hitting. (Independent of the file-format version inside
/// result_cache.cpp, which only guards deserialization.)
inline constexpr std::uint32_t kEngineVersion = 3;

/// Accumulator over everything a RunRow depends on *except* the run seed:
/// engine version, algorithm, canonical workload source, gseed, maxw,
/// policy, eps, rounds. Per-job constant — compute it once (resolve_job
/// stores it on the ResolvedJob) and derive per-seed keys from it. Throws
/// gen::SpecError on an invalid generator spec.
Fingerprinter job_fingerprinter(const JobSpec& spec);

/// job_fingerprinter(spec) + the run seed: the full cache key.
Fingerprint run_fingerprint(const JobSpec& spec, std::uint64_t seed);

/// The same key from a precomputed per-job prefix (the hot-path form:
/// absorbing one seed word instead of re-canonicalizing the spec).
Fingerprint run_fingerprint(Fingerprinter job_prefix, std::uint64_t seed);

/// Counters since construction / reset_stats(). `rejected` counts entries
/// that existed but failed validation (corrupt, truncated, version
/// mismatch) and were treated as misses.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t rejected = 0;
};

class ResultCache {
 public:
  /// Creates `dir` (and fan-out subdirectories lazily). Throws JobError if
  /// the directory cannot be created.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Returns the cached row, or nullopt on miss / invalid entry. Safe to
  /// call concurrently with lookups and stores from other threads and
  /// processes.
  std::optional<RunRow> lookup(const Fingerprint& key);

  /// Persists a row under `key` (atomic write-then-rename). Concurrent
  /// stores of the same key are safe.
  void store(const Fingerprint& key, const RunRow& row);

  [[nodiscard]] CacheStats stats() const noexcept;
  void reset_stats() noexcept;

  /// The entry path a key maps to (exposed for tests that corrupt it).
  [[nodiscard]] std::string entry_path(const Fingerprint& key) const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace distapx::service
