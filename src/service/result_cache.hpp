// Content-addressed on-disk cache of per-run results.
//
// Every RunRow the batch server produces is a deterministic function of
// (workload description, algorithm, seed, engine version) — the same
// determinism contract test_batch_server.cpp asserts across thread counts.
// That makes each run perfectly memoizable: the cache addresses one RunRow
// by a 128-bit fingerprint of the run's full input description and serves
// repeated experiment sweeps from disk instead of recomputing them.
//
// Key derivation (run_fingerprint): kEngineVersion, the algorithm id, the
// *canonical* generator spec (gen::canonical_spec, so "gnp:0100:0.50" and
// "gnp:100:.5" share entries) or the graph file path, graph_seed, max_w,
// the bandwidth policy, eps, max_rounds, and the run seed. Anything that
// can change a row changes the key; bump kEngineVersion whenever engine
// semantics change so stale caches turn into misses, never wrong answers.
//
// On-disk layout: <dir>/<hh>/<hex28>.rr, two-level fan-out on the first
// two hex digits. Entries are written to a unique temp file and renamed
// into place, so readers never observe a partial entry and concurrent
// fills of the same key are safe (last rename wins; the content is
// identical by construction). Every entry carries magic, format + engine
// versions, the full key, and a trailing checksum; lookup() treats any
// mismatch — corruption, truncation, foreign file, stale version — as a
// miss, so the worst failure mode is recomputation.
//
// Lifecycle (size budgets, LRU eviction, verify/repair) lives in
// service/cache_manager.hpp; opening a ResultCache with a nonzero budget
// attaches a CacheManager and keeps the directory bounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "support/fingerprint.hpp"
#include "support/metrics.hpp"

namespace distapx::service {

class CacheManager;  // service/cache_manager.hpp

/// Bump when the engine or any algorithm changes behavior: old entries
/// must stop hitting. (Independent of the file-format version inside
/// result_cache.cpp, which only guards deserialization.)
inline constexpr std::uint32_t kEngineVersion = 3;

/// Accumulator over everything a RunRow depends on *except* the run seed:
/// engine version, algorithm, canonical workload source, gseed, maxw,
/// policy, eps, rounds. Per-job constant — compute it once (resolve_job
/// stores it on the ResolvedJob) and derive per-seed keys from it. Throws
/// gen::SpecError on an invalid generator spec.
Fingerprinter job_fingerprinter(const JobSpec& spec);

/// job_fingerprinter(spec) + the run seed: the full cache key.
Fingerprint run_fingerprint(const JobSpec& spec, std::uint64_t seed);

/// The same key from a precomputed per-job prefix (the hot-path form:
/// absorbing one seed word instead of re-canonicalizing the spec).
Fingerprint run_fingerprint(Fingerprinter job_prefix, std::uint64_t seed);

/// Counters since construction / reset_stats(). `rejected` counts entries
/// that existed but failed validation (corrupt, truncated, version
/// mismatch) and were treated as misses. A typed view over the metrics
/// registry's cache_* counters (see cache_stats_from) — the registry is
/// the single source of truth; this struct exists so call sites keep a
/// plain-integer API.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t rejected = 0;
};

/// The CacheStats a registry snapshot implies (cache_hits_total and
/// friends). The STATS frame, `cache stats`, and /metrics all derive
/// from the same counters, so the surfaces cannot disagree.
CacheStats cache_stats_from(const metrics::Snapshot& snap);

// ---- entry-file machinery (shared with the cache manager) ----------------

/// Classification of one on-disk entry file. lookup() folds every non-kOk
/// outcome into a miss; CacheManager::verify reports the reason and
/// quarantines/deletes the file.
enum class EntryStatus {
  kOk,
  kMissing,      ///< no file at the path
  kIoError,      ///< the file exists but could not be read
  kBadLength,    ///< short (truncated) or long (foreign/garbage) file
  kBadMagic,     ///< not a cache entry at all
  kBadFormat,    ///< written by an incompatible serializer version
  kBadEngine,    ///< written by an older/newer engine (stale semantics)
  kKeyMismatch,  ///< valid entry filed under the wrong key (fs mixup)
  kBadChecksum,  ///< payload corruption
};

/// Stable lowercase name for reports ("ok", "bad-checksum", ...).
const char* entry_status_name(EntryStatus s) noexcept;

/// Size in bytes of every valid entry file (the format is fixed-width).
std::size_t entry_file_size() noexcept;

/// Reads and fully validates one entry file against `key`: explicit
/// short-read/EOF handling (a file truncated at any byte boundary is
/// kBadLength, an unreadable one kIoError — never misclassified), then
/// magic/format/engine/key-echo/checksum. On kOk the decoded row is
/// written to `row_out` when non-null.
EntryStatus check_entry_file(const std::string& path, const Fingerprint& key,
                             RunRow* row_out = nullptr);

/// The entry path `key` maps to under `dir`: <dir>/<hh>/<hex30>.rr,
/// two-level fan-out on the first two hex digits. The hex overload is the
/// single source of truth for the layout (the cache manager addresses
/// entries by hex).
std::string cache_entry_path(const std::string& dir, const Fingerprint& key);
std::string cache_entry_path(const std::string& dir,
                             const std::string& key_hex);

/// Inverse of cache_entry_path: recovers the key a well-formed entry path
/// encodes (a ".rr" file whose parent-dir name + stem are the 32 hex key
/// digits); nullopt for anything else. Lets scan/verify walk a cache dir
/// without a separate index.
std::optional<Fingerprint> key_from_entry_path(const std::string& path);

class ResultCache {
 public:
  /// Creates `dir` (and fan-out subdirectories lazily). Throws JobError if
  /// the directory cannot be created.
  ///
  /// `budget_bytes` > 0 opens the cache *with a budget*: a CacheManager is
  /// attached, the directory is evicted down to the budget immediately
  /// (LRU by the manifest's touch journal), every store records the fill
  /// and re-enforces the budget, and every hit records a touch. 0 keeps
  /// the PR-3 behavior: no manager, no journal, zero metadata overhead.
  ///
  /// `registry` is where hit/miss/store/reject counters land (shared with
  /// the serving process's other components so /metrics sees them); null
  /// falls back to a private registry, keeping instrumentation
  /// unconditional. Not owned; must outlive the cache.
  explicit ResultCache(std::string dir, std::uint64_t budget_bytes = 0,
                       metrics::Registry* registry = nullptr);
  ~ResultCache();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept {
    return budget_bytes_;
  }
  /// Null when the cache was opened without a budget.
  [[nodiscard]] CacheManager* manager() noexcept { return manager_.get(); }

  /// Returns the cached row, or nullopt on miss / invalid entry. Safe to
  /// call concurrently with lookups and stores from other threads and
  /// processes.
  std::optional<RunRow> lookup(const Fingerprint& key);

  /// Persists a row under `key` (atomic write-then-rename). Concurrent
  /// stores of the same key are safe.
  void store(const Fingerprint& key, const RunRow& row);

  [[nodiscard]] CacheStats stats() const noexcept;
  void reset_stats() noexcept;

  /// The entry path a key maps to (exposed for tests that corrupt it).
  [[nodiscard]] std::string entry_path(const Fingerprint& key) const;

 private:
  /// Evicts to the low watermark (budget - 1/8) when the manager's
  /// accounting exceeds the budget. Called on fills and on hits (hits can
  /// grow the accounting too: the manager adopts entries filled by other
  /// processes sharing the directory).
  void enforce_budget();

  std::string dir_;
  std::uint64_t budget_bytes_ = 0;
  /// Fallback when no shared registry is passed; declared before the
  /// counter references so they can bind to it during construction.
  std::unique_ptr<metrics::Registry> own_registry_;
  metrics::Counter& hits_;
  metrics::Counter& misses_;
  metrics::Counter& stores_;
  metrics::Counter& rejected_;
  /// Registry counters are monotone and possibly shared; reset_stats()
  /// (tests, bench warm-up) subtracts these baselines instead.
  std::atomic<std::uint64_t> base_hits_{0};
  std::atomic<std::uint64_t> base_misses_{0};
  std::atomic<std::uint64_t> base_stores_{0};
  std::atomic<std::uint64_t> base_rejected_{0};
  std::unique_ptr<CacheManager> manager_;  ///< engaged iff budgeted
  std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace distapx::service
