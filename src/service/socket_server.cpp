#include "service/socket_server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "service/report_sink.hpp"
#include "support/log.hpp"

namespace distapx::service {

namespace {

using Clock = std::chrono::steady_clock;

/// A SUBMIT waiting for (or on) a lane.
struct PendingJob {
  std::uint64_t conn_id = 0;
  std::uint64_t conn_seq = 0;   ///< 1-based per-connection submit number
  std::uint64_t submit_no = 0;  ///< 1-based global arrival number (label)
  std::string payload;          ///< raw job-file bytes
  Clock::time_point enqueued;   ///< arrival, for the job_latency_ms series
  /// Span collector for this SUBMIT (trace id = submit_no); null when
  /// tracing is off and no echo was requested. Shared with the lane and
  /// the flush watcher that closes the respond span.
  std::shared_ptr<trace::Collector> tracer;
  std::uint32_t queue_span = 0;  ///< open queue-wait span, ended by the lane
  bool want_trace = false;       ///< SUBMITTRACE: echo the tree in the reply
};

/// What a lane hands back to the I/O thread.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t conn_seq = 0;
  std::uint64_t submit_no = 0;  ///< for the journal's R record
  bool ok = false;
  net::ResultPayload result;  ///< when ok
  std::string error;          ///< when !ok
  std::shared_ptr<trace::Collector> tracer;  ///< carried through from the job
  bool want_trace = false;
};

/// Journal record codecs. The S payload carries the raw job-file bytes
/// (arbitrary content, newlines included), so this is a positional split
/// on the first two spaces, not the whitespace-tokenized manifest syntax.
std::string encode_submit_record(std::uint64_t submit_no,
                                 std::string_view payload) {
  std::string rec = "S " + std::to_string(submit_no) + " ";
  rec.append(payload);
  return rec;
}

/// Parses "S <no> <payload>" / "R <no>"; false for anything else.
bool parse_journal_record(const std::string& rec, char& tag,
                          std::uint64_t& submit_no, std::string& payload) {
  if (rec.size() < 2 || (rec[0] != 'S' && rec[0] != 'R') || rec[1] != ' ') {
    return false;
  }
  tag = rec[0];
  std::size_t pos = 2;
  std::uint64_t no = 0;
  bool digits = false;
  while (pos < rec.size() && rec[pos] >= '0' && rec[pos] <= '9') {
    no = no * 10 + static_cast<std::uint64_t>(rec[pos] - '0');
    ++pos;
    digits = true;
  }
  if (!digits) return false;
  submit_no = no;
  if (tag == 'R') return pos == rec.size();
  if (pos >= rec.size() || rec[pos] != ' ') return false;
  payload = rec.substr(pos + 1);
  return true;
}

/// One client connection's state machine.
struct Conn {
  fdio::Fd fd;
  net::FrameReader reader;
  std::string outbuf;  ///< encoded response frames awaiting the peer
  std::size_t outoff = 0;
  bool closing = false;   ///< flush outbuf, then close
  bool read_eof = false;  ///< peer half-closed; responses may still flow
  std::uint32_t inflight = 0;  ///< SUBMITs not yet answered on this conn
  std::uint64_t next_submit_seq = 1;   ///< conn_seq for the next SUBMIT
  std::uint64_t next_deliver_seq = 1;  ///< conn_seq owed to the peer next
  /// Completions that finished ahead of their turn (lanes race); drained
  /// into outbuf strictly in conn_seq order.
  std::map<std::uint64_t, Completion> ready;
  /// Reap deadline while mid-frame or flushing against a dead-weight
  /// peer; Clock::time_point::max() = no deadline.
  Clock::time_point deadline = Clock::time_point::max();
  /// Cumulative bytes flushed to the peer over the conn's lifetime;
  /// against it, each traced response records the flushed_total at which
  /// its bytes are fully out — that is when its respond span closes and
  /// its trace publishes. FIFO (responses leave in enqueue order).
  std::uint64_t flushed_total = 0;
  struct PendingFlush {
    std::uint64_t target = 0;  ///< flushed_total at which the reply is out
    std::shared_ptr<trace::Collector> tracer;
    std::uint32_t respond_span = 0;
  };
  std::deque<PendingFlush> flush_watch;

  explicit Conn(fdio::Fd f, std::size_t max_frame)
      : fd(std::move(f)), reader(max_frame) {}

  [[nodiscard]] bool has_output() const noexcept {
    return outoff < outbuf.size();
  }
};

/// The server's metric handles, resolved once from the registry at run()
/// entry so the hot paths touch relaxed atomics only — never the
/// registry's registration mutex. Shared between the I/O thread and the
/// lanes; every series is independent and monotone (or a gauge), never
/// used to synchronize anything.
struct Meters {
  metrics::Counter& connections_accepted;
  metrics::Counter& submits_accepted;
  metrics::Counter& results_ok;
  metrics::Counter& results_error;
  metrics::Counter& protocol_errors;
  metrics::Counter& frame_errors;  ///< decode-level subset of the above
  metrics::Counter& timeouts;
  metrics::Counter& pings;
  metrics::Counter& jobs_dropped;
  metrics::Counter& bytes_read;
  metrics::Counter& bytes_written;
  metrics::Counter& lane_busy_us;
  metrics::Gauge& queue_depth;
  metrics::Gauge& executing;
  metrics::Gauge& lanes;
  metrics::Gauge& connections_open;
  metrics::Gauge& draining;
  metrics::Gauge& ready;
  metrics::Histogram& job_latency_ms;        ///< submit arrival -> done
  metrics::Histogram& queue_depth_at_submit;

  explicit Meters(metrics::Registry& reg)
      : connections_accepted(reg.counter("connections_accepted_total")),
        submits_accepted(reg.counter("submits_accepted_total")),
        results_ok(reg.counter("results_ok_total")),
        results_error(reg.counter("results_error_total")),
        protocol_errors(reg.counter("protocol_errors_total")),
        frame_errors(reg.counter("frame_errors_total")),
        timeouts(reg.counter("timeouts_total")),
        pings(reg.counter("pings_total")),
        jobs_dropped(reg.counter("jobs_dropped_total")),
        bytes_read(reg.counter("conn_bytes_read_total")),
        bytes_written(reg.counter("conn_bytes_written_total")),
        lane_busy_us(reg.counter("lane_busy_us_total")),
        queue_depth(reg.gauge("queue_depth")),
        executing(reg.gauge("executing")),
        lanes(reg.gauge("lanes")),
        connections_open(reg.gauge("connections_open")),
        draining(reg.gauge("draining")),
        ready(reg.gauge("ready")),
        job_latency_ms(reg.histogram("job_latency_ms",
                                     metrics::default_latency_buckets_ms())),
        queue_depth_at_submit(reg.histogram(
            "queue_depth_at_submit",
            {0, 1, 2, 4, 8, 16, 32, 64, 128, 256})) {}
};

/// Nonblocking send; returns bytes written (0 on EAGAIN), -1 on a dead
/// peer. MSG_NOSIGNAL: a hung-up client must never SIGPIPE the server.
ssize_t send_some(int fd, const char* data, std::size_t n) noexcept {
  for (;;) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

unsigned effective_lanes(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, std::min(hw, 8u));
}

}  // namespace

SocketServerStats socket_stats_from(const metrics::Snapshot& snap) {
  SocketServerStats s;
  s.connections_accepted = snap.counter_or("connections_accepted_total");
  s.submits_accepted = snap.counter_or("submits_accepted_total");
  s.results_ok = snap.counter_or("results_ok_total");
  s.results_error = snap.counter_or("results_error_total");
  s.protocol_errors = snap.counter_or("protocol_errors_total");
  s.timeouts = snap.counter_or("timeouts_total");
  s.pings = snap.counter_or("pings_total");
  s.cache_hits = snap.counter_or("cache_hits_total");
  s.computed = snap.counter_or("runs_computed_total");
  s.jobs_dropped = snap.counter_or("jobs_dropped_total");
  s.lanes = static_cast<unsigned>(snap.gauge_or("lanes"));
  return s;
}

SocketServer::SocketServer(SocketServerOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.registry != nullptr) {
    reg_ = opts_.registry;
  } else {
    own_registry_ = std::make_unique<metrics::Registry>();
    reg_ = own_registry_.get();
  }
  if (!opts_.cache_dir.empty()) {
    cache_.emplace(opts_.cache_dir, opts_.cache_budget, reg_);
  } else if (opts_.cache_budget != 0) {
    throw JobError("cache_budget needs a cache_dir");
  }
  if (!opts_.journal_path.empty()) {
    try {
      journal_.emplace(opts_.journal_path);
    } catch (const ChangelogError& e) {
      throw JobError("cannot open submit journal " + opts_.journal_path +
                     ": " + e.what());
    }
    // Recover: S-without-R records are jobs a crashed predecessor
    // accepted but never finished. Their connections are gone — clients
    // will retry — so the point of re-executing them is the *cache*: the
    // retries land on warm entries instead of recomputing every row.
    // Without a cache there is nothing a recovery could usefully write,
    // so the records are just dropped.
    std::map<std::uint64_t, std::string> unfinished;
    const auto apply = [&unfinished](const std::string& rec) {
      char tag = 0;
      std::uint64_t no = 0;
      std::string payload;
      if (!parse_journal_record(rec, tag, no, payload)) return;
      if (tag == 'S') {
        unfinished.emplace(no, std::move(payload));
      } else {
        unfinished.erase(no);
      }
    };
    for (const std::string& r : journal_->replayed().snapshot) apply(r);
    for (const std::string& r : journal_->replayed().tail) apply(r);
    if (!unfinished.empty() && cache_) {
      metrics::Counter& recovered =
          reg_->counter("socket_recovered_jobs_total");
      for (const auto& [no, payload] : unfinished) {
        try {
          std::istringstream is(payload);
          BatchOptions batch_opts;
          batch_opts.threads = opts_.threads;
          batch_opts.cache = &*cache_;
          batch_opts.registry = reg_;
          BatchServer server(batch_opts);
          server.submit_all(parse_job_file(is));
          server.serve();
          recovered.inc();
          logx::info("socket_job_recovered", {{"submit_no", no}});
        } catch (const std::exception& e) {
          // A job that was malformed before the crash is malformed now;
          // its client got no answer and will learn so on retry.
          logx::warn("socket_job_recovery_failed",
                     {{"submit_no", no}, {"err", e.what()}});
        }
      }
    }
    // Start clean: recovery consumed every pending claim, and history
    // must not replay twice.
    journal_->snapshot({});
  }
  listener_ = net::Listener::open(opts_.endpoint);
  ep_ = listener_->endpoint();
}

SocketServerStats SocketServer::run() {
  const unsigned lane_count = effective_lanes(opts_.lanes);
  Meters counters(*reg_);
  counters.lanes.set(lane_count);
  logx::info("server_listening", {{"endpoint", ep_.to_string()},
                                  {"lanes", lane_count}});

  std::map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;
  std::uint64_t inflight_total = 0;  ///< jobs enqueued, completion pending
  bool draining = false;

  // ---- lane scheduler ----------------------------------------------------
  //
  // Per-connection FIFO queues plus a round-robin ring of connection ids
  // with pending work: a lane takes the front job of the front
  // connection, then rotates that connection to the back of the ring if
  // it still has work. One connection's jobs run in submit order *start*
  // order (FIFO within the queue); across connections, a burst from one
  // client costs everyone else at most one job's wait per lane.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, std::deque<PendingJob>> pending;  // guarded by mu
  std::deque<std::uint64_t> rr_ring;  // conn ids with pending work, each once
  std::size_t queued = 0;             // guarded by mu
  std::size_t executing = 0;          // guarded by mu
  std::vector<Completion> completions;  // guarded by mu
  bool lanes_exit = false;              // guarded by mu

  const auto execute = [this](PendingJob& job, std::uint32_t exec_span) {
    Completion done;
    done.conn_id = job.conn_id;
    done.conn_seq = job.conn_seq;
    done.submit_no = job.submit_no;
    try {
      std::istringstream is(job.payload);
      BatchOptions batch_opts;
      batch_opts.threads = opts_.threads;
      batch_opts.cache = cache();
      batch_opts.registry = reg_;
      // Per-seed child spans (cache-lookup / compute / cache-store) hang
      // off this lane's execute span.
      batch_opts.trace = job.tracer.get();
      batch_opts.trace_parent = exec_span;
      BatchServer server(batch_opts);
      server.submit_all(parse_job_file(is));
      if (server.num_jobs() == 0) throw JobError("job file contains no jobs");
      const BatchResult result = server.serve();
      if (job.tracer) {
        job.tracer->annotate(exec_span, "runs", result.total_runs);
        job.tracer->annotate(exec_span, "cache_hits", result.cache_hits);
      }
      const RenderedResult rendered =
          render_result("submit-" + std::to_string(job.submit_no), result);
      done.result.summary_csv = rendered.summary_csv;
      done.result.runs_csv = rendered.runs_csv;
      done.result.report_txt = rendered.report_txt;
      if (net::result_wire_size(done.result) > net::kMaxWirePayload) {
        // Degrade to ERR rather than let encode_frame throw on the I/O
        // thread: the rows exist, they just cannot ride a u32-framed
        // RESULT (split the job file instead).
        throw JobError("result of " +
                       std::to_string(net::result_wire_size(done.result)) +
                       " bytes exceeds the wire format's u32 frame limit; "
                       "split the job file");
      }
      done.ok = true;
    } catch (const std::exception& e) {
      // Parse errors (line-numbered JobError), spec errors, and run-time
      // failures (e.g. a CONGEST violation) all become this client's ERR
      // payload; the server keeps serving.
      done.ok = false;
      done.error = e.what();
    }
    done.tracer = std::move(job.tracer);
    done.want_trace = job.want_trace;
    return done;
  };

  // Completes one trace: stamps open spans, publishes into the sink, and
  // emits the slow_job line when the job blew the --slow-ms budget. The
  // logger's per-event token bucket rate-limits a storm of slow jobs.
  const auto finalize_trace = [this](trace::Collector& tr) {
    trace::Trace t = tr.finish();
    if (opts_.trace_sink != nullptr) opts_.trace_sink->publish(t);
    if (opts_.slow_ms != 0 &&
        t.duration_ns >
            static_cast<std::uint64_t>(opts_.slow_ms) * 1'000'000ull) {
      logx::warn("slow_job",
                 {{"trace", t.id},
                  {"endpoint", t.endpoint},
                  {"duration_ms",
                   static_cast<double>(t.duration_ns) / 1e6},
                  {"spans", trace::flatten_spans(t)}});
    }
  };

  std::vector<std::thread> lanes;
  lanes.reserve(lane_count);
  for (unsigned lane = 0; lane < lane_count; ++lane) {
    lanes.emplace_back([&] {
      for (;;) {
        PendingJob job;
        {
          std::unique_lock lock(mu);
          cv.wait(lock, [&] { return !rr_ring.empty() || lanes_exit; });
          if (rr_ring.empty()) return;  // lanes_exit and nothing left
          const std::uint64_t id = rr_ring.front();
          rr_ring.pop_front();
          const auto it = pending.find(id);
          job = std::move(it->second.front());
          it->second.pop_front();
          --queued;
          counters.queue_depth.set(static_cast<std::int64_t>(queued));
          if (it->second.empty()) {
            pending.erase(it);
          } else {
            rr_ring.push_back(id);  // round-robin: back of the ring
          }
          ++executing;
          counters.executing.set(static_cast<std::int64_t>(executing));
        }
        trace::Collector* const tr = job.tracer.get();
        std::uint32_t exec_span = 0;
        if (tr != nullptr) {
          tr->end(job.queue_span);
          exec_span = tr->begin("lane-execute");
        }
        const auto exec_start = Clock::now();
        Completion done = execute(job, exec_span);
        const auto exec_end = Clock::now();
        if (tr != nullptr) {
          if (!done.ok) tr->annotate(exec_span, "outcome", "error");
          tr->end(exec_span);
        }
        counters.lane_busy_us.inc(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                exec_end - exec_start)
                .count()));
        // Arrival-to-done, queue wait included: the latency a pipelining
        // client actually experiences per submit.
        counters.job_latency_ms.observe(
            std::chrono::duration<double, std::milli>(exec_end - job.enqueued)
                .count());
        // Counted at completion, delivered or not — matching the
        // pre-lane semantics where a reaped client's finished job still
        // counted. The drop itself shows up in jobs_dropped.
        (done.ok ? counters.results_ok : counters.results_error).inc();
        // Retire the claim (ERR counts too: re-running a malformed job
        // recovers nothing). The changelog's own mutex serializes this
        // against the I/O thread's S appends.
        if (journal_) {
          journal_->append("R " + std::to_string(done.submit_no));
        }
        {
          std::lock_guard lock(mu);
          --executing;
          counters.executing.set(static_cast<std::int64_t>(executing));
          completions.push_back(std::move(done));
        }
        pipe_.poke();
      }
    });
  }

  // Join the lanes on every exit path — including a poll() throw — so a
  // NetError can propagate without std::thread::~thread terminating.
  struct LaneJoiner {
    std::mutex& mu;
    std::condition_variable& cv;
    bool& lanes_exit;
    std::vector<std::thread>& lanes;
    ~LaneJoiner() {
      {
        std::lock_guard lock(mu);
        lanes_exit = true;
      }
      cv.notify_all();
      for (auto& t : lanes) t.join();
    }
  } lane_joiner{mu, cv, lanes_exit, lanes};

  // ---- I/O-thread helpers ------------------------------------------------

  const auto enqueue_response = [&](Conn& conn, net::FrameType type,
                                    std::string_view payload) {
    conn.outbuf.append(net::encode_frame(type, payload));
  };

  // Close-after-flush, with a reap deadline so a peer that never reads
  // cannot pin the connection (or wedge a drain) forever.
  const auto begin_close = [&](Conn& conn) {
    conn.closing = true;
    if (conn.has_output() && opts_.idle_timeout_ms != 0) {
      conn.deadline = Clock::now() +
                      std::chrono::milliseconds(opts_.idle_timeout_ms);
    }
  };

  // Tears down a connection that may still own queued/running/buffered
  // work: queued jobs are discarded unexecuted (a dead conn_id must
  // never cost lane time), buffered completions die with the conn, and a
  // job already on a lane gets dropped at delivery instead. Every
  // erase of `conns` goes through here.
  const auto erase_conn = [&](std::map<std::uint64_t, Conn>::iterator it) {
    const std::uint64_t id = it->first;
    std::size_t purged = 0;
    std::vector<std::shared_ptr<trace::Collector>> orphaned;
    {
      std::lock_guard lock(mu);
      const auto pit = pending.find(id);
      if (pit != pending.end()) {
        purged = pit->second.size();
        queued -= purged;
        counters.queue_depth.set(static_cast<std::int64_t>(queued));
        for (PendingJob& pj : pit->second) {
          if (pj.tracer) {
            pj.tracer->annotate(pj.queue_span, "outcome", "conn-lost");
            orphaned.push_back(std::move(pj.tracer));
          }
        }
        pending.erase(pit);
        rr_ring.erase(std::remove(rr_ring.begin(), rr_ring.end(), id),
                      rr_ring.end());
      }
    }
    // Publish outside the scheduler lock: the sink's slowest-K writer
    // mutex and the slow_job log line have no business under mu.
    for (const auto& tracer : orphaned) finalize_trace(*tracer);
    for (Conn::PendingFlush& fw : it->second.flush_watch) {
      if (fw.tracer) {
        fw.tracer->annotate(fw.respond_span, "outcome", "conn-lost");
        fw.tracer->end(fw.respond_span);
        finalize_trace(*fw.tracer);
      }
    }
    for (auto& [seq, done] : it->second.ready) {
      if (done.tracer) finalize_trace(*done.tracer);
    }
    const std::uint64_t dropped = purged + it->second.ready.size();
    if (dropped > 0) {
      counters.jobs_dropped.inc(dropped);
      logx::warn("jobs_dropped", {{"conn", id}, {"count", dropped}});
    }
    inflight_total -= purged;
    logx::debug("conn_closed", {{"conn", id}});
    const auto next = conns.erase(it);
    counters.connections_open.set(static_cast<std::int64_t>(conns.size()));
    return next;
  };

  const auto begin_drain = [&] {
    if (draining) return;
    draining = true;
    counters.draining.set(1);
    logx::info("drain_begin", {});
    listener_.reset();  // new connects are refused from here on
    for (auto& [id, conn] : conns) {
      if (conn.inflight == 0) begin_close(conn);
    }
  };

  // One snapshot renders the whole STATS frame — the exact same registry
  // state GET /metrics exposes, so the two surfaces cannot disagree.
  const auto stats_text = [&] {
    const metrics::Snapshot snap = reg_->snapshot();
    const SocketServerStats s = socket_stats_from(snap);
    std::ostringstream os;
    os << "endpoint " << ep_.to_string() << "\n"
       << "draining " << snap.gauge_or("draining") << "\n"
       << "lanes " << s.lanes << "\n"
       << "connections_open " << snap.gauge_or("connections_open") << "\n"
       << "connections_accepted " << s.connections_accepted << "\n"
       << "submits_accepted " << s.submits_accepted << "\n"
       << "results_ok " << s.results_ok << "\n"
       << "results_error " << s.results_error << "\n"
       << "protocol_errors " << s.protocol_errors << "\n"
       << "timeouts " << s.timeouts << "\n"
       << "pings " << s.pings << "\n"
       << "cache_hits " << s.cache_hits << "\n"
       << "computed " << s.computed << "\n"
       << "jobs_dropped " << s.jobs_dropped << "\n"
       << "queue_depth " << snap.gauge_or("queue_depth") << "\n"
       << "executing " << snap.gauge_or("executing") << "\n";
    return os.str();
  };

  const auto protocol_error = [&](Conn& conn, const std::string& what) {
    counters.protocol_errors.inc();
    logx::warn("protocol_error", {{"err", what}});
    enqueue_response(conn, net::FrameType::kError, "protocol error: " + what);
    begin_close(conn);
  };

  const auto handle_frame = [&](std::uint64_t conn_id, Conn& conn,
                                net::Frame& frame) {
    switch (frame.type) {
      case net::FrameType::kHello: {
        std::uint32_t version = 0;
        std::string software;
        if (!net::decode_hello(frame.payload, version, software)) {
          protocol_error(conn, "malformed HELLO payload");
          return;
        }
        if (version != net::kProtocolVersion) {
          enqueue_response(conn, net::FrameType::kError,
                           "unsupported protocol version " +
                               std::to_string(version) + " (server speaks " +
                               std::to_string(net::kProtocolVersion) + ")");
          begin_close(conn);
          return;
        }
        enqueue_response(conn, net::FrameType::kHello, net::encode_hello());
        return;
      }
      case net::FrameType::kPing:
        counters.pings.inc();
        enqueue_response(conn, net::FrameType::kPong, {});
        return;
      case net::FrameType::kStatsReq:
        enqueue_response(conn, net::FrameType::kStats, stats_text());
        return;
      case net::FrameType::kSubmit:
      case net::FrameType::kSubmitTrace: {
        const bool want_trace = frame.type == net::FrameType::kSubmitTrace;
        if (draining) {
          enqueue_response(conn, net::FrameType::kError,
                           "server is draining; submit rejected");
          return;
        }
        // inc() returns the post-increment value: the counter itself is
        // the submit-number sequence, no shadow variable.
        const std::uint64_t submit_no = counters.submits_accepted.inc();
        // The global gate covers the ambient always-on tracing; an
        // explicit echo request overrides it for this one job.
        std::shared_ptr<trace::Collector> tracer;
        std::uint32_t recv_span = 0;
        if (trace::enabled() || want_trace) {
          tracer = std::make_shared<trace::Collector>(submit_no, "submit");
          recv_span = tracer->begin("recv");
          tracer->annotate(recv_span, "conn", conn_id);
          tracer->annotate(recv_span, "bytes", frame.payload.size());
        }
        // The claim must be durable before the job can execute: once a
        // lane may have stored partial cache entries, a crash must find
        // the S record or recovery has nothing to finish. An append
        // failure costs recoverability for this one job, nothing else.
        if (journal_ &&
            !journal_->append(encode_submit_record(submit_no,
                                                   frame.payload))) {
          logx::warn("socket_journal_append_failed",
                     {{"no", submit_no}, {"trace", submit_no}});
        }
        ++conn.inflight;
        ++inflight_total;
        const std::uint64_t conn_seq = conn.next_submit_seq++;
        std::uint32_t queue_span = 0;
        if (tracer) {
          tracer->end(recv_span);
          queue_span = tracer->begin("queue-wait");
        }
        {
          std::lock_guard lock(mu);
          auto& q = pending[conn_id];
          if (q.empty()) rr_ring.push_back(conn_id);
          q.push_back(PendingJob{conn_id, conn_seq, submit_no,
                                 std::move(frame.payload), Clock::now(),
                                 std::move(tracer), queue_span, want_trace});
          ++queued;
          counters.queue_depth.set(static_cast<std::int64_t>(queued));
          counters.queue_depth_at_submit.observe(
              static_cast<double>(queued));
        }
        logx::debug("submit", {{"conn", conn_id},
                               {"no", submit_no},
                               {"trace", submit_no}});
        cv.notify_one();
        if (opts_.max_requests != 0 && submit_no >= opts_.max_requests) {
          begin_drain();
        }
        return;
      }
      case net::FrameType::kShutdown:
        if (!opts_.allow_remote_shutdown) {
          enqueue_response(conn, net::FrameType::kError,
                           "shutdown over the wire is disabled");
          return;
        }
        enqueue_response(conn, net::FrameType::kShutdown, {});
        begin_drain();
        // begin_drain skipped this conn if it has inflight work; without
        // any it must still flush the ack before closing.
        if (conn.inflight == 0) begin_close(conn);
        return;
      case net::FrameType::kResult:
      case net::FrameType::kResultTrace:
      case net::FrameType::kError:
      case net::FrameType::kPong:
      case net::FrameType::kStats:
        protocol_error(conn, "server-to-client frame type from a client");
        return;
    }
    protocol_error(conn, "unknown frame type");
  };

  const auto read_from = [&](std::uint64_t conn_id, Conn& conn) {
    // Returns false when the conn was torn down and must be erased.
    char buf[64 * 1024];
    for (;;) {
      const ssize_t r = fdio::read_some(conn.fd.get(), buf, sizeof buf);
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (conn.reader.mid_frame()) {
          counters.protocol_errors.inc();
          counters.frame_errors.inc();
        }
        return false;  // reset underneath us
      }
      if (r == 0) {
        conn.read_eof = true;
        if (conn.reader.mid_frame()) {
          // Truncated frame: the peer hung up with a frame half-sent.
          counters.protocol_errors.inc();
          counters.frame_errors.inc();
          return false;
        }
        // Clean half-close: finish in-flight work and flush responses
        // (deliver_completions closes once inflight hits zero), then
        // close.
        if (conn.inflight == 0) {
          if (!conn.has_output()) return false;
          begin_close(conn);
        }
        break;
      }
      counters.bytes_read.inc(static_cast<std::uint64_t>(r));
      conn.reader.feed(buf, static_cast<std::size_t>(r));
      for (;;) {
        net::Frame frame;
        const net::FrameStatus status = conn.reader.next(frame);
        if (status == net::FrameStatus::kFrame) {
          handle_frame(conn_id, conn, frame);
          if (conn.closing) break;
          continue;
        }
        if (status == net::FrameStatus::kNeedMore) break;
        counters.frame_errors.inc();  // decode-level: bad magic, oversize
        protocol_error(conn, net::frame_status_name(status));
        break;
      }
      if (conn.closing) break;
      if (r < static_cast<ssize_t>(sizeof buf)) break;  // drained the socket
    }
    // Arm / disarm the slow-loris deadline: a partially received frame
    // puts the peer on the clock.
    if (!conn.closing && opts_.idle_timeout_ms != 0) {
      conn.deadline = conn.reader.mid_frame()
                          ? Clock::now() + std::chrono::milliseconds(
                                               opts_.idle_timeout_ms)
                          : Clock::time_point::max();
    }
    return true;
  };

  const auto write_to = [&](Conn& conn) {
    // Returns false when the conn must be erased (peer gone, or flushed
    // and closing).
    while (conn.has_output()) {
      const ssize_t w = send_some(conn.fd.get(), conn.outbuf.data() + conn.outoff,
                                  conn.outbuf.size() - conn.outoff);
      if (w < 0) return false;
      if (w > 0) {
        counters.bytes_written.inc(static_cast<std::uint64_t>(w));
        conn.flushed_total += static_cast<std::uint64_t>(w);
        // A respond span ends when its response bytes have actually left
        // for the kernel, not when they were enqueued — so queue-behind
        // time under pipelining is visible in the trace.
        while (!conn.flush_watch.empty() &&
               conn.flush_watch.front().target <= conn.flushed_total) {
          Conn::PendingFlush fw = std::move(conn.flush_watch.front());
          conn.flush_watch.pop_front();
          if (fw.tracer) {
            fw.tracer->end(fw.respond_span);
            finalize_trace(*fw.tracer);
          }
        }
      }
      if (w > 0 && opts_.idle_timeout_ms != 0) {
        // Progress resets the reap clock: only a peer *refusing* to read
        // its responses runs it out, not a slow one.
        conn.deadline =
            Clock::now() + std::chrono::milliseconds(opts_.idle_timeout_ms);
      }
      if (w == 0) return true;  // kernel buffer full; poll for POLLOUT
      conn.outoff += static_cast<std::size_t>(w);
    }
    conn.outbuf.clear();
    conn.outoff = 0;
    if (conn.closing) return false;
    if (opts_.idle_timeout_ms != 0 && !conn.reader.mid_frame()) {
      conn.deadline = Clock::time_point::max();
    }
    return true;
  };

  const auto deliver_completions = [&] {
    std::vector<Completion> batch;
    {
      std::lock_guard lock(mu);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      --inflight_total;
      const auto it = conns.find(done.conn_id);
      if (it == conns.end()) {
        // Client left while the job ran; nowhere to send the response.
        counters.jobs_dropped.inc();
        if (done.tracer) finalize_trace(*done.tracer);
        continue;
      }
      Conn& conn = it->second;
      // Per-connection FIFO: park the completion, then release the head
      // run — everything whose turn has come goes out in submit order,
      // however the lanes raced.
      conn.ready.emplace(done.conn_seq, std::move(done));
      while (!conn.ready.empty() &&
             conn.ready.begin()->first == conn.next_deliver_seq) {
        Completion& head = conn.ready.begin()->second;
        std::shared_ptr<trace::Collector> tracer = std::move(head.tracer);
        std::uint32_t respond_span = 0;
        if (head.ok) {
          std::string trace_txt;
          if (head.want_trace && tracer) {
            // Render before opening the respond span so the echoed tree
            // is complete (the respond span itself cannot appear in the
            // bytes that carry it).
            trace_txt = trace::render_trace_tree(tracer->snapshot());
          }
          if (tracer) respond_span = tracer->begin("respond");
          if (head.want_trace && tracer &&
              net::result_trace_wire_size(head.result, trace_txt) <=
                  net::kMaxWirePayload) {
            enqueue_response(conn, net::FrameType::kResultTrace,
                             net::encode_result_trace(head.result,
                                                      trace_txt));
          } else if (head.want_trace) {
            // Result near the frame cap: the echo would not fit. Fail the
            // request rather than silently answering a SUBMITTRACE with a
            // bare RESULT the client is not expecting.
            enqueue_response(conn, net::FrameType::kError,
                             "result too large for trace echo; "
                             "resubmit without --trace");
          } else {
            enqueue_response(conn, net::FrameType::kResult,
                             net::encode_result(head.result));
          }
        } else {
          if (tracer) respond_span = tracer->begin("respond");
          enqueue_response(conn, net::FrameType::kError, head.error);
        }
        if (tracer) {
          conn.flush_watch.push_back(Conn::PendingFlush{
              conn.flushed_total + (conn.outbuf.size() - conn.outoff),
              std::move(tracer), respond_span});
        }
        conn.ready.erase(conn.ready.begin());
        ++conn.next_deliver_seq;
        --conn.inflight;
      }
      if ((draining || conn.read_eof) && conn.inflight == 0) {
        begin_close(conn);
      }
    }
  };

  // ---- the poll loop -----------------------------------------------------

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = not a conn)
  counters.ready.set(1);  // /healthz flips to "ok" here
  for (;;) {
    if (stop_.load()) begin_drain();
    // Closing connections with nothing left to flush are done; sweeping
    // here (not just in the event handlers) catches the ones begin_drain
    // marked, so a drain with idle clients cannot park in poll forever.
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second.closing && !it->second.has_output()) {
        it = erase_conn(it);
      } else {
        ++it;
      }
    }
    if (draining && inflight_total == 0 && conns.empty()) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({pipe_.read_fd(), POLLIN, 0});
    pfd_conn.push_back(0);
    if (listener_) {
      pfds.push_back({listener_->fd(), POLLIN, 0});
      pfd_conn.push_back(0);
    }
    const std::size_t first_conn_pfd = pfds.size();
    Clock::time_point nearest = Clock::time_point::max();
    for (auto& [id, conn] : conns) {
      short events = 0;
      if (!conn.closing && !conn.read_eof) events |= POLLIN;
      if (conn.has_output()) {
        events |= POLLOUT;
        // Undelivered responses put the peer on the reap clock too (not
        // just mid-frame stalls): a client that submits but never reads
        // must not pin the connection — or its ever-growing outbuf —
        // forever. write_to pushes the deadline on every flush progress.
        if (opts_.idle_timeout_ms != 0 &&
            conn.deadline == Clock::time_point::max()) {
          conn.deadline = Clock::now() +
                          std::chrono::milliseconds(opts_.idle_timeout_ms);
        }
      }
      pfds.push_back({conn.fd.get(), events, 0});
      pfd_conn.push_back(id);
      if (conn.deadline < nearest) nearest = conn.deadline;
    }

    int timeout_ms = -1;
    if (nearest != Clock::time_point::max()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            nearest - Clock::now())
                            .count();
      timeout_ms = left < 0 ? 0 : static_cast<int>(left) + 1;
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw net::NetError(std::string("poll: ") + std::strerror(errno));
    }

    if (pfds[0].revents & POLLIN) pipe_.drain();
    deliver_completions();
    // Idle compaction: with nothing in flight every S has its R, so the
    // whole tail is settled history — cut it to an empty snapshot. The
    // journal's steady-state size is the in-flight window, not the
    // server's lifetime submit count.
    if (journal_ && inflight_total == 0 && journal_->tail_records() > 0) {
      journal_->snapshot({});
    }
    if (stop_.load()) begin_drain();

    if (listener_ && !draining) {
      // The listener pollfd position is fixed (index 1) while listening.
      if (pfds.size() > 1 && pfd_conn[1] == 0 && pfds[1].fd == listener_->fd() &&
          (pfds[1].revents & POLLIN)) {
        for (;;) {
          fdio::Fd accepted = listener_->accept_connection();
          if (!accepted) break;
          counters.connections_accepted.inc();
          logx::debug("conn_accepted", {{"conn", next_conn_id}});
          conns.emplace(next_conn_id++,
                        Conn(std::move(accepted), opts_.max_frame_bytes));
          counters.connections_open.set(
              static_cast<std::int64_t>(conns.size()));
        }
      }
    }

    for (std::size_t i = first_conn_pfd; i < pfds.size(); ++i) {
      const std::uint64_t id = pfd_conn[i];
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      bool alive = true;
      if (alive && (pfds[i].revents & POLLIN) && !conn.closing) {
        alive = read_from(id, conn);
      }
      if (alive && (pfds[i].revents & POLLOUT)) {
        alive = write_to(conn);
      }
      // A response enqueued by this very iteration (e.g. PONG) often fits
      // the socket buffer; write eagerly instead of waiting a poll cycle.
      if (alive && conn.has_output() && !(pfds[i].revents & POLLOUT)) {
        alive = write_to(conn);
      }
      if (alive &&
          (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) &&
          !(pfds[i].revents & POLLIN)) {
        if (conn.reader.mid_frame()) {
          counters.protocol_errors.inc();
          counters.frame_errors.inc();
        }
        alive = false;
      }
      if (alive && conn.deadline != Clock::time_point::max() &&
          Clock::now() >= conn.deadline) {
        // Slow loris (stalled mid-frame) or a closing peer that never
        // drains its responses: classified, counted, reaped.
        counters.timeouts.inc();
        logx::warn("conn_timeout", {{"conn", id}});
        if (conn.reader.mid_frame() && !conn.closing) {
          counters.protocol_errors.inc();
          counters.frame_errors.inc();
          // Courtesy diagnostic — but only onto an empty output buffer:
          // injecting it after a partially flushed frame would corrupt
          // the peer's byte stream.
          if (!conn.has_output()) {
            const std::string err = net::encode_frame(
                net::FrameType::kError,
                "protocol error: timeout waiting for the rest of a frame");
            (void)send_some(conn.fd.get(), err.data(), err.size());
          }
        }
        alive = false;
      }
      if (!alive) erase_conn(it);
    }
  }

  {
    std::lock_guard lock(mu);
    lanes_exit = true;
  }
  cv.notify_all();
  for (auto& t : lanes) t.join();
  lanes.clear();  // the joiner must not join twice
  deliver_completions();  // completions raced with the drain; drop-count them
  counters.ready.set(0);
  logx::info("server_stopped", {});
  return socket_stats_from(reg_->snapshot());
}

}  // namespace distapx::service
