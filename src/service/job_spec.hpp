// Job descriptions for the batch-serving subsystem.
//
// A JobSpec names one (graph source, algorithm, seed range, bandwidth
// policy) workload: "run mcm-2eps on gnp:500:0.01 for seeds 1..32 under
// congest:32". The batch server (batch_server.hpp) shards an arbitrary mix
// of such jobs into per-seed work units over one shared worker pool.
//
// Job files are line-oriented so they stay diffable and shell-composable:
// one job per line, '#' comments, whitespace-separated key=value tokens.
//
//   # key            meaning                                    default
//   gen=SPEC         generator spec (graph/genspec.hpp)         — one of
//   file=PATH        edge-list file (graph/io.hpp)                gen/file
//   algo=NAME        algorithm (see algorithm_names())          required
//   seeds=F:C        run seeds F, F+1, ..., F+C-1               1:1
//   seeds=C          shorthand for 1:C
//   name=ID          label used in reports                      job<index>
//   gseed=S          graph-generation + weight RNG seed         1
//   policy=P         congest[:MULT] | local                     congest:32
//   eps=E            epsilon for the (2+-eps)/(1+eps) algos     0.25
//   maxw=W           random weights drawn from [1, W]           100
//   rounds=R         per-run round cap                          2^20
//
// Example:
//   gen=gnp:400:0.02      algo=luby      seeds=1:16
//   gen=regular:256:6     algo=maxis-alg2 seeds=1:8  maxw=1024
//   file=web.graph        algo=mwm-lr    seeds=7:4  name=web-mwm
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace distapx::service {

/// Thrown on a malformed job line / job file (unknown key, bad value,
/// missing required key). The message carries the 1-based line number.
class JobError final : public std::runtime_error {
 public:
  explicit JobError(const std::string& what) : std::runtime_error(what) {}
};

struct JobSpec {
  std::string name;        ///< report label; parse_job_file defaults job<i>
  std::string gen_spec;    ///< generator spec; empty iff graph_file is set
  std::string graph_file;  ///< edge-list path; empty iff gen_spec is set
  std::string algorithm;   ///< one of algorithm_names()
  std::uint64_t first_seed = 1;
  std::uint32_t num_seeds = 1;
  /// Seeds graph generation and weight sampling (NOT the runs): two jobs
  /// with the same source + gseed share an identical workload.
  std::uint64_t graph_seed = 1;
  sim::BandwidthPolicy policy = sim::BandwidthPolicy::congest(32);
  double eps = 0.25;
  Weight max_w = 100;
  std::uint32_t max_rounds = 1u << 20;

  /// Seed of run index `i` (i < num_seeds).
  [[nodiscard]] std::uint64_t seed_at(std::uint32_t i) const {
    return first_seed + i;
  }
};

/// Algorithms the batch server can run (the distapx_cli set).
const std::vector<std::string>& algorithm_names();

/// Membership test against algorithm_names().
bool is_known_algorithm(const std::string& name);

/// Parses one job line (no comment handling). Throws JobError.
JobSpec parse_job_line(const std::string& line);

/// Parses a whole job file: skips blank lines and '#' comments, assigns
/// default names job0, job1, ... by position. Throws JobError with the
/// offending line number.
std::vector<JobSpec> parse_job_file(std::istream& is);

/// File-path convenience (throws JobError if the file cannot be opened).
std::vector<JobSpec> load_job_file(const std::string& path);

}  // namespace distapx::service
