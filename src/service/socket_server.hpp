// Framed request/response network server in front of the BatchServer.
//
// The spool daemon (daemon.hpp) proved the serve path — job file in,
// cache-backed BatchServer, deterministic rows out — but requires a
// shared filesystem between producer and server. This subsystem serves
// the same path over a socket: clients connect to a Unix-domain or
// localhost-TCP endpoint, speak the length-prefixed framed protocol of
// net/frame.hpp + net/protocol.hpp, and get back the exact bytes `batch`
// would have written (summary CSV, runs CSV, report text) in a RESULT
// frame.
//
// Architecture: one I/O thread (the caller of run()) multiplexes the
// listener, a self-pipe, and every client connection through poll(2),
// with a per-connection frame-decoding state machine; N executor lanes
// (`lanes`) pull submitted job files from per-connection FIFO queues and
// run each through a cache-backed BatchServer whose worker pool
// (`threads`) is shared by all clients.
//
// Scheduling is fair, not globally FIFO: lanes pick the next job
// round-robin across connections, so a client pipelining a burst of
// sweeps cannot head-of-line-block everyone else — a small job on
// another connection is picked up by the next free lane. Clients may
// pipeline (multiple SUBMITs in flight on one connection); responses to
// one connection always come back in its submit order (completions that
// finish out of order are buffered and released in sequence), while
// order *across* connections is unconstrained. None of this affects
// bytes: every RunRow depends on (spec, seed, kEngineVersion) alone, so
// rows are bit-identical to `distapx_cli batch` at any thread count,
// lane count, and client concurrency (test_socket_server.cpp and the CI
// socket e2e step assert this).
//
// When a connection dies with work still queued (idle-timeout reap,
// mid-frame hangup, protocol error after pipelined SUBMITs), its queued
// jobs are discarded unexecuted and counted in `jobs_dropped`; a job
// already running completes on its lane and its response is dropped at
// delivery. Nothing is ever routed to a reused connection id.
//
// Robustness contract: a malformed or malicious client — garbage magic,
// an oversized declared length, a mid-frame hangup, a slow-loris partial
// header — gets a classified ERR (best effort) and its connection
// closed; the accept loop and every other connection keep serving. A job
// file that fails to parse or run becomes an ERR payload on that
// client's connection, which stays usable.
//
// Stopping: request_stop() (async-signal-safe: atomic flag + self-pipe
// write), a SHUTDOWN frame from a client (unless disabled), or
// max_requests. All three drain gracefully: stop accepting, finish
// queued jobs, flush responses (bounded by idle_timeout_ms for peers
// that stop reading), then return from run().
//
// Crash recovery (opt-in via journal_path): every accepted SUBMIT is
// journaled durably (`S no payload`, the raw job-file bytes) in a
// write-ahead changelog before it is queued, and marked done (`R no`) at
// completion. A server restarted over that journal re-executes the
// S-without-R jobs through its cache-backed BatchServer *before the
// listener opens* — not to re-deliver responses (those connections are
// gone; clients retry), but to prewarm the cache so the retries hit warm
// entries instead of recomputing (socket_recovered_jobs_total). The
// journal is compacted to empty at startup and whenever the server goes
// idle, so it holds in-flight work only, never history.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.hpp"
#include "service/result_cache.hpp"
#include "support/changelog.hpp"
#include "support/fdio.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace distapx::service {

struct SocketServerOptions {
  /// Where to listen; parse with net::parse_endpoint ("HOST:PORT" = TCP,
  /// anything else = Unix path). TCP port 0 binds an ephemeral port —
  /// read the real one back from endpoint().
  net::Endpoint endpoint;
  /// BatchServer worker threads per job (0 = hardware concurrency).
  unsigned threads = 0;
  /// Executor lanes: SUBMITs that may execute concurrently. 0 = auto
  /// (min(hardware concurrency, 8)); an explicit value is honored as
  /// given (lanes beyond the core count still provide head-of-line
  /// isolation — a long sweep timeshares instead of serializing).
  /// Total worker threads can momentarily reach lanes x threads.
  unsigned lanes = 0;
  /// Result-cache directory; empty = serve without a cache.
  std::string cache_dir;
  /// Cache byte budget (ResultCache open-with-budget semantics); nonzero
  /// without cache_dir is a JobError.
  std::uint64_t cache_budget = 0;
  /// Changelog base path for the submit journal (files journal_path +
  /// ".log"/".snap"); empty = no journal. Costs one durable append per
  /// SUBMIT on the I/O thread; buys cache-prewarming crash recovery.
  std::string journal_path;
  /// Cap on one frame's declared payload length; a SUBMIT announcing
  /// more is rejected from its header alone.
  std::size_t max_frame_bytes = 16u << 20;
  /// A connection stalled mid-frame (slow loris) or refusing to read its
  /// responses is reaped after this long. 0 disables reaping (then a
  /// drain can block on a peer that never reads — leave it on outside
  /// tests).
  std::uint32_t idle_timeout_ms = 30'000;
  /// Drain after accepting this many SUBMITs (0 = no limit). Bounds a
  /// server's lifetime for tests and the CI e2e step, like the daemon's
  /// max_files.
  std::uint64_t max_requests = 0;
  /// Whether a SHUTDOWN frame from a client drains the server. On by
  /// default: the serving tier is a localhost/trusted-LAN tool and
  /// scripted stops beat kill(1). Disable for longer-lived deployments.
  bool allow_remote_shutdown = true;
  /// Metrics destination shared with the cache and batch servers this
  /// server drives; the CLI passes the process registry so the admin
  /// endpoint scrapes everything in one page. Null -> a private registry
  /// (instrumentation is unconditional either way). Not owned; must
  /// outlive the server.
  metrics::Registry* registry = nullptr;
  /// Where completed per-SUBMIT traces are published (the recent ring +
  /// slowest-K retention GET /tracez renders). Null = traces are built
  /// only when a client asks for an echo (SUBMITTRACE) and discarded
  /// after delivery. Not owned; must outlive run().
  trace::TraceSink* trace_sink = nullptr;
  /// A job whose end-to-end trace exceeds this many milliseconds emits
  /// one rate-limited `event=slow_job` log line carrying the flattened
  /// span breakdown. 0 = disabled (the default).
  std::uint32_t slow_ms = 0;
};

/// Counters over one run(). Everything here is operational telemetry —
/// the determinism contract covers RESULT payload bytes only. This is a
/// *typed view* over the metrics registry (socket_stats_from): the server
/// keeps no shadow counters — the registry's relaxed-atomic series are
/// the single source of truth, and the STATS frame, the run() return
/// value, and GET /metrics all render from the same snapshot, so the
/// surfaces cannot disagree.
struct SocketServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t submits_accepted = 0;
  std::uint64_t results_ok = 0;  ///< completed jobs, delivered or not
  std::uint64_t results_error = 0;  ///< ERR replies to well-framed SUBMITs
  std::uint64_t protocol_errors = 0;  ///< bad frames + mid-frame hangups
  std::uint64_t timeouts = 0;         ///< idle_timeout_ms reaps
  std::uint64_t pings = 0;
  std::uint64_t cache_hits = 0;  ///< summed over served jobs
  std::uint64_t computed = 0;
  /// Jobs whose connection died first: queued jobs discarded unexecuted
  /// plus finished jobs whose response had no live connection to go to.
  std::uint64_t jobs_dropped = 0;
  unsigned lanes = 0;  ///< effective executor lane count
};

/// The SocketServerStats a registry snapshot implies. cache_hits and
/// computed come from the shared ResultCache / BatchServer counters
/// (cache_hits_total, runs_computed_total) — the serving tier no longer
/// keeps its own copies of those numbers.
SocketServerStats socket_stats_from(const metrics::Snapshot& snap);

class SocketServer {
 public:
  /// Opens the listener (and the cache, when configured) immediately, so
  /// a bad endpoint or cache dir fails here, not mid-serve. Throws
  /// net::NetError / JobError.
  explicit SocketServer(SocketServerOptions opts);

  /// Serves until a stop condition, then drains and returns the final
  /// counters. Call at most once.
  SocketServerStats run();

  /// Safe from other threads and from signal handlers.
  void request_stop() noexcept {
    stop_.store(true);
    pipe_.poke();
  }

  [[nodiscard]] bool stop_requested() const noexcept { return stop_.load(); }
  /// The bound endpoint (ephemeral TCP port resolved).
  [[nodiscard]] const net::Endpoint& endpoint() const noexcept { return ep_; }
  [[nodiscard]] const SocketServerOptions& options() const noexcept {
    return opts_;
  }
  /// Null when no cache_dir was configured.
  [[nodiscard]] ResultCache* cache() noexcept {
    return cache_ ? &*cache_ : nullptr;
  }
  /// The registry this server instruments (the configured one, or the
  /// private fallback). An admin endpoint scrapes this.
  [[nodiscard]] metrics::Registry& registry() noexcept { return *reg_; }
  /// Null when no journal_path was configured.
  [[nodiscard]] const Changelog* journal() const noexcept {
    return journal_ ? &*journal_ : nullptr;
  }

 private:
  SocketServerOptions opts_;
  /// Fallback when options carried no registry; declared before cache_
  /// so the cache can share it.
  std::unique_ptr<metrics::Registry> own_registry_;
  metrics::Registry* reg_ = nullptr;
  net::Endpoint ep_;
  std::optional<net::Listener> listener_;  ///< reset when draining begins
  std::optional<ResultCache> cache_;       ///< engaged iff cache_dir is set
  /// Submit journal (engaged iff journal_path is set). The changelog's
  /// internal mutex covers the I/O thread's S appends racing the lanes'
  /// R appends.
  std::optional<Changelog> journal_;
  fdio::Pipe pipe_;                        ///< wakes poll from stop/executor
  std::atomic<bool> stop_{false};
};

}  // namespace distapx::service
