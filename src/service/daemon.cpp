#include "service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "support/fsutil.hpp"
#include "support/table.hpp"

namespace distapx::service {

namespace fs = std::filesystem;

namespace {

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    throw JobError("cannot create spool directory " + dir + ": " +
                   ec.message());
  }
}

/// fsutil::move_file (rename, or temp-copy + rename across filesystems —
/// a half-copied job file must never become visible in done/failed).
/// Throws JobError: a job file that cannot leave the spool would
/// otherwise be re-served on every poll cycle forever.
void move_file(const fs::path& from, const fs::path& to) {
  try {
    fsutil::move_file(from, to);
  } catch (const fs::filesystem_error& e) {
    throw JobError("cannot move " + from.string() + " to " + to.string() +
                   ": " + e.code().message());
  }
}

/// Publication must not silently truncate: a short runs.csv reported as
/// success would be a corrupt determinism witness.
void write_text(const fs::path& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
  os.flush();
  if (!os) throw JobError("cannot write " + path.string());
}

}  // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(std::move(opts)) {
  if (opts_.spool_dir.empty()) throw JobError("daemon needs a spool dir");
  ensure_dir(opts_.spool_dir);
  ensure_dir(opts_.spool_dir + "/done");
  ensure_dir(opts_.spool_dir + "/failed");
  if (!opts_.cache_dir.empty()) {
    cache_.emplace(opts_.cache_dir, opts_.cache_budget);
  } else if (opts_.cache_budget != 0) {
    throw JobError("cache_budget needs a cache_dir");
  }
}

JobFileReport Daemon::process_file(const std::string& path) {
  const fs::path job_path(path);
  JobFileReport report;
  report.name = job_path.stem().string();
  const fs::path done = fs::path(opts_.spool_dir) / "done";
  const fs::path failed = fs::path(opts_.spool_dir) / "failed";

  try {
    BatchOptions batch_opts;
    batch_opts.threads = opts_.threads;
    batch_opts.cache = cache();
    BatchServer server(batch_opts);
    server.submit_all(load_job_file(path));
    if (server.num_jobs() == 0) throw JobError("job file contains no jobs");
    const BatchResult result = server.serve();

    report.ok = true;
    report.runs = result.total_runs;
    report.cache_hits = result.cache_hits;
    report.computed = result.computed;
    report.wall_seconds = result.wall_seconds;

    // Publish results before moving the job file: a crash between the two
    // leaves the file in the spool to be re-served (idempotent thanks to
    // the cache), never a consumed-but-unreported job.
    {
      std::ostringstream os;
      summary_table(result).write_csv(os);
      write_text(done / (report.name + ".summary.csv"), os.str());
    }
    {
      std::ostringstream os;
      runs_table(result).write_csv(os);
      write_text(done / (report.name + ".runs.csv"), os.str());
    }
    write_text(done / (report.name + ".report.txt"),
               "job_file " + job_path.filename().string() + "\n" +
                   "jobs " + std::to_string(result.jobs.size()) + "\n" +
                   "runs " + std::to_string(report.runs) + "\n" +
                   "served_from_cache " + std::to_string(report.cache_hits) +
                   "\n" + "computed " + std::to_string(report.computed) +
                   "\n" + "hit_rate " + Table::fmt(report.hit_rate(), 4) +
                   "\n" + "wall_seconds " +
                   Table::fmt(report.wall_seconds, 4) + "\n");
    move_file(job_path, done / job_path.filename());
  } catch (const std::exception& e) {
    // Quarantine: the diagnostic (with its line number, for parse errors)
    // lands next to the offending file and the daemon keeps serving.
    report.ok = false;
    report.error = e.what();
    try {
      write_text(failed / (report.name + ".error"), report.error + "\n");
      move_file(job_path, failed / job_path.filename());
    } catch (const std::exception&) {
      // Even the quarantine failed (spool subdirs unwritable, disk
      // full). Pin the file so the poll loop does not re-serve it
      // forever; the operator sees the fault in the returned report.
      stuck_.insert(job_path.filename().string());
    }
  }
  return report;
}

std::vector<JobFileReport> Daemon::drain_once() {
  // Claim order is lexicographic on the file name, never directory order:
  // a drained spool produces the same sequence of reports on every
  // platform and filesystem.
  std::vector<fs::path> batch;
  std::error_code ec;
  for (fs::directory_iterator it(opts_.spool_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == ".job" &&
        stuck_.count(it->path().filename().string()) == 0) {
      batch.push_back(it->path());
    }
  }
  std::sort(batch.begin(), batch.end());

  std::vector<JobFileReport> reports;
  for (const fs::path& p : batch) {
    if (stop_.load()) break;
    if (opts_.max_files != 0 && served_ >= opts_.max_files) break;
    reports.push_back(process_file(p.string()));
    ++served_;
  }
  return reports;
}

std::vector<JobFileReport> Daemon::run() {
  const fs::path sentinel = fs::path(opts_.spool_dir) / "stop";
  std::vector<JobFileReport> all;
  for (;;) {
    std::error_code ec;
    if (fs::exists(sentinel, ec)) {
      fs::remove(sentinel, ec);
      break;
    }
    auto reports = drain_once();
    all.insert(all.end(), std::make_move_iterator(reports.begin()),
               std::make_move_iterator(reports.end()));
    if (stop_.load()) break;
    if (opts_.max_files != 0 && served_ >= opts_.max_files) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.poll_ms));
  }
  return all;
}

}  // namespace distapx::service
