#include "service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "service/report_sink.hpp"
#include "support/failpoint.hpp"
#include "support/fsutil.hpp"
#include "support/log.hpp"
#include "support/manifest.hpp"

namespace distapx::service {

namespace fs = std::filesystem;

namespace {

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    throw JobError("cannot create spool directory " + dir + ": " +
                   ec.message());
  }
}

/// fsutil::move_file (rename, or temp-copy + rename across filesystems —
/// a half-copied job file must never become visible in done/failed).
/// Throws JobError: a job file that cannot leave the spool would
/// otherwise be re-served on every poll cycle forever.
void move_file(const fs::path& from, const fs::path& to) {
  try {
    fsutil::move_file(from, to);
  } catch (const fs::filesystem_error& e) {
    throw JobError("cannot move " + from.string() + " to " + to.string() +
                   ": " + e.code().message());
  }
}

/// Durable publication (temp + fdatasync + rename + dir fsync, per the
/// process durability knob). Must not silently truncate *or tear*: a
/// short runs.csv surviving a power loss would be a corrupt determinism
/// witness that looks published.
void write_text(const fs::path& path, const std::string& text) {
  std::string err;
  if (!fsutil::write_file_durable(path, text, &err)) {
    throw JobError("cannot write " + path.string() + ": " + err);
  }
}

/// True iff every published artifact of `name` exists in done/ — the
/// resume precondition (a P record with a missing done-file means the
/// predecessor died mid-publication; recompute from scratch instead).
bool publication_complete(const fs::path& done, const std::string& name) {
  std::error_code ec;
  return fs::is_regular_file(done / (name + ".summary.csv"), ec) &&
         fs::is_regular_file(done / (name + ".runs.csv"), ec) &&
         fs::is_regular_file(done / (name + ".report.txt"), ec);
}

}  // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(std::move(opts)) {
  if (opts_.spool_dir.empty()) throw JobError("daemon needs a spool dir");
  if (opts_.registry != nullptr) {
    reg_ = opts_.registry;
  } else {
    own_registry_ = std::make_unique<metrics::Registry>();
    reg_ = own_registry_.get();
  }
  ensure_dir(opts_.spool_dir);
  ensure_dir(opts_.spool_dir + "/done");
  ensure_dir(opts_.spool_dir + "/failed");
  if (!opts_.cache_dir.empty()) {
    cache_.emplace(opts_.cache_dir, opts_.cache_budget, reg_);
  } else if (opts_.cache_budget != 0) {
    throw JobError("cache_budget needs a cache_dir");
  }

  try {
    journal_.emplace(opts_.spool_dir + "/journal");
  } catch (const ChangelogError& e) {
    throw JobError("cannot open spool journal in " + opts_.spool_dir + ": " +
                   e.what());
  }
  // Replay the predecessor's claim/publish records: a `P` without its `D`
  // is a job whose results were published but whose spool move never
  // durably completed.
  const auto apply = [this](const std::string& payload) {
    const auto rec = parse_manifest_line(payload);
    if (!rec || rec->fields.empty()) return;
    if (rec->tag == "P") {
      published_.insert(rec->fields[0]);
    } else if (rec->tag == "D") {
      published_.erase(rec->fields[0]);
    }
  };
  for (const std::string& p : journal_->replayed().snapshot) apply(p);
  for (const std::string& p : journal_->replayed().tail) apply(p);
  // A claim whose job file already left the spool crashed *after* the
  // move, before its D record: the work is fully done — settle it now.
  // What survives in published_ is picked up by process_file as a resume.
  for (auto it = published_.begin(); it != published_.end();) {
    std::error_code ec;
    if (fs::is_regular_file(fs::path(opts_.spool_dir) / (*it + ".job"), ec)) {
      ++it;
    } else {
      it = published_.erase(it);
    }
  }
  // Compact: the journal restarts as a snapshot of still-pending claims,
  // so it never accumulates a long-lived daemon's full history.
  std::vector<std::string> pending;
  pending.reserve(published_.size());
  for (const std::string& name : published_) pending.push_back("P " + name);
  std::sort(pending.begin(), pending.end());
  journal_->snapshot(pending);
}

JobFileReport Daemon::process_file(const std::string& path) {
  const fs::path job_path(path);
  JobFileReport report;
  report.name = job_path.stem().string();
  const fs::path done = fs::path(opts_.spool_dir) / "done";
  const fs::path failed = fs::path(opts_.spool_dir) / "failed";

  // Per-file trace: one root span covering claim-to-move, with parse /
  // publish children here and per-seed cache-lookup / compute /
  // cache-store children recorded by the BatchServer workers.
  std::optional<trace::Collector> tracer;
  std::uint32_t file_span = 0;
  if (trace::enabled() &&
      (opts_.trace_sink != nullptr || opts_.slow_ms != 0)) {
    tracer.emplace(++trace_seq_, "spool");
    file_span = tracer->begin("serve-file");
    tracer->annotate(file_span, "file", report.name);
  }
  const std::uint64_t trace_id = tracer ? tracer->id() : 0;
  const auto finish_trace = [&](const char* outcome) {
    if (!tracer) return;
    tracer->annotate(file_span, "outcome", outcome);
    tracer->end(file_span);
    const trace::Trace t = tracer->finish();
    if (opts_.trace_sink != nullptr) opts_.trace_sink->publish(t);
    if (opts_.slow_ms != 0 &&
        t.duration_ns > std::uint64_t{opts_.slow_ms} * 1'000'000ull) {
      logx::warn("slow_job", {{"trace", t.id},
                              {"endpoint", t.endpoint},
                              {"duration_ms", static_cast<double>(
                                                  t.duration_ns) /
                                                  1e6},
                              {"spans", trace::flatten_spans(t)}});
    }
  };

  try {
    // Resume: a crashed predecessor journaled `P name` and the done files
    // are complete — the only thing missing is the spool move. Finish it
    // without recomputing and without touching one published byte, so no
    // consumer can ever observe a second (even bit-identical) publication.
    if (published_.count(report.name) != 0 &&
        publication_complete(done, report.name)) {
      move_file(job_path, done / job_path.filename());
      journal_->append("D " + report.name);
      published_.erase(report.name);
      report.ok = true;
      report.resumed = true;
      reg_->counter("spool_resumed_total").inc();
      reg_->counter("spool_files_served_total").inc();
      logx::info("job_file_resumed",
                 {{"file", report.name}, {"trace", trace_id}});
      finish_trace("resumed");
      return report;
    }

    BatchOptions batch_opts;
    batch_opts.threads = opts_.threads;
    batch_opts.cache = cache();
    batch_opts.registry = reg_;
    batch_opts.trace = tracer ? &*tracer : nullptr;
    batch_opts.trace_parent = file_span;
    BatchServer server(batch_opts);
    std::uint32_t parse_span = 0;
    if (tracer) parse_span = tracer->begin("parse", file_span);
    server.submit_all(load_job_file(path));
    if (tracer) tracer->end(parse_span);
    if (server.num_jobs() == 0) throw JobError("job file contains no jobs");
    const BatchResult result = server.serve();

    report.ok = true;
    report.runs = result.total_runs;
    report.cache_hits = result.cache_hits;
    report.computed = result.computed;
    report.wall_seconds = result.wall_seconds;

    // Publish results before moving the job file: a crash between the two
    // leaves the file in the spool to be re-served (idempotent thanks to
    // the cache), never a consumed-but-unreported job. Rendering goes
    // through the shared report sink, so these bytes are the same ones
    // the socket server returns in a RESULT frame.
    std::uint32_t publish_span = 0;
    if (tracer) publish_span = tracer->begin("publish", file_span);
    const RenderedResult rendered =
        render_result(job_path.filename().string(), result);
    write_text(done / (report.name + ".summary.csv"), rendered.summary_csv);
    write_text(done / (report.name + ".runs.csv"), rendered.runs_csv);
    write_text(done / (report.name + ".report.txt"), rendered.report_txt);
    // `P name` lands durably (the append fdatasyncs) before the move: a
    // crash anywhere in the publish->move window is now recoverable as a
    // resume instead of a recompute-and-republish. An append failure only
    // costs that recoverability — the publication itself already
    // succeeded — so it degrades, not throws.
    if (!journal_->append("P " + report.name)) {
      logx::warn("spool_journal_append_failed", {{"file", report.name}});
    }
    failpoint::hit("daemon_publish_move");
    move_file(job_path, done / job_path.filename());
    journal_->append("D " + report.name);
    if (tracer) {
      tracer->annotate(publish_span, "runs", report.runs);
      tracer->end(publish_span);
    }
    reg_->counter("spool_files_served_total").inc();
    logx::info("job_file_served", {{"file", report.name},
                                   {"runs", report.runs},
                                   {"cache_hits", report.cache_hits},
                                   {"computed", report.computed},
                                   {"trace", trace_id}});
    finish_trace("served");
  } catch (const failpoint::Failure&) {
    // A simulated crash must behave like a real one: unwind out of the
    // daemon entirely rather than being quarantined as a bad job file.
    throw;
  } catch (const std::exception& e) {
    // Quarantine: the diagnostic (with its line number, for parse errors)
    // lands next to the offending file and the daemon keeps serving.
    report.ok = false;
    report.error = e.what();
    reg_->counter("spool_files_quarantined_total").inc();
    logx::warn("job_file_quarantined", {{"file", report.name},
                                        {"err", report.error},
                                        {"trace", trace_id}});
    finish_trace("quarantined");
    try {
      write_text(failed / (report.name + ".error"), report.error + "\n");
      move_file(job_path, failed / job_path.filename());
    } catch (const std::exception&) {
      // Even the quarantine failed (spool subdirs unwritable, disk
      // full). Pin the file so the poll loop does not re-serve it
      // forever; the operator sees the fault in the returned report.
      stuck_.insert(job_path.filename().string());
    }
  }
  return report;
}

std::vector<JobFileReport> Daemon::drain_once() {
  // Claim order is lexicographic on the file name, never directory order:
  // a drained spool produces the same sequence of reports on every
  // platform and filesystem.
  std::vector<fs::path> batch;
  std::error_code ec;
  for (fs::directory_iterator it(opts_.spool_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == ".job" &&
        stuck_.count(it->path().filename().string()) == 0) {
      batch.push_back(it->path());
    }
  }
  std::sort(batch.begin(), batch.end());

  std::vector<JobFileReport> reports;
  for (const fs::path& p : batch) {
    if (stop_.load()) break;
    if (opts_.max_files != 0 && served_ >= opts_.max_files) break;
    reports.push_back(process_file(p.string()));
    ++served_;
  }
  return reports;
}

std::uint32_t next_idle_wait_ms(std::uint32_t current_ms,
                                std::uint32_t cap_ms) noexcept {
  if (current_ms == 0) return cap_ms < 1 ? cap_ms : 1;
  const std::uint32_t doubled =
      current_ms > cap_ms / 2 ? cap_ms : current_ms * 2;
  return doubled < cap_ms ? doubled : cap_ms;
}

std::vector<JobFileReport> Daemon::run() {
  const fs::path sentinel = fs::path(opts_.spool_dir) / "stop";
  std::vector<JobFileReport> all;
  std::uint32_t wait_ms = 0;  // backoff state; 0 = just saw activity
  // /healthz on an admin endpoint sharing this registry reads these.
  metrics::Gauge& ready = reg_->gauge("ready");
  ready.set(1);
  logx::info("daemon_started", {{"spool", opts_.spool_dir}});
  for (;;) {
    std::error_code ec;
    if (fs::exists(sentinel, ec)) {
      fs::remove(sentinel, ec);
      break;
    }
    auto reports = drain_once();
    // Exponential idle backoff: a scan that found work resets the wait
    // (more files often follow a burst), every empty scan doubles it up
    // to poll_ms. An idle daemon settles at one stat per poll_ms instead
    // of a fixed-rate scan loop, and a busy one re-scans immediately.
    wait_ms = reports.empty() ? next_idle_wait_ms(wait_ms, opts_.poll_ms) : 0;
    all.insert(all.end(), std::make_move_iterator(reports.begin()),
               std::make_move_iterator(reports.end()));
    if (stop_.load()) break;
    if (opts_.max_files != 0 && served_ >= opts_.max_files) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  ready.set(0);
  logx::info("daemon_stopped", {{"served", served_}});
  return all;
}

}  // namespace distapx::service
