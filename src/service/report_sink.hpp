// Shared rendering of one served job file's publication artifacts.
//
// The spool daemon (daemon.hpp) publishes three files per job file —
// NAME.summary.csv, NAME.runs.csv, NAME.report.txt — and the socket
// server (socket_server.hpp) returns the same three byte streams in a
// RESULT frame. Both render through this sink, so "the rows you get over
// the socket" and "the rows the daemon drops into done/" are the same
// bytes by construction, not by parallel-maintenance luck.
//
// Determinism contract: summary_csv and runs_csv are pure functions of
// the job file's content (and kEngineVersion). report_txt carries
// operational telemetry (hit rate, wall seconds) and the caller-chosen
// job label; it is deliberately outside the byte-identity contract.
#pragma once

#include <string>

#include "service/batch_server.hpp"

namespace distapx::service {

/// The three publication artifacts of one served job file.
struct RenderedResult {
  std::string summary_csv;  ///< summary_table(result) as CSV
  std::string runs_csv;     ///< runs_table(result) as CSV (determinism witness)
  std::string report_txt;   ///< served/computed/hit-rate counters
};

/// Renders a BatchResult. `job_label` names the source in report_txt's
/// "job_file" line — the daemon passes the spool file name ("sweep.job"),
/// the socket server a per-submission label.
RenderedResult render_result(const std::string& job_label,
                             const BatchResult& result);

}  // namespace distapx::service
