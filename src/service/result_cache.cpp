#include "service/result_cache.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "graph/genspec.hpp"

namespace distapx::service {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'X', 'R', 'C'};
/// Guards deserialization only; kEngineVersion guards run semantics.
constexpr std::uint32_t kFormatVersion = 1;

/// Explicit little-endian packing: entries must be readable across
/// platforms regardless of host endianness or struct layout.
void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// magic + format + engine + key(16) + row(53) + checksum(16)
constexpr std::size_t kRowBytes = 8 + 4 + 8 + 8 + 4 + 1 + 8 + 8 + 4;
constexpr std::size_t kEntryBytes = 4 + 4 + 4 + 16 + kRowBytes + 16;

std::vector<unsigned char> encode(const Fingerprint& key, const RunRow& row) {
  std::vector<unsigned char> buf;
  buf.reserve(kEntryBytes);
  buf.insert(buf.end(), kMagic, kMagic + 4);
  put_u32(buf, kFormatVersion);
  put_u32(buf, kEngineVersion);
  put_u64(buf, key.hi);
  put_u64(buf, key.lo);
  put_u64(buf, row.seed);
  put_u32(buf, row.rounds);
  put_u64(buf, row.messages);
  put_u64(buf, row.total_bits);
  put_u32(buf, row.max_edge_bits);
  buf.push_back(row.completed ? 1 : 0);
  put_u64(buf, row.solution_size);
  put_u64(buf, static_cast<std::uint64_t>(row.objective));
  put_u32(buf, 0);  // reserved
  const Fingerprint sum = fingerprint_bytes(buf.data(), buf.size());
  put_u64(buf, sum.hi);
  put_u64(buf, sum.lo);
  return buf;
}

/// Full validation: length, magic, versions, key echo, checksum. Any
/// mismatch returns nullopt — the caller recomputes.
std::optional<RunRow> decode(const std::vector<unsigned char>& buf,
                             const Fingerprint& key) {
  if (buf.size() != kEntryBytes) return std::nullopt;
  const unsigned char* p = buf.data();
  if (std::memcmp(p, kMagic, 4) != 0) return std::nullopt;
  if (get_u32(p + 4) != kFormatVersion) return std::nullopt;
  if (get_u32(p + 8) != kEngineVersion) return std::nullopt;
  if (get_u64(p + 12) != key.hi || get_u64(p + 20) != key.lo) {
    return std::nullopt;
  }
  const std::size_t body = kEntryBytes - 16;
  const Fingerprint sum = fingerprint_bytes(p, body);
  if (get_u64(p + body) != sum.hi || get_u64(p + body + 8) != sum.lo) {
    return std::nullopt;
  }
  RunRow row;
  p += 28;
  row.seed = get_u64(p);
  row.rounds = get_u32(p + 8);
  row.messages = get_u64(p + 12);
  row.total_bits = get_u64(p + 20);
  row.max_edge_bits = get_u32(p + 28);
  row.completed = p[32] != 0;
  row.solution_size = get_u64(p + 33);
  row.objective = static_cast<Weight>(get_u64(p + 41));
  return row;
}

}  // namespace

Fingerprinter job_fingerprinter(const JobSpec& spec) {
  Fingerprinter fp;
  fp.add_string("distapx.run");
  fp.add_u32(kEngineVersion);
  fp.add_string(spec.algorithm);
  if (!spec.gen_spec.empty()) {
    fp.add_string("gen");
    fp.add_string(gen::canonical_spec(spec.gen_spec));
  } else {
    // File-backed workloads key on the path; the cache assumes graph files
    // are immutable (regenerate into a fresh path, or clear the cache).
    fp.add_string("file");
    fp.add_string(spec.graph_file);
  }
  fp.add_u64(spec.graph_seed);
  fp.add_i64(spec.max_w);
  fp.add_bool(spec.policy.bounded);
  fp.add_u32(spec.policy.multiplier);
  fp.add_bool(spec.policy.enforce);
  fp.add_double(spec.eps);
  fp.add_u32(spec.max_rounds);
  return fp;
}

Fingerprint run_fingerprint(const JobSpec& spec, std::uint64_t seed) {
  return run_fingerprint(job_fingerprinter(spec), seed);
}

Fingerprint run_fingerprint(Fingerprinter job_prefix, std::uint64_t seed) {
  job_prefix.add_u64(seed);
  return job_prefix.digest();
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw JobError("cannot create cache directory " + dir_ + ": " +
                   ec.message());
  }
}

std::string ResultCache::entry_path(const Fingerprint& key) const {
  const std::string hex = key.hex();
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex.substr(2) + ".rr";
}

std::optional<RunRow> ResultCache::lookup(const Fingerprint& key) {
  std::ifstream is(entry_path(key), std::ios::binary);
  if (!is) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<unsigned char> buf(kEntryBytes + 1);
  is.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<std::size_t>(is.gcount()));
  auto row = decode(buf, key);
  if (!row) {
    // The entry existed but failed validation: corrupt, truncated, or a
    // stale version. Count it separately — a burst of rejects after an
    // engine bump is expected, a burst during steady state is not.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return row;
}

void ResultCache::store(const Fingerprint& key, const RunRow& row) {
  const std::string path = entry_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  // Unique temp name per (process, store): concurrent fills never write
  // the same temp file, and rename() makes publication atomic.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_counter_.fetch_add(1, std::memory_order_relaxed));
  const auto buf = encode(key, row);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    if (!os) {
      os.close();
      fs::remove(tmp, ec);
      throw JobError("cannot write cache entry " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw JobError("cannot publish cache entry " + path + ": " +
                   ec.message());
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const noexcept {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

void ResultCache::reset_stats() noexcept {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

}  // namespace distapx::service
