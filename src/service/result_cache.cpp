#include "service/result_cache.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "graph/genspec.hpp"
#include "service/cache_manager.hpp"
#include "support/fsutil.hpp"
#include "support/trace.hpp"

namespace distapx::service {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'D', 'X', 'R', 'C'};
/// Guards deserialization only; kEngineVersion guards run semantics.
constexpr std::uint32_t kFormatVersion = 1;

/// Explicit little-endian packing: entries must be readable across
/// platforms regardless of host endianness or struct layout.
void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// magic + format + engine + key(16) + row(53) + checksum(16)
constexpr std::size_t kRowBytes = 8 + 4 + 8 + 8 + 4 + 1 + 8 + 8 + 4;
constexpr std::size_t kEntryBytes = 4 + 4 + 4 + 16 + kRowBytes + 16;

std::vector<unsigned char> encode(const Fingerprint& key, const RunRow& row) {
  std::vector<unsigned char> buf;
  buf.reserve(kEntryBytes);
  buf.insert(buf.end(), kMagic, kMagic + 4);
  put_u32(buf, kFormatVersion);
  put_u32(buf, kEngineVersion);
  put_u64(buf, key.hi);
  put_u64(buf, key.lo);
  put_u64(buf, row.seed);
  put_u32(buf, row.rounds);
  put_u64(buf, row.messages);
  put_u64(buf, row.total_bits);
  put_u32(buf, row.max_edge_bits);
  buf.push_back(row.completed ? 1 : 0);
  put_u64(buf, row.solution_size);
  put_u64(buf, static_cast<std::uint64_t>(row.objective));
  put_u32(buf, 0);  // reserved
  const Fingerprint sum = fingerprint_bytes(buf.data(), buf.size());
  put_u64(buf, sum.hi);
  put_u64(buf, sum.lo);
  return buf;
}

/// Full validation of an in-memory entry image: length, magic, versions,
/// key echo, checksum — reported as the first failing check.
EntryStatus decode(const std::vector<unsigned char>& buf,
                   const Fingerprint& key, RunRow* row_out) {
  if (buf.size() != kEntryBytes) return EntryStatus::kBadLength;
  const unsigned char* p = buf.data();
  if (std::memcmp(p, kMagic, 4) != 0) return EntryStatus::kBadMagic;
  if (get_u32(p + 4) != kFormatVersion) return EntryStatus::kBadFormat;
  if (get_u32(p + 8) != kEngineVersion) return EntryStatus::kBadEngine;
  if (get_u64(p + 12) != key.hi || get_u64(p + 20) != key.lo) {
    return EntryStatus::kKeyMismatch;
  }
  const std::size_t body = kEntryBytes - 16;
  const Fingerprint sum = fingerprint_bytes(p, body);
  if (get_u64(p + body) != sum.hi || get_u64(p + body + 8) != sum.lo) {
    return EntryStatus::kBadChecksum;
  }
  if (row_out != nullptr) {
    RunRow row;
    p += 28;
    row.seed = get_u64(p);
    row.rounds = get_u32(p + 8);
    row.messages = get_u64(p + 12);
    row.total_bits = get_u64(p + 20);
    row.max_edge_bits = get_u32(p + 28);
    row.completed = p[32] != 0;
    row.solution_size = get_u64(p + 33);
    row.objective = static_cast<Weight>(get_u64(p + 41));
    *row_out = row;
  }
  return EntryStatus::kOk;
}

bool is_hex_lower(std::string_view s) {
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

const char* entry_status_name(EntryStatus s) noexcept {
  switch (s) {
    case EntryStatus::kOk: return "ok";
    case EntryStatus::kMissing: return "missing";
    case EntryStatus::kIoError: return "io-error";
    case EntryStatus::kBadLength: return "bad-length";
    case EntryStatus::kBadMagic: return "bad-magic";
    case EntryStatus::kBadFormat: return "bad-format";
    case EntryStatus::kBadEngine: return "stale-engine";
    case EntryStatus::kKeyMismatch: return "key-mismatch";
    case EntryStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::size_t entry_file_size() noexcept { return kEntryBytes; }

EntryStatus check_entry_file(const std::string& path, const Fingerprint& key,
                             RunRow* row_out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    // ifstream reports EACCES exactly like ENOENT; a file that *exists*
    // but cannot be opened is an I/O error (verify must not report a file
    // its own directory walk just listed as "missing", and lookup counts
    // it as a reject, not a plain miss).
    std::error_code ec;
    return fs::exists(path, ec) && !ec ? EntryStatus::kIoError
                                       : EntryStatus::kMissing;
  }
  // Explicit read loop instead of one is.read(): a single read may stop
  // short of EOF (interrupted stream, platform quirks), and iostream
  // reports "asked for N, got fewer" identically for a truncated file and
  // a mid-file short read. Accumulate until EOF or error so a file whose
  // size happens to land on a read boundary is never misclassified: only
  // genuinely-kEntryBytes files reach the decoder as full-length.
  std::vector<unsigned char> buf(kEntryBytes + 1);
  std::size_t got = 0;
  while (got < buf.size()) {
    is.read(reinterpret_cast<char*>(buf.data()) + got,
            static_cast<std::streamsize>(buf.size() - got));
    if (is.bad()) return EntryStatus::kIoError;
    const std::size_t n = static_cast<std::size_t>(is.gcount());
    got += n;
    if (is.eof()) break;
    if (n == 0) return EntryStatus::kIoError;  // no progress, no EOF
  }
  buf.resize(got);
  return decode(buf, key, row_out);
}

std::string cache_entry_path(const std::string& dir, const Fingerprint& key) {
  return cache_entry_path(dir, key.hex());
}

std::string cache_entry_path(const std::string& dir,
                             const std::string& key_hex) {
  return dir + "/" + key_hex.substr(0, 2) + "/" + key_hex.substr(2) + ".rr";
}

std::optional<Fingerprint> key_from_entry_path(const std::string& path) {
  const fs::path p(path);
  if (p.extension() != ".rr") return std::nullopt;
  const std::string stem = p.stem().string();
  const std::string fan = p.parent_path().filename().string();
  if (fan.size() != 2 || stem.size() != 30) return std::nullopt;
  if (!is_hex_lower(fan) || !is_hex_lower(stem)) return std::nullopt;
  return Fingerprint::from_hex(fan + stem);
}

Fingerprinter job_fingerprinter(const JobSpec& spec) {
  Fingerprinter fp;
  fp.add_string("distapx.run");
  fp.add_u32(kEngineVersion);
  fp.add_string(spec.algorithm);
  if (!spec.gen_spec.empty()) {
    fp.add_string("gen");
    fp.add_string(gen::canonical_spec(spec.gen_spec));
  } else {
    // File-backed workloads key on the path; the cache assumes graph files
    // are immutable (regenerate into a fresh path, or clear the cache).
    fp.add_string("file");
    fp.add_string(spec.graph_file);
  }
  fp.add_u64(spec.graph_seed);
  fp.add_i64(spec.max_w);
  fp.add_bool(spec.policy.bounded);
  fp.add_u32(spec.policy.multiplier);
  fp.add_bool(spec.policy.enforce);
  fp.add_double(spec.eps);
  fp.add_u32(spec.max_rounds);
  return fp;
}

Fingerprint run_fingerprint(const JobSpec& spec, std::uint64_t seed) {
  return run_fingerprint(job_fingerprinter(spec), seed);
}

Fingerprint run_fingerprint(Fingerprinter job_prefix, std::uint64_t seed) {
  job_prefix.add_u64(seed);
  return job_prefix.digest();
}

namespace {

/// Shared registry when passed, lazily-created private one otherwise, so
/// the counter references below always bind and the hot path never null-
/// checks. Idempotent across member initializers.
metrics::Registry& ensure_registry(metrics::Registry* shared,
                                   std::unique_ptr<metrics::Registry>& own) {
  if (shared != nullptr) return *shared;
  if (!own) own = std::make_unique<metrics::Registry>();
  return *own;
}

}  // namespace

CacheStats cache_stats_from(const metrics::Snapshot& snap) {
  CacheStats s;
  s.hits = snap.counter_or("cache_hits_total");
  s.misses = snap.counter_or("cache_misses_total");
  s.stores = snap.counter_or("cache_stores_total");
  s.rejected = snap.counter_or("cache_rejected_total");
  return s;
}

ResultCache::ResultCache(std::string dir, std::uint64_t budget_bytes,
                         metrics::Registry* registry)
    : dir_(std::move(dir)),
      budget_bytes_(budget_bytes),
      hits_(ensure_registry(registry, own_registry_)
                .counter("cache_hits_total")),
      misses_(ensure_registry(registry, own_registry_)
                  .counter("cache_misses_total")),
      stores_(ensure_registry(registry, own_registry_)
                  .counter("cache_stores_total")),
      rejected_(ensure_registry(registry, own_registry_)
                    .counter("cache_rejected_total")) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw JobError("cannot create cache directory " + dir_ + ": " +
                   ec.message());
  }
  if (budget_bytes_ > 0) {
    manager_ = std::make_unique<CacheManager>(
        dir_, registry != nullptr ? registry : own_registry_.get());
    // Enforce immediately: a cache opened with a budget is within budget
    // before the first lookup, whatever a previous (possibly unbudgeted)
    // writer left behind.
    manager_->gc(budget_bytes_);
  }
}

ResultCache::~ResultCache() = default;

std::string ResultCache::entry_path(const Fingerprint& key) const {
  return cache_entry_path(dir_, key);
}

std::optional<RunRow> ResultCache::lookup(const Fingerprint& key) {
  RunRow row;
  const EntryStatus status = check_entry_file(entry_path(key), key, &row);
  if (status == EntryStatus::kOk) {
    hits_.inc();
    trace::annotate_current("outcome", "hit");
    if (manager_) {
      manager_->record_get(key);
      // record_get can *grow* the accounting: it adopts entries another
      // (possibly unbudgeted) process filled into the shared directory.
      // A fully-warm daemon never stores, so the budget must be enforced
      // on hits too or adopted bytes would stand over budget for as long
      // as the hit streak lasts.
      enforce_budget();
    }
    return row;
  }
  if (status != EntryStatus::kMissing) {
    // The entry existed but failed validation: corrupt, truncated, or a
    // stale version. Count it separately — a burst of rejects after an
    // engine bump is expected, a burst during steady state is not.
    rejected_.inc();
    trace::annotate_current("outcome", "rejected");
  } else {
    trace::annotate_current("outcome", "miss");
  }
  misses_.inc();
  return std::nullopt;
}

void ResultCache::store(const Fingerprint& key, const RunRow& row) {
  const std::string path = entry_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  // Unique temp name per (process, store): concurrent fills never write
  // the same temp file, and rename() makes publication atomic.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_counter_.fetch_add(1, std::memory_order_relaxed));
  const auto buf = encode(key, row);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    if (!os) {
      os.close();
      fs::remove(tmp, ec);
      throw JobError("cannot write cache entry " + tmp);
    }
  }
  // Entry data must be on stable storage before the rename publishes the
  // name: a power loss after an unsynced rename can surface an empty or
  // torn entry under a valid name (check_entry_file would reject it, but
  // the recompute it forces is exactly what the cache exists to avoid).
  // No-op under --durability none.
  if (!fsutil::sync_file(tmp)) {
    fs::remove(tmp, ec);
    throw JobError("cannot sync cache entry " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw JobError("cannot publish cache entry " + path + ": " +
                   ec.message());
  }
  // And the rename itself (the directory entry) must survive too.
  fsutil::sync_dir(fs::path(path).parent_path());
  stores_.inc();
  if (manager_) {
    manager_->record_put(key, buf.size());
    // Re-enforce on every fill so a long-lived budgeted cache (the spool
    // daemon) stays bounded mid-run, not just at open.
    enforce_budget();
  }
}

void ResultCache::enforce_budget() {
  // The common under-budget case is one in-memory check. When the budget
  // trips, evict to a low watermark (budget - 1/8) rather than the budget
  // itself, so a steady stream of fills amortizes each O(n log n) gc over
  // ~budget/8 bytes of headroom instead of re-triggering per fill.
  if (manager_->live_bytes() > budget_bytes_) {
    const GcReport report = manager_->gc(budget_bytes_ - budget_bytes_ / 8);
    if (report.evicted_entries > 0) {
      trace::annotate_current("evict_cause", "budget");
      trace::annotate_current("evicted_entries", report.evicted_entries);
      trace::annotate_current("evicted_bytes", report.evicted_bytes);
    }
  }
}

CacheStats ResultCache::stats() const noexcept {
  // Registry counters are monotone (and possibly shared with other
  // components in the same process), so "since reset_stats()" is the
  // counter minus the baseline captured at the last reset.
  CacheStats s;
  s.hits = hits_.value() - base_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.value() - base_misses_.load(std::memory_order_relaxed);
  s.stores = stores_.value() - base_stores_.load(std::memory_order_relaxed);
  s.rejected =
      rejected_.value() - base_rejected_.load(std::memory_order_relaxed);
  return s;
}

void ResultCache::reset_stats() noexcept {
  base_hits_.store(hits_.value(), std::memory_order_relaxed);
  base_misses_.store(misses_.value(), std::memory_order_relaxed);
  base_stores_.store(stores_.value(), std::memory_order_relaxed);
  base_rejected_.store(rejected_.value(), std::memory_order_relaxed);
}

}  // namespace distapx::service
