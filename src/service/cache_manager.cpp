#include "service/cache_manager.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "support/fsutil.hpp"
#include "support/log.hpp"

namespace distapx::service {

namespace fs = std::filesystem;

namespace {

/// Changelog base name: the on-disk files are manifest.log (tail) and
/// manifest.snap (snapshot). "manifest.log" is deliberately the same path
/// the pre-changelog text journal used, so a legacy directory is detected
/// (foreign magic) and migrated rather than shadowed.
constexpr const char* kManifestBase = "manifest";
constexpr const char* kQuarantineName = "quarantine";

/// Tail records tolerated per live entry before a flush compacts the
/// journal into a fresh snapshot instead of appending — bounds the
/// manifest for a warm long-lived daemon whose every run is a touch.
constexpr std::uint64_t kJournalSlack = 8;
constexpr std::uint64_t kJournalSlop = 1024;

/// True for the manager's own metadata paths (manifest.log, manifest.snap,
/// their temp droppings, anything quarantined), which a directory walk
/// must not mistake for (foreign) cache content.
bool is_metadata_path(const fs::path& p, const fs::path& quarantine) {
  for (fs::path q = p; !q.empty() && q != q.root_path(); q = q.parent_path()) {
    if (q == quarantine) return true;
  }
  const std::string name = p.filename().string();
  return name.rfind(std::string(kManifestBase) + ".", 0) == 0;
}

/// The changelog payload for one manifest record (the line syntax minus
/// the trailing newline — framing is the changelog's job).
std::string record_payload(const ManifestRecord& rec) {
  std::string line = format_manifest_line(rec);
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

/// The shared registry when one was passed, else a lazily-created private
/// one — instrumentation stays unconditional with no null checks on the
/// hot path. Idempotent so each member initializer can call it.
metrics::Registry& ensure_registry(metrics::Registry* shared,
                                   std::unique_ptr<metrics::Registry>& own) {
  if (shared != nullptr) return *shared;
  if (!own) own = std::make_unique<metrics::Registry>();
  return *own;
}

}  // namespace

CacheManager::CacheManager(std::string dir, metrics::Registry* registry)
    : dir_(std::move(dir)),
      reg_(&ensure_registry(registry, own_registry_)),
      entries_gauge_(reg_->gauge("cache_entries")),
      bytes_gauge_(reg_->gauge("cache_bytes")),
      manifest_bytes_gauge_(reg_->gauge("cache_manifest_bytes")),
      quarantined_gauge_(reg_->gauge("cache_quarantined")),
      evicted_entries_(reg_->counter("cache_evicted_entries_total")),
      evicted_bytes_(reg_->counter("cache_evicted_bytes_total")),
      open_scans_(reg_->counter("cache_open_scans_total")),
      open_replays_(reg_->counter("cache_open_replays_total")),
      append_failures_(reg_->counter("manifest_append_failures_total")) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw JobError("cannot open cache directory " + dir_ + ": " +
                   ec.message());
  }
  const std::vector<ManifestRecord> legacy = open_journal();

  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t replayed = 0;
  replay_locked(&replayed);
  const bool journal_has_state =
      replayed > 0 || fs::exists(changelog_->snapshot_path(), ec);
  if (journal_has_state) {
    // O(snapshot + tail): the accounting came entirely from the journal;
    // not one entry file was opened or stat'd.
    open_replays_.inc();
  } else {
    // No journal state (fresh dir, filled by unbudgeted writers that keep
    // no journal, or a just-migrated legacy manifest): the directory walk
    // is the only source of truth; legacy records seed the access order.
    open_scans_.inc();
    scan_locked(legacy);
    // Persist what the scan found so the *next* open replays instead of
    // walking. An empty result writes nothing: a bare directory must stay
    // bare (and must not pin a stale empty snapshot over entries an
    // unbudgeted writer adds later).
    if (!entries_.empty()) checkpoint_locked();
  }
}

CacheManager::~CacheManager() {
  const std::lock_guard<std::mutex> lock(mu_);
  flush_journal_locked();
}

std::vector<ManifestRecord> CacheManager::open_journal() {
  const std::string base = dir_ + "/" + kManifestBase;
  try {
    changelog_.emplace(base);
    return {};
  } catch (const ChangelogError&) {
    // Pre-changelog manifest.log (line-oriented text journal), or a
    // corrupted header: salvage what the text reader can parse for
    // recency, then rebuild the files in changelog format. Entry files —
    // the ground truth — are untouched either way.
  }
  std::vector<ManifestRecord> legacy = read_manifest(base + ".log");
  std::error_code ec;
  fs::remove(base + ".log", ec);
  fs::remove(base + ".snap", ec);
  try {
    changelog_.emplace(base);
  } catch (const ChangelogError& e) {
    throw JobError("cannot open cache journal in " + dir_ + ": " + e.what());
  }
  if (!legacy.empty()) {
    logx::info("cache_manifest_migrated",
               {{"dir", dir_}, {"legacy_records", legacy.size()}});
  }
  return legacy;
}

std::string CacheManager::manifest_path() const {
  return dir_ + "/" + kManifestBase;
}

std::string CacheManager::quarantine_dir() const {
  return dir_ + "/" + kQuarantineName;
}

void CacheManager::apply_record_locked(const ManifestRecord& rec) {
  if (rec.fields.empty()) return;
  const std::string& hex = rec.fields[0];
  if (!Fingerprint::from_hex(hex)) return;  // malformed key: skip
  if (rec.tag == "F" && rec.fields.size() >= 2) {
    char* end = nullptr;
    const std::uint64_t size = std::strtoull(rec.fields[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return;
    Entry& e = entries_[hex];
    live_bytes_ += size - e.size;  // idempotent upsert (replay may repeat)
    e.size = size;
    e.last_access = next_access_++;
  } else if (rec.tag == "T") {
    const auto it = entries_.find(hex);
    if (it != entries_.end()) it->second.last_access = next_access_++;
  }
}

void CacheManager::replay_locked(std::uint64_t* replayed_records) {
  entries_.clear();
  live_bytes_ = 0;
  next_access_ = 1;
  std::uint64_t n = 0;
  const ChangelogState& state = changelog_->replayed();
  for (const std::string& payload : state.snapshot) {
    if (const auto rec = parse_manifest_line(payload)) {
      apply_record_locked(*rec);
      ++n;
    }
  }
  for (const std::string& payload : state.tail) {
    if (const auto rec = parse_manifest_line(payload)) {
      apply_record_locked(*rec);
      ++n;
    }
  }
  if (replayed_records != nullptr) *replayed_records = n;
  publish_gauges_locked();
}

void CacheManager::scan_locked(const std::vector<ManifestRecord>& recency) {
  // Disk is ground truth for existence and size; the recency records only
  // add access order (entries they do not mention rank least-recent with
  // the hex tie-break).
  entries_.clear();
  live_bytes_ = 0;
  next_access_ = 1;

  const fs::path quarantine(quarantine_dir());
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path() == quarantine) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    const auto key = key_from_entry_path(it->path().string());
    if (!key) continue;
    std::error_code size_ec;
    const std::uint64_t size = it->file_size(size_ec);
    if (size_ec) continue;
    entries_[key->hex()] = Entry{size, 0};
    live_bytes_ += size;
  }

  for (const ManifestRecord& rec : recency) {
    if (rec.fields.empty()) continue;
    const auto it = entries_.find(rec.fields[0]);
    if (it == entries_.end()) continue;  // journal mentions a gone entry
    if (rec.tag == "F" || rec.tag == "T") {
      it->second.last_access = next_access_++;
    }
  }
  publish_gauges_locked();
}

void CacheManager::publish_gauges_locked() noexcept {
  entries_gauge_.set(static_cast<std::int64_t>(entries_.size()));
  bytes_gauge_.set(static_cast<std::int64_t>(live_bytes_));
}

void CacheManager::buffer_journal_locked(ManifestRecord record) {
  pending_journal_.push_back(std::move(record));
  if (pending_journal_.size() >= kJournalFlushBatch) flush_journal_locked();
}

void CacheManager::flush_journal_locked() {
  if (pending_journal_.empty()) return;
  // Once the on-disk tail carries far more records than there are live
  // entries, appending is wasted churn: compact into a fresh snapshot
  // instead (the in-memory map already reflects every pending record).
  // This bounds the journal for a warm daemon that only ever touches.
  if (changelog_->tail_records() + pending_journal_.size() >
      kJournalSlack * entries_.size() + kJournalSlop) {
    checkpoint_locked();
    return;
  }
  std::vector<std::string> payloads;
  payloads.reserve(pending_journal_.size());
  for (const ManifestRecord& r : pending_journal_) {
    payloads.push_back(record_payload(r));
  }
  // One write + one fdatasync for the whole batch. Records that could not
  // be persisted are dropped, not accumulated — LRU precision degrades,
  // memory stays bounded, correctness is untouched — but the failure is
  // counted and logged (disk full and read-only mounts must not be
  // silent).
  if (!changelog_->append_batch(payloads)) {
    append_failures_.inc();
    logx::warn("manifest_append_failed",
               {{"dir", dir_}, {"records", payloads.size()}});
  }
  pending_journal_.clear();
}

void CacheManager::checkpoint_locked() {
  // One F record per survivor in access order, so a replay reconstructs
  // the same LRU ranking from a minimal journal. Pending appends are
  // subsumed: the in-memory map already reflects them.
  std::vector<std::string> records;
  records.reserve(entries_.size());
  for (const auto& [hex, e] : lru_sorted_locked()) {
    records.push_back(
        record_payload({"F", {hex, std::to_string(e.size)}}));
  }
  if (!changelog_->snapshot(records)) {
    append_failures_.inc();
    logx::warn("manifest_snapshot_failed",
               {{"dir", dir_}, {"records", records.size()}});
    return;
  }
  pending_journal_.clear();
}

void CacheManager::checkpoint() {
  const std::lock_guard<std::mutex> lock(mu_);
  checkpoint_locked();
}

void CacheManager::record_put(const Fingerprint& key, std::uint64_t size) {
  const std::string hex = key.hex();
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[hex];
  live_bytes_ += size - e.size;  // same-key refill replaces, not adds
  e.size = size;
  e.last_access = next_access_++;
  publish_gauges_locked();
  buffer_journal_locked({"F", {hex, std::to_string(size)}});
}

void CacheManager::record_get(const Fingerprint& key) {
  const std::string hex = key.hex();
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hex);
  if (it == entries_.end()) {
    // Filled by another process since our open: adopt it so its recency
    // is tracked and its bytes count against the budget.
    std::error_code ec;
    const std::uint64_t size =
        fs::file_size(cache_entry_path(dir_, hex), ec);
    if (ec) return;  // raced with an eviction; nothing to track
    it = entries_.emplace(hex, Entry{size, 0}).first;
    live_bytes_ += size;
    publish_gauges_locked();
  }
  it->second.last_access = next_access_++;
  buffer_journal_locked({"T", {hex}});
}

std::uint64_t CacheManager::live_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return live_bytes_;
}

std::uint64_t CacheManager::live_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, CacheManager::Entry>>
CacheManager::lru_sorted_locked() const {
  std::vector<std::pair<std::string, Entry>> flat(entries_.begin(),
                                                  entries_.end());
  // std::map iteration is hex-ordered, so stable_sort on last_access
  // alone yields (last_access, hex) — deterministic eviction order.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.last_access < b.second.last_access;
                   });
  return flat;
}

std::vector<CacheEntryInfo> CacheManager::entries_lru() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CacheEntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [hex, e] : lru_sorted_locked()) {
    CacheEntryInfo info;
    if (const auto key = Fingerprint::from_hex(hex)) info.key = *key;
    info.size = e.size;
    info.last_access = e.last_access;
    out.push_back(info);
  }
  return out;
}

CacheDirStats CacheManager::stats() const {
  CacheDirStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.entries = entries_.size();
    s.bytes = live_bytes_;
    // Under mu_ so a concurrent clear() cannot re-seat changelog_ between
    // the null-check the optional implies and the call.
    s.manifest_bytes = changelog_->payload_bytes();
  }
  std::error_code ec;
  for (fs::directory_iterator it(quarantine_dir(), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) ++s.quarantined;
  }
  // The walk-derived series are only as fresh as the last stats() call;
  // entries/bytes stay live via publish_gauges_locked.
  manifest_bytes_gauge_.set(static_cast<std::int64_t>(s.manifest_bytes));
  quarantined_gauge_.set(static_cast<std::int64_t>(s.quarantined));
  return s;
}

CacheDirStats cache_dir_stats_from(const metrics::Snapshot& snap) {
  CacheDirStats s;
  s.entries = static_cast<std::uint64_t>(snap.gauge_or("cache_entries"));
  s.bytes = static_cast<std::uint64_t>(snap.gauge_or("cache_bytes"));
  s.manifest_bytes =
      static_cast<std::uint64_t>(snap.gauge_or("cache_manifest_bytes"));
  s.quarantined =
      static_cast<std::uint64_t>(snap.gauge_or("cache_quarantined"));
  return s;
}

GcReport CacheManager::gc(std::uint64_t budget_bytes) {
  const std::lock_guard<std::mutex> lock(mu_);
  GcReport report;

  for (const auto& [hex, e] : lru_sorted_locked()) {
    if (live_bytes_ <= budget_bytes) break;
    // Atomic unlink. An entry a concurrent process already evicted is
    // simply gone (remove() returns false with no error) — either way it
    // stops counting against the budget. A *failing* unlink (permissions,
    // read-only fs) keeps the entry accounted as live: the report must
    // never claim a budget the disk does not meet.
    std::error_code ec;
    fs::remove(cache_entry_path(dir_, hex), ec);
    if (ec) continue;
    live_bytes_ -= e.size;
    entries_.erase(hex);
    ++report.evicted_entries;
    report.evicted_bytes += e.size;
  }
  if (report.evicted_entries > 0) {
    evicted_entries_.inc(report.evicted_entries);
    evicted_bytes_.inc(report.evicted_bytes);
    checkpoint_locked();
  }
  publish_gauges_locked();
  report.live_entries = entries_.size();
  report.live_bytes = live_bytes_;
  return report;
}

VerifyReport CacheManager::verify(RepairMode mode) {
  const std::lock_guard<std::mutex> lock(mu_);
  VerifyReport report;
  const fs::path root(dir_);
  const fs::path quarantine(quarantine_dir());

  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path() == quarantine) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec)) files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());  // deterministic report order

  bool adopted = false;
  for (const fs::path& p : files) {
    if (is_metadata_path(p, quarantine)) continue;
    const auto key = key_from_entry_path(p.string());
    if (!key) {
      // Not an entry (stray temp file, operator droppings): report, never
      // touch — verify must be safe to run on any directory.
      ++report.foreign;
      continue;
    }
    ++report.checked;
    const EntryStatus status = check_entry_file(p.string(), *key, nullptr);
    const std::string hex = key->hex();
    if (status == EntryStatus::kOk) {
      ++report.ok;
      // The walk is ground truth: a valid entry the journal never saw
      // (unbudgeted writer, stale snapshot) joins the accounting here, so
      // a verify doubles as reconciliation.
      if (entries_.count(hex) == 0) {
        std::error_code size_ec;
        const std::uint64_t size = fs::file_size(p, size_ec);
        if (!size_ec) {
          entries_.emplace(hex, Entry{size, 0});
          live_bytes_ += size;
          adopted = true;
        }
      }
      continue;
    }
    ++report.invalid;
    VerifyFinding finding;
    finding.path = fs::relative(p, root, ec).string();
    if (ec) finding.path = p.string();
    finding.status = status;
    report.findings.push_back(std::move(finding));

    if (mode == RepairMode::kDelete) {
      std::error_code rm;
      fs::remove(p, rm);
      if (!rm) {
        ++report.deleted;
        if (const auto it = entries_.find(hex); it != entries_.end()) {
          live_bytes_ -= it->second.size;
          entries_.erase(it);
        }
      }
    } else if (mode == RepairMode::kQuarantine) {
      std::error_code mk;
      fs::create_directories(quarantine, mk);
      try {
        // Flat name inside quarantine/ (fan-out dir + stem) so two bad
        // entries can never collide.
        fsutil::move_file(p, quarantine / (hex + ".rr"));
        ++report.quarantined;
        if (const auto it = entries_.find(hex); it != entries_.end()) {
          live_bytes_ -= it->second.size;
          entries_.erase(it);
        }
      } catch (const fs::filesystem_error&) {
        // Leave it in place; it stays in the findings list either way.
      }
    }
  }
  if (adopted || (mode != RepairMode::kReport && report.invalid > 0)) {
    checkpoint_locked();
  }
  publish_gauges_locked();
  return report;
}

std::uint64_t CacheManager::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t removed = 0;
  for (const auto& [hex, e] : entries_) {
    std::error_code ec;
    if (fs::remove(cache_entry_path(dir_, hex), ec)) ++removed;
  }
  entries_.clear();
  live_bytes_ = 0;
  next_access_ = 1;
  publish_gauges_locked();
  pending_journal_.clear();
  // Drop the journal wholesale: close it, unlink both files, reopen
  // fresh (a cleared cache carries no metadata, not an empty snapshot).
  changelog_.reset();
  std::error_code ec;
  fs::remove(manifest_path() + ".log", ec);
  fs::remove(manifest_path() + ".snap", ec);
  fs::remove_all(quarantine_dir(), ec);
  try {
    changelog_.emplace(manifest_path());
  } catch (const ChangelogError& e) {
    throw JobError("cannot reopen cache journal in " + dir_ + ": " +
                   e.what());
  }
  // Drop now-empty fan-out directories (non-empty ones — e.g. a foreign
  // file — survive; fs::remove refuses non-empty dirs).
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code sub;
    if (it->is_directory(sub)) fs::remove(it->path(), sub);
  }
  return removed;
}

void CacheManager::rescan() {
  const std::lock_guard<std::mutex> lock(mu_);
  flush_journal_locked();
  // Walk the directory for ground truth, carrying over the access order
  // this manager already knows (in-memory is at least as fresh as the
  // journal it just flushed). New keys rank least-recent.
  const std::map<std::string, Entry> known = std::move(entries_);
  scan_locked({});
  for (auto& [hex, e] : entries_) {
    if (const auto it = known.find(hex); it != known.end()) {
      e.last_access = it->second.last_access;
    }
  }
  publish_gauges_locked();
  checkpoint_locked();
}

PrewarmReport CacheManager::prewarm() const {
  // Snapshot the key list under the lock, read files outside it: a
  // prewarm must not stall concurrent record_put/record_get for the
  // duration of the disk reads.
  std::vector<std::pair<std::string, std::uint64_t>> keys;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(entries_.size());
    for (const auto& [hex, e] : lru_sorted_locked()) {
      keys.emplace_back(hex, e.size);
    }
  }
  PrewarmReport report;
  for (const auto& [hex, size] : keys) {
    const auto key = Fingerprint::from_hex(hex);
    if (!key) continue;
    ++report.checked;
    if (check_entry_file(cache_entry_path(dir_, hex), *key, nullptr) ==
        EntryStatus::kOk) {
      ++report.ok;
      report.bytes += size;
    } else {
      ++report.invalid;
    }
  }
  return report;
}

}  // namespace distapx::service
