#include "service/report_sink.hpp"

#include <sstream>

#include "support/table.hpp"

namespace distapx::service {

RenderedResult render_result(const std::string& job_label,
                             const BatchResult& result) {
  RenderedResult rendered;
  {
    std::ostringstream os;
    summary_table(result).write_csv(os);
    rendered.summary_csv = os.str();
  }
  {
    std::ostringstream os;
    runs_table(result).write_csv(os);
    rendered.runs_csv = os.str();
  }
  const double hit_rate =
      result.total_runs == 0
          ? 0.0
          : static_cast<double>(result.cache_hits) /
                static_cast<double>(result.total_runs);
  rendered.report_txt =
      "job_file " + job_label + "\n" +
      "jobs " + std::to_string(result.jobs.size()) + "\n" +
      "runs " + std::to_string(result.total_runs) + "\n" +
      "served_from_cache " + std::to_string(result.cache_hits) + "\n" +
      "computed " + std::to_string(result.computed) + "\n" +
      "hit_rate " + Table::fmt(hit_rate, 4) + "\n" +
      "wall_seconds " + Table::fmt(result.wall_seconds, 4) + "\n";
  return rendered;
}

}  // namespace distapx::service
