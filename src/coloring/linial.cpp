#include "coloring/linial.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

// Evaluates the polynomial whose coefficients are the base-q digits of
// `color` (degree <= d) at point x, over GF(q).
std::uint64_t poly_eval(std::uint64_t color, std::uint64_t q, std::uint32_t d,
                        std::uint64_t x) {
  // Horner over the digits from most significant to least significant.
  std::uint64_t digits[64];
  for (std::uint32_t i = 0; i <= d; ++i) {
    digits[i] = color % q;
    color /= q;
  }
  std::uint64_t acc = 0;
  for (std::uint32_t i = d + 1; i-- > 0;) {
    acc = (acc * x + digits[i]) % q;
  }
  return acc;
}

enum MsgType : std::uint32_t { kColor = 1 };

class LinialProgram final : public sim::NodeProgram {
 public:
  LinialProgram(const LinialSchedule* schedule, std::uint32_t max_degree)
      : schedule_(schedule), max_degree_(max_degree) {}

  void init(sim::Ctx& ctx) override {
    color_ = ctx.id();
    m_current_ = ctx.num_nodes();
    broadcast_color(ctx);
    if (total_rounds(ctx) == 0) {
      ctx.halt(static_cast<std::int64_t>(color_));
    }
  }

  void round(sim::Ctx& ctx) override {
    const std::uint32_t r = ctx.round();
    const auto num_steps =
        static_cast<std::uint32_t>(schedule_->steps.size());
    if (r <= num_steps) {
      apply_reduction_step(ctx, schedule_->steps[r - 1]);
    } else {
      apply_elimination(ctx, r - num_steps - 1);
    }
    if (r == total_rounds(ctx)) {
      ctx.halt(static_cast<std::int64_t>(color_));
    } else {
      broadcast_color(ctx);
    }
  }

 private:
  [[nodiscard]] std::uint32_t total_rounds(const sim::Ctx& ctx) const {
    const auto steps = static_cast<std::uint32_t>(schedule_->steps.size());
    const std::uint64_t final_c = schedule_->final_colors;
    const std::uint64_t target = std::uint64_t{max_degree_} + 1;
    const std::uint32_t elim =
        final_c > target ? static_cast<std::uint32_t>(final_c - target) : 0;
    (void)ctx;
    return steps + elim;
  }

  void broadcast_color(sim::Ctx& ctx) {
    sim::Message m(kColor);
    m.push(color_, bits_for_count(std::max<std::uint64_t>(m_current_, 2)));
    ctx.broadcast(m);
  }

  void apply_reduction_step(sim::Ctx& ctx, const LinialSchedule::Step& step) {
    DISTAPX_ASSERT(color_ < step.m_in);
    // Pick the smallest x in GF(q) where our polynomial differs from every
    // neighbor's. Distinct degree-d polynomials agree on <= d points and we
    // have <= Δ neighbors, so q > d*Δ guarantees existence.
    std::uint64_t chosen_x = step.q;  // sentinel
    for (std::uint64_t x = 0; x < step.q; ++x) {
      const std::uint64_t mine = poly_eval(color_, step.q, step.degree, x);
      bool ok = true;
      for (const auto& d : ctx.inbox()) {
        DISTAPX_ASSERT(d.msg.type() == kColor);
        const std::uint64_t theirs_color = d.msg.field(0);
        DISTAPX_ENSURE_MSG(theirs_color != color_,
                           "improper coloring reached node " << ctx.id());
        if (poly_eval(theirs_color, step.q, step.degree, x) == mine) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen_x = x;
        color_ = x * step.q + mine;
        break;
      }
    }
    DISTAPX_ENSURE_MSG(chosen_x < step.q, "no valid GF(q) point found");
    m_current_ = step.m_out;
  }

  void apply_elimination(sim::Ctx& ctx, std::uint32_t elim_round) {
    const std::uint64_t victim = schedule_->final_colors - 1 - elim_round;
    if (color_ != victim) return;
    // Recolor into [0, Δ] avoiding fresh neighbor colors (adjacent nodes
    // never share the victim class, so no two recolor simultaneously).
    std::vector<bool> used(max_degree_ + 1, false);
    for (const auto& d : ctx.inbox()) {
      const std::uint64_t c = d.msg.field(0);
      if (c <= max_degree_) used[static_cast<std::size_t>(c)] = true;
    }
    std::uint64_t c = 0;
    while (c <= max_degree_ && used[static_cast<std::size_t>(c)]) ++c;
    DISTAPX_ENSURE_MSG(c <= max_degree_, "palette exhausted at node "
                                             << ctx.id());
    color_ = c;
  }

  const LinialSchedule* schedule_;
  std::uint32_t max_degree_;
  std::uint64_t color_ = 0;
  std::uint64_t m_current_ = 0;
};

}  // namespace

std::uint64_t next_prime(std::uint64_t x) {
  if (x <= 2) return 2;
  if (x % 2 == 0) ++x;
  for (;; x += 2) {
    bool prime = true;
    for (std::uint64_t f = 3; f * f <= x; f += 2) {
      if (x % f == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return x;
  }
}

LinialSchedule build_linial_schedule(NodeId n, std::uint32_t max_degree) {
  LinialSchedule schedule;
  const std::uint64_t delta = std::max<std::uint32_t>(max_degree, 1);
  std::uint64_t m = std::max<NodeId>(n, 1);
  schedule.final_colors = m;
  if (m <= delta + 1) return schedule;

  for (;;) {
    // Try polynomial degrees and keep the one with the smallest result.
    std::uint64_t best_out = m;  // must strictly improve
    LinialSchedule::Step best{};
    for (std::uint32_t d = 1; d <= 60; ++d) {
      const double root =
          std::pow(static_cast<double>(m), 1.0 / (d + 1));
      const auto min_q = static_cast<std::uint64_t>(std::ceil(root));
      const std::uint64_t q =
          next_prime(std::max<std::uint64_t>(d * delta + 1, min_q));
      const std::uint64_t out = q * q;
      if (out < best_out) {
        best_out = out;
        best = {m, d, q, out};
      }
      // Larger d only helps while m^{1/(d+1)} dominates d*Δ.
      if (static_cast<std::uint64_t>(d) * delta + 1 >= min_q && d > 1) break;
    }
    if (best_out >= m) break;  // fixpoint (O(Δ²) colors) reached
    schedule.steps.push_back(best);
    m = best_out;
  }
  schedule.final_colors = m;
  return schedule;
}

ColoringResult linial_coloring(const Graph& g, std::uint32_t max_rounds) {
  const auto schedule = std::make_shared<LinialSchedule>(
      build_linial_schedule(g.num_nodes(), g.max_degree()));
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = 0;  // deterministic algorithm; seed unused
  opts.max_rounds = max_rounds;
  // Colors start as raw ids (log n bits) and shrink; O(log n) per message.
  opts.policy = sim::BandwidthPolicy::congest(32);
  const std::uint32_t delta = g.max_degree();
  const auto result = net.run(
      [&schedule, delta](NodeId) {
        return std::make_unique<LinialProgram>(schedule.get(), delta);
      },
      opts);
  DISTAPX_ENSURE(result.metrics.completed);
  ColoringResult out;
  out.metrics = result.metrics;
  out.colors.resize(g.num_nodes());
  Color max_c = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.colors[v] = static_cast<Color>(result.outputs[v]);
    max_c = std::max(max_c, out.colors[v]);
  }
  out.num_colors = g.num_nodes() == 0 ? 0 : max_c + 1;
  return out;
}

}  // namespace distapx
