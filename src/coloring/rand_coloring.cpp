#include "coloring/rand_coloring.hpp"

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

enum MsgType : std::uint32_t { kCandidate = 1, kFinal = 2 };

class TrialColoringProgram final : public sim::NodeProgram {
 public:
  explicit TrialColoringProgram(int color_bits) : color_bits_(color_bits) {}

  void init(sim::Ctx& ctx) override {
    taken_.assign(ctx.degree() + 1, false);
    uncolored_nbr_.assign(ctx.degree(), true);
    if (ctx.degree() == 0) {
      ctx.halt(0);
    }
  }

  void round(sim::Ctx& ctx) override {
    const std::uint32_t phase = (ctx.round() - 1) % 2;
    if (phase == 0) {
      // Learn finalized neighbor colors, then draw a candidate.
      for (const auto& d : ctx.inbox()) {
        if (d.msg.type() == kFinal) {
          uncolored_nbr_[d.port] = false;
          const std::uint64_t c = d.msg.field(0);
          if (c < taken_.size()) taken_[c] = true;
        }
      }
      candidate_ = draw_candidate(ctx);
      sim::Message m(kCandidate);
      m.push(candidate_, color_bits_);
      send_uncolored(ctx, m);
    } else {
      bool conflict = false;
      for (const auto& d : ctx.inbox()) {
        if (d.msg.type() == kCandidate && d.msg.field(0) == candidate_) {
          conflict = true;
        }
        if (d.msg.type() == kFinal) {
          // A neighbor finalized in the same exchange; treat as taken.
          uncolored_nbr_[d.port] = false;
          const std::uint64_t c = d.msg.field(0);
          if (c < taken_.size()) taken_[c] = true;
          if (c == candidate_) conflict = true;
        }
      }
      if (!conflict) {
        sim::Message m(kFinal);
        m.push(candidate_, color_bits_);
        send_uncolored(ctx, m);
        ctx.halt(static_cast<std::int64_t>(candidate_));
      }
    }
  }

 private:
  std::uint64_t draw_candidate(sim::Ctx& ctx) {
    // Palette is [0, deg(v)]; at least one color is always free.
    std::vector<std::uint64_t> free;
    free.reserve(taken_.size());
    for (std::uint64_t c = 0; c < taken_.size(); ++c) {
      if (!taken_[c]) free.push_back(c);
    }
    DISTAPX_ENSURE(!free.empty());
    return free[ctx.rng().next_below(free.size())];
  }

  void send_uncolored(sim::Ctx& ctx, const sim::Message& m) {
    for (std::uint32_t p = 0; p < uncolored_nbr_.size(); ++p) {
      if (uncolored_nbr_[p]) ctx.send(p, m);
    }
  }

  int color_bits_;
  std::uint64_t candidate_ = 0;
  std::vector<bool> taken_;
  std::vector<bool> uncolored_nbr_;
};

}  // namespace

ColoringResult randomized_coloring(const Graph& g, std::uint64_t seed,
                                   std::uint32_t max_rounds) {
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.max_rounds = max_rounds;
  opts.policy = sim::BandwidthPolicy::congest(32);
  const int color_bits =
      bits_for_count(std::uint64_t{g.max_degree()} + 1);
  const auto result = net.run(
      [color_bits](NodeId) {
        return std::make_unique<TrialColoringProgram>(color_bits);
      },
      opts);
  DISTAPX_ENSURE(result.metrics.completed);
  ColoringResult out;
  out.metrics = result.metrics;
  out.colors.resize(g.num_nodes());
  Color max_c = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out.colors[v] = static_cast<Color>(result.outputs[v]);
    max_c = std::max(max_c, out.colors[v]);
  }
  out.num_colors = g.num_nodes() == 0 ? 0 : max_c + 1;
  DISTAPX_ENSURE_MSG(is_proper_coloring(g, out.colors),
                     "randomized coloring produced an improper coloring");
  return out;
}

}  // namespace distapx
