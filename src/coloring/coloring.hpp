// Distributed (Δ+1)-coloring substrate for Algorithm 3.
//
// The paper invokes an O(Δ + log* n)-round deterministic coloring
// ([BEK14, Bar15]) as a black box. We provide (see DESIGN.md,
// "Substitutions"):
//   * linial_coloring     — deterministic: Linial's polynomial color
//     reduction to O(Δ²) colors in O(log* n) rounds, then the standard
//     one-class-per-round reduction to Δ+1 (O(Δ²) rounds total).
//   * randomized_coloring — O(log n)-round randomized (Δ+1)-coloring.
//   * greedy_coloring     — sequential baseline / verifier aid.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace distapx {

using Color = std::uint32_t;

struct ColoringResult {
  std::vector<Color> colors;  ///< per node
  Color num_colors = 0;       ///< 1 + max color used
  sim::RunMetrics metrics;
};

/// True iff adjacent nodes always have distinct colors.
bool is_proper_coloring(const Graph& g, const std::vector<Color>& colors);

/// Sequential greedy coloring in id order; uses at most Δ+1 colors.
std::vector<Color> greedy_coloring(const Graph& g);

}  // namespace distapx
