#include "coloring/coloring.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace distapx {

bool is_proper_coloring(const Graph& g, const std::vector<Color>& colors) {
  if (colors.size() != g.num_nodes()) return false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (colors[u] == colors[v]) return false;
  }
  return true;
}

std::vector<Color> greedy_coloring(const Graph& g) {
  std::vector<Color> colors(g.num_nodes(), kInvalidNode);
  std::vector<bool> used;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    used.assign(g.degree(v) + 1, false);
    for (const HalfEdge& he : g.neighbors(v)) {
      if (he.to < v && colors[he.to] <= g.degree(v)) {
        used[colors[he.to]] = true;
      }
    }
    Color c = 0;
    while (used[c]) ++c;
    colors[v] = c;
  }
  return colors;
}

}  // namespace distapx
