// Randomized (Δ+1)-coloring in O(log n) rounds w.h.p.
//
// The classic trial-color algorithm: every uncolored node draws a uniform
// candidate from its remaining palette ([0, deg(v)] minus colors finalized
// by neighbors) and keeps it if no uncolored neighbor drew the same color.
// Used as the faster randomized coloring black box for Algorithm 3.
#pragma once

#include "coloring/coloring.hpp"

namespace distapx {

ColoringResult randomized_coloring(const Graph& g, std::uint64_t seed,
                                   std::uint32_t max_rounds = 1u << 20);

}  // namespace distapx
