// Deterministic distributed coloring: Linial reduction + class elimination.
//
// Stage 1 (Linial [Lin87]): starting from the trivial n-coloring by ids,
// each round maps an m-coloring to a q²-coloring, q prime, by viewing each
// color as a degree-d polynomial over GF(q) (its base-q digits) and picking
// a point x where the node's polynomial disagrees with every neighbor's;
// the new color is the pair (x, p(x)). Since distinct degree-d polynomials
// agree on at most d points, q > d·Δ guarantees a valid x exists. Repeating
// reaches O(Δ²) colors in O(log* n) rounds.
//
// Stage 2: one color class per round recolors greedily into [0, Δ],
// eliminating classes Δ+1..C-1 in C-Δ-1 rounds (O(Δ²) total).
//
// This is the documented substitution for the [BEK14] O(Δ + log* n) black
// box (see DESIGN.md): Algorithm 3 treats the coloring as an opaque first
// phase either way.
#pragma once

#include "coloring/coloring.hpp"

namespace distapx {

/// The precomputed global schedule of Linial reduction steps (identical at
/// every node since it depends only on n and Δ).
struct LinialSchedule {
  struct Step {
    std::uint64_t m_in;   ///< colors before the step
    std::uint32_t degree; ///< polynomial degree d
    std::uint64_t q;      ///< field size (prime)
    std::uint64_t m_out;  ///< q², colors after the step
  };
  std::vector<Step> steps;
  std::uint64_t final_colors = 0;  ///< colors after all reduction steps
};

/// Builds the reduction schedule for an n-node, max-degree-Δ graph.
LinialSchedule build_linial_schedule(NodeId n, std::uint32_t max_degree);

/// Smallest prime >= x (trial division; x is polynomial in Δ here).
std::uint64_t next_prime(std::uint64_t x);

/// Runs the full deterministic coloring (stages 1+2) on g.
ColoringResult linial_coloring(const Graph& g,
                               std::uint32_t max_rounds = 1u << 20);

}  // namespace distapx
