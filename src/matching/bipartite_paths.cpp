#include "matching/bipartite_paths.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"

namespace distapx {
namespace {

constexpr std::uint32_t kNoLayer = 0xffffffffu;

/// One forward+backward sweep of the Claim B.5/B.6 traversal.
struct Traversal {
  std::vector<double> fwd_edge;       // value forwarded along each edge
  std::vector<std::uint32_t> layer;   // first-receipt round per node
  std::vector<double> in_val;         // received sum per node
  std::vector<double> out_val;        // value an A-node forwards
  std::vector<std::uint32_t> send_round;  // round an A-node forwards (odd)
  std::vector<double> end_mass;       // z(b) at free B-nodes of layer d
  std::vector<double> mass;           // Σ_{P ∋ v} p(P) per node (backward)
  bool any_path = false;
};

/// usable(v) gates participation; alpha == nullptr runs the unit-count
/// variant (Claim B.5). `strict` enforces the no-shorter-path precondition.
template <typename Usable>
Traversal run_traversal(const Graph& g, const Bipartition& parts,
                        const std::vector<NodeId>& mate, std::uint32_t d,
                        Usable usable, const std::vector<double>* alpha,
                        bool strict) {
  const NodeId n = g.num_nodes();
  Traversal t;
  t.fwd_edge.assign(g.num_edges(), 0.0);
  t.layer.assign(n, kNoLayer);
  t.in_val.assign(n, 0.0);
  t.out_val.assign(n, 0.0);
  t.send_round.assign(n, 0);
  t.end_mass.assign(n, 0.0);
  t.mass.assign(n, 0.0);

  // Forward: free A-nodes start at round 1; matched B-nodes relay to their
  // mates, which forward two rounds later (BFS layering, Claim B.5).
  std::vector<NodeId> senders;
  for (NodeId v = 0; v < n; ++v) {
    if (parts.is_left(v) && mate[v] == kInvalidNode && usable(v)) {
      t.out_val[v] = alpha != nullptr ? (*alpha)[v] : 1.0;
      t.send_round[v] = 1;
      senders.push_back(v);
    }
  }
  for (std::uint32_t r = 1; r <= d; r += 2) {
    std::vector<NodeId> receivers;
    for (NodeId a : senders) {
      if (t.send_round[a] != r || t.out_val[a] <= 0.0) continue;
      for (const HalfEdge& he : g.neighbors(a)) {
        const NodeId b = he.to;
        if (b == mate[a] || !usable(b)) continue;
        DISTAPX_ASSERT(!parts.is_left(b));
        if (t.layer[b] == kNoLayer) {
          t.layer[b] = r;
          receivers.push_back(b);
        }
        if (t.layer[b] == r) {
          t.fwd_edge[he.edge] = t.out_val[a];
          t.in_val[b] += t.out_val[a];
        }
        // Later receipts indicate longer paths; they are discarded.
      }
    }
    std::vector<NodeId> next_senders;
    for (NodeId b : receivers) {
      if (mate[b] == kInvalidNode) {
        if (r == d) {
          t.end_mass[b] =
              t.in_val[b] * (alpha != nullptr ? (*alpha)[b] : 1.0);
          t.any_path = true;
        } else {
          DISTAPX_ENSURE_MSG(!strict,
                             "augmenting path shorter than d=" << d
                                 << " found at node " << b);
        }
        continue;
      }
      if (r == d) continue;
      const NodeId a = mate[b];
      if (!usable(a)) continue;
      t.layer[a] = r + 1;
      t.in_val[a] = t.in_val[b];
      t.out_val[a] =
          t.in_val[a] * (alpha != nullptr ? (*alpha)[a] : 1.0);
      t.send_round[a] = r + 2;
      next_senders.push_back(a);
    }
    senders = std::move(next_senders);
  }

  // Backward: split masses proportionally to forward contributions
  // (Claim B.6), so mass[v] = Σ over paths through v.
  for (NodeId b = 0; b < n; ++b) {
    if (t.end_mass[b] > 0.0) t.mass[b] = t.end_mass[b];
  }
  for (std::uint32_t r = d;; r -= 2) {
    // B-nodes of layer r split to the A-nodes that fed them.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (t.fwd_edge[e] <= 0.0) continue;
      auto [a, b] = g.endpoints(e);
      if (!parts.is_left(a)) std::swap(a, b);
      if (t.layer[b] != r || t.send_round[a] != r) continue;
      if (t.in_val[b] <= 0.0 || t.mass[b] <= 0.0) continue;
      t.mass[a] += t.mass[b] * (t.fwd_edge[e] / t.in_val[b]);
    }
    if (r == 1) break;
    // A-senders of round r hand their mass to their mates (layer r-2).
    for (NodeId a = 0; a < n; ++a) {
      if (t.send_round[a] == r && mate[a] != kInvalidNode) {
        t.mass[mate[a]] = t.mass[a];
      }
    }
  }
  return t;
}

}  // namespace

std::vector<double> count_augmenting_paths_per_node(
    const Graph& g, const Bipartition& parts,
    const std::vector<NodeId>& mate, std::uint32_t d,
    const std::vector<bool>& active) {
  DISTAPX_ENSURE(d % 2 == 1);
  auto usable = [&](NodeId v) { return active.empty() || active[v]; };
  const auto t = run_traversal(g, parts, mate, d, usable, nullptr,
                               /*strict=*/false);
  return t.mass;
}

AugPathSearchResult find_and_flip_aug_paths_bipartite(
    const Graph& g, const Bipartition& parts, std::vector<NodeId>& mate,
    std::vector<bool>& active, const AugPathSearchParams& params, Rng& rng) {
  DISTAPX_ENSURE(params.d % 2 == 1);
  DISTAPX_ENSURE(params.K >= 2);
  const NodeId n = g.num_nodes();
  const std::uint32_t d = params.d;
  const double K = params.K;
  const double shrink = std::pow(K, -2.0 * d);
  const double delta_cap = std::max<double>(g.max_degree(), 4);
  const double floor =
      std::pow(delta_cap, -20.0 / std::max(params.epsilon, 1e-3));
  const double heavy_bar = 1.0 / (10.0 * d);
  const double good_bar = 1.0 / (d * std::pow(K, 2.0 * d));
  const std::uint64_t good_threshold =
      params.good_threshold != 0
          ? params.good_threshold
          : std::min<std::uint64_t>(
                1000000,
                static_cast<std::uint64_t>(std::ceil(
                    params.beta * d * std::pow(K, 2.0 * d) *
                    std::log(1.0 / params.delta))) +
                    1);

  // Attenuations: 1/K at free A-nodes, 1 elsewhere (Claim B.8 α0).
  std::vector<double> alpha(n, 1.0), alpha0(n, 1.0);
  for (NodeId v = 0; v < n; ++v) {
    if (parts.is_left(v) && mate[v] == kInvalidNode) {
      alpha0[v] = 1.0 / K;
      alpha[v] = alpha0[v];
    }
  }
  std::vector<std::uint64_t> good_count(n, 0);
  std::vector<bool> phase_blocked(n, false);
  std::vector<EdgeId> matched_edge(n, kInvalidEdge);
  for (NodeId v = 0; v < n; ++v) {
    if (mate[v] != kInvalidNode) matched_edge[v] = g.find_edge(v, mate[v]);
  }

  AugPathSearchResult result;
  auto usable = [&](NodeId v) { return active[v] && !phase_blocked[v]; };

  for (std::uint32_t it = 0; it < params.max_iterations; ++it) {
    const auto t = run_traversal(g, parts, mate, d, usable, &alpha,
                                 /*strict=*/true);
    if (!t.any_path) {
      result.drained = true;
      break;
    }
    ++result.iterations;
    result.rounds += 6 * d + 4;

    // Heaviness (Def. B.7) and the light-restricted pass for good rounds.
    std::vector<bool> heavy(n, false);
    for (NodeId v = 0; v < n; ++v) heavy[v] = t.mass[v] >= heavy_bar;
    auto usable_light = [&](NodeId v) { return usable(v) && !heavy[v]; };
    const auto tl = run_traversal(g, parts, mate, d, usable_light, &alpha,
                                  /*strict=*/true);
    for (NodeId v = 0; v < n; ++v) {
      if (usable(v) && tl.mass[v] >= good_bar) ++good_count[v];
    }

    // Token marking: free B endpoints initiate with probability equal to
    // their path mass (heavy endpoints abstain); tokens walk backwards,
    // colliding tokens die; survivors are disjoint augmenting paths.
    struct Token {
      NodeId at;
      NodePath nodes;  // from the B end backwards
    };
    std::vector<Token> tokens;
    for (NodeId b = 0; b < n; ++b) {
      if (t.end_mass[b] <= 0.0 || heavy[b] || !usable(b)) continue;
      const double z = std::min(t.end_mass[b], 1.0);
      if (rng.bernoulli(z)) tokens.push_back(Token{b, {b}});
    }
    for (std::uint32_t r = d;; r -= 2) {
      // Kill colliding tokens at their current (B) nodes.
      auto kill_collisions = [&] {
        std::unordered_map<NodeId, int> seen;
        for (const Token& tok : tokens) ++seen[tok.at];
        std::vector<Token> live;
        for (Token& tok : tokens) {
          if (seen[tok.at] == 1) live.push_back(std::move(tok));
        }
        tokens = std::move(live);
      };
      kill_collisions();
      // Each token picks a contributing edge proportionally.
      for (Token& tok : tokens) {
        const NodeId b = tok.at;
        DISTAPX_ASSERT(t.layer[b] == r);
        double x = rng.next_double() * t.in_val[b];
        NodeId chosen = kInvalidNode;
        for (const HalfEdge& he : g.neighbors(b)) {
          const NodeId a = he.to;
          if (t.fwd_edge[he.edge] <= 0.0 || t.send_round[a] != r) continue;
          chosen = a;
          x -= t.fwd_edge[he.edge];
          if (x <= 0.0) break;
        }
        DISTAPX_ENSURE(chosen != kInvalidNode);
        tok.at = chosen;
        tok.nodes.push_back(chosen);
      }
      kill_collisions();
      if (r == 1) break;
      for (Token& tok : tokens) {
        const NodeId b_prev = mate[tok.at];
        DISTAPX_ASSERT(b_prev != kInvalidNode);
        tok.at = b_prev;
        tok.nodes.push_back(b_prev);
      }
    }
    // Survivors reached free A-nodes: flip and block their nodes.
    for (Token& tok : tokens) {
      NodePath path(tok.nodes.rbegin(), tok.nodes.rend());
      DISTAPX_ASSERT(mate[path.front()] == kInvalidNode);
      flip_augmenting_path(g, mate, matched_edge, path);
      for (NodeId v : path) phase_blocked[v] = true;
      result.flipped.push_back(std::move(path));
    }

    // Attenuation dynamics (Claim B.8 rule).
    for (NodeId v = 0; v < n; ++v) {
      if (!usable(v)) continue;
      const bool has_attenuation =
          parts.is_left(v) || mate[v] == kInvalidNode;
      if (!has_attenuation) continue;
      if (heavy[v]) {
        alpha[v] = std::max(alpha[v] * shrink, floor);
      } else {
        alpha[v] = std::min(alpha0[v], alpha[v] * K);
      }
    }

    // Deactivation after too many good iterations (Lemma B.10).
    for (NodeId v = 0; v < n; ++v) {
      if (active[v] && !phase_blocked[v] && good_count[v] > good_threshold) {
        active[v] = false;
        result.deactivated.push_back(v);
      }
    }
  }
  if (!result.drained) {
    // Iteration cap: deactivate whatever still carries paths so callers
    // retain the maximality-on-active-nodes invariant.
    const auto t = run_traversal(g, parts, mate, d, usable, &alpha,
                                 /*strict=*/true);
    for (NodeId v = 0; v < n; ++v) {
      if (t.mass[v] > 0.0 && active[v]) {
        active[v] = false;
        result.deactivated.push_back(v);
      }
    }
  }
  return result;
}

}  // namespace distapx
