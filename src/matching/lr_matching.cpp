#include "matching/lr_matching.hpp"

#include <algorithm>

#include "mis/mis.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

enum Status : std::uint64_t {
  kUndecided = 0,
  kCandidate = 1,
  kRemoved = 2,
  kInIs = 3,
};

// State field indices.
constexpr std::size_t kStatus = 0;
constexpr std::size_t kLayer = 1;
constexpr std::size_t kWeight = 2;
constexpr std::size_t kEligible = 3;
constexpr std::size_t kValue = 4;
constexpr std::size_t kTime = 5;
constexpr std::size_t kFreshReduce = 6;

constexpr int kLayerBits = 7;
constexpr int kTimeBits = 20;
constexpr std::uint64_t kInfTime = (std::uint64_t{1} << kTimeBits) - 1;

std::uint64_t layer_of(std::uint64_t weight) {
  DISTAPX_ASSERT(weight > 0);
  return static_cast<std::uint64_t>(ceil_log2(weight));
}

}  // namespace

LayeredMaxIsAggProgram::LayeredMaxIsAggProgram(
    const std::vector<Weight>& weights, Weight max_weight,
    std::uint32_t num_agents)
    : weights_(&weights),
      weight_bits_(bits_for_value(
          static_cast<std::uint64_t>(std::max<Weight>(max_weight, 1)))),
      id_bits_(bits_for_count(std::max<std::uint32_t>(num_agents, 2))) {
  value_bits_ = std::min(2 * id_bits_ + id_bits_ + 1, 62);
}

std::vector<int> LayeredMaxIsAggProgram::state_bits() const {
  return {2, kLayerBits, weight_bits_, 1, value_bits_, kTimeBits,
          weight_bits_};
}

std::vector<sim::Aggregator> LayeredMaxIsAggProgram::aggregators() const {
  std::vector<sim::Aggregator> aggs;
  // 0: max weight layer among undecided neighbors.
  aggs.push_back(sim::agg_max(
      [](std::span<const std::uint64_t> s) {
        return s[kStatus] == kUndecided ? s[kLayer] : std::uint64_t{0};
      },
      kLayerBits));
  // 1: max selection value among eligible undecided neighbors.
  aggs.push_back(sim::agg_max(
      [](std::span<const std::uint64_t> s) {
        return s[kStatus] == kUndecided && s[kEligible] != 0
                   ? s[kValue]
                   : std::uint64_t{0};
      },
      value_bits_));
  // 2: sum of fresh reduction amounts (new candidates only).
  aggs.push_back(sim::agg_sum(
      [](std::span<const std::uint64_t> s) { return s[kFreshReduce]; },
      weight_bits_ + 12));
  // 3: any neighbor in the IS.
  aggs.push_back(sim::agg_or([](std::span<const std::uint64_t> s) {
    return static_cast<std::uint64_t>(s[kStatus] == kInIs);
  }));
  // 4: max candidacy time among still-active neighbors (undecided = inf).
  aggs.push_back(sim::agg_max(
      [](std::span<const std::uint64_t> s) {
        if (s[kStatus] == kUndecided) return kInfTime;
        if (s[kStatus] == kCandidate) return s[kTime];
        return std::uint64_t{0};
      },
      kTimeBits));
  return aggs;
}

void LayeredMaxIsAggProgram::init(sim::AggCtx& ctx) {
  auto st = ctx.state();
  const Weight w = (*weights_)[ctx.agent()];
  st[kTime] = kInfTime;
  if (w <= 0) {
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  st[kStatus] = kUndecided;
  st[kWeight] = static_cast<std::uint64_t>(w);
  st[kLayer] = layer_of(st[kWeight]);
}

void LayeredMaxIsAggProgram::round(sim::AggCtx& ctx) {
  auto st = ctx.state();
  const auto aggs = ctx.aggregates();
  const bool nbr_in_is = aggs[3] != 0;
  const std::uint64_t iter = (ctx.round() - 1) / 3 + 1;
  const std::uint32_t phase = (ctx.round() - 1) % 3;

  if (nbr_in_is) {
    DISTAPX_ENSURE_MSG(st[kStatus] == kCandidate,
                       "non-candidate agent " << ctx.agent()
                                              << " saw an IS neighbor");
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  if (st[kStatus] == kCandidate) {
    if (phase == 2) st[kFreshReduce] = 0;
    if (aggs[4] < st[kTime]) {
      // Every line-neighbor is removed or candidated earlier: join.
      st[kStatus] = kInIs;
      ctx.halt(kOutInIs);
    }
    return;
  }
  DISTAPX_ASSERT(st[kStatus] == kUndecided);
  switch (phase) {
    case 0: {  // A: eligibility
      st[kEligible] =
          static_cast<std::uint64_t>(aggs[0] <= st[kLayer]);
      if (st[kEligible] != 0) {
        const int rand_bits = value_bits_ - id_bits_ - 1;
        const std::uint64_t rand =
            ctx.rng().next() & ((std::uint64_t{1} << rand_bits) - 1);
        st[kValue] = ((rand << id_bits_) | ctx.agent()) + 1;
      } else {
        st[kValue] = 0;
      }
      break;
    }
    case 1: {  // B: selection
      if (st[kEligible] != 0 && aggs[1] < st[kValue]) {
        st[kStatus] = kCandidate;
        st[kTime] = iter;
        st[kFreshReduce] = st[kWeight];
        st[kWeight] = 0;
        st[kLayer] = 0;
      }
      st[kEligible] = 0;
      break;
    }
    case 2: {  // C: apply reductions
      const std::uint64_t reduce = aggs[2];
      if (reduce >= st[kWeight]) {
        st[kStatus] = kRemoved;
        ctx.halt(kOutNotInIs);
        return;
      }
      st[kWeight] -= reduce;
      st[kLayer] = layer_of(st[kWeight]);
      break;
    }
    default:
      break;
  }
}

MaxIsResult run_layered_maxis_agg(const Graph& g, const NodeWeights& w,
                                  std::uint64_t seed) {
  const Weight max_w =
      w.empty() ? 1 : *std::max_element(w.begin(), w.end());
  LayeredMaxIsAggProgram prog(w, max_w, g.num_nodes());
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(64);
  const auto run = sim::run_on_nodes(g, prog, opts);
  DISTAPX_ENSURE(run.metrics.completed);
  MaxIsResult out;
  out.metrics = run.metrics;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (run.outputs[v] == kOutInIs) out.independent_set.push_back(v);
  }
  return out;
}

MatchingResult run_lr_matching(const Graph& g, const EdgeWeights& w,
                               std::uint64_t seed) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  const Weight max_w =
      w.empty() ? 1 : *std::max_element(w.begin(), w.end());
  LayeredMaxIsAggProgram prog(w, max_w, g.num_edges());
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(64);
  const auto run = sim::run_on_line_graph(g, prog, opts);
  DISTAPX_ENSURE(run.metrics.completed);
  MatchingResult out;
  out.metrics = run.metrics;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (run.outputs[e] == kOutInIs) out.matching.push_back(e);
  }
  return out;
}

}  // namespace distapx
