// Common types and verifiers for matching algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace distapx {

struct MatchingResult {
  std::vector<EdgeId> matching;
  sim::RunMetrics metrics;  ///< zeroed for sequential baselines
};

/// mate[v] = the node matched to v, or kInvalidNode. Convenience view used
/// by the augmenting-path machinery.
std::vector<NodeId> mates_of(const Graph& g,
                             const std::vector<EdgeId>& matching);

/// Matched-edge membership mask over EdgeIds.
std::vector<bool> matching_edge_mask(const Graph& g,
                                     const std::vector<EdgeId>& matching);

/// Greedily extends `matching` to a *maximal* matching of g (edge-id
/// order). Upgrades nearly-maximal results: Theorem 3.2 leaves a small
/// fraction of edges undecided; since every uncovered edge is among them,
/// one more local round of greedy insertion yields a maximal matching and
/// hence a deterministic 2-approximation floor.
std::vector<EdgeId> complete_matching_greedily(const Graph& g,
                                               std::vector<EdgeId> matching);

}  // namespace distapx
