// Sequential matching baselines.
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace distapx {

/// Greedy maximum-weight matching: scan edges by descending weight, take
/// each edge whose endpoints are free. Classic sequential 2-approximation.
MatchingResult greedy_matching(const Graph& g, const EdgeWeights& w);

/// Greedy maximal (cardinality) matching in edge-id order.
MatchingResult greedy_maximal_matching(const Graph& g);

}  // namespace distapx
