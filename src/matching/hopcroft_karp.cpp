#include "matching/hopcroft_karp.hpp"

#include <deque>
#include <limits>

#include "support/assert.hpp"

namespace distapx {
namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

class HkSolver {
 public:
  HkSolver(const Graph& g, const Bipartition& parts) : g_(g) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (parts.is_left(v)) left_.push_back(v);
    }
    mate_.assign(g.num_nodes(), kInvalidNode);
    mate_edge_.assign(g.num_nodes(), kInvalidEdge);
  }

  std::vector<EdgeId> solve() {
    while (bfs()) {
      for (NodeId u : left_) {
        if (mate_[u] == kInvalidNode) dfs(u);
      }
    }
    std::vector<EdgeId> matching;
    for (NodeId u : left_) {
      if (mate_edge_[u] != kInvalidEdge) matching.push_back(mate_edge_[u]);
    }
    return matching;
  }

 private:
  bool bfs() {
    std::deque<NodeId> queue;
    dist_.assign(g_.num_nodes(), kInf);
    for (NodeId u : left_) {
      if (mate_[u] == kInvalidNode) {
        dist_[u] = 0;
        queue.push_back(u);
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : g_.neighbors(u)) {
        const NodeId w = he.to;  // right side
        const NodeId next = mate_[w];
        if (next == kInvalidNode) {
          found_free_right = true;
        } else if (dist_[next] == kInf) {
          dist_[next] = dist_[u] + 1;
          queue.push_back(next);
        }
      }
    }
    return found_free_right;
  }

  bool dfs(NodeId u) {
    for (const HalfEdge& he : g_.neighbors(u)) {
      const NodeId w = he.to;
      const NodeId next = mate_[w];
      if (next == kInvalidNode ||
          (dist_[next] == dist_[u] + 1 && dfs(next))) {
        mate_[u] = w;
        mate_[w] = u;
        mate_edge_[u] = he.edge;
        mate_edge_[w] = he.edge;
        return true;
      }
    }
    dist_[u] = kInf;
    return false;
  }

  const Graph& g_;
  std::vector<NodeId> left_;
  std::vector<NodeId> mate_;
  std::vector<EdgeId> mate_edge_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace

MatchingResult hopcroft_karp(const Graph& g, const Bipartition& parts) {
  // Validate the bipartition covers every edge.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    DISTAPX_ENSURE_MSG(parts.side[u] != parts.side[v],
                       "edge " << e << " is monochromatic");
  }
  HkSolver solver(g, parts);
  MatchingResult result;
  result.matching = solver.solve();
  return result;
}

MatchingResult hopcroft_karp(const Graph& g) {
  const auto parts = try_bipartition(g);
  DISTAPX_ENSURE_MSG(parts.has_value(), "graph is not bipartite");
  return hopcroft_karp(g, *parts);
}

std::size_t exact_mis_size_bipartite(const Graph& g) {
  return g.num_nodes() - hopcroft_karp(g).matching.size();
}

}  // namespace distapx
