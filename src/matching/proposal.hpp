// Appendix B.4: the alternative (2+ε)-approximation of unweighted maximum
// matching via random proposals.
//
// Bipartite case (Lemma B.13): every round, each unmatched left node
// proposes on a uniformly random edge to a still-unmatched right neighbor;
// each right node accepts the highest-id proposal. In each round a left
// node either loses a K-factor of its remaining degree or succeeds with
// probability 1/K, so after O(K log 1/ε + log Δ / log K) rounds each left
// node is unmatched-but-non-isolated ("unlucky") with probability <= ε/2.
//
// General case (Lemma B.14): O(log 1/ε) repetitions of a random left/right
// split, running the bipartite algorithm on the bi-chromatic edges of the
// unmatched remainder.
#pragma once

#include "graph/bipartite.hpp"
#include "matching/matching.hpp"
#include "sim/network.hpp"

namespace distapx {

struct ProposalParams {
  double epsilon = 0.25;
  /// Degree-shrink factor K of Lemma B.13; 0 = optimized
  /// log Δ / log(log Δ / log(1/ε)) choice (>= 2).
  std::uint32_t K = 0;
  /// Explicit round budget (0 = derive from the lemma).
  std::uint32_t iterations = 0;
};

struct ProposalResult {
  std::vector<EdgeId> matching;
  /// Left nodes that finished unmatched with unmatched neighbors remaining
  /// (the "unlucky" nodes whose fraction Lemma B.13 bounds by ε/2).
  std::vector<NodeId> unlucky;
  sim::RunMetrics metrics;
};

/// Lemma B.13 proposal iterations for bipartite g.
std::uint32_t proposal_iteration_budget(std::uint32_t max_degree,
                                        const ProposalParams& params);

/// Bipartite proposal matching (Lemma B.13); g must be bipartite w.r.t.
/// `parts`.
ProposalResult run_proposal_matching_bipartite(const Graph& g,
                                               const Bipartition& parts,
                                               std::uint64_t seed,
                                               ProposalParams params = {});

/// General-graph wrapper (Lemma B.14): O(log 1/ε) random bipartitions.
ProposalResult run_proposal_matching(const Graph& g, std::uint64_t seed,
                                     ProposalParams params = {});

}  // namespace distapx
