#include "matching/lr_matching_det.hpp"

#include <algorithm>

#include "coloring/linial.hpp"
#include "graph/line_graph.hpp"
#include "mis/mis.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

enum Status : std::uint64_t {
  kUndecided = 0,
  kCandidate = 1,
  kRemoved = 2,
  kInIs = 3,
};

constexpr std::size_t kStatus = 0;
constexpr std::size_t kColor = 1;
constexpr std::size_t kWeight = 2;
constexpr std::size_t kTime = 3;
constexpr std::size_t kFreshReduce = 4;

constexpr int kTimeBits = 20;
constexpr std::uint64_t kInfTime = (std::uint64_t{1} << kTimeBits) - 1;

}  // namespace

ColoringMaxIsAggProgram::ColoringMaxIsAggProgram(
    const std::vector<Weight>& weights, const std::vector<Color>& colors,
    Weight max_weight, Color num_colors)
    : weights_(&weights),
      colors_(&colors),
      weight_bits_(bits_for_value(
          static_cast<std::uint64_t>(std::max<Weight>(max_weight, 1)))),
      color_bits_(bits_for_count(std::max<Color>(num_colors, 2))) {}

std::vector<int> ColoringMaxIsAggProgram::state_bits() const {
  return {2, color_bits_, weight_bits_, kTimeBits, weight_bits_};
}

std::vector<sim::Aggregator> ColoringMaxIsAggProgram::aggregators() const {
  std::vector<sim::Aggregator> aggs;
  // 0: max color among undecided neighbors (eligibility test).
  aggs.push_back(sim::agg_max(
      [](std::span<const std::uint64_t> s) {
        return s[kStatus] == kUndecided ? s[kColor] + 1 : std::uint64_t{0};
      },
      color_bits_ + 1));
  // 1: sum of fresh reduction amounts.
  aggs.push_back(sim::agg_sum(
      [](std::span<const std::uint64_t> s) { return s[kFreshReduce]; },
      weight_bits_ + 12));
  // 2: any neighbor joined the IS.
  aggs.push_back(sim::agg_or([](std::span<const std::uint64_t> s) {
    return static_cast<std::uint64_t>(s[kStatus] == kInIs);
  }));
  // 3: max candidacy time among still-active neighbors (undecided = inf).
  aggs.push_back(sim::agg_max(
      [](std::span<const std::uint64_t> s) {
        if (s[kStatus] == kUndecided) return kInfTime;
        if (s[kStatus] == kCandidate) return s[kTime];
        return std::uint64_t{0};
      },
      kTimeBits));
  return aggs;
}

void ColoringMaxIsAggProgram::init(sim::AggCtx& ctx) {
  auto st = ctx.state();
  const Weight w = (*weights_)[ctx.agent()];
  st[kColor] = (*colors_)[ctx.agent()];
  st[kTime] = kInfTime;
  if (w <= 0) {
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  st[kStatus] = kUndecided;
  st[kWeight] = static_cast<std::uint64_t>(w);
}

void ColoringMaxIsAggProgram::round(sim::AggCtx& ctx) {
  auto st = ctx.state();
  const auto aggs = ctx.aggregates();
  if (aggs[2] != 0) {  // a neighbor joined
    DISTAPX_ENSURE_MSG(st[kStatus] == kCandidate,
                       "non-candidate agent " << ctx.agent()
                                              << " saw an IS neighbor");
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  if (st[kStatus] == kCandidate) {
    st[kFreshReduce] = 0;  // published exactly once, right after candidacy
    if (aggs[3] < st[kTime]) {
      st[kStatus] = kInIs;
      ctx.halt(kOutInIs);
    }
    return;
  }
  DISTAPX_ASSERT(st[kStatus] == kUndecided);
  // Apply this round's reductions first; dying agents announce `removed`.
  const std::uint64_t reduce = aggs[1];
  if (reduce >= st[kWeight]) {
    st[kStatus] = kRemoved;
    ctx.halt(kOutNotInIs);
    return;
  }
  st[kWeight] -= reduce;
  // Locally maximal color among surviving undecided neighbors: perform
  // the local-ratio reduction (become a candidate).
  if (aggs[0] < st[kColor] + 1) {
    st[kStatus] = kCandidate;
    st[kTime] = ctx.round();
    st[kFreshReduce] = st[kWeight];
    st[kWeight] = 0;
  }
}

MaxIsResult run_coloring_maxis_agg(const Graph& g, const NodeWeights& w,
                                   const std::vector<Color>& colors) {
  DISTAPX_ENSURE(w.size() == g.num_nodes());
  DISTAPX_ENSURE_MSG(is_proper_coloring(g, colors),
                     "Algorithm 3 requires a proper coloring");
  const Weight max_w =
      w.empty() ? 1 : std::max<Weight>(1, *std::max_element(w.begin(),
                                                            w.end()));
  Color num_colors = 0;
  for (Color c : colors) num_colors = std::max(num_colors, c + 1);
  ColoringMaxIsAggProgram prog(w, colors, max_w, num_colors);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(64);
  const auto run = sim::run_on_nodes(g, prog, opts);
  DISTAPX_ENSURE(run.metrics.completed);
  MaxIsResult out;
  out.metrics = run.metrics;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (run.outputs[v] == kOutInIs) out.independent_set.push_back(v);
  }
  return out;
}

DetLrMatchingResult run_lr_matching_deterministic(const Graph& g,
                                                  const EdgeWeights& w) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  DetLrMatchingResult out;
  if (g.num_edges() == 0) return out;

  // Coloring black box: a proper coloring of L(G) (= proper edge coloring
  // of G) via the deterministic Linial substrate on the explicit line
  // graph. Simulating it on G costs a constant factor per round ([Kuh05]);
  // we report its metrics separately like Algorithm 3 charges [BEK14].
  const LineGraph lg(g);
  const auto coloring = linial_coloring(lg.graph());
  out.coloring_metrics = coloring.metrics;
  out.num_colors = coloring.num_colors;

  const Weight max_w = *std::max_element(w.begin(), w.end());
  ColoringMaxIsAggProgram prog(w, coloring.colors, max_w,
                               coloring.num_colors);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(64);
  const auto run = sim::run_on_line_graph(g, prog, opts);
  DISTAPX_ENSURE(run.metrics.completed);
  out.matching_metrics = run.metrics;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (run.outputs[e] == kOutInIs) out.matching.push_back(e);
  }
  return out;
}

}  // namespace distapx
