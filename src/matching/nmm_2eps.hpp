// Theorem 3.2: (2+ε)-approximate maximum cardinality matching in
// O(log Δ / log log Δ) rounds of CONGEST.
//
// Runs the modified nearly-maximal IS (Sec. 3.1 dynamics) on the line
// graph through the Theorem 2.8 aggregation mechanism. The paper sets
// K = Θ(log^0.1 Δ) and δ = 2^{-log^0.7 Δ}; only an expected δ-fraction of
// optimal-matching edges are left uncovered, so discarding the undecided
// edges still leaves a (2+ε)-approximation.
#pragma once

#include "matching/matching.hpp"
#include "mis/ghaffari_nmis.hpp"

namespace distapx {

struct Nmm2EpsParams {
  double epsilon = 0.25;
  /// Override the NMIS base K (0 = the paper's max(2, log^0.1 Δ_L)).
  std::uint32_t K = 0;
};

struct Nmm2EpsResult {
  std::vector<EdgeId> matching;
  std::vector<EdgeId> undecided_edges;  ///< leftover (discarded) edges
  sim::RunMetrics metrics;
  std::uint32_t super_rounds = 0;
};

/// Derived NMIS parameters for a given ε and line-graph max degree.
NmisParams nmm_params_for(double epsilon, std::uint32_t line_max_degree,
                          std::uint32_t K_override = 0);

Nmm2EpsResult run_nmm_2eps_matching(const Graph& g, std::uint64_t seed,
                                    Nmm2EpsParams params = {});

}  // namespace distapx
