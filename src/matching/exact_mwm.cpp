#include "matching/exact_mwm.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace distapx {

MatchingResult exact_mwm_small(const Graph& g, const EdgeWeights& w) {
  const NodeId n = g.num_nodes();
  DISTAPX_ENSURE_MSG(n <= 22, "exact_mwm_small supports at most 22 nodes");
  DISTAPX_ENSURE(w.size() == g.num_edges());
  const std::size_t size = std::size_t{1} << n;
  std::vector<Weight> f(size, 0);
  // f[mask] = best matching weight using only nodes in mask.
  for (std::size_t mask = 1; mask < size; ++mask) {
    const auto v = static_cast<NodeId>(std::countr_zero(mask));
    // Leave v unmatched.
    Weight best = f[mask & (mask - 1)];
    for (const HalfEdge& he : g.neighbors(v)) {
      if (he.to < n && (mask >> he.to) & 1) {
        const std::size_t rest =
            mask & ~(std::size_t{1} << v) & ~(std::size_t{1} << he.to);
        best = std::max(best, w[he.edge] + f[rest]);
      }
    }
    f[mask] = best;
  }
  // Reconstruct.
  MatchingResult result;
  std::size_t mask = size - 1;
  while (mask != 0) {
    const auto v = static_cast<NodeId>(std::countr_zero(mask));
    const std::size_t without_v = mask & (mask - 1);
    if (f[mask] == f[without_v]) {
      mask = without_v;
      continue;
    }
    bool found = false;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (((mask >> he.to) & 1) == 0) continue;
      const std::size_t rest =
          mask & ~(std::size_t{1} << v) & ~(std::size_t{1} << he.to);
      if (f[mask] == w[he.edge] + f[rest]) {
        result.matching.push_back(he.edge);
        mask = rest;
        found = true;
        break;
      }
    }
    DISTAPX_ENSURE(found);
  }
  return result;
}

MatchingResult exact_mwm_bipartite(const Graph& g, const EdgeWeights& w) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  const auto parts_opt = try_bipartition(g);
  DISTAPX_ENSURE_MSG(parts_opt.has_value(), "graph is not bipartite");
  const Bipartition& parts = *parts_opt;

  const NodeId n = g.num_nodes();
  std::vector<NodeId> mate(n, kInvalidNode);
  std::vector<EdgeId> mate_edge(n, kInvalidEdge);
  constexpr Weight kNegInf = std::numeric_limits<Weight>::min() / 4;

  // Successive max-gain augmenting paths: a matching of size k with maximum
  // weight among size-k matchings, augmented along a maximum-gain
  // alternating path, is maximum-weight among size-(k+1) matchings
  // (standard exchange argument); weight is concave in k so we stop at the
  // first non-positive gain.
  for (;;) {
    // Longest-path (max-gain) Bellman-Ford over the alternating structure:
    // unmatched left->right edges add +w, matched right->left edges add -w.
    std::vector<Weight> dist(n, kNegInf);
    std::vector<EdgeId> via(n, kInvalidEdge);
    for (NodeId v = 0; v < n; ++v) {
      if (parts.is_left(v) && mate[v] == kInvalidNode) dist[v] = 0;
    }
    for (NodeId pass = 0; pass + 1 < std::max<NodeId>(n, 2); ++pass) {
      bool changed = false;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        auto [a, b] = g.endpoints(e);
        if (!parts.is_left(a)) std::swap(a, b);
        if (mate[a] == b) {
          // Matched edge: traversed right -> left with gain -w.
          if (dist[b] != kNegInf && dist[b] - w[e] > dist[a]) {
            dist[a] = dist[b] - w[e];
            changed = true;
          }
        } else {
          // Unmatched edge: traversed left -> right with gain +w. dist[a]
          // is only ever set for free left nodes or via a's matched edge,
          // so alternation is preserved.
          if (dist[a] != kNegInf && dist[a] + w[e] > dist[b]) {
            dist[b] = dist[a] + w[e];
            via[b] = e;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    NodeId best_end = kInvalidNode;
    Weight best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!parts.is_left(v) && mate[v] == kInvalidNode &&
          dist[v] > best_gain) {
        best_gain = dist[v];
        best_end = v;
      }
    }
    if (best_end == kInvalidNode) break;
    // Collect the alternating path back to a free left node, then flip it.
    std::vector<EdgeId> to_add;
    NodeId v = best_end;
    for (;;) {
      const EdgeId e = via[v];  // unmatched edge (left a, right v)
      DISTAPX_ENSURE(e != kInvalidEdge);
      to_add.push_back(e);
      auto [a, b] = g.endpoints(e);
      if (!parts.is_left(a)) std::swap(a, b);
      DISTAPX_ASSERT(b == v);
      if (mate[a] == kInvalidNode) break;
      v = mate[a];  // continue from a's mate along the matched edge
    }
    for (EdgeId e : to_add) {
      auto [a, b] = g.endpoints(e);
      mate[a] = b;
      mate[b] = a;
      mate_edge[a] = e;
      mate_edge[b] = e;
    }
  }

  MatchingResult result;
  for (NodeId v = 0; v < n; ++v) {
    if (parts.is_left(v) && mate_edge[v] != kInvalidEdge) {
      result.matching.push_back(mate_edge[v]);
    }
  }
  return result;
}

}  // namespace distapx
