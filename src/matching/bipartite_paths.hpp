// Appendix B.3: CONGEST machinery for augmenting paths in bipartite graphs.
//
// The conflict graph of length-d augmenting paths cannot be built explicitly
// in CONGEST; instead the marking probabilities p_t(P) are represented
// *implicitly* as products of per-node attenuation parameters α_t(v), and
// three message-passing primitives run directly on the bipartite graph:
//
//  1. Forward traversal (d rounds, Claim B.5): BFS-layered passing from
//     free A-nodes; each first-time receipt forwards, so each unmatched
//     B-node learns the number (or probability mass, Claim B.6) of
//     shortest augmenting paths ending at it. This is Figure 1.
//  2. Backward traversal (d rounds): the mass is split back proportionally
//     to forward contributions, so every node learns Σ_{P ∋ v} p_t(P).
//  3. Token marking (d rounds): each free B-node initiates a token with
//     probability equal to its path mass (unless heavy); tokens walk
//     backwards link by link, choosing predecessors proportionally;
//     colliding tokens die. Tokens reaching a free A-node are selected,
//     vertex-disjoint augmenting paths (layering makes intersecting tokens
//     collide at the shared node in the same round).
//
// Attenuations move by the Claim B.8 rule: a *heavy* node (path mass
// >= 1/(10d)) multiplies α by K^{-2d} (floored at Δ^{-20/ε}); others
// multiply by K up to their initial value. Nodes with too many *good*
// iterations (light path mass >= 1/(dK^{2d})) without being removed are
// deactivated — each such event has probability <= δ (Lemma B.10) — and
// Lemma B.11 bounds the total iterations until no length-d path remains.
#pragma once

#include <vector>

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "matching/augmenting.hpp"
#include "support/random.hpp"

namespace distapx {

/// Per-node counts of shortest (length exactly d) augmenting paths through
/// each node, via the forward+backward traversal with unit start values
/// (Claim B.5). `mate` defines the matching; A-side = parts left. Only
/// nodes with active[v] participate (empty = all).
///
/// Returns counts as doubles (the traversal computes them by proportional
/// splitting; they are integral up to FP error for unit starts).
std::vector<double> count_augmenting_paths_per_node(
    const Graph& g, const Bipartition& parts,
    const std::vector<NodeId>& mate, std::uint32_t d,
    const std::vector<bool>& active = {});

struct AugPathSearchParams {
  std::uint32_t d = 3;        ///< exact augmenting-path length (odd)
  double epsilon = 1.0 / 3.0; ///< sets the attenuation floor Δ^{-20/ε}
  std::uint32_t K = 2;
  double delta = 0.05;        ///< per-node deactivation probability target
  double beta = 1.5;
  /// Good-iteration deactivation threshold; 0 = beta*d*K^{2d}*ln(1/δ),
  /// capped at 10^6 (the Lemma B.10 budget).
  std::uint64_t good_threshold = 0;
  std::uint32_t max_iterations = 1u << 14;
};

struct AugPathSearchResult {
  /// Selected vertex-disjoint augmenting paths (A-end first). The caller's
  /// `mate` view has already been augmented with them.
  std::vector<NodePath> flipped;
  std::vector<NodeId> deactivated;
  std::uint32_t iterations = 0;
  /// CONGEST rounds consumed: Θ(d) per iteration for each traversal plus
  /// the marking walk (messages carry O(log Δ/ε²)-bit numbers; the paper
  /// groups O(1/ε²) physical rounds per logical round accordingly).
  std::uint32_t rounds = 0;
  bool drained = false;  ///< no length-d path among active nodes remains
};

/// Finds and flips a nearly-maximal set of vertex-disjoint length-d
/// augmenting paths in a bipartite graph (the core of Theorem B.12).
/// `mate` is updated in place; `active` nodes shrink by deactivations.
AugPathSearchResult find_and_flip_aug_paths_bipartite(
    const Graph& g, const Bipartition& parts, std::vector<NodeId>& mate,
    std::vector<bool>& active, const AugPathSearchParams& params, Rng& rng);

}  // namespace distapx
