#include "matching/proposal.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "graph/algos.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace distapx {
namespace {

enum MsgType : std::uint32_t {
  kPropose = 1,
  kAccept = 2,
  kMatchedAnnounce = 3,
};

// Node outputs.
constexpr std::int64_t kOutIsolated = -1;  // unmatched, no free neighbors
constexpr std::int64_t kOutUnlucky = -2;   // unmatched at budget exhaustion

class ProposalProgram final : public sim::NodeProgram {
 public:
  ProposalProgram(bool is_left, std::uint32_t iterations)
      : is_left_(is_left), iterations_(iterations) {}

  void init(sim::Ctx& ctx) override {
    if (ctx.degree() == 0) {
      ctx.halt(kOutIsolated);
      return;
    }
    alive_.assign(ctx.degree(), true);
  }

  void round(sim::Ctx& ctx) override {
    const bool left_phase = (ctx.round() - 1) % 2 == 0;
    if (is_left_) {
      if (!left_phase) return;
      for (const auto& d : ctx.inbox()) {
        if (d.msg.type() == kAccept) {
          ctx.halt(static_cast<std::int64_t>(ctx.edge_of(d.port)));
          return;
        }
        if (d.msg.type() == kMatchedAnnounce) alive_[d.port] = false;
      }
      if (std::none_of(alive_.begin(), alive_.end(),
                       [](bool a) { return a; })) {
        ctx.halt(kOutIsolated);
        return;
      }
      if (iteration_ >= iterations_) {
        ctx.halt(kOutUnlucky);
        return;
      }
      ++iteration_;
      // Propose on a uniformly random remaining edge.
      std::uint32_t count = 0;
      for (bool a : alive_) count += a ? 1 : 0;
      std::uint64_t pick = ctx.rng().next_below(count);
      for (std::uint32_t p = 0; p < alive_.size(); ++p) {
        if (!alive_[p]) continue;
        if (pick-- == 0) {
          ctx.send(p, sim::Message(kPropose));
          break;
        }
      }
      return;
    }
    // Right side: accept the highest-id proposal.
    if (left_phase) {
      // Rights act on even rounds; the final one is 2*iterations, after
      // which no proposals can arrive.
      if (ctx.round() >= 2 * iterations_ + 1) ctx.halt(kOutIsolated);
      return;
    }
    std::uint32_t best_port = UINT32_MAX;
    NodeId best_id = 0;
    for (const auto& d : ctx.inbox()) {
      if (d.msg.type() != kPropose) continue;
      const NodeId sender = ctx.neighbor(d.port);
      if (best_port == UINT32_MAX || sender > best_id) {
        best_port = d.port;
        best_id = sender;
      }
    }
    if (best_port == UINT32_MAX) {
      if (ctx.round() >= 2 * iterations_) ctx.halt(kOutIsolated);
      return;
    }
    ctx.send(best_port, sim::Message(kAccept));
    sim::Message announce(kMatchedAnnounce);
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      if (p != best_port) ctx.send(p, announce);
    }
    ctx.halt(static_cast<std::int64_t>(ctx.edge_of(best_port)));
  }

 private:
  bool is_left_;
  std::uint32_t iterations_;
  std::uint32_t iteration_ = 0;
  std::vector<bool> alive_;
};

}  // namespace

std::uint32_t proposal_iteration_budget(std::uint32_t max_degree,
                                        const ProposalParams& params) {
  if (params.iterations != 0) return params.iterations;
  DISTAPX_ENSURE(params.epsilon > 0 && params.epsilon < 1);
  const double log_delta =
      std::log2(static_cast<double>(std::max<std::uint32_t>(max_degree, 4)));
  const double log_inv_eps = std::log2(1.0 / params.epsilon) + 1;
  auto rounds_for = [&](double K) {
    return K * log_inv_eps + log_delta / std::log2(K);
  };
  double K = static_cast<double>(params.K);
  if (params.K == 0) {
    // Minimize K log(1/ε) + log Δ / log K over small integer K (the lemma's
    // K ≈ log Δ / log(1/ε) up to the integrality of the shrink factor).
    K = 2;
    for (std::uint32_t k = 3; k <= 64; ++k) {
      if (rounds_for(k) < rounds_for(K)) K = k;
    }
  }
  DISTAPX_ENSURE(K >= 2);
  return static_cast<std::uint32_t>(std::ceil(2.0 * rounds_for(K))) + 1;
}

ProposalResult run_proposal_matching_bipartite(const Graph& g,
                                               const Bipartition& parts,
                                               std::uint64_t seed,
                                               ProposalParams params) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    DISTAPX_ENSURE_MSG(parts.side[u] != parts.side[v],
                       "proposal matching requires a bipartite graph");
  }
  const std::uint32_t iters =
      proposal_iteration_budget(g.max_degree(), params);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = seed;
  opts.policy = sim::BandwidthPolicy::congest(32);
  opts.max_rounds = 2 * iters + 4;
  const auto run = net.run(
      [&parts, iters](NodeId v) {
        return std::make_unique<ProposalProgram>(parts.is_left(v), iters);
      },
      opts);
  DISTAPX_ENSURE(run.metrics.completed);

  ProposalResult out;
  out.metrics = run.metrics;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::int64_t o = run.outputs[v];
    if (o >= 0 && parts.is_left(v)) {
      out.matching.push_back(static_cast<EdgeId>(o));
    } else if (o == kOutUnlucky && parts.is_left(v)) {
      out.unlucky.push_back(v);
    }
  }
  DISTAPX_ENSURE(is_matching(g, out.matching));
  return out;
}

ProposalResult run_proposal_matching(const Graph& g, std::uint64_t seed,
                                     ProposalParams params) {
  const auto reps = static_cast<std::uint32_t>(
      std::ceil(std::log2(1.0 / std::min(params.epsilon, 0.5)))) + 2;
  Rng rng(seed);
  std::vector<bool> matched(g.num_nodes(), false);

  ProposalResult out;
  out.metrics.completed = true;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    // Random left/right split of the unmatched remainder; keep the
    // bi-chromatic edges (Lemma B.14).
    const Bipartition parts = random_bipartition(g.num_nodes(), rng);
    std::vector<bool> keep(g.num_nodes(), false);
    for (NodeId v = 0; v < g.num_nodes(); ++v) keep[v] = !matched[v];
    const auto sub = induced_subgraph(g, keep);
    std::vector<bool> edge_mask(sub.graph.num_edges(), false);
    Bipartition sub_parts;
    sub_parts.side.resize(sub.graph.num_nodes());
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
      sub_parts.side[v] = parts.side[sub.original_id[v]];
    }
    for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
      const auto [u, v] = sub.graph.endpoints(e);
      edge_mask[e] = sub_parts.side[u] != sub_parts.side[v];
    }
    const auto bi = edge_subgraph(sub.graph, edge_mask);
    if (bi.graph.num_edges() == 0) continue;
    Bipartition bi_parts = sub_parts;  // same node ids as sub.graph
    const auto res = run_proposal_matching_bipartite(
        bi.graph, bi_parts, rng.next(), params);
    sim::accumulate(out.metrics, res.metrics);
    for (EdgeId be : res.matching) {
      const EdgeId se = bi.original_edge[be];
      const auto [su, sv] = sub.graph.endpoints(se);
      const NodeId u = sub.original_id[su];
      const NodeId v = sub.original_id[sv];
      const EdgeId e = g.find_edge(u, v);
      DISTAPX_ASSERT(e != kInvalidEdge);
      out.matching.push_back(e);
      matched[u] = matched[v] = true;
    }
  }
  DISTAPX_ENSURE(is_matching(g, out.matching));
  return out;
}

}  // namespace distapx
