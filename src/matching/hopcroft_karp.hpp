// Hopcroft–Karp exact maximum-cardinality bipartite matching [HK73].
//
// Doubles as the paper's framework reference: fact (1) (no augmenting path
// of length <= 2⌈1/ε⌉+1 ⇒ (1+ε)-approximation) and fact (2) (augmenting
// with a maximal set of shortest paths increases the shortest augmenting
// path length) are exactly what the distributed (1+ε) algorithm exploits.
// Also provides König-theorem exact MaxIS size for unweighted bipartite
// graphs (|MaxIS| = n - |MCM|), used as a large-scale MaxIS baseline.
#pragma once

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace distapx {

/// Exact MCM of a bipartite graph. `parts` must be a proper bipartition.
MatchingResult hopcroft_karp(const Graph& g, const Bipartition& parts);

/// Exact MCM of a bipartite graph (computes a bipartition; throws on odd
/// cycles).
MatchingResult hopcroft_karp(const Graph& g);

/// König: exact MaxIS size of an unweighted bipartite graph.
std::size_t exact_mis_size_bipartite(const Graph& g);

}  // namespace distapx
