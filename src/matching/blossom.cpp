#include "matching/blossom.hpp"

#include <deque>
#include <vector>

#include "support/assert.hpp"

namespace distapx {
namespace {

/// Standard O(V³) blossom-shrinking search (array-based, after Gabow's
/// presentation): one BFS per free vertex, contracting odd cycles via the
/// `base` array.
class BlossomSolver {
 public:
  explicit BlossomSolver(const Graph& g) : g_(g), n_(g.num_nodes()) {
    mate_.assign(n_, kInvalidNode);
  }

  std::vector<EdgeId> solve() {
    for (NodeId v = 0; v < n_; ++v) {
      if (mate_[v] == kInvalidNode) augment_from(v);
    }
    std::vector<EdgeId> matching;
    for (NodeId v = 0; v < n_; ++v) {
      if (mate_[v] != kInvalidNode && v < mate_[v]) {
        const EdgeId e = g_.find_edge(v, mate_[v]);
        DISTAPX_ASSERT(e != kInvalidEdge);
        matching.push_back(e);
      }
    }
    return matching;
  }

 private:
  NodeId lca(NodeId a, NodeId b) {
    std::vector<bool> used(n_, false);
    for (;;) {
      a = base_[a];
      used[a] = true;
      if (mate_[a] == kInvalidNode) break;
      a = parent_[mate_[a]];
    }
    for (;;) {
      b = base_[b];
      if (used[b]) return b;
      b = parent_[mate_[b]];
    }
  }

  void mark_path(NodeId v, NodeId b, NodeId child) {
    while (base_[v] != b) {
      blossom_[base_[v]] = true;
      blossom_[base_[mate_[v]]] = true;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  NodeId find_path(NodeId root) {
    used_.assign(n_, false);
    parent_.assign(n_, kInvalidNode);
    base_.resize(n_);
    for (NodeId v = 0; v < n_; ++v) base_[v] = v;

    used_[root] = true;
    std::deque<NodeId> queue{root};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : g_.neighbors(v)) {
        const NodeId to = he.to;
        if (base_[v] == base_[to] || mate_[v] == to) continue;
        if (to == root ||
            (mate_[to] != kInvalidNode &&
             parent_[mate_[to]] != kInvalidNode)) {
          // Odd cycle: contract the blossom.
          const NodeId cur_base = lca(v, to);
          blossom_.assign(n_, false);
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
          for (NodeId i = 0; i < n_; ++i) {
            if (blossom_[base_[i]]) {
              base_[i] = cur_base;
              if (!used_[i]) {
                used_[i] = true;
                queue.push_back(i);
              }
            }
          }
        } else if (parent_[to] == kInvalidNode) {
          parent_[to] = v;
          if (mate_[to] == kInvalidNode) {
            return to;  // augmenting path found
          }
          used_[mate_[to]] = true;
          queue.push_back(mate_[to]);
        }
      }
    }
    return kInvalidNode;
  }

  void augment_from(NodeId root) {
    const NodeId finish = find_path(root);
    if (finish == kInvalidNode) return;
    NodeId v = finish;
    while (v != kInvalidNode) {
      const NodeId pv = parent_[v];
      const NodeId ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  NodeId n_;
  std::vector<NodeId> mate_, parent_, base_;
  std::vector<bool> used_, blossom_;
};

}  // namespace

MatchingResult blossom_mcm(const Graph& g) {
  BlossomSolver solver(g);
  MatchingResult result;
  result.matching = solver.solve();
  return result;
}

}  // namespace distapx
