// Exact maximum-weight matching baselines.
//
//  * exact_mwm_small — subset DP over vertex masks, n <= 24; any topology.
//  * exact_mwm_bipartite — successive longest augmenting paths (Bellman-
//    Ford on the alternating-path gain graph); exact for bipartite graphs
//    at the scales our benches use.
#pragma once

#include "graph/bipartite.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace distapx {

/// Exact MWM via DP over vertex subsets; requires n <= 24.
MatchingResult exact_mwm_small(const Graph& g, const EdgeWeights& w);

/// Exact MWM of a bipartite graph (weights may be any integers; only
/// positive-total matchings are ever beneficial).
MatchingResult exact_mwm_bipartite(const Graph& g, const EdgeWeights& w);

}  // namespace distapx
