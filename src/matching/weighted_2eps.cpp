#include "matching/weighted_2eps.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "graph/algos.hpp"
#include "matching/nmm_2eps.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace distapx {
namespace {

struct BucketKey {
  std::int32_t big = 0;
  std::int32_t small = 0;
};

/// Stage-1 engine shared by the public entry points.
class BucketedMwm {
 public:
  BucketedMwm(const Graph& g, const Weighted2EpsParams& params)
      : g_(&g), params_(params) {}

  /// Runs the [LPSR09] bucketing on weights `w`; returns a matching that is
  /// an O(1)-approximation of MWM w.r.t. `w`. Ignores edges with w <= 0.
  std::vector<EdgeId> run(const EdgeWeights& w, std::uint64_t seed,
                          sim::RunMetrics& metrics,
                          std::uint32_t& rounds_parallel) {
    const double beta = params_.beta;
    const double eps = params_.epsilon;
    const auto small_per_big = static_cast<std::int32_t>(
        std::ceil(std::log(beta) / std::log1p(eps)));

    // Partition edges into (big, small) buckets.
    std::map<std::int32_t, std::vector<std::vector<EdgeId>>> big_buckets;
    for (EdgeId e = 0; e < g_->num_edges(); ++e) {
      if (w[e] <= 0) continue;
      const double lw = std::log(static_cast<double>(w[e]));
      const auto big = static_cast<std::int32_t>(
          std::floor(lw / std::log(beta) + 1e-12));
      auto small = static_cast<std::int32_t>(std::floor(
          (lw - big * std::log(beta)) / std::log1p(eps) + 1e-12));
      small = std::clamp<std::int32_t>(small, 0, small_per_big - 1);
      auto& bucket = big_buckets[big];
      if (bucket.empty()) bucket.resize(small_per_big);
      bucket[static_cast<std::size_t>(small)].push_back(e);
    }

    std::vector<bool> node_taken(g_->num_nodes(), false);
    std::vector<std::vector<EdgeId>> per_big_chosen;
    Rng seeder(seed);

    // Small-bucket sweeps, highest first. Big buckets are parallel: the
    // round cost of sweep j is the max over big buckets.
    std::vector<std::vector<bool>> big_node_taken;
    std::vector<const std::vector<std::vector<EdgeId>>*> big_list;
    for (const auto& [big, buckets] : big_buckets) {
      big_list.push_back(&buckets);
      big_node_taken.emplace_back(g_->num_nodes(), false);
      per_big_chosen.emplace_back();
    }
    for (std::int32_t j = small_per_big - 1; j >= 0; --j) {
      std::uint32_t sweep_rounds = 0;
      for (std::size_t b = 0; b < big_list.size(); ++b) {
        const auto& edges = (*big_list[b])[static_cast<std::size_t>(j)];
        if (edges.empty()) continue;
        // Surviving edges of this small bucket: endpoints untouched within
        // this big bucket.
        std::vector<bool> mask(g_->num_edges(), false);
        bool any = false;
        for (EdgeId e : edges) {
          const auto [u, v] = g_->endpoints(e);
          if (!big_node_taken[b][u] && !big_node_taken[b][v]) {
            mask[e] = true;
            any = true;
          }
        }
        if (!any) continue;
        const auto sub = edge_subgraph(*g_, mask);
        Nmm2EpsParams nmm;
        nmm.epsilon = params_.epsilon;
        const auto found =
            run_nmm_2eps_matching(sub.graph, seeder.next(), nmm);
        sim::accumulate(metrics, found.metrics);
        sweep_rounds = std::max(sweep_rounds, found.metrics.rounds);
        for (EdgeId se : found.matching) {
          const EdgeId e = sub.original_edge[se];
          per_big_chosen[b].push_back(e);
          const auto [u, v] = g_->endpoints(e);
          big_node_taken[b][u] = true;
          big_node_taken[b][v] = true;
        }
      }
      rounds_parallel += sweep_rounds;
    }

    // Cross-bucket prune: keep a chosen edge only if it is the strict
    // (weight, id) maximum among chosen edges sharing either endpoint.
    std::vector<std::vector<EdgeId>> chosen_at(g_->num_nodes());
    for (const auto& chosen : per_big_chosen) {
      for (EdgeId e : chosen) {
        const auto [u, v] = g_->endpoints(e);
        chosen_at[u].push_back(e);
        chosen_at[v].push_back(e);
      }
    }
    auto heavier = [&](EdgeId a, EdgeId b) {
      return w[a] != w[b] ? w[a] > w[b] : a > b;
    };
    std::vector<EdgeId> result;
    for (const auto& chosen : per_big_chosen) {
      for (EdgeId e : chosen) {
        const auto [u, v] = g_->endpoints(e);
        bool is_max = true;
        for (EdgeId f : chosen_at[u]) {
          if (f != e && !heavier(e, f)) is_max = false;
        }
        for (EdgeId f : chosen_at[v]) {
          if (f != e && !heavier(e, f)) is_max = false;
        }
        if (is_max) result.push_back(e);
      }
    }
    rounds_parallel += 1;  // the local prune exchange
    return result;
  }

 private:
  const Graph* g_;
  Weighted2EpsParams params_;
};

}  // namespace

Weighted2EpsResult run_bucketed_o1_mwm(const Graph& g, const EdgeWeights& w,
                                       std::uint64_t seed,
                                       const Weighted2EpsParams& params) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  Weighted2EpsResult out;
  out.metrics.completed = true;
  BucketedMwm engine(g, params);
  out.matching = engine.run(w, seed, out.metrics, out.rounds_parallel);
  DISTAPX_ENSURE(is_matching(g, out.matching));
  return out;
}

Weighted2EpsResult run_weighted_2eps_matching(
    const Graph& g, const EdgeWeights& w, std::uint64_t seed,
    const Weighted2EpsParams& params) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  Weighted2EpsResult out;
  out.metrics.completed = true;
  BucketedMwm engine(g, params);
  Rng seeder(hash_combine(seed, 0x2eb5));

  // Stage 1 uses `seed` directly so it matches a standalone
  // run_bucketed_o1_mwm call, and every refinement iteration can only add
  // positive auxiliary gain — the full run dominates stage 1.
  std::vector<EdgeId> m = engine.run(w, seed, out.metrics,
                                     out.rounds_parallel);

  const std::uint32_t iters =
      params.refine_iterations != 0
          ? params.refine_iterations
          : static_cast<std::uint32_t>(std::ceil(2.0 / params.epsilon)) + 2;

  std::vector<EdgeId> matched_at(g.num_nodes(), kInvalidEdge);
  for (std::uint32_t it = 0; it < iters; ++it) {
    std::fill(matched_at.begin(), matched_at.end(), kInvalidEdge);
    for (EdgeId e : m) {
      const auto [u, v] = g.endpoints(e);
      matched_at[u] = e;
      matched_at[v] = e;
    }
    // Auxiliary gains ([LPSP15] §4): adding e evicts the matched edges at
    // its endpoints; gain = w(e) minus their weight (length-<=3 augmenting
    // paths). Computable in O(1) rounds.
    EdgeWeights gain(g.num_edges(), 0);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (matched_at[u] == e) continue;  // already matched
      Weight loss = 0;
      if (matched_at[u] != kInvalidEdge) loss += w[matched_at[u]];
      if (matched_at[v] != kInvalidEdge) loss += w[matched_at[v]];
      gain[e] = w[e] - loss;
    }
    const std::vector<EdgeId> aug =
        engine.run(gain, seeder.next(), out.metrics, out.rounds_parallel);
    if (aug.empty()) break;
    // Augment: keep old matched edges not adjacent to the found set.
    std::vector<bool> touched(g.num_nodes(), false);
    for (EdgeId e : aug) {
      const auto [u, v] = g.endpoints(e);
      touched[u] = touched[v] = true;
    }
    std::vector<EdgeId> next(aug);
    for (EdgeId e : m) {
      const auto [u, v] = g.endpoints(e);
      if (!touched[u] && !touched[v]) next.push_back(e);
    }
    m = std::move(next);
    out.rounds_parallel += 1;
    DISTAPX_ENSURE(is_matching(g, m));
  }
  out.matching = std::move(m);
  return out;
}

}  // namespace distapx
