// Nearly-maximal matching in low-rank hypergraphs (paper Appendix B.2,
// Lemma B.3): the tighter-analysis engine behind the (1+ε)-approximation.
//
// Each hyperedge e (an augmenting path of rank d = O(1/ε)) carries a
// marking probability p_t(e) = K^{-j}; it is *light* when the probability
// mass intersecting it is < 2. A round is *good* for a vertex v when at
// least 1/(2dK²) of probability mass sits on light hyperedges through v —
// in such a round v is removed with probability Θ(1/(dK²)). A vertex that
// survives Θ(dK² log 1/δ) good rounds is deactivated (probability <= δ),
// and Lemma B.3 guarantees that after O(d² log Δ / log log Δ) rounds no
// hyperedge has all vertices active — i.e. the found matching is maximal
// on the active subhypergraph.
#pragma once

#include "graph/hypergraph.hpp"
#include "support/random.hpp"

namespace distapx {

struct HypergraphNmmParams {
  std::uint32_t K = 2;
  double delta = 0.05;
  double beta = 1.5;
  /// Good-round deactivation threshold; 0 = beta * d * K^2 * ln(1/delta).
  std::uint32_t good_round_threshold = 0;
  std::uint32_t max_iterations = 1u << 16;
};

struct HypergraphNmmResult {
  std::vector<HyperedgeId> matching;
  std::vector<NodeId> deactivated;
  std::uint32_t iterations = 0;
  /// True when the loop ended because no all-active hyperedge remained
  /// (Lemma B.3's guarantee), not because of the iteration cap.
  bool drained = false;
};

HypergraphNmmResult run_hypergraph_nmm(const Hypergraph& h,
                                       std::uint64_t seed,
                                       HypergraphNmmParams params = {});

}  // namespace distapx
