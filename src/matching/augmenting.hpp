// Augmenting-path utilities (paper Appendix B.2).
//
// Given a matching M, an augmenting path alternates unmatched/matched edges
// between two unmatched endpoints; flipping it grows |M| by one. These
// helpers enumerate short augmenting paths, flip them, and check the
// Hopcroft–Karp shortest-path invariants the (1+ε) algorithms rely on.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace distapx {

/// A path as its node sequence (length = nodes.size() - 1 edges).
using NodePath = std::vector<NodeId>;

/// Enumerates all simple augmenting paths of exactly `length` edges w.r.t.
/// the matching given by `mate` (kInvalidNode = free), restricted to nodes
/// with active[v] (pass {} for all-active). Reversed duplicates are
/// canonicalized (first endpoint id < last endpoint id). Throws if more
/// than `max_paths` would be produced.
std::vector<NodePath> enumerate_augmenting_paths(
    const Graph& g, const std::vector<NodeId>& mate, std::uint32_t length,
    const std::vector<bool>& active = {},
    std::size_t max_paths = 1u << 22);

/// True iff `path` is an augmenting path w.r.t. `mate`.
bool is_augmenting_path(const Graph& g, const std::vector<NodeId>& mate,
                        const NodePath& path);

/// Flips `path` in `mate` (and in `matched_edge`, the per-node matched
/// EdgeId view). The path must be augmenting.
void flip_augmenting_path(const Graph& g, std::vector<NodeId>& mate,
                          std::vector<EdgeId>& matched_edge,
                          const NodePath& path);

/// Smallest augmenting-path length <= `limit` among active nodes, or 0 if
/// none. Exponential in the worst case; intended for tests/verification.
std::uint32_t shortest_augmenting_path_length(
    const Graph& g, const std::vector<NodeId>& mate, std::uint32_t limit,
    const std::vector<bool>& active = {});

/// Converts a per-node matched-edge view into an edge list.
std::vector<EdgeId> matching_from_matched_edge(
    const Graph& g, const std::vector<EdgeId>& matched_edge);

}  // namespace distapx
