#include "matching/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace distapx {

MatchingResult greedy_matching(const Graph& g, const EdgeWeights& w) {
  DISTAPX_ENSURE(w.size() == g.num_edges());
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return w[a] != w[b] ? w[a] > w[b] : a < b;
  });
  std::vector<bool> used(g.num_nodes(), false);
  MatchingResult result;
  for (EdgeId e : order) {
    if (w[e] <= 0) break;
    const auto [u, v] = g.endpoints(e);
    if (used[u] || used[v]) continue;
    used[u] = used[v] = true;
    result.matching.push_back(e);
  }
  return result;
}

MatchingResult greedy_maximal_matching(const Graph& g) {
  std::vector<bool> used(g.num_nodes(), false);
  MatchingResult result;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (used[u] || used[v]) continue;
    used[u] = used[v] = true;
    result.matching.push_back(e);
  }
  return result;
}

}  // namespace distapx
