#include "matching/hypergraph_nmm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace distapx {

HypergraphNmmResult run_hypergraph_nmm(const Hypergraph& h,
                                       std::uint64_t seed,
                                       HypergraphNmmParams params) {
  DISTAPX_ENSURE(params.K >= 2);
  const std::uint32_t d = std::max<std::uint32_t>(h.rank(), 1);
  const double K = params.K;
  const std::uint32_t good_threshold =
      params.good_round_threshold != 0
          ? params.good_round_threshold
          : static_cast<std::uint32_t>(std::ceil(
                params.beta * d * K * K * std::log(1.0 / params.delta))) +
                1;

  const HyperedgeId m = h.num_hyperedges();
  std::vector<double> p(m, 1.0 / K);
  std::vector<bool> edge_alive(m, true);
  std::vector<bool> node_active(h.num_vertices(), true);
  std::vector<std::uint32_t> good_count(h.num_vertices(), 0);
  std::vector<std::uint32_t> stamp(m, 0);
  Rng rng(seed);

  HypergraphNmmResult result;

  // Collects distinct alive hyperedges intersecting e (excluding e).
  std::vector<HyperedgeId> scratch;
  auto for_intersecting = [&](HyperedgeId e, std::uint32_t tag,
                              auto&& fn) {
    for (NodeId v : h.vertices(e)) {
      for (HyperedgeId f : h.incident(v)) {
        if (f == e || !edge_alive[f] || stamp[f] == tag) continue;
        stamp[f] = tag;
        fn(f);
      }
    }
  };

  std::uint32_t tag = 0;
  std::vector<double> intersect_mass(m, 0.0);
  std::vector<bool> light(m, false);
  std::vector<bool> marked(m, false);

  for (std::uint32_t it = 0; it < params.max_iterations; ++it) {
    // Termination: Lemma B.3 — stop once no hyperedge has all its nodes
    // active and is still alive.
    bool any_alive = false;
    for (HyperedgeId e = 0; e < m; ++e) {
      if (edge_alive[e]) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      result.drained = true;
      break;
    }
    ++result.iterations;

    // Intersecting probability mass and lightness.
    for (HyperedgeId e = 0; e < m; ++e) {
      if (!edge_alive[e]) continue;
      double mass = p[e];
      for_intersecting(e, ++tag, [&](HyperedgeId f) { mass += p[f]; });
      intersect_mass[e] = mass;
      light[e] = mass < 2.0;
    }

    // Good rounds per vertex: light probability mass through v.
    const double good_bar = 1.0 / (2.0 * d * K * K);
    for (NodeId v = 0; v < h.num_vertices(); ++v) {
      if (!node_active[v]) continue;
      double light_mass = 0;
      for (HyperedgeId e : h.incident(v)) {
        if (edge_alive[e] && light[e]) light_mass += p[e];
      }
      if (light_mass >= good_bar) ++good_count[v];
    }

    // Marking: e joins if marked and no intersecting alive edge is marked.
    for (HyperedgeId e = 0; e < m; ++e) {
      marked[e] = edge_alive[e] && rng.bernoulli(p[e]);
    }
    std::vector<HyperedgeId> joined;
    for (HyperedgeId e = 0; e < m; ++e) {
      if (!marked[e]) continue;
      bool lonely = true;
      for_intersecting(e, ++tag, [&](HyperedgeId f) {
        if (marked[f]) lonely = false;
      });
      if (lonely) joined.push_back(e);
    }
    for (HyperedgeId e : joined) {
      if (!edge_alive[e]) continue;  // killed by an earlier join this round
      result.matching.push_back(e);
      edge_alive[e] = false;
      for_intersecting(e, ++tag,
                       [&](HyperedgeId f) { edge_alive[f] = false; });
    }

    // Probability updates (pre-join masses, as in the analysis).
    for (HyperedgeId e = 0; e < m; ++e) {
      if (!edge_alive[e]) continue;
      if (intersect_mass[e] >= 2.0) {
        p[e] /= K;
      } else {
        p[e] = std::min(p[e] * K, 1.0 / K);
      }
    }

    // Deactivations.
    for (NodeId v = 0; v < h.num_vertices(); ++v) {
      if (!node_active[v] || good_count[v] <= good_threshold) continue;
      node_active[v] = false;
      result.deactivated.push_back(v);
      for (HyperedgeId e : h.incident(v)) edge_alive[e] = false;
    }
  }
  // Distinct joined edges cannot intersect: joins within a round are
  // mutually non-intersecting (both marked would block), and later rounds
  // exclude killed edges.
  DISTAPX_ENSURE(h.is_matching(result.matching));
  if (!result.drained) {
    bool any_alive = false;
    for (HyperedgeId e = 0; e < m; ++e) any_alive = any_alive || edge_alive[e];
    result.drained = !any_alive;
  }
  return result;
}

}  // namespace distapx
