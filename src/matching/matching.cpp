#include "matching/matching.hpp"

#include "support/assert.hpp"

namespace distapx {

std::vector<NodeId> mates_of(const Graph& g,
                             const std::vector<EdgeId>& matching) {
  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  for (EdgeId e : matching) {
    const auto [u, v] = g.endpoints(e);
    DISTAPX_ENSURE_MSG(mate[u] == kInvalidNode && mate[v] == kInvalidNode,
                       "edge set is not a matching");
    mate[u] = v;
    mate[v] = u;
  }
  return mate;
}

std::vector<bool> matching_edge_mask(const Graph& g,
                                     const std::vector<EdgeId>& matching) {
  std::vector<bool> mask(g.num_edges(), false);
  for (EdgeId e : matching) {
    DISTAPX_ENSURE(e < g.num_edges());
    mask[e] = true;
  }
  return mask;
}

std::vector<EdgeId> complete_matching_greedily(const Graph& g,
                                               std::vector<EdgeId> matching) {
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e : matching) {
    const auto [u, v] = g.endpoints(e);
    DISTAPX_ENSURE_MSG(!used[u] && !used[v], "input is not a matching");
    used[u] = used[v] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (!used[u] && !used[v]) {
      used[u] = used[v] = true;
      matching.push_back(e);
    }
  }
  return matching;
}

}  // namespace distapx
