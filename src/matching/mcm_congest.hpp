// Theorem B.12: (1+ε)-approximate maximum cardinality matching in general
// graphs in the CONGEST model, O(2^{O(1/ε)} · log Δ / log log Δ) rounds.
//
// The method of Lotker et al. [LPSP15] randomly reduces to bipartite
// instances: each stage colors nodes red/blue uniformly, keeps unmatched
// nodes and matched pairs whose matching edge is bi-chromatic, and keeps
// the bi-chromatic edges among them. In the resulting bipartite graph a
// nearly-maximal set of augmenting paths of each length d = 1, 3, ...,
// 2⌈1/ε⌉-1 is found and flipped with the Appendix B.3 machinery
// (bipartite_paths.hpp). Augmenting paths of the bipartite subgraph are
// augmenting in G, so the matching improves monotonically; after
// 2^{O(1/ε)} stages the result is a (1+ε)-approximation.
#pragma once

#include "matching/bipartite_paths.hpp"
#include "matching/matching.hpp"

namespace distapx {

struct McmCongestParams {
  double epsilon = 1.0 / 3.0;
  /// Number of random-bipartition stages (0 = 2^{⌈1/ε⌉+2}, capped at 64).
  std::uint32_t stages = 0;
  /// Per-(stage, d) search parameters; d and epsilon fields are overridden.
  AugPathSearchParams search;
};

struct McmCongestResult {
  std::vector<EdgeId> matching;
  std::vector<NodeId> deactivated;
  std::uint32_t stages = 0;
  std::uint32_t rounds = 0;  ///< summed over all stages and path lengths
};

McmCongestResult run_mcm_1eps_congest(const Graph& g, std::uint64_t seed,
                                      McmCongestParams params = {});

}  // namespace distapx
