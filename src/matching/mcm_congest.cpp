#include "matching/mcm_congest.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algos.hpp"
#include "support/assert.hpp"

namespace distapx {

McmCongestResult run_mcm_1eps_congest(const Graph& g, std::uint64_t seed,
                                      McmCongestParams params) {
  DISTAPX_ENSURE(params.epsilon > 0);
  const auto inv_eps =
      static_cast<std::uint32_t>(std::ceil(1.0 / params.epsilon));
  const std::uint32_t stages =
      params.stages != 0
          ? params.stages
          : std::min<std::uint32_t>(64, 1u << std::min(inv_eps + 2, 6u));
  const std::uint32_t d_max = 2 * inv_eps - 1;

  const NodeId n = g.num_nodes();
  std::vector<NodeId> mate(n, kInvalidNode);
  std::vector<bool> active(n, true);
  Rng rng(seed);

  McmCongestResult result;
  result.stages = stages;
  for (std::uint32_t stage = 0; stage < stages; ++stage) {
    // Random red/blue coloring; matched pairs survive only when their
    // matching edge is bi-chromatic, unmatched nodes always survive.
    Bipartition parts = random_bipartition(n, rng);
    result.rounds += 1;  // the coloring + membership exchange
    std::vector<bool> in_sub(n, false);
    for (NodeId v = 0; v < n; ++v) {
      if (mate[v] == kInvalidNode) {
        in_sub[v] = true;
      } else {
        in_sub[v] = parts.side[v] != parts.side[mate[v]];
      }
    }
    // Bipartite view: bi-chromatic edges among surviving nodes. We keep
    // the full node set and gate via the active predicate of the search.
    std::vector<bool> sub_active(n, false);
    for (NodeId v = 0; v < n; ++v) sub_active[v] = active[v] && in_sub[v];

    // Edge legality is enforced by a filtered graph copy: the B.3 engine
    // expects a bipartite graph, so drop monochromatic edges.
    std::vector<bool> edge_mask(g.num_edges(), false);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      edge_mask[e] = parts.side[u] != parts.side[v];
    }
    const auto sub = edge_subgraph(g, edge_mask);

    for (std::uint32_t d = 1; d <= d_max; d += 2) {
      AugPathSearchParams search = params.search;
      search.d = d;
      search.epsilon = params.epsilon;
      auto res = find_and_flip_aug_paths_bipartite(sub.graph, parts, mate,
                                                   sub_active, search, rng);
      result.rounds += res.rounds;
      for (NodeId v : res.deactivated) {
        if (active[v]) {
          active[v] = false;
          result.deactivated.push_back(v);
        }
      }
    }
  }

  // Assemble the matching from the mate view (on the original graph).
  for (NodeId v = 0; v < n; ++v) {
    if (mate[v] != kInvalidNode && v < mate[v]) {
      const EdgeId e = g.find_edge(v, mate[v]);
      DISTAPX_ASSERT(e != kInvalidEdge);
      result.matching.push_back(e);
    }
  }
  DISTAPX_ENSURE(is_matching(g, result.matching));
  return result;
}

}  // namespace distapx
