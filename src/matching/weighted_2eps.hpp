// Weighted (2+ε)-approximate maximum matching in O(log Δ / log log Δ)
// rounds: the Appendix B.1 extension via the methods of Lotker et al.
//
// Stage 1 ([LPSR09] bucketing): edge weights are classified into
// big-buckets [β^i, β^{i+1}) and, within each, small-buckets by powers of
// (1+ε). All big-buckets run in parallel (their edge sets are disjoint, so
// per-physical-edge CONGEST load is unchanged); within a big-bucket the
// small-buckets run highest first, each finding an unweighted
// (2+ε)-matching (Thm 3.2) among its surviving edges and removing incident
// edges. A node then keeps only its heaviest chosen edge. Result: an
// O(1)-approximation of MWM.
//
// Stage 2 ([LPSP15] §4): O(1/ε) refinement iterations. Each defines an
// auxiliary gain for every edge (weight gained by adding it and evicting
// adjacent matched edges), finds an O(1)-approximate matching under the
// auxiliary weights using stage 1, and augments. Yields (2+ε).
#pragma once

#include "matching/matching.hpp"

namespace distapx {

struct Weighted2EpsParams {
  double epsilon = 0.25;
  /// Big-bucket base β (a large constant in the paper).
  double beta = 8.0;
  /// Stage-2 refinement iterations (paper: O(1/ε); 0 = derive from ε).
  std::uint32_t refine_iterations = 0;
};

struct Weighted2EpsResult {
  std::vector<EdgeId> matching;
  sim::RunMetrics metrics;   ///< aggregated over all sub-runs
  std::uint32_t rounds_parallel = 0;  ///< max over parallel big-buckets,
                                      ///< summed over sequential phases
};

/// Stage 1 only: the O(1)-approximation.
Weighted2EpsResult run_bucketed_o1_mwm(const Graph& g, const EdgeWeights& w,
                                       std::uint64_t seed,
                                       const Weighted2EpsParams& params = {});

/// Full algorithm: stages 1 + 2, the (2+ε)-approximation.
Weighted2EpsResult run_weighted_2eps_matching(
    const Graph& g, const EdgeWeights& w, std::uint64_t seed,
    const Weighted2EpsParams& params = {});

}  // namespace distapx
