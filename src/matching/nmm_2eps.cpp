#include "matching/nmm_2eps.hpp"

#include <algorithm>
#include <cmath>

#include "mis/nmis_agg.hpp"
#include "support/assert.hpp"

namespace distapx {

NmisParams nmm_params_for(double epsilon, std::uint32_t line_max_degree,
                          std::uint32_t K_override) {
  DISTAPX_ENSURE(epsilon > 0);
  NmisParams p;
  if (K_override != 0) {
    p.K = K_override;
  } else {
    // K = Θ(log^0.1 Δ): 2 for every practical Δ, as the paper notes the
    // asymptotics only bite for enormous degrees.
    const double logd = std::log2(
        static_cast<double>(std::max<std::uint32_t>(line_max_degree, 4)));
    p.K = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(std::pow(logd, 0.1)));
  }
  // δ ≪ ε so the expected uncovered fraction of OPT stays below ε/2.
  p.delta = std::min(epsilon / 8.0, 0.05);
  p.beta = 1.5;
  return p;
}

Nmm2EpsResult run_nmm_2eps_matching(const Graph& g, std::uint64_t seed,
                                    Nmm2EpsParams params) {
  std::uint32_t line_delta = 1;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    line_delta = std::max(line_delta, g.degree(u) + g.degree(v) - 2);
  }
  const NmisParams nmis =
      nmm_params_for(params.epsilon, line_delta, params.K);
  const auto nm = run_nearly_maximal_matching(g, seed, nmis);
  Nmm2EpsResult out;
  out.matching = nm.matching;
  out.undecided_edges = nm.undecided;
  out.metrics = nm.metrics;
  out.super_rounds = nm.super_rounds;
  return out;
}

}  // namespace distapx
