// (1+ε)-approximate maximum cardinality matching in the LOCAL model
// (paper Appendix B.2, Theorem B.4).
//
// Hopcroft–Karp phase framework: for ℓ = 1, 3, ..., 2⌈1/ε⌉+1, find a
// (nearly-)maximal set of vertex-disjoint augmenting paths of length ℓ and
// flip them all. The disjoint-path set is a matching in the rank-ℓ+1
// hypergraph whose hyperedges are the augmenting paths; we compute it
// either greedily (a true MIS of the conflict graph — the idealized
// reference) or with the Lemma B.3 nearly-maximal hypergraph matching,
// which deactivates each node with probability <= δ and yields the
// O(poly(1/ε) · log Δ / log log Δ) round bound.
#pragma once

#include "matching/augmenting.hpp"
#include "matching/hypergraph_nmm.hpp"
#include "matching/matching.hpp"

namespace distapx {

enum class PathSetAlgo {
  kGreedyMaximal,   ///< exact maximal set (idealized MIS reference)
  kHypergraphNmm,   ///< Lemma B.3 nearly-maximal hypergraph matching
};

struct HkApproxParams {
  double epsilon = 1.0 / 3.0;
  PathSetAlgo algo = PathSetAlgo::kHypergraphNmm;
  HypergraphNmmParams nmm;  ///< used when algo == kHypergraphNmm
  std::size_t max_paths = 1u << 22;
};

struct HkApproxResult {
  std::vector<EdgeId> matching;
  std::vector<NodeId> deactivated;
  std::uint32_t phases = 0;
  /// Conflict-graph rounds across all phases; one conflict-graph round is
  /// O(ℓ) = O(1/ε) rounds on the network in the LOCAL model.
  std::uint32_t conflict_rounds = 0;
};

HkApproxResult run_hk_matching_local(const Graph& g, std::uint64_t seed,
                                     HkApproxParams params = {});

}  // namespace distapx
