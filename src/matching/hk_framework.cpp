#include "matching/hk_framework.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace distapx {

HkApproxResult run_hk_matching_local(const Graph& g, std::uint64_t seed,
                                     HkApproxParams params) {
  DISTAPX_ENSURE(params.epsilon > 0);
  const auto ell_max = static_cast<std::uint32_t>(
      2 * std::ceil(1.0 / params.epsilon) + 1);

  std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
  std::vector<EdgeId> matched_edge(g.num_nodes(), kInvalidEdge);
  std::vector<bool> active(g.num_nodes(), true);
  Rng seeder(seed);

  HkApproxResult result;
  for (std::uint32_t ell = 1; ell <= ell_max; ell += 2) {
    ++result.phases;
    // A nearly-maximal set must be maximal on the *active* subgraph, so we
    // iterate within the phase until no active length-ℓ path remains
    // (greedy mode achieves it in one pass).
    for (;;) {
      auto paths = enumerate_augmenting_paths(g, mate, ell, active,
                                              params.max_paths);
      if (paths.empty()) break;
      if (params.algo == PathSetAlgo::kGreedyMaximal) {
        std::vector<bool> used(g.num_nodes(), false);
        for (const NodePath& path : paths) {
          const bool free = std::none_of(
              path.begin(), path.end(),
              [&](NodeId v) { return used[v]; });
          if (!free) continue;
          for (NodeId v : path) used[v] = true;
          flip_augmenting_path(g, mate, matched_edge, path);
        }
        result.conflict_rounds += 1;
        break;  // a full greedy pass is maximal
      }
      // Conflict structure as a hypergraph over the graph's nodes.
      std::vector<std::vector<NodeId>> hyperedges(paths.begin(),
                                                  paths.end());
      Hypergraph h(g.num_nodes(), std::move(hyperedges));
      HypergraphNmmParams nmm = params.nmm;
      const auto nm = run_hypergraph_nmm(h, seeder.next(), nmm);
      result.conflict_rounds += nm.iterations;
      for (HyperedgeId pe : nm.matching) {
        flip_augmenting_path(g, mate, matched_edge, paths[pe]);
      }
      for (NodeId v : nm.deactivated) {
        if (active[v]) {
          active[v] = false;
          result.deactivated.push_back(v);
        }
      }
      if (nm.drained && nm.matching.empty() && nm.deactivated.empty()) {
        break;  // nothing progressed; the set is maximal already
      }
      if (nm.drained) {
        // Maximal among active nodes; re-enumerate to confirm.
        auto remaining = enumerate_augmenting_paths(g, mate, ell, active,
                                                    params.max_paths);
        if (remaining.empty()) break;
      }
    }
  }
  result.matching = matching_from_matched_edge(g, matched_edge);
  return result;
}

}  // namespace distapx
