// 2-approximate maximum weight matching via MaxIS on the line graph
// (paper Sec. 2.4, Theorems 2.9 + 2.10).
//
// Algorithm 2 is a *local aggregation algorithm* (Thm 2.9): its
// neighborhood accesses are Boolean and/or plus a weight-reduction sum, all
// aggregate functions. LayeredMaxIsAggProgram is that reformulation; run on
// the line graph through the Theorem 2.8 mechanism it computes a
// Δ_L-approximate MaxIS of L(G). Since an independent set in a line-graph
// neighborhood has size at most 2, the same run is a 2-approximation of
// maximum weight matching on G — with O(log n) bits per physical edge per
// round, not the Θ(Δ) of naive simulation.
//
// Iteration structure (3 super-rounds each):
//   A  eligibility: no undecided line-neighbor in a higher weight layer
//   B  selection among eligible agents (Luby value, strict max wins);
//      winners become candidates and publish their reduction amount
//   C  reductions applied (SUM aggregate); dead agents turn `removed`
// Candidates join once every line-neighbor is removed or candidated
// earlier (MAX aggregate over active candidacy times) — the reverse-order
// stack unwind of Algorithm 1.
#pragma once

#include "matching/matching.hpp"
#include "maxis/maxis.hpp"
#include "sim/aggregation.hpp"

namespace distapx {

/// Algorithm 2 as a local aggregation program (agents = nodes or edges).
class LayeredMaxIsAggProgram final : public sim::AggProgram {
 public:
  /// `weights` indexed by agent id; `max_weight` is the global W;
  /// `num_agents` bounds ids for the Luby tie-break.
  LayeredMaxIsAggProgram(const std::vector<Weight>& weights,
                         Weight max_weight, std::uint32_t num_agents);

  [[nodiscard]] std::vector<int> state_bits() const override;
  [[nodiscard]] std::vector<sim::Aggregator> aggregators() const override;
  void init(sim::AggCtx& ctx) override;
  void round(sim::AggCtx& ctx) override;

 private:
  const std::vector<Weight>* weights_;
  int weight_bits_;
  int value_bits_;
  int id_bits_;
};

/// MaxIS via the aggregation form of Algorithm 2, agents = nodes of g
/// (reference for tests; equivalent guarantees to run_layered_maxis).
MaxIsResult run_layered_maxis_agg(const Graph& g, const NodeWeights& w,
                                  std::uint64_t seed);

/// Theorem 2.10: 2-approximate MWM, running the program on L(g) through
/// the congestion-free mechanism. Also usable with unit weights as a
/// 2-approximate maximum cardinality matching.
MatchingResult run_lr_matching(const Graph& g, const EdgeWeights& w,
                               std::uint64_t seed);

}  // namespace distapx
