// Edmonds' blossom algorithm [Edm65b]: exact maximum-cardinality matching
// in general graphs, O(V³). The exact baseline for the (1+ε) and (2+ε)
// cardinality-matching experiments on non-bipartite workloads.
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace distapx {

MatchingResult blossom_mcm(const Graph& g);

}  // namespace distapx
