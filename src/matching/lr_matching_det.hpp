// Deterministic 2-approximate maximum weight matching (the second half of
// Theorem 2.10): Algorithm 3 (coloring-based local ratio, Sec. 2.3)
// expressed as a local aggregation program and executed on the line graph
// through the Theorem 2.8 mechanism.
//
// The coloring black box is a proper coloring of L(G) — equivalently a
// proper edge coloring of G — computed with the deterministic Linial
// substrate on the explicit line graph; its round cost is reported
// separately, mirroring how Algorithm 3's O(Δ + log* n) bound charges the
// coloring to [BEK14].
//
// One super-round per color sweep: a locally-max-color undecided agent
// performs the weight reduction; reduced-to-zero agents are removed;
// candidates join in reverse candidacy order exactly as in the randomized
// variant.
#pragma once

#include "coloring/coloring.hpp"
#include "matching/matching.hpp"
#include "maxis/maxis.hpp"
#include "sim/aggregation.hpp"

namespace distapx {

/// Algorithm 3 as a local aggregation program over arbitrary agents.
class ColoringMaxIsAggProgram final : public sim::AggProgram {
 public:
  /// `weights` and `colors` are indexed by agent id; `colors` must be a
  /// proper coloring of the agent adjacency.
  ColoringMaxIsAggProgram(const std::vector<Weight>& weights,
                          const std::vector<Color>& colors,
                          Weight max_weight, Color num_colors);

  [[nodiscard]] std::vector<int> state_bits() const override;
  [[nodiscard]] std::vector<sim::Aggregator> aggregators() const override;
  void init(sim::AggCtx& ctx) override;
  void round(sim::AggCtx& ctx) override;

 private:
  const std::vector<Weight>* weights_;
  const std::vector<Color>* colors_;
  int weight_bits_;
  int color_bits_;
};

/// Deterministic Δ-approx MaxIS via the aggregation form of Algorithm 3,
/// agents = nodes of g (testing reference; pass a proper coloring).
MaxIsResult run_coloring_maxis_agg(const Graph& g, const NodeWeights& w,
                                   const std::vector<Color>& colors);

struct DetLrMatchingResult {
  std::vector<EdgeId> matching;
  sim::RunMetrics coloring_metrics;  ///< Linial on L(G) (the black box)
  sim::RunMetrics matching_metrics;  ///< the Algorithm 3 sweeps
  Color num_colors = 0;
};

/// Theorem 2.10 (deterministic): 2-approximate MWM on g.
DetLrMatchingResult run_lr_matching_deterministic(const Graph& g,
                                                  const EdgeWeights& w);

}  // namespace distapx
