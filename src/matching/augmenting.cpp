#include "matching/augmenting.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace distapx {
namespace {

struct PathSearch {
  const Graph& g;
  const std::vector<NodeId>& mate;
  const std::vector<bool>* active;
  std::uint32_t target_len;
  std::size_t max_paths;
  std::vector<NodePath>* out;          // nullptr: existence check only
  std::vector<bool> on_path;
  NodePath path;
  bool found_any = false;

  [[nodiscard]] bool node_ok(NodeId v) const {
    return (active == nullptr || (*active)[v]) && !on_path[v];
  }

  /// Extends from path.back(); `need_matched` says whether the next edge
  /// must be a matching edge. Returns true if the caller may stop early
  /// (existence check satisfied).
  bool extend(bool need_matched) {
    const NodeId v = path.back();
    const auto len = static_cast<std::uint32_t>(path.size() - 1);
    if (len == target_len) {
      if (mate[v] == kInvalidNode) {
        // Canonical orientation avoids emitting reversed duplicates.
        if (path.front() < path.back()) {
          found_any = true;
          if (out == nullptr) return true;
          DISTAPX_ENSURE_MSG(out->size() < max_paths,
                             "augmenting path enumeration exceeded "
                                 << max_paths << " paths");
          out->push_back(path);
        }
      }
      return false;
    }
    if (need_matched) {
      const NodeId m = mate[v];
      if (m == kInvalidNode || !node_ok(m)) return false;
      on_path[m] = true;
      path.push_back(m);
      const bool stop = extend(false);
      path.pop_back();
      on_path[m] = false;
      return stop;
    }
    for (const HalfEdge& he : g.neighbors(v)) {
      if (he.to == mate[v] || !node_ok(he.to)) continue;
      on_path[he.to] = true;
      path.push_back(he.to);
      const bool stop = extend(true);
      path.pop_back();
      on_path[he.to] = false;
      if (stop) return true;
    }
    return false;
  }
};

}  // namespace

std::vector<NodePath> enumerate_augmenting_paths(
    const Graph& g, const std::vector<NodeId>& mate, std::uint32_t length,
    const std::vector<bool>& active, std::size_t max_paths) {
  DISTAPX_ENSURE_MSG(length % 2 == 1, "augmenting paths have odd length");
  DISTAPX_ENSURE(mate.size() == g.num_nodes());
  std::vector<NodePath> paths;
  PathSearch search{g,      mate, active.empty() ? nullptr : &active,
                    length, max_paths, &paths,
                    std::vector<bool>(g.num_nodes(), false),
                    {},     false};
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (mate[s] != kInvalidNode) continue;
    if (search.active != nullptr && !(*search.active)[s]) continue;
    search.on_path[s] = true;
    search.path.assign(1, s);
    search.extend(false);
    search.on_path[s] = false;
  }
  return paths;
}

bool is_augmenting_path(const Graph& g, const std::vector<NodeId>& mate,
                        const NodePath& path) {
  if (path.size() < 2 || path.size() % 2 != 0) return false;
  if (mate[path.front()] != kInvalidNode ||
      mate[path.back()] != kInvalidNode) {
    return false;
  }
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId v : path) {
    if (v >= g.num_nodes() || seen[v]) return false;
    seen[v] = true;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const bool should_match = i % 2 == 1;
    if (g.find_edge(path[i], path[i + 1]) == kInvalidEdge) return false;
    const bool is_matched = mate[path[i]] == path[i + 1];
    if (is_matched != should_match) return false;
  }
  return true;
}

void flip_augmenting_path(const Graph& g, std::vector<NodeId>& mate,
                          std::vector<EdgeId>& matched_edge,
                          const NodePath& path) {
  DISTAPX_ENSURE_MSG(is_augmenting_path(g, mate, path),
                     "flip of a non-augmenting path");
  for (std::size_t i = 0; i + 1 < path.size(); i += 2) {
    const NodeId a = path[i], b = path[i + 1];
    const EdgeId e = g.find_edge(a, b);
    mate[a] = b;
    mate[b] = a;
    matched_edge[a] = e;
    matched_edge[b] = e;
  }
}

std::uint32_t shortest_augmenting_path_length(
    const Graph& g, const std::vector<NodeId>& mate, std::uint32_t limit,
    const std::vector<bool>& active) {
  for (std::uint32_t len = 1; len <= limit; len += 2) {
    PathSearch search{g,   mate, active.empty() ? nullptr : &active,
                      len, 0,    nullptr,
                      std::vector<bool>(g.num_nodes(), false),
                      {},  false};
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (mate[s] != kInvalidNode) continue;
      if (search.active != nullptr && !(*search.active)[s]) continue;
      search.on_path[s] = true;
      search.path.assign(1, s);
      if (search.extend(false)) return len;
      search.on_path[s] = false;
      if (search.found_any) return len;
    }
  }
  return 0;
}

std::vector<EdgeId> matching_from_matched_edge(
    const Graph& g, const std::vector<EdgeId>& matched_edge) {
  std::vector<EdgeId> matching;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const EdgeId e = matched_edge[v];
    if (e == kInvalidEdge) continue;
    const auto [a, b] = g.endpoints(e);
    if (v == std::min(a, b)) matching.push_back(e);
  }
  return matching;
}

}  // namespace distapx
