// Textual generator specs ("gnp:200:0.04", "grid:16:16", ...).
//
// The CLI's --gen flag, the batch-serving job files (service/job_spec.hpp)
// and the tests all describe workload graphs with the same one-line spec
// syntax: a family name followed by ':'-separated parameters. This module
// is the single parser behind all of them; it reports malformed specs by
// throwing SpecError (the CLI turns that into a usage message, the batch
// server into a job-file diagnostic).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distapx::gen {

/// Thrown on an unknown family, wrong parameter count, or a parameter
/// that does not parse / is out of range.
class SpecError final : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed (but not yet materialized) generator spec.
struct GenSpec {
  std::string family;
  std::vector<std::string> args;

  /// The raw "family:arg:arg" form the spec was parsed from.
  [[nodiscard]] std::string to_string() const;
};

/// Splits "family:a:b" into {family, {a, b}} and validates the family
/// name, the parameter count, and every parameter value — including a
/// coarse size cap (parameter products, clique squares and expected edge
/// counts stay under 2^28) so oversized graphs fail here rather than OOM
/// or overflow the 32-bit ids inside a generator.
GenSpec parse_spec(const std::string& spec);

/// Generates the graph a spec describes. Randomized families draw from
/// `rng`; deterministic families (grid, star, ...) ignore it.
///
/// Families:
///   gnp:N:P          Erdos-Renyi G(N, P)
///   regular:N:D      random D-regular (pairing model)
///   bounded:N:D      random graph with max degree <= D
///   bipartite:A:B:P  random bipartite, cross edges w.p. P
///   tree:N           uniform random labelled tree
///   powerlaw:N:BETA:AVG  Chung-Lu power law
///   path:N | cycle:N | star:N | complete:N
///   grid:R:C         R x C four-neighbour grid
///   hypercube:D      2^D nodes
///   cbipartite:A:B   complete bipartite K_{A,B}
///   btree:LEVELS     balanced binary tree
///   caterpillar:SPINE:LEGS
///   barbell:K:BRIDGE
///   lollipop:K:TAIL
Graph materialize(const GenSpec& spec, Rng& rng);

/// parse_spec + materialize in one call.
Graph from_spec(const std::string& spec, Rng& rng);

/// Canonical text form of a valid spec: the family name followed by each
/// parameter re-rendered numerically (integers without leading zeros,
/// doubles in shortest round-trip form), so any two spellings of the same
/// workload — "gnp:0100:0.50" and "gnp:100:.5" — canonicalize to the same
/// string. The result-cache fingerprint (service/result_cache.hpp) is
/// keyed on this form. Throws SpecError on an invalid spec.
std::string canonical_spec(const std::string& spec);

/// Every family name accepted by parse_spec, in usage-text order.
const std::vector<std::string>& spec_families();

/// One-line usage summary ("gnp:N:P regular:N:D ...") for CLI help text.
std::string spec_usage();

}  // namespace distapx::gen
