// Plain-text graph serialization.
//
// Format (whitespace-separated, '#' comments):
//   n m
//   u v [edge_weight]     x m lines
// Node weights are stored separately as "n" followed by n weights.
// Round-trippable; used by the CLI driver and for exchanging workloads.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace distapx::io {

struct LoadedGraph {
  Graph graph;
  /// Present iff every edge line carried a weight.
  std::optional<EdgeWeights> edge_weights;
};

void write_edge_list(std::ostream& os, const Graph& g,
                     const EdgeWeights* weights = nullptr);
LoadedGraph read_edge_list(std::istream& is);

void write_node_weights(std::ostream& os, const NodeWeights& w);
NodeWeights read_node_weights(std::istream& is);

/// File-path convenience wrappers (throw EnsureError on I/O failure).
void save_edge_list(const std::string& path, const Graph& g,
                    const EdgeWeights* weights = nullptr);
LoadedGraph load_edge_list(const std::string& path);

}  // namespace distapx::io
