#include "graph/bipartite.hpp"

#include <deque>

namespace distapx {

std::optional<Bipartition> try_bipartition(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::int8_t> color(n, -1);
  Bipartition parts;
  parts.side.assign(n, Side::kLeft);
  std::deque<NodeId> queue;
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != -1) continue;
    color[root] = 0;
    queue.push_back(root);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : g.neighbors(v)) {
        if (color[he.to] == -1) {
          color[he.to] = static_cast<std::int8_t>(1 - color[v]);
          queue.push_back(he.to);
        } else if (color[he.to] == color[v]) {
          return std::nullopt;  // odd cycle
        }
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    parts.side[v] = color[v] == 0 ? Side::kLeft : Side::kRight;
  }
  return parts;
}

Bipartition random_bipartition(NodeId n, Rng& rng) {
  Bipartition parts;
  parts.side.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    parts.side[v] = rng.bernoulli(0.5) ? Side::kLeft : Side::kRight;
  }
  return parts;
}

std::vector<bool> bichromatic_edge_mask(const Graph& g,
                                        const Bipartition& parts) {
  std::vector<bool> mask(g.num_edges(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    mask[e] = parts.side[u] != parts.side[v];
  }
  return mask;
}

}  // namespace distapx
