#include "graph/graph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace distapx {

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const auto [a, b] = endpoints_[e];
  DISTAPX_ASSERT(v == a || v == b);
  return v == a ? b : a;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  DISTAPX_ASSERT(u < n_ && v < n_);
  if (degree(u) > degree(v)) std::swap(u, v);
  for (const HalfEdge& he : neighbors(u)) {
    if (he.to == v) return he.edge;
  }
  return kInvalidEdge;
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : n_(num_nodes), adj_(num_nodes) {}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v) {
  DISTAPX_ENSURE_MSG(u < n_ && v < n_,
                     "edge (" << u << "," << v << ") out of range n=" << n_);
  DISTAPX_ENSURE_MSG(u != v, "self-loop at node " << u);
  if (u > v) std::swap(u, v);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.emplace_back(u, v);
  adj_[u].emplace_back(v, id);
  adj_[v].emplace_back(u, id);
  return id;
}

EdgeId GraphBuilder::add_edge_if_absent(NodeId u, NodeId v) {
  DISTAPX_ENSURE(u < n_ && v < n_);
  DISTAPX_ENSURE(u != v);
  const auto& shorter = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  for (const auto& [to, id] : shorter) {
    if (to == target) return id;
  }
  return add_edge(u, v);
}

Graph GraphBuilder::build() const {
  Graph g;
  g.n_ = n_;
  g.endpoints_ = edges_;
  g.offsets_.assign(n_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (NodeId v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.adj_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    g.adj_[cursor[u]++] = HalfEdge{v, e};
    g.adj_[cursor[v]++] = HalfEdge{u, e};
  }
  for (NodeId v = 0; v < n_; ++v) {
    auto* first = g.adj_.data() + g.offsets_[v];
    auto* last = g.adj_.data() + g.offsets_[v + 1];
    std::sort(first, last,
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    for (auto* it = first; it + 1 < last; ++it) {
      DISTAPX_ENSURE_MSG(it->to != (it + 1)->to,
                         "parallel edge between " << v << " and " << it->to);
    }
    g.max_deg_ = std::max<std::uint32_t>(
        g.max_deg_, static_cast<std::uint32_t>(last - first));
  }
  return g;
}

}  // namespace distapx
