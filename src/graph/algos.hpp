// Classic sequential graph algorithms used as utilities and verifiers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace distapx {

/// BFS hop distances from `source` (kUnreachable where disconnected).
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Connected component id per node (ids are dense, ordered by discovery).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Degeneracy ordering (repeatedly remove a minimum-degree node).
/// Returns the removal order; `out_degeneracy` (optional) receives the
/// degeneracy number.
std::vector<NodeId> degeneracy_order(const Graph& g,
                                     std::uint32_t* out_degeneracy = nullptr);

/// True iff `set` is an independent set of g (also checks no duplicates).
bool is_independent_set(const Graph& g, const std::vector<NodeId>& set);

/// True iff no node in g has all of: membership in `set` excluded AND no
/// neighbor in `set` (i.e. `set` is a *maximal* independent set).
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<NodeId>& set);

/// True iff `matching` (edge ids) has no two edges sharing an endpoint.
bool is_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// True iff `matching` is maximal: every edge of g has an endpoint matched.
bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// True iff every edge of g has at least one endpoint in `cover`.
bool is_vertex_cover(const Graph& g, const std::vector<NodeId>& cover);

/// Complement of a node set. If `set` is a *maximal* independent set the
/// result is a vertex cover (and for bipartite graphs a minimum one by
/// König when the IS is maximum).
std::vector<NodeId> complement_nodes(const Graph& g,
                                     const std::vector<NodeId>& set);

/// Sum of node weights over `set`.
Weight set_weight(const NodeWeights& w, const std::vector<NodeId>& set);

/// Sum of edge weights over `matching`.
Weight matching_weight(const EdgeWeights& w,
                       const std::vector<EdgeId>& matching);

/// Subgraph induced by `keep_nodes` (mask). Returns the new graph and the
/// old-id per new node.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original_id;       // new -> old
  std::vector<NodeId> new_id;            // old -> new (kInvalidNode if gone)
};
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<bool>& keep_nodes);

/// Subgraph of g keeping only edges where mask[e] is true (all nodes kept,
/// edge ids renumbered; mapping returned as new-edge -> old-edge).
struct EdgeSubgraph {
  Graph graph;
  std::vector<EdgeId> original_edge;  // new edge id -> old edge id
};
EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<bool>& edge_mask);

}  // namespace distapx
