#include "graph/genspec.hpp"

#include <charconv>
#include <sstream>

#include "graph/generators.hpp"
#include "support/parse.hpp"

namespace distapx::gen {

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw SpecError("bad generator spec \"" + spec + "\": " + why);
}

/// Strict unsigned parse: the whole token must be digits.
std::uint64_t parse_uint(const GenSpec& spec, std::size_t i,
                         std::uint64_t max_value) {
  const auto value = parse_uint_strict(spec.args[i], max_value);
  if (!value) {
    fail(spec.to_string(), "parameter " + std::to_string(i + 1) + " (\"" +
                               spec.args[i] +
                               "\") is not an integer in [0, " +
                               std::to_string(max_value) + "]");
  }
  return *value;
}

NodeId parse_node_count(const GenSpec& spec, std::size_t i) {
  // Cap well below the NodeId limit: adjacency offsets and per-run buffers
  // multiply n, and a fat-fingered spec should fail fast, not OOM.
  return static_cast<NodeId>(parse_uint(spec, i, 1u << 28));
}

double parse_double(const GenSpec& spec, std::size_t i) {
  const auto value = parse_double_strict(spec.args[i]);
  if (!value) {
    fail(spec.to_string(), "parameter " + std::to_string(i + 1) + " (\"" +
                               spec.args[i] + "\") is not a finite number");
  }
  return *value;
}

double parse_probability(const GenSpec& spec, std::size_t i) {
  const double p = parse_double(spec, i);
  if (p < 0.0 || p > 1.0) {
    fail(spec.to_string(), "probability parameter " + std::to_string(i + 1) +
                               " must be in [0, 1]");
  }
  return p;
}

struct Family {
  const char* name;
  const char* params;  // for usage text, e.g. "N:P"
  /// Per-parameter kind, one char each: 'n' node count, 'u' small uint
  /// (degree), 'h' tiny uint (dimensions/levels, <= 27), 'p' probability,
  /// 'd' double. parse_spec validates values against this signature, so a
  /// malformed spec fails at parse time, not at materialize time.
  const char* sig;
  Graph (*build)(const GenSpec&, Rng&);
};

const Family kFamilies[] = {
    {"gnp", "N:P", "np",
     [](const GenSpec& s, Rng& rng) {
       return gnp(parse_node_count(s, 0), parse_probability(s, 1), rng);
     }},
    {"regular", "N:D", "nu",
     [](const GenSpec& s, Rng& rng) {
       return random_regular(parse_node_count(s, 0),
                             static_cast<std::uint32_t>(parse_uint(s, 1, 1u << 20)),
                             rng);
     }},
    {"bounded", "N:D", "nu",
     [](const GenSpec& s, Rng& rng) {
       return random_bounded_degree(
           parse_node_count(s, 0),
           static_cast<std::uint32_t>(parse_uint(s, 1, 1u << 20)), rng);
     }},
    {"bipartite", "A:B:P", "nnp",
     [](const GenSpec& s, Rng& rng) {
       return bipartite_gnp(parse_node_count(s, 0), parse_node_count(s, 1),
                            parse_probability(s, 2), rng);
     }},
    {"tree", "N", "n",
     [](const GenSpec& s, Rng& rng) {
       return random_tree(parse_node_count(s, 0), rng);
     }},
    {"powerlaw", "N:BETA:AVGDEG", "ndd",
     [](const GenSpec& s, Rng& rng) {
       return power_law(parse_node_count(s, 0), parse_double(s, 1),
                        parse_double(s, 2), rng);
     }},
    {"path", "N", "n",
     [](const GenSpec& s, Rng&) { return path(parse_node_count(s, 0)); }},
    {"cycle", "N", "n",
     [](const GenSpec& s, Rng&) { return cycle(parse_node_count(s, 0)); }},
    {"star", "N", "n",
     [](const GenSpec& s, Rng&) { return star(parse_node_count(s, 0)); }},
    {"complete", "N", "n",
     [](const GenSpec& s, Rng&) { return complete(parse_node_count(s, 0)); }},
    {"grid", "R:C", "nn",
     [](const GenSpec& s, Rng&) {
       return grid(parse_node_count(s, 0), parse_node_count(s, 1));
     }},
    {"hypercube", "D", "h",
     [](const GenSpec& s, Rng&) {
       return hypercube(static_cast<std::uint32_t>(parse_uint(s, 0, 27)));
     }},
    {"cbipartite", "A:B", "nn",
     [](const GenSpec& s, Rng&) {
       return complete_bipartite(parse_node_count(s, 0),
                                 parse_node_count(s, 1));
     }},
    {"btree", "LEVELS", "h",
     [](const GenSpec& s, Rng&) {
       return balanced_binary_tree(
           static_cast<std::uint32_t>(parse_uint(s, 0, 27)));
     }},
    {"caterpillar", "SPINE:LEGS", "nn",
     [](const GenSpec& s, Rng&) {
       return caterpillar(parse_node_count(s, 0), parse_node_count(s, 1));
     }},
    {"barbell", "K:BRIDGE", "nn",
     [](const GenSpec& s, Rng&) {
       return barbell(parse_node_count(s, 0), parse_node_count(s, 1));
     }},
    {"lollipop", "K:TAIL", "nn",
     [](const GenSpec& s, Rng&) {
       return lollipop(parse_node_count(s, 0), parse_node_count(s, 1));
     }},
};

/// Parses every parameter against the family signature (throws SpecError).
/// Also bounds the *product* of the integer parameters: families like
/// grid:R:C or caterpillar:SPINE:LEGS multiply their parameters into node
/// counts, and complete:N squares N into an edge count — each factor being
/// in range does not keep the product from overflowing NodeId/EdgeId.
void validate_values(const GenSpec& spec, const Family& f) {
  constexpr std::uint64_t kSizeCap = 1u << 28;
  std::uint64_t int_product = 1;
  std::uint64_t first_int = 0;
  for (std::size_t i = 0; f.sig[i] != '\0'; ++i) {
    std::uint64_t v = 0;
    switch (f.sig[i]) {
      case 'n': v = parse_node_count(spec, i); break;
      case 'u': v = parse_uint(spec, i, 1u << 20); break;
      case 'h': v = parse_uint(spec, i, 27); break;
      case 'p': parse_probability(spec, i); continue;
      case 'd': parse_double(spec, i); continue;
    }
    int_product *= v > 1 ? v : 1;  // a 0/1 param must not mask the others
    if (i == 0) first_int = v;
  }
  // Clique families put ~K^2/2 edges on their *first* parameter (the
  // clique size); the bridge/tail length contributes only linearly.
  const bool clique = spec.family == "complete" ||
                      spec.family == "barbell" || spec.family == "lollipop";
  // Random families grow their edge count through a real-valued density
  // parameter that the integer product cannot see.
  double expected_edges = 0;
  if (spec.family == "gnp") {
    const double n = static_cast<double>(parse_node_count(spec, 0));
    expected_edges = n * (n - 1) / 2 * parse_probability(spec, 1);
  } else if (spec.family == "bipartite") {
    expected_edges = static_cast<double>(parse_node_count(spec, 0)) *
                     static_cast<double>(parse_node_count(spec, 1)) *
                     parse_probability(spec, 2);
  } else if (spec.family == "powerlaw") {
    expected_edges = static_cast<double>(parse_node_count(spec, 0)) *
                     parse_double(spec, 2) / 2;
  }
  if (int_product > kSizeCap ||
      (clique && first_int * first_int > 2 * kSizeCap) ||
      expected_edges > static_cast<double>(kSizeCap)) {
    fail(spec.to_string(),
         "the requested graph would exceed the supported size "
         "(node/edge ids are 32-bit; keep node counts, parameter products "
         "and expected edge counts under 2^28)");
  }
}

const Family& family_of(const GenSpec& spec) {
  for (const Family& f : kFamilies) {
    if (spec.family == f.name) return f;
  }
  fail(spec.to_string(), "unknown family \"" + spec.family + "\" (known: " +
                             spec_usage() + ")");
}

}  // namespace

std::string GenSpec::to_string() const {
  std::string s = family;
  for (const std::string& a : args) {
    s += ':';
    s += a;
  }
  return s;
}

GenSpec parse_spec(const std::string& spec) {
  GenSpec parsed;
  std::istringstream is(spec);
  std::string part;
  bool first = true;
  while (std::getline(is, part, ':')) {
    if (first) {
      parsed.family = part;
      first = false;
    } else {
      parsed.args.push_back(part);
    }
  }
  if (parsed.family.empty()) fail(spec, "empty family name");
  const Family& f = family_of(parsed);
  const std::size_t arity = std::string(f.sig).size();
  if (parsed.args.size() != arity) {
    fail(spec, std::string("family ") + f.name + " takes " +
                   std::to_string(arity) + " parameter(s) (" + f.name + ":" +
                   f.params + "), got " +
                   std::to_string(parsed.args.size()));
  }
  validate_values(parsed, f);
  return parsed;
}

Graph materialize(const GenSpec& spec, Rng& rng) {
  return family_of(spec).build(spec, rng);
}

Graph from_spec(const std::string& spec, Rng& rng) {
  return materialize(parse_spec(spec), rng);
}

std::string canonical_spec(const std::string& spec) {
  const GenSpec parsed = parse_spec(spec);  // validates family/arity/values
  const Family& f = family_of(parsed);
  std::string out = parsed.family;
  for (std::size_t i = 0; i < parsed.args.size(); ++i) {
    out += ':';
    switch (f.sig[i]) {
      case 'p':
      case 'd': {
        // Shortest round-trip rendering: two decimal spellings of the same
        // double ("0.50", ".5") canonicalize identically, and distinct
        // doubles never merge.
        char buf[32];
        const auto res =
            std::to_chars(buf, buf + sizeof(buf), parse_double(parsed, i));
        out.append(buf, res.ptr);
        break;
      }
      default:
        // Integer kinds ('n', 'u', 'h'): re-render the parsed value, which
        // strips leading zeros. validate_values already range-checked it.
        out += std::to_string(*parse_uint_strict(parsed.args[i], UINT64_MAX));
        break;
    }
  }
  return out;
}

const std::vector<std::string>& spec_families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Family& f : kFamilies) v.emplace_back(f.name);
    return v;
  }();
  return names;
}

std::string spec_usage() {
  std::string s;
  for (const Family& f : kFamilies) {
    if (!s.empty()) s += ' ';
    s += f.name;
    s += ':';
    s += f.params;
  }
  return s;
}

}  // namespace distapx::gen
