#include "graph/hypergraph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace distapx {

Hypergraph::Hypergraph(NodeId num_vertices,
                       std::vector<std::vector<NodeId>> hyperedges)
    : n_(num_vertices), edges_(std::move(hyperedges)), incidence_(n_) {
  for (HyperedgeId e = 0; e < edges_.size(); ++e) {
    auto& verts = edges_[e];
    std::sort(verts.begin(), verts.end());
    DISTAPX_ENSURE_MSG(
        std::adjacent_find(verts.begin(), verts.end()) == verts.end(),
        "hyperedge " << e << " has a repeated vertex");
    DISTAPX_ENSURE(!verts.empty());
    DISTAPX_ENSURE(verts.back() < n_);
    rank_ = std::max<std::uint32_t>(rank_,
                                    static_cast<std::uint32_t>(verts.size()));
    for (NodeId v : verts) incidence_[v].push_back(e);
  }
}

bool Hypergraph::intersects(HyperedgeId e1, HyperedgeId e2) const {
  const auto& a = edges_[e1];
  const auto& b = edges_[e2];
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool Hypergraph::is_matching(const std::vector<HyperedgeId>& matching) const {
  std::vector<bool> used(n_, false);
  for (HyperedgeId e : matching) {
    DISTAPX_ENSURE(e < num_hyperedges());
    for (NodeId v : edges_[e]) {
      if (used[v]) return false;
      used[v] = true;
    }
  }
  return true;
}

}  // namespace distapx
