// Bipartite structure: detection, views and random bipartitions.
//
// Appendix B of the paper runs its augmenting-path machinery on bipartite
// graphs and reduces general graphs to random bipartite subgraphs (random
// red/blue node coloring, keeping bi-chromatic edges; Thm B.12, Lemma B.14).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distapx {

/// Which side of a bipartition a node is on.
enum class Side : std::uint8_t { kLeft, kRight };

/// A two-coloring of (a subset of) a graph's nodes.
struct Bipartition {
  std::vector<Side> side;  // indexed by NodeId

  [[nodiscard]] bool is_left(NodeId v) const {
    return side[v] == Side::kLeft;
  }
};

/// Proper 2-coloring of a connected-or-not graph, or nullopt if an odd
/// cycle exists. BFS, O(n + m).
std::optional<Bipartition> try_bipartition(const Graph& g);

/// Uniformly random side per node (the paper's random red/blue coloring).
Bipartition random_bipartition(NodeId n, Rng& rng);

/// Edge subset of `g` that is bi-chromatic under `parts`, as a mask over
/// EdgeId. Used to restrict algorithms to the sampled bipartite subgraph.
std::vector<bool> bichromatic_edge_mask(const Graph& g,
                                        const Bipartition& parts);

}  // namespace distapx
