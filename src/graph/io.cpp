#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "support/assert.hpp"

namespace distapx::io {
namespace {

/// Strips comments and yields the next non-empty content line.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream probe(line);
    std::string token;
    if (probe >> token) return true;
  }
  return false;
}

}  // namespace

void write_edge_list(std::ostream& os, const Graph& g,
                     const EdgeWeights* weights) {
  if (weights != nullptr) {
    DISTAPX_ENSURE(weights->size() == g.num_edges());
  }
  os << "# distapx edge list: n m, then one edge per line\n";
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    os << u << ' ' << v;
    if (weights != nullptr) os << ' ' << (*weights)[e];
    os << '\n';
  }
}

LoadedGraph read_edge_list(std::istream& is) {
  std::string line;
  DISTAPX_ENSURE_MSG(next_content_line(is, line), "empty graph file");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  DISTAPX_ENSURE_MSG(static_cast<bool>(header >> n >> m),
                     "malformed header: expected 'n m'");
  DISTAPX_ENSURE(n <= kInvalidNode);
  GraphBuilder builder(static_cast<NodeId>(n));
  EdgeWeights weights;
  bool any_weight = false, all_weights = true;
  for (std::uint64_t i = 0; i < m; ++i) {
    DISTAPX_ENSURE_MSG(next_content_line(is, line),
                       "expected " << m << " edges, got " << i);
    std::istringstream es(line);
    std::uint64_t u = 0, v = 0;
    DISTAPX_ENSURE_MSG(static_cast<bool>(es >> u >> v),
                       "malformed edge line: '" << line << "'");
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    Weight w = 0;
    if (es >> w) {
      any_weight = true;
      weights.push_back(w);
    } else {
      all_weights = false;
      weights.push_back(1);
    }
  }
  LoadedGraph out;
  out.graph = builder.build();
  if (any_weight) {
    DISTAPX_ENSURE_MSG(all_weights,
                       "either all or no edges may carry weights");
    out.edge_weights = std::move(weights);
  }
  return out;
}

void write_node_weights(std::ostream& os, const NodeWeights& w) {
  os << "# distapx node weights\n" << w.size() << '\n';
  for (Weight x : w) os << x << '\n';
}

NodeWeights read_node_weights(std::istream& is) {
  std::string line;
  DISTAPX_ENSURE_MSG(next_content_line(is, line), "empty weights file");
  std::istringstream header(line);
  std::uint64_t n = 0;
  DISTAPX_ENSURE(static_cast<bool>(header >> n));
  NodeWeights w;
  w.reserve(n);
  while (w.size() < n && next_content_line(is, line)) {
    std::istringstream ws(line);
    Weight x = 0;
    while (w.size() < n && ws >> x) w.push_back(x);
  }
  DISTAPX_ENSURE_MSG(w.size() == n,
                     "expected " << n << " weights, got " << w.size());
  return w;
}

void save_edge_list(const std::string& path, const Graph& g,
                    const EdgeWeights* weights) {
  std::ofstream os(path);
  DISTAPX_ENSURE_MSG(os.good(), "cannot open " << path << " for writing");
  write_edge_list(os, g, weights);
  DISTAPX_ENSURE_MSG(os.good(), "write to " << path << " failed");
}

LoadedGraph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  DISTAPX_ENSURE_MSG(is.good(), "cannot open " << path);
  return read_edge_list(is);
}

}  // namespace distapx::io
