// Graph and weight generators for tests, examples and benchmark workloads.
//
// These are the workload families used to regenerate the paper's Table 1:
// structured graphs with known optima (paths, cycles, stars, grids,
// complete (bi)partite), random families with controllable Δ (G(n,p),
// random d-regular, bounded-degree, power-law), and bipartite families for
// the Appendix B algorithms.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distapx::gen {

/// Path v0 - v1 - ... - v_{n-1}.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes.
Graph cycle(NodeId n);

/// Star: node 0 is the center connected to 1..n-1.
Graph star(NodeId n);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b}: left nodes [0,a), right nodes [a, a+b).
Graph complete_bipartite(NodeId a, NodeId b);

/// rows x cols grid (4-neighbour).
Graph grid(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d nodes).
Graph hypercube(std::uint32_t dims);

/// Erdos-Renyi G(n, p).
Graph gnp(NodeId n, double p, Rng& rng);

/// Random bipartite graph: sides of size a and b, each cross pair present
/// with probability p. Left nodes are [0, a), right nodes [a, a+b).
Graph bipartite_gnp(NodeId a, NodeId b, double p, Rng& rng);

/// Random d-regular graph via the pairing model with retry; requires
/// n*d even, d < n. Falls back to "nearly regular" (some degree-(d-1)
/// nodes) if a perfect pairing is not found after a bounded number of
/// retries — max_degree() is still <= d.
Graph random_regular(NodeId n, std::uint32_t d, Rng& rng);

/// Random graph with max degree <= d: repeatedly samples edges, skipping
/// those that would exceed the cap. `edge_factor` scales the attempted
/// number of edges (n*d/2 * edge_factor attempts).
Graph random_bounded_degree(NodeId n, std::uint32_t d, Rng& rng,
                            double edge_factor = 2.0);

/// Uniform random labelled tree (Prufer sequence decode).
Graph random_tree(NodeId n, Rng& rng);

/// Chung-Lu style power-law graph: node k gets target weight
/// proportional to (k+1)^{-1/(beta-1)}; edges sampled independently.
Graph power_law(NodeId n, double beta, double avg_degree, Rng& rng);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Known exact MaxIS; exercises weight-layer behaviour.
Graph caterpillar(NodeId spine, NodeId legs);

/// Barbell: two K_k cliques joined by a path of `bridge` nodes. Mixes a
/// dense core (slow MIS region) with a sparse bridge.
Graph barbell(NodeId k, NodeId bridge);

/// Complete multipartite graph with the given part sizes. MaxIS = the
/// largest part (known optimum at any scale).
Graph complete_multipartite(const std::vector<NodeId>& parts);

/// Balanced binary tree with `levels` levels (2^levels - 1 nodes).
Graph balanced_binary_tree(std::uint32_t levels);

/// Lollipop: K_k clique with a pendant path of `tail` nodes.
Graph lollipop(NodeId k, NodeId tail);

// ---- weight generators ---------------------------------------------------

/// Uniform integer node weights in [1, max_w].
NodeWeights uniform_node_weights(NodeId n, Weight max_w, Rng& rng);

/// Exponentially distributed (rounded, clamped to [1, max_w]) node weights;
/// exercises many weight layers of Algorithm 2.
NodeWeights exponential_node_weights(NodeId n, Weight max_w, Rng& rng);

/// Log-uniform node weights in [1, max_w]: every weight layer
/// L_i = (2^{i-1}, 2^i] is (roughly) equally populated — the adversarial
/// distribution for Algorithm 2's O(MIS·log W) bound.
NodeWeights log_uniform_node_weights(NodeId n, Weight max_w, Rng& rng);

/// All-ones node weights (the unweighted case).
NodeWeights unit_node_weights(NodeId n);

/// Uniform integer edge weights in [1, max_w].
EdgeWeights uniform_edge_weights(EdgeId m, Weight max_w, Rng& rng);

/// All-ones edge weights.
EdgeWeights unit_edge_weights(EdgeId m);

}  // namespace distapx::gen
