#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace distapx::gen {

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(NodeId n) {
  DISTAPX_ENSURE_MSG(n >= 3, "cycle needs at least 3 nodes");
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph star(NodeId n) {
  DISTAPX_ENSURE(n >= 1);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph complete_bipartite(NodeId a, NodeId b) {
  GraphBuilder builder(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  return builder.build();
}

Graph grid(NodeId rows, NodeId cols) {
  DISTAPX_ENSURE(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph hypercube(std::uint32_t dims) {
  DISTAPX_ENSURE(dims < 31);
  const NodeId n = NodeId{1} << dims;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t d = 0; d < dims; ++d) {
      const NodeId u = v ^ (NodeId{1} << d);
      if (u > v) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph gnp(NodeId n, double p, Rng& rng) {
  DISTAPX_ENSURE(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return b.build();
  if (p >= 1.0) return complete(n);
  // Geometric skipping over the upper-triangular pair sequence: O(m).
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;  // linear index into pairs (u,v), u<v
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for (;;) {
    // Geometric(p) gap: floor(ln(1-U) / ln(1-p)).
    const double r = rng.next_double();
    const auto skip =
        static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
    idx += skip;
    if (idx >= total) break;
    // Invert linear index to (u, v).
    // u is the largest value with u*(2n-u-1)/2 <= idx.
    auto row_start = [&](std::uint64_t u) {
      return u * (2 * static_cast<std::uint64_t>(n) - u - 1) / 2;
    };
    std::uint64_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi + 1) / 2;
      if (row_start(mid) <= idx) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const auto u = static_cast<NodeId>(lo);
    const auto v = static_cast<NodeId>(u + 1 + (idx - row_start(lo)));
    b.add_edge(u, v);
    ++idx;
  }
  return b.build();
}

Graph bipartite_gnp(NodeId a, NodeId b, double p, Rng& rng) {
  DISTAPX_ENSURE(p >= 0.0 && p <= 1.0);
  GraphBuilder builder(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v)
      if (rng.bernoulli(p)) builder.add_edge(u, a + v);
  return builder.build();
}

Graph random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  DISTAPX_ENSURE_MSG((static_cast<std::uint64_t>(n) * d) % 2 == 0,
                     "n*d must be even");
  DISTAPX_ENSURE(d < n);
  constexpr int kMaxRetries = 64;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    // Pairing (configuration) model: d stubs per node, random perfect
    // matching of stubs; reject self-loops / parallel edges.
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v)
      for (std::uint32_t k = 0; k < d; ++k) stubs.push_back(v);
    rng.shuffle(stubs);
    GraphBuilder b(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      const EdgeId before = b.num_edges();
      b.add_edge_if_absent(u, v);
      if (b.num_edges() == before) {
        ok = false;  // duplicate pairing
        break;
      }
    }
    if (ok) return b.build();
  }
  // Fallback: greedy near-regular construction (max degree still <= d).
  GraphBuilder b(n);
  std::vector<std::uint32_t> deg(n, 0);
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  for (std::uint32_t pass = 0; pass < d; ++pass) {
    rng.shuffle(order);
    for (NodeId i = 0; i < n; ++i) {
      const NodeId u = order[i];
      if (deg[u] >= d) continue;
      for (NodeId j = i + 1; j < n; ++j) {
        const NodeId v = order[j];
        if (v == u || deg[v] >= d) continue;
        const EdgeId before = b.num_edges();
        b.add_edge_if_absent(u, v);
        if (b.num_edges() == before) continue;  // already adjacent
        ++deg[u];
        ++deg[v];
        break;
      }
    }
  }
  return b.build();
}

Graph random_bounded_degree(NodeId n, std::uint32_t d, Rng& rng,
                            double edge_factor) {
  DISTAPX_ENSURE(n >= 2);
  GraphBuilder b(n);
  std::vector<std::uint32_t> deg(n, 0);
  const auto attempts = static_cast<std::uint64_t>(
      edge_factor * static_cast<double>(n) * d / 2.0);
  for (std::uint64_t i = 0; i < attempts; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || deg[u] >= d || deg[v] >= d) continue;
    const EdgeId before = b.num_edges();
    b.add_edge_if_absent(u, v);
    if (b.num_edges() == before) continue;  // already adjacent
    ++deg[u];
    ++deg[v];
  }
  return b.build();
}

Graph random_tree(NodeId n, Rng& rng) {
  DISTAPX_ENSURE(n >= 1);
  GraphBuilder b(n);
  if (n == 1) return b.build();
  if (n == 2) {
    b.add_edge(0, 1);
    return b.build();
  }
  // Prufer decode.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.next_below(n));
  std::vector<std::uint32_t> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  // Min-heap free list via sorted iteration.
  std::vector<bool> used(n, false);
  NodeId ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    b.add_edge(leaf, x);
    if (--deg[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (ptr < n && deg[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return b.build();
}

Graph power_law(NodeId n, double beta, double avg_degree, Rng& rng) {
  DISTAPX_ENSURE(beta > 1.0);
  std::vector<double> w(n);
  double sum = 0;
  for (NodeId k = 0; k < n; ++k) {
    w[k] = std::pow(static_cast<double>(k + 1), -1.0 / (beta - 1.0));
    sum += w[k];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (auto& x : w) x *= scale;
  const double total = avg_degree * static_cast<double>(n);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = std::min(1.0, w[u] * w[v] / total);
      if (p > 0 && rng.bernoulli(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  DISTAPX_ENSURE(spine >= 1);
  GraphBuilder b(spine + spine * legs);
  for (NodeId s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s)
    for (NodeId l = 0; l < legs; ++l) b.add_edge(s, spine + s * legs + l);
  return b.build();
}

Graph barbell(NodeId k, NodeId bridge) {
  DISTAPX_ENSURE(k >= 2);
  const NodeId n = 2 * k + bridge;
  GraphBuilder b(n);
  auto clique = [&](NodeId base) {
    for (NodeId u = 0; u < k; ++u)
      for (NodeId v = u + 1; v < k; ++v) b.add_edge(base + u, base + v);
  };
  clique(0);
  clique(k + bridge);
  // Path through the bridge connecting node k-1 of the first clique to
  // node 0 of the second.
  NodeId prev = k - 1;
  for (NodeId i = 0; i < bridge; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  b.add_edge(prev, k + bridge);
  return b.build();
}

Graph complete_multipartite(const std::vector<NodeId>& parts) {
  NodeId n = 0;
  for (NodeId p : parts) n += p;
  GraphBuilder b(n);
  NodeId base_u = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    NodeId base_v = base_u + parts[i];
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      for (NodeId u = 0; u < parts[i]; ++u)
        for (NodeId v = 0; v < parts[j]; ++v)
          b.add_edge(base_u + u, base_v + v);
      base_v += parts[j];
    }
    base_u += parts[i];
  }
  return b.build();
}

Graph balanced_binary_tree(std::uint32_t levels) {
  DISTAPX_ENSURE(levels >= 1 && levels < 31);
  const NodeId n = (NodeId{1} << levels) - 1;
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return b.build();
}

Graph lollipop(NodeId k, NodeId tail) {
  DISTAPX_ENSURE(k >= 2);
  GraphBuilder b(k + tail);
  for (NodeId u = 0; u < k; ++u)
    for (NodeId v = u + 1; v < k; ++v) b.add_edge(u, v);
  NodeId prev = k - 1;
  for (NodeId i = 0; i < tail; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  return b.build();
}

NodeWeights uniform_node_weights(NodeId n, Weight max_w, Rng& rng) {
  DISTAPX_ENSURE(max_w >= 1);
  NodeWeights w(n);
  for (auto& x : w) x = rng.next_in(1, max_w);
  return w;
}

NodeWeights exponential_node_weights(NodeId n, Weight max_w, Rng& rng) {
  DISTAPX_ENSURE(max_w >= 1);
  NodeWeights w(n);
  const double lambda =
      std::log(static_cast<double>(max_w)) / 3.0;  // ~e^3 dynamic range tail
  for (auto& x : w) {
    const double e = -std::log1p(-rng.next_double());
    x = std::clamp<Weight>(static_cast<Weight>(std::exp(e * lambda)), 1,
                           max_w);
  }
  return w;
}

NodeWeights log_uniform_node_weights(NodeId n, Weight max_w, Rng& rng) {
  DISTAPX_ENSURE(max_w >= 1);
  const double log_max = std::log2(static_cast<double>(max_w));
  NodeWeights w(n);
  for (auto& x : w) {
    x = std::clamp<Weight>(
        static_cast<Weight>(std::exp2(rng.next_double() * log_max)), 1,
        max_w);
  }
  return w;
}

NodeWeights unit_node_weights(NodeId n) { return NodeWeights(n, 1); }

EdgeWeights uniform_edge_weights(EdgeId m, Weight max_w, Rng& rng) {
  DISTAPX_ENSURE(max_w >= 1);
  EdgeWeights w(m);
  for (auto& x : w) x = rng.next_in(1, max_w);
  return w;
}

EdgeWeights unit_edge_weights(EdgeId m) { return EdgeWeights(m, 1); }

}  // namespace distapx::gen
