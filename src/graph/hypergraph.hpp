// Low-rank hypergraphs.
//
// Appendix B.2 reformulates "maximal set of vertex-disjoint augmenting
// paths" as a nearly-maximal *matching in a hypergraph of rank d=O(1/ε)*:
// each augmenting path becomes a hyperedge over its nodes, and a hyperedge
// matching (no two sharing a vertex) is a set of disjoint paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace distapx {

using HyperedgeId = std::uint32_t;

/// Immutable hypergraph over dense vertex ids with incidence lists.
class Hypergraph {
 public:
  Hypergraph(NodeId num_vertices,
             std::vector<std::vector<NodeId>> hyperedges);

  [[nodiscard]] NodeId num_vertices() const noexcept { return n_; }
  [[nodiscard]] HyperedgeId num_hyperedges() const noexcept {
    return static_cast<HyperedgeId>(edges_.size());
  }

  /// Vertices of hyperedge e.
  [[nodiscard]] std::span<const NodeId> vertices(HyperedgeId e) const {
    return edges_[e];
  }

  /// Hyperedges incident to vertex v.
  [[nodiscard]] std::span<const HyperedgeId> incident(NodeId v) const {
    return incidence_[v];
  }

  /// Max hyperedge size (the rank).
  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }

  /// True if e1 and e2 share at least one vertex.
  [[nodiscard]] bool intersects(HyperedgeId e1, HyperedgeId e2) const;

  /// True if `matching` contains no two vertex-sharing hyperedges.
  [[nodiscard]] bool is_matching(
      const std::vector<HyperedgeId>& matching) const;

 private:
  NodeId n_;
  std::uint32_t rank_ = 0;
  std::vector<std::vector<NodeId>> edges_;
  std::vector<std::vector<HyperedgeId>> incidence_;
};

}  // namespace distapx
