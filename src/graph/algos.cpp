#include "graph/algos.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "support/assert.hpp"

namespace distapx {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  DISTAPX_ENSURE(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const HalfEdge& he : g.neighbors(v)) {
      if (dist[he.to] == kUnreachable) {
        dist[he.to] = dist[v] + 1;
        queue.push_back(he.to);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.num_nodes(), kUnreachable);
  std::uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (comp[root] != kUnreachable) continue;
    comp[root] = next;
    queue.push_back(root);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : g.neighbors(v)) {
        if (comp[he.to] == kUnreachable) {
          comp[he.to] = next;
          queue.push_back(he.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::vector<NodeId> degeneracy_order(const Graph& g,
                                     std::uint32_t* out_degeneracy) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue by current degree.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::vector<NodeId> order;
  order.reserve(n);
  std::uint32_t degeneracy = 0;
  std::uint32_t cur = 0;
  while (order.size() < n) {
    while (cur <= max_deg && buckets[cur].empty()) ++cur;
    // Degrees only decrease, but removals may leave stale entries; also a
    // neighbor removal can drop a bucket below `cur`.
    if (cur > 0 && !buckets[cur - 1].empty()) --cur;
    DISTAPX_ASSERT(cur <= max_deg);
    const NodeId v = buckets[cur].back();
    buckets[cur].pop_back();
    if (removed[v] || deg[v] != cur) continue;  // stale entry
    removed[v] = true;
    order.push_back(v);
    degeneracy = std::max(degeneracy, cur);
    for (const HalfEdge& he : g.neighbors(v)) {
      if (!removed[he.to]) {
        buckets[--deg[he.to]].push_back(he.to);
      }
    }
  }
  if (out_degeneracy != nullptr) *out_degeneracy = degeneracy;
  return order;
}

bool is_independent_set(const Graph& g, const std::vector<NodeId>& set) {
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId v : set) {
    if (v >= g.num_nodes() || in[v]) return false;
    in[v] = true;
  }
  for (NodeId v : set) {
    for (const HalfEdge& he : g.neighbors(v)) {
      if (in[he.to]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<NodeId>& set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId v : set) in[v] = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) continue;
    bool covered = false;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (in[he.to]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool is_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  std::vector<bool> used(g.num_nodes(), false);
  std::vector<bool> seen(g.num_edges(), false);
  for (EdgeId e : matching) {
    if (e >= g.num_edges() || seen[e]) return false;
    seen[e] = true;
    const auto [u, v] = g.endpoints(e);
    if (used[u] || used[v]) return false;
    used[u] = used[v] = true;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  if (!is_matching(g, matching)) return false;
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e : matching) {
    const auto [u, v] = g.endpoints(e);
    used[u] = used[v] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (!used[u] && !used[v]) return false;
  }
  return true;
}

bool is_vertex_cover(const Graph& g, const std::vector<NodeId>& cover) {
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId v : cover) {
    if (v >= g.num_nodes()) return false;
    in[v] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (!in[u] && !in[v]) return false;
  }
  return true;
}

std::vector<NodeId> complement_nodes(const Graph& g,
                                     const std::vector<NodeId>& set) {
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId v : set) {
    DISTAPX_ENSURE(v < g.num_nodes());
    in[v] = true;
  }
  std::vector<NodeId> out;
  out.reserve(g.num_nodes() - set.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!in[v]) out.push_back(v);
  }
  return out;
}

Weight set_weight(const NodeWeights& w, const std::vector<NodeId>& set) {
  Weight total = 0;
  for (NodeId v : set) {
    DISTAPX_ENSURE(v < w.size());
    total += w[v];
  }
  return total;
}

Weight matching_weight(const EdgeWeights& w,
                       const std::vector<EdgeId>& matching) {
  Weight total = 0;
  for (EdgeId e : matching) {
    DISTAPX_ENSURE(e < w.size());
    total += w[e];
  }
  return total;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<bool>& keep_nodes) {
  DISTAPX_ENSURE(keep_nodes.size() == g.num_nodes());
  InducedSubgraph out;
  out.new_id.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (keep_nodes[v]) {
      out.new_id[v] = static_cast<NodeId>(out.original_id.size());
      out.original_id.push_back(v);
    }
  }
  GraphBuilder b(static_cast<NodeId>(out.original_id.size()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (keep_nodes[u] && keep_nodes[v]) {
      b.add_edge(out.new_id[u], out.new_id[v]);
    }
  }
  out.graph = b.build();
  return out;
}

EdgeSubgraph edge_subgraph(const Graph& g, const std::vector<bool>& edge_mask) {
  DISTAPX_ENSURE(edge_mask.size() == g.num_edges());
  EdgeSubgraph out;
  GraphBuilder b(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_mask[e]) {
      const auto [u, v] = g.endpoints(e);
      b.add_edge(u, v);
      out.original_edge.push_back(e);
    }
  }
  out.graph = b.build();
  return out;
}

}  // namespace distapx
