// Immutable simple undirected graph in CSR form.
//
// This is the substrate every algorithm in distapx runs on. Nodes are dense
// ids [0, n); each undirected edge has a single EdgeId shared by both
// endpoints (the line-graph construction and matching algorithms key off
// EdgeId). Node weights for MaxIS and edge weights for matching are carried
// separately (see NodeWeights / EdgeWeights aliases) so one topology can be
// reused across weighted workloads.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace distapx {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Integer weights. The paper assumes W <= poly(n) so a weight fits in one
/// O(log n)-bit message; we use 64-bit and account the actual bits sent.
using Weight = std::int64_t;
using NodeWeights = std::vector<Weight>;
using EdgeWeights = std::vector<Weight>;

/// One directed half of an undirected edge as seen from its owner's
/// adjacency list.
struct HalfEdge {
  NodeId to;
  EdgeId edge;
};

/// Immutable simple undirected graph (no self-loops, no parallel edges).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(endpoints_.size());
  }

  [[nodiscard]] std::span<const HalfEdge> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Maximum degree Δ (0 for the empty graph).
  [[nodiscard]] std::uint32_t max_degree() const noexcept { return max_deg_; }

  /// Endpoints of edge e as (u, v) with u < v.
  [[nodiscard]] std::pair<NodeId, NodeId> endpoints(EdgeId e) const {
    return endpoints_[e];
  }

  /// The endpoint of e that is not v. Requires v to be an endpoint of e.
  [[nodiscard]] NodeId other_endpoint(EdgeId e, NodeId v) const;

  /// Edge id connecting u and v, or kInvalidEdge. O(min degree).
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

 private:
  friend class GraphBuilder;

  NodeId n_ = 0;
  std::uint32_t max_deg_ = 0;
  std::vector<std::uint32_t> offsets_;  // size n_+1
  std::vector<HalfEdge> adj_;           // size 2m, sorted by `to` per node
  std::vector<std::pair<NodeId, NodeId>> endpoints_;  // size m, u < v
};

/// Incremental builder; build() validates simplicity and produces the CSR.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Adds undirected edge {u, v}. Self-loops and duplicates are rejected
  /// with EnsureError at build() time (duplicates also at add time when the
  /// edge already exists in insertion order — detected cheaply at build).
  EdgeId add_edge(NodeId u, NodeId v);

  /// Adds the edge unless it already exists; returns its id either way.
  /// O(current degree) lookup; intended for generators.
  EdgeId add_edge_if_absent(NodeId u, NodeId v);

  [[nodiscard]] Graph build() const;

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // normalized u < v
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj_;  // for lookups
};

}  // namespace distapx
