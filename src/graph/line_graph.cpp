#include "graph/line_graph.hpp"

#include "support/assert.hpp"

namespace distapx {

LineGraph::LineGraph(const Graph& base) : base_(&base) {
  GraphBuilder b(base.num_edges());
  // Two base edges are adjacent in L(G) iff they share an endpoint: for each
  // base node, connect all pairs of incident edges.
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    const auto inc = base.neighbors(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      for (std::size_t j = i + 1; j < inc.size(); ++j) {
        b.add_edge_if_absent(static_cast<NodeId>(inc[i].edge),
                             static_cast<NodeId>(inc[j].edge));
      }
    }
  }
  line_ = b.build();
}

std::vector<EdgeId> LineGraph::to_matching(
    const std::vector<NodeId>& line_is) const {
  std::vector<EdgeId> matching;
  matching.reserve(line_is.size());
  for (NodeId ln : line_is) {
    DISTAPX_ENSURE(ln < line_.num_nodes());
    matching.push_back(base_edge(ln));
  }
  return matching;
}

}  // namespace distapx
