// Line graph construction.
//
// The paper's matching algorithms run MaxIS algorithms on L(G): each node of
// L(G) is an edge of G, and two line-nodes are adjacent iff the edges share
// an endpoint (Sec. 2.4). LineGraph keeps the edge<->line-node mapping so
// results can be translated back to matchings on G.
#pragma once

#include "graph/graph.hpp"

namespace distapx {

/// Explicit line graph of a base graph.
///
/// Line-node i corresponds to base-graph edge with EdgeId i, so the mapping
/// is the identity on indices; this class exists to make that contract
/// explicit and to carry the base graph alongside.
class LineGraph {
 public:
  explicit LineGraph(const Graph& base);

  [[nodiscard]] const Graph& graph() const noexcept { return line_; }
  [[nodiscard]] const Graph& base() const noexcept { return *base_; }

  /// Base edge represented by a line node.
  [[nodiscard]] EdgeId base_edge(NodeId line_node) const {
    return static_cast<EdgeId>(line_node);
  }

  /// Line node representing a base edge.
  [[nodiscard]] NodeId line_node(EdgeId base_edge) const {
    return static_cast<NodeId>(base_edge);
  }

  /// Translates an independent set of line nodes into the matching (edge
  /// set) of the base graph it represents.
  [[nodiscard]] std::vector<EdgeId> to_matching(
      const std::vector<NodeId>& line_is) const;

 private:
  const Graph* base_;
  Graph line_;
};

}  // namespace distapx
