// Round-synchronous message-passing network (the CONGEST/LOCAL model).
//
// Execution model, following [Pel00]:
//  * All nodes run the same NodeProgram, parameterized by their id and any
//    local input the program object carries (e.g. the node's weight).
//  * init() runs before round 1 and may send. In round r >= 1 every
//    non-halted node receives the messages sent to it in round r-1 (or by
//    init for r = 1), computes, and may send one message per incident edge.
//  * A node halts by calling Ctx::halt(output); halted nodes neither
//    compute nor send, and messages addressed to them are dropped (their
//    program announced whatever neighbors need before halting, as the
//    paper's algorithms do with removed()/addedToIS()).
//  * Under BandwidthPolicy::congest(c) the engine asserts that no directed
//    edge carries more than c * ceil(log2 n) declared bits in any round.
//
// Runs are deterministic: per-node RNG streams derive from RunOptions::seed
// and the node id, and nodes are stepped in id order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/message.hpp"
#include "support/random.hpp"

namespace distapx::sim {

/// LOCAL (unbounded) or CONGEST (c * ceil(log2 n) bits/edge/round).
struct BandwidthPolicy {
  bool bounded = false;
  std::uint32_t multiplier = 8;  // the constant inside O(log n)
  bool enforce = true;           // throw on violation (else just record)

  static BandwidthPolicy local() { return {false, 0, false}; }
  static BandwidthPolicy congest(std::uint32_t c = 8, bool enforce = true) {
    return {true, c, enforce};
  }

  /// Cap in bits for an n-node network (0 = unbounded).
  [[nodiscard]] std::uint32_t cap_bits(NodeId n) const;
};

/// Per-round progress sample delivered to RunOptions::observer.
struct RoundSample {
  std::uint32_t round = 0;
  std::uint64_t messages = 0;   ///< messages sent this round
  std::uint64_t bits = 0;       ///< bits sent this round
  NodeId nodes_halted = 0;      ///< cumulative halted nodes
};

struct RunOptions {
  BandwidthPolicy policy = BandwidthPolicy::congest();
  std::uint64_t seed = 1;
  std::uint32_t max_rounds = 1u << 20;
  /// Optional per-round observer (progress curves, debugging). Called
  /// after every round including the init sweep (round 0).
  std::function<void(const RoundSample&)> observer;
};

struct RunMetrics {
  std::uint32_t rounds = 0;          ///< number of round() sweeps executed
  std::uint64_t messages = 0;        ///< total messages delivered
  std::uint64_t total_bits = 0;      ///< total declared wire bits
  std::uint32_t max_edge_bits = 0;   ///< max bits on one directed edge in one round
  std::uint32_t bandwidth_cap = 0;   ///< cap that applied (0 = none)
  bool completed = false;            ///< all nodes halted before max_rounds
};

/// Accumulates `b` into `a` as a sequential composition: rounds, messages
/// and bits add; the congestion high-water mark is the max.
inline RunMetrics& accumulate(RunMetrics& a, const RunMetrics& b) {
  a.rounds += b.rounds;
  a.messages += b.messages;
  a.total_bits += b.total_bits;
  a.max_edge_bits = a.max_edge_bits > b.max_edge_bits ? a.max_edge_bits
                                                      : b.max_edge_bits;
  a.completed = a.completed && b.completed;
  return a;
}

struct RunResult {
  RunMetrics metrics;
  std::vector<std::int64_t> outputs;  ///< per node; meaningful iff halted
  std::vector<bool> halted;           ///< per node
};

class Network;

/// Per-node view of the network during one round.
class Ctx {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] NodeId num_nodes() const noexcept;
  [[nodiscard]] std::uint32_t degree() const noexcept;
  /// Global Δ; the paper's algorithms assume it is known.
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  /// Current round (0 during init()).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  /// Id of the neighbor across `port` (CONGEST nodes learn neighbor ids in
  /// one round; we provide them from the start).
  [[nodiscard]] NodeId neighbor(std::uint32_t port) const;
  /// Port on which `v` is a neighbor, or UINT32_MAX.
  [[nodiscard]] std::uint32_t port_of(NodeId v) const;
  /// EdgeId of the edge behind `port`.
  [[nodiscard]] EdgeId edge_of(std::uint32_t port) const;

  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Messages delivered this round.
  [[nodiscard]] std::span<const Delivery> inbox() const noexcept;

  /// Queues a message on `port` for delivery next round.
  void send(std::uint32_t port, Message m);
  /// Queues a copy on every port.
  void broadcast(const Message& m);

  /// Marks this node finished with the given output. Takes effect at the
  /// end of the current callback; messages queued this round are still
  /// delivered.
  void halt(std::int64_t output);

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = 0;
  std::uint32_t round_ = 0;
  Rng* rng_ = nullptr;
};

/// A node's state machine. One instance exists per node; local inputs
/// (weights, parameters) are typically captured by the concrete program.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  /// Round-0 setup; may send messages (delivered in round 1).
  virtual void init(Ctx& ctx) { (void)ctx; }
  /// One synchronous round.
  virtual void round(Ctx& ctx) = 0;
};

using ProgramFactory =
    std::function<std::unique_ptr<NodeProgram>(NodeId node)>;

/// The synchronous engine.
///
/// Message transport uses flat, preallocated buffers that persist across
/// rounds AND across run() calls: sends append to one staged vector, and a
/// stable counting sort by destination rebuilds the per-node inbox spans
/// each round. A Network instance is therefore cheap to reuse for many
/// seeded runs on the same graph (see run_many.hpp), with no per-round or
/// per-run vector churn.
class Network {
 public:
  /// An unbound Network; rebind() before run(). Lets pooled workers (the
  /// batch server) own one Network for their whole lifetime and point it
  /// at whichever graph the current work unit needs.
  Network() = default;
  explicit Network(const Graph& g);

  /// Points the engine at `g`, resizing the flat transport buffers while
  /// retaining their capacity. Serving runs on different graphs
  /// back-to-back therefore settles into zero allocation once the largest
  /// graph in the mix has been seen. `g` must outlive the binding.
  void rebind(const Graph& g);

  [[nodiscard]] bool bound() const noexcept { return g_ != nullptr; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Runs one algorithm to completion (all nodes halted) or to the round
  /// cap. Throws EnsureError on a bandwidth violation when enforcing.
  /// Reentrant with respect to the instance: each call fully resets run
  /// state while retaining buffer capacity.
  RunResult run(const ProgramFactory& factory, const RunOptions& opts);

 private:
  friend class Ctx;

  struct NodeSlot {
    std::unique_ptr<NodeProgram> program;
    Rng rng{0};
    bool halted = false;
    std::int64_t output = 0;
  };

  /// A sent message waiting for end-of-round delivery.
  struct Staged {
    NodeId to;
    std::uint32_t arrival_port;
    Message msg;
  };

  void deliver_and_account(RunMetrics& metrics);

  const Graph* g_ = nullptr;
  std::vector<NodeSlot> slots_;
  std::uint32_t cap_bits_ = 0;
  bool enforce_ = false;

  // Flat transport buffers (see class comment).
  std::vector<Staged> staged_;          // sends of the current round
  std::vector<Delivery> inbox_store_;   // all inboxes, back to back
  std::vector<std::uint32_t> inbox_off_;   // node v's inbox = [off[v], off[v+1])
  std::vector<std::uint32_t> inbox_fill_;  // counting-sort scratch
  std::vector<std::uint32_t> adj_base_;    // CSR base of node v's ports
  std::vector<std::uint32_t> out_bits_;    // per directed edge, this round
  std::vector<std::uint32_t> touched_;     // dirty out_bits_ entries
};

}  // namespace distapx::sim
