// Batched multi-seed execution of simulator runs.
//
// The property sweeps and Table-1 benches all share one shape: the same
// algorithm on the same topology across many seeds, with every run fully
// independent. run_many() schedules those runs over a worker pool where
// each worker owns one reusable Network (flat transport buffers are
// allocated once per worker, not once per run), and run_many_tasks()
// generalizes the scheduler to arbitrary per-seed pipelines (e.g. the
// multi-phase weighted-matching benches that chain several Network runs
// per seed).
//
// Determinism: results[i] depends only on (graph, factory, seeds[i],
// options) — never on the thread count or on scheduling order — so a batch
// is bit-identical at 1 thread and at N threads, and across invocations.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/network.hpp"

namespace distapx::sim {

struct RunManyOptions {
  BandwidthPolicy policy = BandwidthPolicy::congest();
  std::uint32_t max_rounds = 1u << 20;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
};

/// Number of workers actually used for `jobs` jobs: `requested` (or the
/// hardware concurrency when 0), clamped to [1, jobs].
unsigned resolve_threads(unsigned requested, std::size_t jobs);

/// One run of `factory` on `g` per seed, scheduled across worker threads.
/// Results are indexed like `seeds`. The factory is invoked concurrently
/// and must be thread-safe (the make_*_program factories are: they only
/// read captured inputs). Throws the first per-run exception (e.g. a
/// CONGEST violation under an enforcing policy) after the pool drains.
std::vector<RunResult> run_many(const Graph& g, const ProgramFactory& factory,
                                std::span<const std::uint64_t> seeds,
                                const RunManyOptions& opts = {});

/// Generic deterministic seed-parallel scheduler: results[i] =
/// task(seeds[i], i). `task` must be safe to call concurrently.
template <typename Task>
auto run_many_tasks(std::span<const std::uint64_t> seeds, unsigned threads,
                    Task&& task)
    -> std::vector<decltype(task(std::uint64_t{}, std::size_t{}))> {
  using Result = decltype(task(std::uint64_t{}, std::size_t{}));
  // std::vector<bool> packs bits: concurrent writes to adjacent slots
  // would race. Return char/int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "run_many_tasks cannot return bool (vector<bool> races)");
  std::vector<Result> results(seeds.size());
  const unsigned workers = resolve_threads(threads, seeds.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      results[i] = task(seeds[i], i);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= seeds.size()) return;
      try {
        results[i] = task(seeds[i], i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        next.store(seeds.size());  // cancel the remaining queue
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(drain);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace distapx::sim
