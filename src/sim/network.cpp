#include "sim/network.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx::sim {

std::uint32_t BandwidthPolicy::cap_bits(NodeId n) const {
  if (!bounded) return 0;
  // The log term is floored at 8: CONGEST messages hold at least a
  // constant-size word, and O(log n) bounds only bite asymptotically —
  // without the floor, toy graphs (n < 256) would reject legal programs.
  return multiplier *
         std::max<std::uint32_t>(
             8, static_cast<std::uint32_t>(
                    ceil_log2(std::max<NodeId>(n, 2))));
}

NodeId Ctx::num_nodes() const noexcept { return net_->g_->num_nodes(); }
std::uint32_t Ctx::degree() const noexcept { return net_->g_->degree(id_); }
std::uint32_t Ctx::max_degree() const noexcept {
  return net_->g_->max_degree();
}

NodeId Ctx::neighbor(std::uint32_t port) const {
  const auto nbrs = net_->g_->neighbors(id_);
  DISTAPX_ASSERT(port < nbrs.size());
  return nbrs[port].to;
}

std::uint32_t Ctx::port_of(NodeId v) const {
  const auto nbrs = net_->g_->neighbors(id_);
  // Adjacency is sorted by neighbor id (GraphBuilder::build).
  const auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const HalfEdge& he, NodeId x) { return he.to < x; });
  if (it == nbrs.end() || it->to != v) return UINT32_MAX;
  return static_cast<std::uint32_t>(it - nbrs.begin());
}

EdgeId Ctx::edge_of(std::uint32_t port) const {
  const auto nbrs = net_->g_->neighbors(id_);
  DISTAPX_ASSERT(port < nbrs.size());
  return nbrs[port].edge;
}

std::span<const Delivery> Ctx::inbox() const noexcept {
  const auto begin = net_->inbox_off_[id_];
  const auto end = net_->inbox_off_[id_ + 1];
  return {net_->inbox_store_.data() + begin, net_->inbox_store_.data() + end};
}

void Ctx::send(std::uint32_t port, Message m) {
  DISTAPX_ENSURE_MSG(port < net_->g_->degree(id_),
                     "node " << id_ << " sending on invalid port " << port);
  const auto bits = static_cast<std::uint32_t>(m.total_bits());
  const std::uint32_t slot = net_->adj_base_[id_] + port;
  if (net_->out_bits_[slot] == 0) net_->touched_.push_back(slot);
  net_->out_bits_[slot] += bits;
  const NodeId to = neighbor(port);
  Ctx peer;  // compute arrival port cheaply via the destination's view
  peer.net_ = net_;
  peer.id_ = to;
  const std::uint32_t arrival = peer.port_of(id_);
  DISTAPX_ASSERT(arrival != UINT32_MAX);
  net_->staged_.push_back({to, arrival, std::move(m)});
}

void Ctx::broadcast(const Message& m) {
  const std::uint32_t deg = degree();
  for (std::uint32_t p = 0; p < deg; ++p) send(p, m);
}

void Ctx::halt(std::int64_t output) {
  auto& slot = net_->slots_[id_];
  slot.halted = true;
  slot.output = output;
}

Network::Network(const Graph& g) { rebind(g); }

void Network::rebind(const Graph& g) {
  g_ = &g;
  const NodeId n = g.num_nodes();
  // assign()/resize() keep the underlying capacity, so pointing the same
  // Network at a sequence of graphs only ever grows the buffers to the
  // largest graph seen.
  adj_base_.resize(n + 1);
  adj_base_[0] = 0;
  for (NodeId v = 0; v < n; ++v) adj_base_[v + 1] = adj_base_[v] + g.degree(v);
  out_bits_.assign(adj_base_[n], 0);
  inbox_off_.assign(n + 1, 0);
  inbox_fill_.assign(n, 0);
  slots_.resize(n);
  staged_.clear();
  touched_.clear();
}

RunResult Network::run(const ProgramFactory& factory, const RunOptions& opts) {
  DISTAPX_ENSURE_MSG(g_ != nullptr, "Network::run on an unbound Network");
  const NodeId n = g_->num_nodes();
  cap_bits_ = opts.policy.cap_bits(n);
  enforce_ = opts.policy.bounded && opts.policy.enforce;

  // Reset run state in place; buffer capacity survives from earlier runs
  // (a previous run may have thrown mid-round, so clear transport state
  // unconditionally).
  staged_.clear();
  touched_.clear();
  std::fill(out_bits_.begin(), out_bits_.end(), 0);
  std::fill(inbox_off_.begin(), inbox_off_.end(), 0);

  const Rng root(opts.seed);
  for (NodeId v = 0; v < n; ++v) {
    auto& slot = slots_[v];
    slot.program = factory(v);
    DISTAPX_ENSURE(slot.program != nullptr);
    slot.rng = root.split(v);
    slot.halted = false;
    slot.output = 0;
  }

  RunResult result;
  result.metrics.bandwidth_cap = cap_bits_;

  auto sweep = [&](std::uint32_t round_idx, bool is_init) {
    for (NodeId v = 0; v < n; ++v) {
      auto& slot = slots_[v];
      if (slot.halted) continue;
      Ctx ctx;
      ctx.net_ = this;
      ctx.id_ = v;
      ctx.round_ = round_idx;
      ctx.rng_ = &slot.rng;
      if (is_init) {
        slot.program->init(ctx);
      } else {
        slot.program->round(ctx);
      }
    }
    const std::uint64_t msgs_before = result.metrics.messages;
    const std::uint64_t bits_before = result.metrics.total_bits;
    deliver_and_account(result.metrics);
    if (opts.observer) {
      RoundSample sample;
      sample.round = round_idx;
      sample.messages = result.metrics.messages - msgs_before;
      sample.bits = result.metrics.total_bits - bits_before;
      for (const auto& slot : slots_) {
        if (slot.halted) ++sample.nodes_halted;
      }
      opts.observer(sample);
    }
  };

  sweep(0, /*is_init=*/true);

  auto all_halted = [&] {
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const NodeSlot& s) { return s.halted; });
  };

  std::uint32_t round = 0;
  while (!all_halted() && round < opts.max_rounds) {
    ++round;
    sweep(round, /*is_init=*/false);
  }
  result.metrics.rounds = round;
  result.metrics.completed = all_halted();

  result.outputs.resize(n);
  result.halted.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.outputs[v] = slots_[v].output;
    result.halted[v] = slots_[v].halted;
  }
  return result;
}

void Network::deliver_and_account(RunMetrics& metrics) {
  // Per-edge bit accounting: only the entries actually written this round.
  for (const std::uint32_t slot : touched_) {
    const std::uint32_t bits = out_bits_[slot];
    metrics.total_bits += bits;
    metrics.max_edge_bits = std::max(metrics.max_edge_bits, bits);
    if (enforce_ && bits > cap_bits_) {
      const NodeId sender = static_cast<NodeId>(
          std::upper_bound(adj_base_.begin(), adj_base_.end(), slot) -
          adj_base_.begin() - 1);
      DISTAPX_ENSURE_MSG(
          false, "CONGEST violation: node "
                     << sender << " sent " << bits
                     << " bits on one edge in one round"
                     << " (cap " << cap_bits_ << ")");
    }
    out_bits_[slot] = 0;
  }
  touched_.clear();

  // Stable counting sort of the staged sends by destination: preserves the
  // old per-node pending order (global send order) while keeping every
  // inbox in one flat buffer. Messages addressed to halted nodes are
  // dropped.
  const NodeId n = g_->num_nodes();
  std::fill(inbox_fill_.begin(), inbox_fill_.end(), 0);
  for (const auto& s : staged_) {
    if (!slots_[s.to].halted) ++inbox_fill_[s.to];
  }
  inbox_off_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    inbox_off_[v + 1] = inbox_off_[v] + inbox_fill_[v];
  }
  const std::uint32_t total = inbox_off_[n];
  metrics.messages += total;
  if (inbox_store_.size() < total) inbox_store_.resize(total);
  for (NodeId v = 0; v < n; ++v) inbox_fill_[v] = inbox_off_[v];
  for (auto& s : staged_) {
    if (slots_[s.to].halted) continue;
    inbox_store_[inbox_fill_[s.to]++] = Delivery{s.arrival_port,
                                                 std::move(s.msg)};
  }
  staged_.clear();
}

}  // namespace distapx::sim
