// CONGEST messages with explicit bit accounting.
//
// Every message carries a small type tag plus typed fields; each field
// declares the number of bits it occupies on the wire. The Network engine
// sums declared bits per directed edge per round and enforces the CONGEST
// bandwidth cap, which is how we validate the paper's congestion claims
// (Sec. 2.4) empirically rather than by trusting the implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace distapx::sim {

/// A single message: type tag + fields with declared bit widths.
///
/// Fields are stored inline (no heap allocation) up to kInlineFields; the
/// overflow vector only engages for wide messages such as the naive
/// line-graph forwarding ablation, so the per-round message churn in the
/// simulator stays allocation-free on the hot paths.
class Message {
 public:
  /// Cost charged for the type tag itself.
  static constexpr int kTypeBits = 4;
  /// Fields held without heap allocation.
  static constexpr std::size_t kInlineFields = 6;

  Message() = default;
  explicit Message(std::uint32_t type) : type_(type) {
    DISTAPX_ASSERT(type < (1u << kTypeBits));
  }

  [[nodiscard]] std::uint32_t type() const noexcept { return type_; }

  /// Appends an unsigned field. `bits` is its declared wire width; the
  /// value must fit. Returns *this for chaining.
  Message& push(std::uint64_t value, int bits) {
    DISTAPX_ENSURE_MSG(bits >= 1 && bits <= 64, "field width " << bits);
    DISTAPX_ENSURE_MSG(bits == 64 || value < (std::uint64_t{1} << bits),
                       "value " << value << " does not fit in " << bits
                                << " bits");
    store(value);
    bits_ += bits;
    return *this;
  }

  /// Appends a double field (used by the Appendix B.3 attenuation
  /// machinery). Charged `bits` on the wire; the paper bounds the required
  /// precision by O(log Δ / ε²) bits, which callers declare explicitly.
  Message& push_real(double value, int bits) {
    DISTAPX_ENSURE(bits >= 1 && bits <= 64);
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t raw;
    __builtin_memcpy(&raw, &value, sizeof(raw));
    store(raw);
    bits_ += bits;
    return *this;
  }

  [[nodiscard]] std::uint64_t field(std::size_t i) const {
    DISTAPX_ASSERT(i < count_);
    return i < kInlineFields ? inline_[i] : overflow_[i - kInlineFields];
  }

  [[nodiscard]] double field_real(std::size_t i) const {
    double v;
    const std::uint64_t raw = field(i);
    __builtin_memcpy(&v, &raw, sizeof(v));
    return v;
  }

  [[nodiscard]] std::size_t num_fields() const noexcept { return count_; }

  /// Total declared wire bits including the type tag.
  [[nodiscard]] int total_bits() const noexcept { return kTypeBits + bits_; }

 private:
  void store(std::uint64_t value) {
    if (count_ < kInlineFields) {
      inline_[count_] = value;
    } else {
      overflow_.push_back(value);
    }
    ++count_;
  }

  std::uint32_t type_ = 0;
  int bits_ = 0;
  std::size_t count_ = 0;
  std::array<std::uint64_t, kInlineFields> inline_{};
  std::vector<std::uint64_t> overflow_;
};

/// A message as seen by its receiver: which local port it arrived on.
struct Delivery {
  std::uint32_t port;
  Message msg;
};

}  // namespace distapx::sim
