#include "sim/run_many.hpp"

#include <algorithm>

namespace distapx::sim {

unsigned resolve_threads(unsigned requested, std::size_t jobs) {
  unsigned workers =
      requested != 0 ? requested
                     : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(jobs, 1)));
  return workers;
}

std::vector<RunResult> run_many(const Graph& g, const ProgramFactory& factory,
                                std::span<const std::uint64_t> seeds,
                                const RunManyOptions& opts) {
  std::vector<RunResult> results(seeds.size());
  const unsigned workers = resolve_threads(opts.threads, seeds.size());

  RunOptions base;
  base.policy = opts.policy;
  base.max_rounds = opts.max_rounds;

  // Each worker owns one Network: transport buffers are allocated once and
  // reused across all the runs that worker picks up.
  auto drain = [&](Network& net, std::atomic<std::size_t>& next,
                   std::exception_ptr& error, std::mutex& error_mu) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= seeds.size()) return;
      RunOptions run_opts = base;
      run_opts.seed = seeds[i];
      try {
        results[i] = net.run(factory, run_opts);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        next.store(seeds.size());  // cancel the remaining queue
        return;
      }
    }
  };

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  if (workers <= 1) {
    Network net(g);
    drain(net, next, error, error_mu);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        Network net(g);
        drain(net, next, error, error_mu);
      });
    }
    for (auto& th : pool) th.join();
  }
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace distapx::sim
