#include "sim/aggregation.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace distapx::sim {

Aggregator agg_or(
    std::function<std::uint64_t(std::span<const std::uint64_t>)> extract) {
  Aggregator a;
  a.extract = std::move(extract);
  a.identity = 0;
  a.join = [](std::uint64_t x, std::uint64_t y) {
    return static_cast<std::uint64_t>(x != 0 || y != 0);
  };
  a.result_bits = 1;
  return a;
}

Aggregator agg_and(
    std::function<std::uint64_t(std::span<const std::uint64_t>)> extract) {
  Aggregator a;
  a.extract = std::move(extract);
  a.identity = 1;
  a.join = [](std::uint64_t x, std::uint64_t y) {
    return static_cast<std::uint64_t>(x != 0 && y != 0);
  };
  a.result_bits = 1;
  return a;
}

Aggregator agg_sum(
    std::function<std::uint64_t(std::span<const std::uint64_t>)> extract,
    int result_bits) {
  Aggregator a;
  a.extract = std::move(extract);
  a.identity = 0;
  a.join = [](std::uint64_t x, std::uint64_t y) {
    // Saturating add keeps congested sums well-defined.
    const std::uint64_t s = x + y;
    return s < x ? ~std::uint64_t{0} : s;
  };
  a.result_bits = result_bits;
  return a;
}

Aggregator agg_max(
    std::function<std::uint64_t(std::span<const std::uint64_t>)> extract,
    int result_bits) {
  Aggregator a;
  a.extract = std::move(extract);
  a.identity = 0;
  a.join = [](std::uint64_t x, std::uint64_t y) { return std::max(x, y); };
  a.result_bits = result_bits;
  return a;
}

Aggregator agg_min(
    std::function<std::uint64_t(std::span<const std::uint64_t>)> extract,
    int result_bits) {
  Aggregator a;
  a.extract = std::move(extract);
  a.identity = ~std::uint64_t{0};
  a.join = [](std::uint64_t x, std::uint64_t y) { return std::min(x, y); };
  a.result_bits = result_bits;
  return a;
}

namespace {

/// Shared engine for both agent topologies.
class AggEngine {
 public:
  enum class Mode { kNodes, kLine, kLineNaive };

  AggEngine(const Graph& g, AggProgram& prog, Mode mode)
      : g_(&g), prog_(&prog), mode_(mode) {
    num_agents_ =
        mode == Mode::kNodes ? g.num_nodes() : g.num_edges();
    field_bits_ = prog.state_bits();
    DISTAPX_ENSURE(!field_bits_.empty());
    state_total_bits_ = 0;
    for (int b : field_bits_) {
      DISTAPX_ENSURE(b >= 1 && b <= 64);
      state_total_bits_ += b;
    }
    aggs_ = prog.aggregators();
    agg_total_bits_ = 0;
    for (const auto& a : aggs_) {
      DISTAPX_ENSURE(a.extract && a.join);
      agg_total_bits_ += a.result_bits;
    }
  }

  AggRunResult run(const RunOptions& opts) {
    const std::size_t fields = field_bits_.size();
    states_.assign(static_cast<std::size_t>(num_agents_) * fields, 0);
    halted_.assign(num_agents_, false);
    outputs_.assign(num_agents_, 0);
    rngs_.clear();
    rngs_.reserve(num_agents_);
    const Rng root(opts.seed);
    for (std::uint32_t a = 0; a < num_agents_; ++a) {
      // Distinct tag keeps line-agent streams independent of node streams.
      rngs_.push_back(root.split(
          mode_ == Mode::kNodes ? a : (std::uint64_t{1} << 33) + a));
    }

    AggRunResult result;
    result.metrics.bandwidth_cap = opts.policy.cap_bits(g_->num_nodes());
    if (mode_ != Mode::kLineNaive) {
      check_widths(opts, result.metrics.bandwidth_cap);
    }

    // init sweep (no aggregates yet)
    for (std::uint32_t a = 0; a < num_agents_; ++a) {
      step_agent(a, 0, {}, /*is_init=*/true);
    }
    account_round(result.metrics);

    const std::uint32_t phys_per_super = mode_ == Mode::kLine ? 2 : 1;
    std::uint32_t super = 0;
    while (!all_halted() &&
           result.metrics.rounds + phys_per_super <= opts.max_rounds) {
      ++super;
      compute_aggregates();
      for (std::uint32_t a = 0; a < num_agents_; ++a) {
        if (halted_[a]) continue;
        const std::size_t off = static_cast<std::size_t>(a) * aggs_.size();
        step_agent(a, super,
                   std::span<const std::uint64_t>(agg_buf_.data() + off,
                                                  aggs_.size()),
                   /*is_init=*/false);
      }
      account_round(result.metrics);
      result.metrics.rounds += phys_per_super;
    }
    result.super_rounds = super;
    result.metrics.completed = all_halted();
    result.outputs = std::move(outputs_);
    result.halted.assign(halted_.begin(), halted_.end());
    return result;
  }

 private:
  [[nodiscard]] std::span<std::uint64_t> state_of(std::uint32_t a) {
    const std::size_t fields = field_bits_.size();
    return {states_.data() + static_cast<std::size_t>(a) * fields, fields};
  }

  [[nodiscard]] bool all_halted() const {
    return std::all_of(halted_.begin(), halted_.end(),
                       [](char h) { return h != 0; });
  }

  void check_widths(const RunOptions& opts, std::uint32_t cap) const {
    if (!opts.policy.bounded || !opts.policy.enforce) return;
    // Node mode sends the state on each edge; line mode sends the partial
    // aggregates (phase A) and the state refresh (phase B) on each edge.
    const int load = mode_ == Mode::kNodes
                         ? state_total_bits_
                         : std::max(state_total_bits_, agg_total_bits_);
    DISTAPX_ENSURE_MSG(static_cast<std::uint32_t>(load) <= cap,
                       "aggregation program needs "
                           << load << " bits/edge/round, CONGEST cap is "
                           << cap);
  }

  void step_agent(std::uint32_t a, std::uint32_t round,
                  std::span<const std::uint64_t> aggregates, bool is_init) {
    AggCtx ctx(a, round, agent_degree(a), &rngs_[a], aggregates, state_of(a));
    if (is_init) {
      prog_->init(ctx);
    } else {
      prog_->round(ctx);
    }
    validate_state(a);
    if (ctx.halt_requested()) {
      halted_[a] = 1;
      outputs_[a] = ctx.halt_output();
    }
  }

  void validate_state(std::uint32_t a) {
    const auto st = state_of(a);
    for (std::size_t f = 0; f < field_bits_.size(); ++f) {
      const int b = field_bits_[f];
      if (b == 64) continue;
      DISTAPX_ENSURE_MSG(st[f] < (std::uint64_t{1} << b),
                         "agent " << a << " state field " << f << " value "
                                  << st[f] << " exceeds declared width " << b);
    }
  }

  [[nodiscard]] std::uint32_t agent_degree(std::uint32_t a) const {
    if (mode_ == Mode::kNodes) return g_->degree(a);
    const auto [u, v] = g_->endpoints(a);
    return g_->degree(u) + g_->degree(v) - 2;
  }

  void compute_aggregates() {
    const std::size_t na = aggs_.size();
    agg_buf_.assign(static_cast<std::size_t>(num_agents_) * na, 0);
    // Extracted values per (aggregator, agent), reused across folds.
    extracted_.resize(na);
    for (std::size_t k = 0; k < na; ++k) {
      auto& ex = extracted_[k];
      ex.resize(num_agents_);
      for (std::uint32_t a = 0; a < num_agents_; ++a) {
        const std::size_t fields = field_bits_.size();
        ex[a] = aggs_[k].extract(std::span<const std::uint64_t>(
            states_.data() + static_cast<std::size_t>(a) * fields, fields));
      }
    }
    if (mode_ == Mode::kNodes) {
      for (std::size_t k = 0; k < na; ++k) {
        const auto& agg = aggs_[k];
        const auto& ex = extracted_[k];
        for (NodeId v = 0; v < g_->num_nodes(); ++v) {
          std::uint64_t acc = agg.identity;
          for (const HalfEdge& he : g_->neighbors(v)) {
            acc = agg.join(acc, ex[he.to]);
          }
          agg_buf_[static_cast<std::size_t>(v) * na + k] = acc;
        }
      }
      return;
    }
    // Line mode: aggregate for edge e=(u,v) joins the all-but-e folds of
    // both endpoints (each computed locally; Thm 2.8). Prefix/suffix folds
    // give all "all-but-one" values in O(deg) per node.
    endpoint_seen_.assign(g_->num_edges(), 0);
    for (std::size_t k = 0; k < na; ++k) {
      const auto& agg = aggs_[k];
      const auto& ex = extracted_[k];
      for (NodeId v = 0; v < g_->num_nodes(); ++v) {
        const auto inc = g_->neighbors(v);
        const std::size_t d = inc.size();
        if (d == 0) continue;
        prefix_.assign(d + 1, agg.identity);
        suffix_.assign(d + 1, agg.identity);
        for (std::size_t i = 0; i < d; ++i) {
          prefix_[i + 1] = agg.join(prefix_[i], ex[inc[i].edge]);
        }
        for (std::size_t i = d; i-- > 0;) {
          suffix_[i] = agg.join(suffix_[i + 1], ex[inc[i].edge]);
        }
        for (std::size_t i = 0; i < d; ++i) {
          const std::uint64_t partial = agg.join(prefix_[i], suffix_[i + 1]);
          auto& slot = agg_buf_[static_cast<std::size_t>(inc[i].edge) * na + k];
          // First endpoint writes its partial; second joins.
          slot = endpoint_seen_[inc[i].edge]++ == 0 ? partial
                                                    : agg.join(slot, partial);
        }
      }
      std::fill(endpoint_seen_.begin(), endpoint_seen_.end(), 0);
    }
  }

  void account_round(RunMetrics& m) {
    // Uniform widths: per-edge load is the same for every live edge/agent.
    if (mode_ == Mode::kNodes) {
      std::uint64_t live_dir_edges = 0;
      for (NodeId v = 0; v < g_->num_nodes(); ++v) {
        if (!halted_[v]) live_dir_edges += g_->degree(v);
      }
      m.messages += live_dir_edges;
      m.total_bits +=
          live_dir_edges * static_cast<std::uint64_t>(state_total_bits_);
      if (live_dir_edges > 0) {
        m.max_edge_bits = std::max(
            m.max_edge_bits, static_cast<std::uint32_t>(state_total_bits_));
      }
      return;
    }
    if (mode_ == Mode::kLineNaive) {
      // Naive transport: the endpoint u of a physical edge {u,v} forwards
      // the states of all its live incident edges across to v each round.
      std::vector<std::uint32_t> live_incident(g_->num_nodes(), 0);
      for (EdgeId e = 0; e < g_->num_edges(); ++e) {
        if (halted_[e]) continue;
        const auto [u, v] = g_->endpoints(e);
        ++live_incident[u];
        ++live_incident[v];
      }
      for (EdgeId e = 0; e < g_->num_edges(); ++e) {
        const auto [u, v] = g_->endpoints(e);
        for (NodeId sender : {u, v}) {
          const std::uint64_t states = live_incident[sender];
          if (states == 0) continue;
          const std::uint64_t bits =
              states * static_cast<std::uint64_t>(state_total_bits_);
          m.messages += states;
          m.total_bits += bits;
          m.max_edge_bits = std::max(
              m.max_edge_bits, static_cast<std::uint32_t>(std::min<
                                   std::uint64_t>(bits, UINT32_MAX)));
        }
      }
      return;
    }
    std::uint64_t live_edges = 0;
    for (EdgeId e = 0; e < g_->num_edges(); ++e) {
      if (!halted_[e]) ++live_edges;
    }
    // Phase A: both endpoints exchange partial aggregates over the edge.
    // Phase B: primary sends the refreshed state back.
    m.messages += 3 * live_edges;
    m.total_bits += live_edges * (2ull * agg_total_bits_ + state_total_bits_);
    if (live_edges > 0) {
      m.max_edge_bits =
          std::max(m.max_edge_bits,
                   static_cast<std::uint32_t>(
                       std::max(agg_total_bits_, state_total_bits_)));
    }
  }

  const Graph* g_;
  AggProgram* prog_;
  Mode mode_;
  std::uint32_t num_agents_ = 0;
  std::vector<int> field_bits_;
  int state_total_bits_ = 0;
  std::vector<Aggregator> aggs_;
  int agg_total_bits_ = 0;

  std::vector<std::uint64_t> states_;
  std::vector<char> halted_;
  std::vector<std::int64_t> outputs_;
  std::vector<Rng> rngs_;
  std::vector<std::uint64_t> agg_buf_;
  std::vector<std::vector<std::uint64_t>> extracted_;
  std::vector<std::uint64_t> prefix_, suffix_;
  std::vector<std::uint8_t> endpoint_seen_;
};

}  // namespace

AggRunResult run_on_nodes(const Graph& g, AggProgram& prog,
                          const RunOptions& opts) {
  AggEngine engine(g, prog, AggEngine::Mode::kNodes);
  return engine.run(opts);
}

AggRunResult run_on_line_graph(const Graph& base, AggProgram& prog,
                               const RunOptions& opts) {
  AggEngine engine(base, prog, AggEngine::Mode::kLine);
  return engine.run(opts);
}

AggRunResult run_on_line_graph_naive(const Graph& base, AggProgram& prog,
                                     const RunOptions& opts) {
  AggEngine engine(base, prog, AggEngine::Mode::kLineNaive);
  return engine.run(opts);
}

std::uint32_t naive_line_congestion_bits(const Graph& base, int state_bits) {
  // Naive simulation: for edge e={u,v} simulated at u, the states of all
  // line-neighbors incident only to v must cross the physical edge (v->u):
  // (deg(v) - 1) states per round.
  std::uint32_t worst = 0;
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto [u, v] = base.endpoints(e);
    const std::uint32_t load =
        (std::max(base.degree(u), base.degree(v)) - 1) *
        static_cast<std::uint32_t>(state_bits);
    worst = std::max(worst, load);
  }
  return worst;
}

}  // namespace distapx::sim
