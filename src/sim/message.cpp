#include "sim/message.hpp"

// Header-only today; this TU anchors the library target and keeps room for
// out-of-line growth (e.g. varint packing) without touching call sites.
