// Local aggregation algorithms (paper Defs. 2.4-2.7) and their
// congestion-free execution on line graphs (Theorem 2.8).
//
// An AggProgram is an algorithm whose per-round neighborhood access is
// restricted to *aggregate functions*: order-invariant folds with a joining
// function phi such that f(X1 ∪ X2) = phi(f(X1), f(X2)). Each agent
// publishes an O(log n)-bit state every round and receives, next round, the
// aggregate of its neighbors' published states for each declared
// aggregator.
//
// Two executions are provided:
//
//  * run_on_nodes   — agents are the nodes of a graph. One physical round
//    per super-round; each directed edge carries the sender's state.
//  * run_on_line_graph — agents are the EDGES of a base graph (i.e. the
//    nodes of L(G)), executed with the Theorem 2.8 mechanism: every edge's
//    state is mirrored at both endpoints; each endpoint locally folds the
//    states of its other incident edges and sends one partial aggregate
//    over the edge itself; the primary endpoint joins the two partials,
//    steps the agent, and sends the refreshed state back over the same
//    edge. Two physical rounds per super-round and O(log n) bits per
//    physical edge — never the Θ(Δ) blowup of naive simulation. No
//    explicit line graph is materialized.
//
// naive_line_congestion_bits computes what the naive simulation would load
// onto the worst physical edge, for the Sec. 2.4 ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "support/random.hpp"

namespace distapx::sim {

/// One aggregate function over neighbor states (Def. 2.5): a commutative,
/// associative fold of per-neighbor extracted values.
struct Aggregator {
  /// Value a neighbor contributes, computed from its published state.
  std::function<std::uint64_t(std::span<const std::uint64_t>)> extract;
  /// Identity element of `join` (the empty-character case of Def. 2.4).
  std::uint64_t identity = 0;
  /// Joining function phi; must be commutative and associative.
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> join;
  /// Declared wire width of a partial aggregate.
  int result_bits = 1;
};

/// Pre-built aggregators for the common cases (Obs. 2.6 and Thm. 2.9).
Aggregator agg_or(std::function<std::uint64_t(std::span<const std::uint64_t>)>
                      extract);
Aggregator agg_and(std::function<std::uint64_t(std::span<const std::uint64_t>)>
                       extract);
Aggregator agg_sum(std::function<std::uint64_t(std::span<const std::uint64_t>)>
                       extract,
                   int result_bits);
Aggregator agg_max(std::function<std::uint64_t(std::span<const std::uint64_t>)>
                       extract,
                   int result_bits);
Aggregator agg_min(std::function<std::uint64_t(std::span<const std::uint64_t>)>
                       extract,
                   int result_bits);

/// Per-agent view during one super-round.
class AggCtx {
 public:
  /// Constructed by the engine; user programs only consume it.
  AggCtx(std::uint32_t agent, std::uint32_t round, std::uint32_t degree,
         Rng* rng, std::span<const std::uint64_t> aggregates,
         std::span<std::uint64_t> state)
      : agent_(agent),
        round_(round),
        degree_(degree),
        rng_(rng),
        aggregates_(aggregates),
        state_(state) {}

  /// Agent id: NodeId in node mode, EdgeId (line-node) in line mode.
  [[nodiscard]] std::uint32_t agent() const noexcept { return agent_; }
  /// Super-round number (0 during init()).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  /// Number of neighbors of this agent (line degree in line mode).
  [[nodiscard]] std::uint32_t degree() const noexcept { return degree_; }
  [[nodiscard]] Rng& rng() noexcept { return *rng_; }

  /// Aggregate results, indexed like AggProgram::aggregators(). Empty
  /// during init().
  [[nodiscard]] std::span<const std::uint64_t> aggregates() const noexcept {
    return aggregates_;
  }

  /// Own state fields; mutations become visible to neighbors next round.
  [[nodiscard]] std::span<std::uint64_t> state() noexcept { return state_; }

  void halt(std::int64_t output) {
    halted_ = true;
    output_ = output;
  }

  /// Engine-side reads after the step.
  [[nodiscard]] bool halt_requested() const noexcept { return halted_; }
  [[nodiscard]] std::int64_t halt_output() const noexcept { return output_; }

 private:
  std::uint32_t agent_ = 0;
  std::uint32_t round_ = 0;
  std::uint32_t degree_ = 0;
  Rng* rng_ = nullptr;
  std::span<const std::uint64_t> aggregates_;
  std::span<std::uint64_t> state_;
  bool halted_ = false;
  std::int64_t output_ = 0;
};

/// A local aggregation algorithm: fixed state layout + aggregators + a
/// per-agent step function. The object is a stateless policy; all per-agent
/// state lives in the engine.
class AggProgram {
 public:
  virtual ~AggProgram() = default;

  /// Declared wire widths of the state fields (Def. 2.7 requires
  /// |D_{v,i}| = O(log n); the engine enforces the CONGEST cap on the sum).
  [[nodiscard]] virtual std::vector<int> state_bits() const = 0;

  [[nodiscard]] virtual std::vector<Aggregator> aggregators() const = 0;

  virtual void init(AggCtx& ctx) = 0;
  virtual void round(AggCtx& ctx) = 0;
};

struct AggRunResult {
  RunMetrics metrics;       ///< physical-round accounting
  std::uint32_t super_rounds = 0;
  std::vector<std::int64_t> outputs;  ///< per agent
  std::vector<bool> halted;
};

/// Runs `prog` with agents = nodes of `g`.
AggRunResult run_on_nodes(const Graph& g, AggProgram& prog,
                          const RunOptions& opts);

/// Runs `prog` with agents = edges of `base` (the nodes of L(base)) via the
/// Theorem 2.8 mechanism. Physical bit accounting is done on the edges of
/// `base`.
AggRunResult run_on_line_graph(const Graph& base, AggProgram& prog,
                               const RunOptions& opts);

/// The naive simulation the paper contrasts against (Sec. 2.4): every
/// line-node's state is forwarded verbatim to each line-neighbor, so a
/// physical edge {u,v} carries the states of all other edges incident to u
/// (towards v) and vice versa — Θ(Δ·log n) bits per edge per round.
/// Semantics (and outputs, per seed) are identical to run_on_line_graph;
/// only the transport cost differs, which is the point of the E7 ablation.
/// The bandwidth cap is recorded but never enforced (it would always trip).
AggRunResult run_on_line_graph_naive(const Graph& base, AggProgram& prog,
                                     const RunOptions& opts);

/// Worst directed-edge load (bits/round) of naively simulating a line-graph
/// algorithm whose state is `state_bits` wide: the secondary endpoint of an
/// edge must forward the states of all its other incident edges.
std::uint32_t naive_line_congestion_bits(const Graph& base, int state_bits);

}  // namespace distapx::sim
