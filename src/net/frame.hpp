// Length-prefixed framing for the socket serving tier.
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic "DAPX" (0x44 0x41 0x50 0x58)
//   4       1     wire version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//   8       4     payload length, unsigned little-endian
//   12      len   payload bytes
//
// The 12-byte header is fixed; the payload meaning is per-type
// (protocol.hpp). FrameReader is the incremental decoder the server runs
// per connection: bytes are fed as they arrive and next() either produces
// a complete frame, asks for more bytes, or classifies exactly what is
// wrong (bad magic, unsupported version, unknown type, reserved bits set,
// oversized declared length). Classification is the contract the
// negative-path tests pin down: a malicious or broken peer yields a
// specific diagnosis, never a hang or a misparse.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace distapx::net {

inline constexpr std::array<unsigned char, 4> kFrameMagic{'D', 'A', 'P', 'X'};
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;

/// Message kinds (protocol.hpp documents the payloads).
enum class FrameType : std::uint8_t {
  kHello = 1,     ///< capability exchange; both directions
  kSubmit = 2,    ///< client -> server: a whole job file
  kResult = 3,    ///< server -> client: summary + runs CSV + report
  kError = 4,     ///< server -> client: classified failure text
  kPing = 5,      ///< client -> server: liveness probe
  kPong = 6,      ///< server -> client: probe reply
  kStatsReq = 7,  ///< client -> server: counter snapshot request
  kStats = 8,     ///< server -> client: key-value counter lines
  kShutdown = 9,  ///< client -> server: drain and stop; echoed as the ack
  kSubmitTrace = 10,  ///< client -> server: SUBMIT that wants its trace back
  kResultTrace = 11,  ///< server -> client: RESULT + rendered trace tree
};

bool is_known_frame_type(std::uint8_t type) noexcept;

/// The wire's u32 little-endian integer encoding, shared by the frame
/// header and the payload codecs (protocol.cpp) so there is exactly one
/// byte-order implementation.
void put_u32_le(std::string& out, std::uint32_t v);
std::uint32_t get_u32_le(const char* bytes) noexcept;

/// Hard ceiling any single frame's payload can declare: the length field
/// is u32. encode_frame throws NetError above it (a silent wrap would
/// desynchronize the peer); producers of unbounded payloads (the
/// server's RESULT path) must check and degrade to ERR before encoding.
inline constexpr std::size_t kMaxWirePayload = 0xffffffffu;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Header + payload, ready to write to the wire. Throws NetError when
/// the payload cannot be represented (> kMaxWirePayload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Outcome of one FrameReader::next() call.
enum class FrameStatus {
  kFrame,        ///< `out` holds a complete frame
  kNeedMore,     ///< nothing wrong, the frame is not complete yet
  kBadMagic,     ///< first 4 bytes are not "DAPX" — not our protocol
  kBadVersion,   ///< wire version this decoder does not speak
  kBadType,      ///< unknown FrameType byte
  kBadReserved,  ///< reserved header bytes not zero
  kOversized,    ///< declared payload length above the decoder's cap
};

/// Stable lowercase name ("bad-magic", "oversized", ...) for diagnostics.
const char* frame_status_name(FrameStatus s) noexcept;

/// Incremental frame decoder over a byte stream. Errors are sticky: after
/// a non-kNeedMore failure the stream is unsynchronized and next() keeps
/// returning the same status — the owner must drop the connection.
class FrameReader {
 public:
  /// `max_payload` caps the *declared* length, so an attacker announcing
  /// a 4 GiB frame is rejected from the 12-byte header alone, before any
  /// buffering.
  explicit FrameReader(std::size_t max_payload) : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void feed(std::string_view bytes) { buf_.append(bytes); }

  FrameStatus next(Frame& out);

  /// Bytes buffered but not yet consumed as a frame.
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }
  /// True when a frame has started arriving but is incomplete — the state
  /// in which a peer disconnect or stall is a protocol error (truncated
  /// frame / slow-loris) rather than a clean goodbye.
  [[nodiscard]] bool mid_frame() const noexcept { return !buf_.empty(); }

 private:
  std::size_t max_payload_;
  std::string buf_;
  FrameStatus failed_ = FrameStatus::kNeedMore;  ///< sticky error, if any
};

}  // namespace distapx::net
