// Payload encodings for the framed serving protocol (frame.hpp carries
// the byte-level frame format; this header defines what goes inside).
//
//   HELLO     u32 LE protocol version, then free-form software id text.
//             Client sends first; the server replies with its own HELLO.
//             A version the server does not speak is answered with ERR.
//   SUBMIT    the raw bytes of a job file (service/job_spec.hpp syntax).
//   RESULT    three length-prefixed sections, each u32 LE length + bytes:
//             summary CSV, runs CSV, report text — byte-identical to what
//             `distapx_cli batch --csv/--runs` and the spool daemon's
//             done/ files contain (the determinism contract across
//             transports).
//   ERR       UTF-8 diagnostic text (line-numbered JobError for a bad job
//             file, a frame_status_name-classified message for protocol
//             violations).
//   SUBMITTRACE  same payload as SUBMIT; the client asks the server to
//             echo the job's span trace. Answered with RESULTTRACE (or
//             ERR). Plain SUBMIT/RESULT stay byte-identical — the trace
//             echo is a distinct frame type precisely so the determinism
//             contract on RESULT payloads is untouched.
//   RESULTTRACE  four length-prefixed sections: the three RESULT sections
//             (bit-identical to what RESULT would have carried) plus the
//             rendered trace tree text.
//   PING/PONG, STATSREQ and SHUTDOWN carry empty payloads; STATS carries
//   "key value\n" counter lines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace distapx::net {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// The "software id" text our side puts in HELLO.
std::string hello_software_id();

std::string encode_hello(std::uint32_t version = kProtocolVersion,
                         std::string_view software = {});
/// Returns false on a short payload; `software` gets the trailing text.
bool decode_hello(std::string_view payload, std::uint32_t& version,
                  std::string& software);

/// The three RESULT sections.
struct ResultPayload {
  std::string summary_csv;
  std::string runs_csv;
  std::string report_txt;

  friend bool operator==(const ResultPayload&, const ResultPayload&) = default;
};

/// Throws NetError when result_wire_size(r) exceeds the frame layer's
/// kMaxWirePayload — callers producing unbounded results (the server)
/// check first and degrade to ERR.
std::string encode_result(const ResultPayload& r);
/// Strict: all three sections present, lengths consistent, no trailing
/// bytes. Returns false on any violation.
bool decode_result(std::string_view payload, ResultPayload& out);

/// Encoded payload size of a RESULT (3 u32 section lengths + bytes).
std::uint64_t result_wire_size(const ResultPayload& r) noexcept;

/// RESULTTRACE: the three RESULT sections plus the rendered trace tree,
/// each u32-length-prefixed. Throws NetError above kMaxWirePayload.
std::string encode_result_trace(const ResultPayload& r,
                                std::string_view trace_txt);
/// Strict: exactly four sections, no trailing bytes.
bool decode_result_trace(std::string_view payload, ResultPayload& out,
                         std::string& trace_txt);
std::uint64_t result_trace_wire_size(const ResultPayload& r,
                                     std::string_view trace_txt) noexcept;

}  // namespace distapx::net
