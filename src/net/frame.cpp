#include "net/frame.hpp"

#include <cstring>

#include "net/socket.hpp"

namespace distapx::net {

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const char* bytes) noexcept {
  const auto* b = reinterpret_cast<const unsigned char*>(bytes);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

bool is_known_frame_type(std::uint8_t type) noexcept {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kResultTrace);
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxWirePayload) {
    throw NetError("frame payload of " + std::to_string(payload.size()) +
                   " bytes exceeds the u32 wire length field");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(reinterpret_cast<const char*>(kFrameMagic.data()),
             kFrameMagic.size());
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');
  out.push_back('\0');
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

const char* frame_status_name(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::kFrame:
      return "frame";
    case FrameStatus::kNeedMore:
      return "need-more";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kBadVersion:
      return "bad-version";
    case FrameStatus::kBadType:
      return "bad-type";
    case FrameStatus::kBadReserved:
      return "bad-reserved";
    case FrameStatus::kOversized:
      return "oversized";
  }
  return "unknown";
}

FrameStatus FrameReader::next(Frame& out) {
  if (failed_ != FrameStatus::kNeedMore) return failed_;
  // Malformed headers are detected from whatever prefix has arrived, so a
  // peer that sends 4 garbage bytes and stalls is classified immediately
  // instead of being granted the full header timeout.
  const std::size_t check =
      buf_.size() < kFrameMagic.size() ? buf_.size() : kFrameMagic.size();
  if (std::memcmp(buf_.data(), kFrameMagic.data(), check) != 0) {
    return failed_ = FrameStatus::kBadMagic;
  }
  if (buf_.size() >= 5 &&
      static_cast<std::uint8_t>(buf_[4]) != kWireVersion) {
    return failed_ = FrameStatus::kBadVersion;
  }
  if (buf_.size() >= 6 &&
      !is_known_frame_type(static_cast<std::uint8_t>(buf_[5]))) {
    return failed_ = FrameStatus::kBadType;
  }
  if (buf_.size() >= 8 && (buf_[6] != '\0' || buf_[7] != '\0')) {
    return failed_ = FrameStatus::kBadReserved;
  }
  if (buf_.size() < kFrameHeaderSize) return FrameStatus::kNeedMore;
  const std::uint32_t len = get_u32_le(buf_.data() + 8);
  if (len > max_payload_) return failed_ = FrameStatus::kOversized;
  if (buf_.size() < kFrameHeaderSize + len) return FrameStatus::kNeedMore;
  out.type = static_cast<FrameType>(static_cast<std::uint8_t>(buf_[5]));
  out.payload.assign(buf_, kFrameHeaderSize, len);
  buf_.erase(0, kFrameHeaderSize + len);
  return FrameStatus::kFrame;
}

}  // namespace distapx::net
