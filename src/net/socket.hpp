// Socket endpoints and RAII listeners for the serving tier.
//
// The socket server (service/socket_server.hpp) and its clients agree on
// one textual address syntax: a string containing "HOST:PORT" (numeric
// IPv4 or "localhost", port 0 = kernel-assigned) is a TCP endpoint, and
// anything else is a Unix-domain socket path. The transport is a
// deliberately swappable detail — the framed protocol (frame.hpp) and the
// serving semantics are identical over both.
//
// Listener owns the listening fd, resolves an ephemeral TCP port to the
// real one at open time, and unlinks its Unix socket path on destruction.
// A stale Unix path (left by a crashed server) is detected by probing it
// with a connect: refused/absent peer => safe to unlink and rebind; a
// live peer => NetError "already in use", never a silent steal.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/fdio.hpp"

namespace distapx::net {

/// Thrown on endpoint parse errors, socket syscall failures, and client
/// I/O failures. The message names the endpoint and the failing call.
class NetError final : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< Unix socket path (kind == kUnix)
  std::string host;  ///< numeric IPv4 or "localhost" (kind == kTcp)
  std::uint16_t port = 0;  ///< 0 = ephemeral (resolved by Listener::open)

  [[nodiscard]] std::string to_string() const;
};

/// "HOST:PORT" (host a dotted quad or "localhost", port a decimal in
/// [0, 65535]) parses as TCP; every other nonempty string is a Unix
/// path. Throws NetError on an empty string or a malformed TCP port.
Endpoint parse_endpoint(const std::string& text);

/// Listening socket: bound, listening, nonblocking, close-on-exec.
class Listener {
 public:
  /// Binds and listens. Throws NetError (address in use, bad host, Unix
  /// path longer than sun_path, ...).
  static Listener open(const Endpoint& ep, int backlog = 64);

  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;
  ~Listener();

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  /// The bound endpoint; for TCP port 0 this carries the kernel-assigned
  /// port, so a test or CLI can print the address clients should dial.
  [[nodiscard]] const Endpoint& endpoint() const noexcept { return ep_; }

  /// One nonblocking accept: a valid (nonblocking, cloexec) connection
  /// fd, or an invalid Fd when no connection is pending. Transient
  /// per-connection failures (ECONNABORTED) read as "none pending";
  /// hard failures throw NetError.
  fdio::Fd accept_connection();

 private:
  Listener() = default;

  fdio::Fd fd_;
  Endpoint ep_;
};

/// Blocking client connect (close-on-exec; the fd stays blocking — the
/// client protocol is strictly request/response). Throws NetError.
fdio::Fd connect_endpoint(const Endpoint& ep);

/// connect_endpoint with bounded retry: transient dial failures (the
/// server not bound/listening yet — ENOENT on a Unix path, ECONNREFUSED
/// on TCP — plus accept-race resets) back off exponentially (1ms
/// doubling, capped at 100ms) until ~timeout_ms has elapsed, then the
/// last error is thrown as NetError. Non-transient errors throw
/// immediately; timeout_ms = 0 means a single attempt.
fdio::Fd connect_endpoint_retry(const Endpoint& ep, std::uint32_t timeout_ms);

}  // namespace distapx::net
