#include "net/client.hpp"

#include <errno.h>

#include <cstring>

namespace distapx::net {

Client Client::handshake(fdio::Fd fd) {
  Client client(std::move(fd));
  client.send(FrameType::kHello, encode_hello());
  const Frame reply = client.receive();
  if (reply.type == FrameType::kError) {
    throw NetError("server rejected hello: " + reply.payload);
  }
  if (reply.type != FrameType::kHello) {
    throw NetError("expected HELLO reply, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
  std::uint32_t version = 0;
  if (!decode_hello(reply.payload, version, client.server_software_)) {
    throw NetError("malformed HELLO payload from server");
  }
  if (version != kProtocolVersion) {
    throw NetError("server speaks protocol version " +
                   std::to_string(version) + ", this client speaks " +
                   std::to_string(kProtocolVersion));
  }
  return client;
}

Client Client::connect(const Endpoint& ep) {
  return handshake(connect_endpoint(ep));
}

Client Client::connect_retry(const Endpoint& ep, std::uint32_t timeout_ms) {
  return handshake(connect_endpoint_retry(ep, timeout_ms));
}

SubmitOutcome Client::submit(std::string_view job_file_text) {
  send_submit(job_file_text);
  return recv_submit();
}

void Client::send_submit(std::string_view job_file_text) {
  send(FrameType::kSubmit, job_file_text);
}

SubmitOutcome Client::recv_submit() {
  const Frame reply = receive();
  SubmitOutcome outcome;
  if (reply.type == FrameType::kError) {
    outcome.error = reply.payload;
    return outcome;
  }
  if (reply.type != FrameType::kResult) {
    throw NetError("expected RESULT or ERR, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
  if (!decode_result(reply.payload, outcome.result)) {
    throw NetError("malformed RESULT payload from server");
  }
  outcome.ok = true;
  return outcome;
}

SubmitOutcome Client::submit_traced(std::string_view job_file_text) {
  send(FrameType::kSubmitTrace, job_file_text);
  const Frame reply = receive();
  SubmitOutcome outcome;
  if (reply.type == FrameType::kError) {
    outcome.error = reply.payload;
    return outcome;
  }
  if (reply.type != FrameType::kResultTrace) {
    throw NetError("expected RESULTTRACE or ERR, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
  if (!decode_result_trace(reply.payload, outcome.result,
                           outcome.trace_txt)) {
    throw NetError("malformed RESULTTRACE payload from server");
  }
  outcome.ok = true;
  return outcome;
}

void Client::ping() {
  send(FrameType::kPing, {});
  const Frame reply = receive();
  if (reply.type != FrameType::kPong) {
    throw NetError("expected PONG, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
}

std::string Client::stats() {
  send(FrameType::kStatsReq, {});
  const Frame reply = receive();
  if (reply.type != FrameType::kStats) {
    throw NetError("expected STATS, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
  return reply.payload;
}

SubmitOutcome Client::shutdown() {
  send(FrameType::kShutdown, {});
  const Frame reply = receive();
  SubmitOutcome outcome;
  if (reply.type == FrameType::kError) {
    outcome.error = reply.payload;
    return outcome;
  }
  if (reply.type != FrameType::kShutdown) {
    throw NetError("expected SHUTDOWN ack, got frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
  outcome.ok = true;
  return outcome;
}

void Client::send(FrameType type, std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  if (!fdio::write_fully(fd_.get(), frame.data(), frame.size())) {
    throw NetError(std::string("send failed: ") + std::strerror(errno));
  }
}

Frame Client::receive() {
  Frame frame;
  for (;;) {
    switch (reader_.next(frame)) {
      case FrameStatus::kFrame:
        return frame;
      case FrameStatus::kNeedMore:
        break;
      default:
        throw NetError("undecodable frame from server (" +
                       std::string(frame_status_name(reader_.next(frame))) +
                       ")");
    }
    char buf[64 * 1024];
    const ssize_t r = fdio::read_some(fd_.get(), buf, sizeof buf);
    if (r == 0) {
      throw NetError(reader_.mid_frame()
                         ? "server closed the connection mid-frame"
                         : "server closed the connection");
    }
    if (r < 0) {
      throw NetError(std::string("recv failed: ") + std::strerror(errno));
    }
    reader_.feed(buf, static_cast<std::size_t>(r));
  }
}

}  // namespace distapx::net
