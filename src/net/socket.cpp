#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "support/parse.hpp"

namespace distapx::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Numeric IPv4, with "localhost" as the one symbolic name (no DNS — the
/// serving tier is a localhost/LAN tool and must not block on resolvers).
in_addr parse_host(const std::string& host) {
  in_addr addr{};
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr) != 1) {
    throw NetError("bad host \"" + host +
                   "\" (need a numeric IPv4 address or \"localhost\")");
  }
  return addr;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw NetError("unix socket path too long (" + std::to_string(path.size()) +
                   " bytes, max " + std::to_string(sizeof addr.sun_path - 1) +
                   "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

fdio::Fd make_socket(int domain) {
  fdio::Fd fd(::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) throw_errno("socket");
  return fd;
}

/// A Unix path already occupied by a socket is either a live server or a
/// stale dropping from a crashed one. Probing with connect distinguishes
/// them: only a refused/absent peer may be unlinked.
void reclaim_stale_unix_path(const std::string& path,
                             const sockaddr_un& addr) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return;  // nothing there
  if (!S_ISSOCK(st.st_mode)) {
    throw NetError("listen path " + path + " exists and is not a socket");
  }
  fdio::Fd probe = make_socket(AF_UNIX);
  if (::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) == 0) {
    throw NetError("listen path " + path + " already has a live server");
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    throw_errno("unlink stale socket " + path);
  }
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return path;
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text) {
  if (text.empty()) throw NetError("empty endpoint");
  const auto colon = text.rfind(':');
  if (colon != std::string::npos && colon > 0 && colon + 1 < text.size()) {
    const std::string host = text.substr(0, colon);
    const auto port = parse_uint_strict(text.substr(colon + 1), 65535);
    // Only a well-formed HOST:PORT is TCP; "some:path" with a non-numeric
    // tail falls through to the Unix interpretation. A path can always be
    // disambiguated by writing it as "./some:path" — parse_host rejects it
    // loudly if the intent was TCP.
    if (port) {
      bool host_like = host == "localhost";
      if (!host_like) {
        in_addr probe{};
        host_like = ::inet_pton(AF_INET, host.c_str(), &probe) == 1;
      }
      if (host_like) {
        Endpoint ep;
        ep.kind = Endpoint::Kind::kTcp;
        ep.host = host;
        ep.port = static_cast<std::uint16_t>(*port);
        return ep;
      }
    }
  }
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = text;
  return ep;
}

Listener Listener::open(const Endpoint& ep, int backlog) {
  Listener listener;
  listener.ep_ = ep;
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    reclaim_stale_unix_path(ep.path, addr);
    listener.fd_ = make_socket(AF_UNIX);
    if (::bind(listener.fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind " + ep.path);
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = parse_host(ep.host);
    addr.sin_port = htons(ep.port);
    listener.fd_ = make_socket(AF_INET);
    const int one = 1;
    ::setsockopt(listener.fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    if (::bind(listener.fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind " + ep.to_string());
    }
    if (ep.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(listener.fd_.get(),
                        reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        throw_errno("getsockname " + ep.to_string());
      }
      listener.ep_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(listener.fd_.get(), backlog) != 0) {
    throw_errno("listen " + ep.to_string());
  }
  if (!fdio::set_nonblocking(listener.fd_.get())) {
    throw_errno("set_nonblocking " + ep.to_string());
  }
  return listener;
}

Listener::~Listener() {
  if (fd_ && ep_.kind == Endpoint::Kind::kUnix) {
    ::unlink(ep_.path.c_str());
  }
}

fdio::Fd Listener::accept_connection() {
  for (;;) {
    fdio::Fd conn(::accept4(fd_.get(), nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (conn) return conn;
    if (errno == EINTR) continue;
    // The peer can abort between the kernel queuing the connection and us
    // accepting it; that is its problem, not the accept loop's.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return fdio::Fd();
    }
    throw_errno("accept on " + ep_.to_string());
  }
}

namespace {

/// One dial attempt; on failure returns an empty Fd with errno set.
fdio::Fd try_connect(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_addr(ep.path);
    fdio::Fd fd = make_socket(AF_UNIX);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      return fdio::Fd();
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parse_host(ep.host);
  addr.sin_port = htons(ep.port);
  fdio::Fd fd = make_socket(AF_INET);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return fdio::Fd();
  }
  return fd;
}

/// Failures a not-yet-listening or briefly overloaded server produces;
/// anything else (EACCES, ENETUNREACH, a host that does not resolve...)
/// will not heal by waiting and fails fast even under retry.
bool transient_dial_errno(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == ECONNRESET ||
         err == ETIMEDOUT || err == EAGAIN || err == EINTR;
}

}  // namespace

fdio::Fd connect_endpoint(const Endpoint& ep) {
  fdio::Fd fd = try_connect(ep);
  if (!fd) throw_errno("connect " + ep.to_string());
  return fd;
}

fdio::Fd connect_endpoint_retry(const Endpoint& ep,
                                std::uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::uint32_t backoff_ms = 1;
  for (;;) {
    fdio::Fd fd = try_connect(ep);
    if (fd) return fd;
    if (!transient_dial_errno(errno) ||
        std::chrono::steady_clock::now() >= deadline) {
      throw_errno("connect " + ep.to_string());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 100u);
  }
}

}  // namespace distapx::net
