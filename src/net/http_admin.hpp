// Minimal HTTP/1.0 admin endpoint for a serving process.
//
// Five routes, all GET, all close-after-response:
//
//   /metrics  -> 200, Prometheus text exposition (version 0.0.4) of the
//                process registry's snapshot at scrape time
//   /healthz  -> 200 "ok" when serving; 503 "draining" once drain has
//                begun; 503 "starting" before the serving loop is up.
//                Health is read from the registry's `ready` / `draining`
//                gauges, which the socket server / daemon maintain — the
//                admin plane holds no state of its own.
//   /statusz  -> 200, human-oriented one-page process summary: build and
//                engine/protocol versions, uptime, the static facts the
//                serving CLI registered (lanes, cache dir/budget,
//                durability mode), live gauges, and process rusage.
//   /tracez   -> 200, the trace sink's retained traces (recent ring +
//                slowest-K per endpoint) as indented text trees; a plain
//                note when no sink is attached.
//   /vars     -> 200, raw "name value" lines of every metric — counters,
//                gauges, float gauges, and histogram count/sum plus
//                cumulative and recent-window p50/p95/p99 — for scripts
//                that don't want to parse Prometheus framing.
//
// The server runs one dedicated thread with its own poll(2) loop (the
// same listener/self-pipe primitives as the socket server), so /metrics
// stays scrapeable while every executor lane is busy — that is the point
// of an admin plane. HTTP support is deliberately narrow: GET only,
// request line + headers parsed just enough to route, 8 KiB request cap,
// idle connections reaped. Anything unexpected gets a plain-status
// response and the connection closed; this endpoint is for curl and
// scrapers on a trusted interface, not browsers.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "support/metrics.hpp"

namespace distapx::trace {
class TraceSink;
}

namespace distapx::net {

struct AdminOptions {
  std::string endpoint;  ///< "HOST:PORT" (port 0 ok) or a Unix socket path
  metrics::Registry* registry = nullptr;  ///< required; not owned
  std::uint32_t max_request_bytes = 8192;
  std::uint32_t idle_timeout_ms = 10000;
  /// Trace retention to render on /tracez; null renders a placeholder.
  const trace::TraceSink* trace_sink = nullptr;  ///< not owned
  /// Static "key: value" facts for /statusz (lanes, cache dir, ...);
  /// rendered in the order given.
  std::vector<std::pair<std::string, std::string>> status_fields;
};

/// Everything admin_handle_request needs beyond the registry. The server
/// builds one from its options; string-level tests build their own.
struct AdminContext {
  const trace::TraceSink* sink = nullptr;
  const std::vector<std::pair<std::string, std::string>>* status_fields =
      nullptr;
  std::chrono::steady_clock::time_point start_time{};  ///< for uptime
};

class AdminServer {
 public:
  /// Binds the endpoint (throws NetError on failure) but serves nothing
  /// until start().
  explicit AdminServer(AdminOptions opts);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// The bound endpoint — for TCP port 0 this carries the real port.
  [[nodiscard]] const Endpoint& endpoint() const noexcept;

  /// Spawns the serving thread. Call at most once.
  void start();
  /// Wakes the loop, joins the thread, closes all connections. Idempotent;
  /// also run by the destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Routing + response formatting, factored out of the socket loop so the
/// tests can drive it with plain strings. `request` is everything up to
/// (not necessarily including) the blank line; returns the full HTTP
/// response bytes.
std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry,
                                 const AdminContext& ctx);

/// Context-free overload (kept for callers that only need /metrics and
/// /healthz): /tracez reports no sink, /statusz shows zero uptime and no
/// static fields.
std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry);

}  // namespace distapx::net
