// Minimal HTTP/1.0 admin endpoint for a serving process.
//
// Two routes, both GET, both close-after-response:
//
//   /metrics  -> 200, Prometheus text exposition (version 0.0.4) of the
//                process registry's snapshot at scrape time
//   /healthz  -> 200 "ok" when serving; 503 "draining" once drain has
//                begun; 503 "starting" before the serving loop is up.
//                Health is read from the registry's `ready` / `draining`
//                gauges, which the socket server / daemon maintain — the
//                admin plane holds no state of its own.
//
// The server runs one dedicated thread with its own poll(2) loop (the
// same listener/self-pipe primitives as the socket server), so /metrics
// stays scrapeable while every executor lane is busy — that is the point
// of an admin plane. HTTP support is deliberately narrow: GET only,
// request line + headers parsed just enough to route, 8 KiB request cap,
// idle connections reaped. Anything unexpected gets a plain-status
// response and the connection closed; this endpoint is for curl and
// scrapers on a trusted interface, not browsers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/socket.hpp"
#include "support/metrics.hpp"

namespace distapx::net {

struct AdminOptions {
  std::string endpoint;  ///< "HOST:PORT" (port 0 ok) or a Unix socket path
  metrics::Registry* registry = nullptr;  ///< required; not owned
  std::uint32_t max_request_bytes = 8192;
  std::uint32_t idle_timeout_ms = 10000;
};

class AdminServer {
 public:
  /// Binds the endpoint (throws NetError on failure) but serves nothing
  /// until start().
  explicit AdminServer(AdminOptions opts);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// The bound endpoint — for TCP port 0 this carries the real port.
  [[nodiscard]] const Endpoint& endpoint() const noexcept;

  /// Spawns the serving thread. Call at most once.
  void start();
  /// Wakes the loop, joins the thread, closes all connections. Idempotent;
  /// also run by the destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Routing + response formatting, factored out of the socket loop so the
/// tests can drive it with plain strings. `request` is everything up to
/// (not necessarily including) the blank line; returns the full HTTP
/// response bytes.
std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry);

}  // namespace distapx::net
