#include "net/protocol.hpp"

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/result_cache.hpp"

namespace distapx::net {

namespace {

/// Consumes one u32-length-prefixed section from the front of `in`.
bool take_section(std::string_view& in, std::string& out) {
  if (in.size() < 4) return false;
  const std::uint32_t len = get_u32_le(in.data());
  in.remove_prefix(4);
  if (in.size() < len) return false;
  out.assign(in.substr(0, len));
  in.remove_prefix(len);
  return true;
}

}  // namespace

std::string hello_software_id() {
  return "distapx/engine-" + std::to_string(service::kEngineVersion);
}

std::string encode_hello(std::uint32_t version, std::string_view software) {
  std::string out;
  put_u32_le(out, version);
  out.append(software.empty() ? std::string_view(hello_software_id())
                              : software);
  return out;
}

bool decode_hello(std::string_view payload, std::uint32_t& version,
                  std::string& software) {
  if (payload.size() < 4) return false;
  version = get_u32_le(payload.data());
  software.assign(payload.substr(4));
  return true;
}

std::string encode_result(const ResultPayload& r) {
  // Per-section u32 lengths plus the frame's own u32 length field: a
  // result whose sections cannot all be represented must be refused
  // upstream (result_wire_size), never silently truncated here.
  if (result_wire_size(r) > kMaxWirePayload) {
    throw NetError("RESULT payload exceeds the u32 wire length field");
  }
  std::string out;
  out.reserve(12 + r.summary_csv.size() + r.runs_csv.size() +
              r.report_txt.size());
  put_u32_le(out, static_cast<std::uint32_t>(r.summary_csv.size()));
  out.append(r.summary_csv);
  put_u32_le(out, static_cast<std::uint32_t>(r.runs_csv.size()));
  out.append(r.runs_csv);
  put_u32_le(out, static_cast<std::uint32_t>(r.report_txt.size()));
  out.append(r.report_txt);
  return out;
}

std::uint64_t result_wire_size(const ResultPayload& r) noexcept {
  // Sizes are memory-resident string lengths, so the sum fits u64 with
  // room to spare.
  return 12 + static_cast<std::uint64_t>(r.summary_csv.size()) +
         r.runs_csv.size() + r.report_txt.size();
}

bool decode_result(std::string_view payload, ResultPayload& out) {
  std::string_view in = payload;
  if (!take_section(in, out.summary_csv)) return false;
  if (!take_section(in, out.runs_csv)) return false;
  if (!take_section(in, out.report_txt)) return false;
  return in.empty();
}

std::string encode_result_trace(const ResultPayload& r,
                                std::string_view trace_txt) {
  if (result_trace_wire_size(r, trace_txt) > kMaxWirePayload) {
    throw NetError("RESULTTRACE payload exceeds the u32 wire length field");
  }
  std::string out = encode_result(r);
  put_u32_le(out, static_cast<std::uint32_t>(trace_txt.size()));
  out.append(trace_txt);
  return out;
}

std::uint64_t result_trace_wire_size(const ResultPayload& r,
                                     std::string_view trace_txt) noexcept {
  return result_wire_size(r) + 4 + trace_txt.size();
}

bool decode_result_trace(std::string_view payload, ResultPayload& out,
                         std::string& trace_txt) {
  std::string_view in = payload;
  if (!take_section(in, out.summary_csv)) return false;
  if (!take_section(in, out.runs_csv)) return false;
  if (!take_section(in, out.report_txt)) return false;
  if (!take_section(in, trace_txt)) return false;
  return in.empty();
}

}  // namespace distapx::net
