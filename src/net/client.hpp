// Blocking request/response client for the framed serving protocol.
//
// One Client is one connection: connect() dials the endpoint and performs
// the HELLO exchange, then submit()/ping()/stats()/shutdown() each write
// one request frame and block until the matching response frame arrives.
// The connection is reusable across requests (the CLI's loadgen driver
// submits repeatedly over one connection per worker).
//
// Pipelining: send_submit()/recv_submit() split the round trip, so a
// client may keep several SUBMITs in flight on one connection; the
// server answers them in submit order (its per-connection FIFO
// contract), so the Nth recv_submit() matches the Nth send_submit().
// submit() is exactly send_submit() + recv_submit().
//
// Failures split into two kinds on purpose:
//   - transport/protocol trouble (dial failure, connection reset, a frame
//     that does not decode) throws NetError — the connection is dead;
//   - a server-side ERR frame is a *payload*, returned in
//     SubmitOutcome::error — the connection stays usable (a malformed job
//     file must not cost the client its session).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "support/fdio.hpp"

namespace distapx::net {

struct SubmitOutcome {
  bool ok = false;
  ResultPayload result;   ///< filled when ok
  std::string error;      ///< the server's ERR text when !ok
  std::string trace_txt;  ///< rendered span tree (submit_traced only)
};

class Client {
 public:
  /// Dials and exchanges HELLOs. Throws NetError on dial failure, a
  /// non-HELLO reply, or a protocol-version mismatch.
  static Client connect(const Endpoint& ep);

  /// connect(), but transient dial failures — the server has not bound
  /// yet (ENOENT on a Unix path, ECONNREFUSED on TCP) or the listen
  /// backlog hiccuped (ECONNRESET, ETIMEDOUT) — are retried with
  /// exponential backoff until ~timeout_ms has elapsed, then the last
  /// error is thrown. Removes the "sleep until the socket file appears"
  /// startup race from scripts; timeout_ms = 0 behaves like connect().
  static Client connect_retry(const Endpoint& ep, std::uint32_t timeout_ms);

  /// Submits one job file (its raw bytes). RESULT and ERR are the two
  /// expected replies; anything else throws NetError.
  SubmitOutcome submit(std::string_view job_file_text);

  /// submit(), but over SUBMITTRACE: the server echoes the job's span
  /// tree in SubmitOutcome::trace_txt alongside the (byte-identical)
  /// result sections. RESULTTRACE and ERR are the expected replies.
  SubmitOutcome submit_traced(std::string_view job_file_text);

  /// Pipelining half 1: writes one SUBMIT frame without waiting.
  void send_submit(std::string_view job_file_text);

  /// Pipelining half 2: blocks for the oldest unanswered SUBMIT's
  /// RESULT/ERR. Call exactly once per send_submit(), in any interleaving
  /// that never reads ahead of what was sent.
  SubmitOutcome recv_submit();

  /// PING -> kPong round trip; throws NetError on anything else.
  void ping();

  /// STATSREQ -> the server's "key value\n" counter lines.
  std::string stats();

  /// Asks the server to drain and stop; returns after the ack. The server
  /// may refuse (ERR) when shutdown-over-the-wire is disabled — that
  /// refusal is returned, not thrown.
  SubmitOutcome shutdown();

  /// The server's HELLO software id (after connect()).
  [[nodiscard]] const std::string& server_software() const noexcept {
    return server_software_;
  }

 private:
  explicit Client(fdio::Fd fd) : fd_(std::move(fd)), reader_(kMaxResponse) {}

  /// HELLO exchange over a freshly dialed fd (shared by both connects).
  static Client handshake(fdio::Fd fd);

  /// Writes one frame; throws NetError on a short write.
  void send(FrameType type, std::string_view payload);
  /// Blocks until one complete frame arrives; throws NetError on EOF,
  /// read errors, or an undecodable byte stream.
  Frame receive();

  /// Responses are bounded by the job file that produced them (runs CSV:
  /// one line per seed); 256 MiB is far above any real reply and merely
  /// stops a rogue server from ballooning client memory.
  static constexpr std::size_t kMaxResponse = 256u << 20;

  fdio::Fd fd_;
  FrameReader reader_;
  std::string server_software_;
};

}  // namespace distapx::net
