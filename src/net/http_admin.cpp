#include "net/http_admin.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace distapx::net {

namespace {

std::string http_response(int status, const char* reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string plain(int status, const char* reason, std::string_view body) {
  return http_response(status, reason, "text/plain; charset=utf-8", body);
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry) {
  // Request line: METHOD SP TARGET SP VERSION. Only the first line
  // matters; headers are accepted and ignored.
  const std::size_t eol = request.find("\r\n");
  const std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return plain(400, "Bad Request", "bad request\n");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view method = line.substr(0, sp1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? line.substr(sp1 + 1)
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    return plain(405, "Method Not Allowed", "method not allowed\n");
  }
  // Strip any query string; the endpoints take no parameters.
  const std::size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) target = target.substr(0, qmark);

  if (target == "/metrics") {
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         metrics::render_prometheus(registry.snapshot()));
  }
  if (target == "/healthz") {
    const metrics::Snapshot snap = registry.snapshot();
    if (snap.gauge_or("draining") != 0) {
      return plain(503, "Service Unavailable", "draining\n");
    }
    if (snap.gauge_or("ready") == 0) {
      return plain(503, "Service Unavailable", "starting\n");
    }
    return plain(200, "OK", "ok\n");
  }
  return plain(404, "Not Found", "not found\n");
}

struct AdminServer::Impl {
  AdminOptions opts;
  Listener listener;
  fdio::Pipe wake;
  std::thread thread;
  std::atomic<bool> stopping{false};
  bool started = false;

  struct Conn {
    fdio::Fd fd;
    std::string in;       ///< request bytes until the blank line
    std::string out;      ///< response bytes not yet written
    std::size_t sent = 0;
    bool responding = false;
    std::uint64_t last_activity_ms = 0;
  };
  std::list<Conn> conns;

  explicit Impl(AdminOptions o)
      : opts(std::move(o)),
        listener(Listener::open(parse_endpoint(opts.endpoint))) {
    DISTAPX_ENSURE_MSG(opts.registry != nullptr,
                       "AdminServer requires a registry");
  }

  void run() {
    while (!stopping.load(std::memory_order_acquire)) {
      std::vector<pollfd> pfds;
      pfds.push_back({wake.read_fd(), POLLIN, 0});
      pfds.push_back({listener.fd(), POLLIN, 0});
      for (const Conn& c : conns) {
        pfds.push_back({c.fd.get(),
                        static_cast<short>(c.responding ? POLLOUT : POLLIN),
                        0});
      }
      // Cap the wait so idle-connection reaping runs even with no events.
      const int timeout =
          conns.empty() ? -1 : static_cast<int>(opts.idle_timeout_ms);
      if (::poll(pfds.data(), pfds.size(), timeout) < 0) {
        if (errno == EINTR) continue;
        logx::error("admin_poll_failed", {{"errno", errno}});
        return;
      }
      if (pfds[0].revents != 0) wake.drain();
      if (pfds[1].revents & POLLIN) accept_new();

      const std::uint64_t now = now_ms();
      std::size_t i = 2;
      for (auto it = conns.begin(); it != conns.end(); ++i) {
        const short re = pfds[i].revents;
        bool close = false;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          close = true;
        } else if (re & POLLIN) {
          close = !read_request(*it);
          it->last_activity_ms = now;
        } else if (re & POLLOUT) {
          close = !write_response(*it);
          it->last_activity_ms = now;
        } else if (now - it->last_activity_ms > opts.idle_timeout_ms) {
          close = true;
        }
        it = close ? conns.erase(it) : std::next(it);
      }
    }
  }

  void accept_new() {
    for (;;) {
      fdio::Fd fd = listener.accept_connection();
      if (!fd.valid()) break;
      Conn c;
      c.fd = std::move(fd);
      c.last_activity_ms = now_ms();
      conns.push_back(std::move(c));
    }
  }

  /// False when the connection should close. A complete request (blank
  /// line seen) flips the conn to response mode.
  bool read_request(Conn& c) {
    char buf[2048];
    for (;;) {
      const ssize_t n = fdio::read_some(c.fd.get(), buf, sizeof buf);
      if (n < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      if (n == 0) return false;  // EOF before a full request
      c.in.append(buf, static_cast<std::size_t>(n));
      if (c.in.size() > opts.max_request_bytes) {
        c.out = plain(400, "Bad Request", "request too large\n");
        c.responding = true;
        return true;
      }
      if (c.in.find("\r\n\r\n") != std::string::npos ||
          c.in.find("\n\n") != std::string::npos) {
        c.out = admin_handle_request(c.in, *opts.registry);
        c.responding = true;
        return true;
      }
    }
  }

  /// False when the connection should close (done or error). Nonblocking
  /// fd, so loop until EAGAIN or completion.
  bool write_response(Conn& c) {
    while (c.sent < c.out.size()) {
      const ssize_t n = ::send(c.fd.get(), c.out.data() + c.sent,
                               c.out.size() - c.sent, MSG_NOSIGNAL);
      if (n < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      c.sent += static_cast<std::size_t>(n);
    }
    return false;  // fully written -> close (HTTP/1.0 semantics)
  }
};

AdminServer::AdminServer(AdminOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

AdminServer::~AdminServer() { stop(); }

const Endpoint& AdminServer::endpoint() const noexcept {
  return impl_->listener.endpoint();
}

void AdminServer::start() {
  DISTAPX_ENSURE_MSG(!impl_->started, "AdminServer::start called twice");
  impl_->started = true;
  impl_->thread = std::thread([this] { impl_->run(); });
  logx::info("admin_listening",
             {{"endpoint", impl_->listener.endpoint().to_string()}});
}

void AdminServer::stop() {
  if (!impl_->started) return;
  if (!impl_->stopping.exchange(true, std::memory_order_acq_rel)) {
    impl_->wake.poke();
  }
  if (impl_->thread.joinable()) impl_->thread.join();
}

}  // namespace distapx::net
