#include "net/http_admin.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <list>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "service/result_cache.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace distapx::net {

namespace {

std::string http_response(int status, const char* reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string plain(int status, const char* reason, std::string_view body) {
  return http_response(status, reason, "text/plain; charset=utf-8", body);
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// The /statusz page: identity and configuration a human reaches for
/// first during an incident, ahead of any metric math.
std::string render_statusz(const metrics::Snapshot& snap,
                           const AdminContext& ctx) {
  std::string out = "distapx server status\n\n";
  out += "build: " __VERSION__ "\n";
  out += "engine_version: " + std::to_string(service::kEngineVersion) + '\n';
  out += "protocol_version: " + std::to_string(kProtocolVersion) + '\n';
  out += "wire_version: " + std::to_string(kWireVersion) + '\n';
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - ctx.start_time);
  out += "uptime_seconds: " +
         std::to_string(uptime.count() > 0 ? uptime.count() : 0) + '\n';
  if (ctx.status_fields != nullptr) {
    for (const auto& [key, value] : *ctx.status_fields) {
      out += key + ": " + value + '\n';
    }
  }
  out += '\n';
  const auto gauge_line = [&](const char* name) {
    out += std::string(name) + ": " +
           std::to_string(snap.gauge_or(name)) + '\n';
  };
  gauge_line("ready");
  gauge_line("draining");
  gauge_line("connections_open");
  gauge_line("queue_depth");
  out += '\n';
  out += "process_cpu_seconds_total: " +
         format_double(snap.float_or("process_cpu_seconds_total")) + '\n';
  gauge_line("process_max_rss_bytes");
  gauge_line("process_minor_faults_total");
  gauge_line("process_major_faults_total");
  gauge_line("process_open_fds");
  if (ctx.sink != nullptr) {
    out += "\ntraces_published: " +
           std::to_string(ctx.sink->published_total()) + '\n';
  }
  return out;
}

/// The /vars page: every metric as one "name value" line — counters and
/// gauges verbatim, histograms expanded into count/sum and quantiles,
/// both cumulative and over the recent sampling windows.
std::string render_vars(const metrics::Snapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    out += c.name + ' ' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : snap.gauges) {
    out += g.name + ' ' + std::to_string(g.value) + '\n';
  }
  for (const auto& f : snap.floats) {
    out += f.name + ' ' + format_double(f.value) + '\n';
  }
  for (const auto& h : snap.histograms) {
    out += h.name + "_count " + std::to_string(h.hist.count) + '\n';
    out += h.name + "_sum " + format_double(h.hist.sum) + '\n';
    out += h.name + "_p50 " + format_double(h.hist.quantile(0.50)) + '\n';
    out += h.name + "_p95 " + format_double(h.hist.quantile(0.95)) + '\n';
    out += h.name + "_p99 " + format_double(h.hist.quantile(0.99)) + '\n';
    out += h.name + "_recent_count " + std::to_string(h.recent.count) + '\n';
    out +=
        h.name + "_recent_p50 " + format_double(h.recent.quantile(0.50)) + '\n';
    out +=
        h.name + "_recent_p95 " + format_double(h.recent.quantile(0.95)) + '\n';
    out +=
        h.name + "_recent_p99 " + format_double(h.recent.quantile(0.99)) + '\n';
  }
  return out;
}

}  // namespace

std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry) {
  AdminContext ctx;
  ctx.start_time = std::chrono::steady_clock::now();
  return admin_handle_request(request, registry, ctx);
}

std::string admin_handle_request(std::string_view request,
                                 const metrics::Registry& registry,
                                 const AdminContext& ctx) {
  // Request line: METHOD SP TARGET SP VERSION. Only the first line
  // matters; headers are accepted and ignored.
  const std::size_t eol = request.find("\r\n");
  const std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return plain(400, "Bad Request", "bad request\n");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view method = line.substr(0, sp1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? line.substr(sp1 + 1)
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    return plain(405, "Method Not Allowed", "method not allowed\n");
  }
  // Strip any query string; the endpoints take no parameters.
  const std::size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) target = target.substr(0, qmark);

  if (target == "/metrics") {
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         metrics::render_prometheus(registry.snapshot()));
  }
  if (target == "/healthz") {
    const metrics::Snapshot snap = registry.snapshot();
    if (snap.gauge_or("draining") != 0) {
      return plain(503, "Service Unavailable", "draining\n");
    }
    if (snap.gauge_or("ready") == 0) {
      return plain(503, "Service Unavailable", "starting\n");
    }
    return plain(200, "OK", "ok\n");
  }
  if (target == "/statusz") {
    return plain(200, "OK", render_statusz(registry.snapshot(), ctx));
  }
  if (target == "/vars") {
    return plain(200, "OK", render_vars(registry.snapshot()));
  }
  if (target == "/tracez") {
    if (ctx.sink == nullptr) {
      return plain(200, "OK", "tracing sink not attached\n");
    }
    return plain(200, "OK", trace::render_tracez(*ctx.sink));
  }
  return plain(404, "Not Found", "not found\n");
}

struct AdminServer::Impl {
  AdminOptions opts;
  Listener listener;
  fdio::Pipe wake;
  std::thread thread;
  std::atomic<bool> stopping{false};
  bool started = false;

  struct Conn {
    fdio::Fd fd;
    std::string in;       ///< request bytes until the blank line
    std::string out;      ///< response bytes not yet written
    std::size_t sent = 0;
    bool responding = false;
    std::uint64_t last_activity_ms = 0;
  };
  std::list<Conn> conns;
  std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();

  explicit Impl(AdminOptions o)
      : opts(std::move(o)),
        listener(Listener::open(parse_endpoint(opts.endpoint))) {
    DISTAPX_ENSURE_MSG(opts.registry != nullptr,
                       "AdminServer requires a registry");
  }

  [[nodiscard]] AdminContext context() const {
    AdminContext ctx;
    ctx.sink = opts.trace_sink;
    ctx.status_fields = &opts.status_fields;
    ctx.start_time = start_time;
    return ctx;
  }

  void run() {
    while (!stopping.load(std::memory_order_acquire)) {
      std::vector<pollfd> pfds;
      pfds.push_back({wake.read_fd(), POLLIN, 0});
      pfds.push_back({listener.fd(), POLLIN, 0});
      for (const Conn& c : conns) {
        pfds.push_back({c.fd.get(),
                        static_cast<short>(c.responding ? POLLOUT : POLLIN),
                        0});
      }
      // Cap the wait so idle-connection reaping runs even with no events.
      const int timeout =
          conns.empty() ? -1 : static_cast<int>(opts.idle_timeout_ms);
      if (::poll(pfds.data(), pfds.size(), timeout) < 0) {
        if (errno == EINTR) continue;
        logx::error("admin_poll_failed", {{"errno", errno}});
        return;
      }
      if (pfds[0].revents != 0) wake.drain();
      if (pfds[1].revents & POLLIN) accept_new();

      const std::uint64_t now = now_ms();
      std::size_t i = 2;
      for (auto it = conns.begin(); it != conns.end(); ++i) {
        const short re = pfds[i].revents;
        bool close = false;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          close = true;
        } else if (re & POLLIN) {
          close = !read_request(*it);
          it->last_activity_ms = now;
        } else if (re & POLLOUT) {
          close = !write_response(*it);
          it->last_activity_ms = now;
        } else if (now - it->last_activity_ms > opts.idle_timeout_ms) {
          close = true;
        }
        it = close ? conns.erase(it) : std::next(it);
      }
    }
  }

  void accept_new() {
    for (;;) {
      fdio::Fd fd = listener.accept_connection();
      if (!fd.valid()) break;
      Conn c;
      c.fd = std::move(fd);
      c.last_activity_ms = now_ms();
      conns.push_back(std::move(c));
    }
  }

  /// False when the connection should close. A complete request (blank
  /// line seen) flips the conn to response mode.
  bool read_request(Conn& c) {
    char buf[2048];
    for (;;) {
      const ssize_t n = fdio::read_some(c.fd.get(), buf, sizeof buf);
      if (n < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      if (n == 0) return false;  // EOF before a full request
      c.in.append(buf, static_cast<std::size_t>(n));
      if (c.in.size() > opts.max_request_bytes) {
        c.out = plain(400, "Bad Request", "request too large\n");
        c.responding = true;
        return true;
      }
      if (c.in.find("\r\n\r\n") != std::string::npos ||
          c.in.find("\n\n") != std::string::npos) {
        c.out = admin_handle_request(c.in, *opts.registry, context());
        c.responding = true;
        return true;
      }
    }
  }

  /// False when the connection should close (done or error). Nonblocking
  /// fd, so loop until EAGAIN or completion.
  bool write_response(Conn& c) {
    while (c.sent < c.out.size()) {
      const ssize_t n = ::send(c.fd.get(), c.out.data() + c.sent,
                               c.out.size() - c.sent, MSG_NOSIGNAL);
      if (n < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      c.sent += static_cast<std::size_t>(n);
    }
    return false;  // fully written -> close (HTTP/1.0 semantics)
  }
};

AdminServer::AdminServer(AdminOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

AdminServer::~AdminServer() { stop(); }

const Endpoint& AdminServer::endpoint() const noexcept {
  return impl_->listener.endpoint();
}

void AdminServer::start() {
  DISTAPX_ENSURE_MSG(!impl_->started, "AdminServer::start called twice");
  impl_->started = true;
  impl_->thread = std::thread([this] { impl_->run(); });
  logx::info("admin_listening",
             {{"endpoint", impl_->listener.endpoint().to_string()}});
}

void AdminServer::stop() {
  if (!impl_->started) return;
  if (!impl_->stopping.exchange(true, std::memory_order_acq_rel)) {
    impl_->wake.poke();
  }
  if (impl_->thread.joinable()) impl_->thread.join();
}

}  // namespace distapx::net
