// distapx_cli — run any of the paper's algorithms on a generated or
// file-loaded graph, printing the solution and the CONGEST accounting;
// or serve a whole mixed-workload job file through the batch server.
//
// Usage:
//   distapx_cli <algorithm> [options]
//   distapx_cli batch <jobfile> [--threads N] [--cache DIR]
//                     [--cache-budget SIZE] [--durability none|full]
//                     [--csv F] [--json F] [--runs F] [--quiet]
//   distapx_cli serve <spool-dir> [--cache-dir DIR] [--cache-budget SIZE]
//                     [--threads N] [--poll-ms M] [--max-files K] [--once]
//                     [--durability none|full] [--admin ADDR]
//                     [--log-level LEVEL] [--slow-ms M]
//   distapx_cli serve --listen <path|host:port> [--cache-dir DIR]
//                     [--cache-budget SIZE] [--journal PATH] [--threads N]
//                     [--lanes N] [--max-requests K] [--idle-timeout-ms M]
//                     [--no-remote-shutdown] [--durability none|full]
//                     [--admin ADDR] [--log-level LEVEL] [--slow-ms M]
//   distapx_cli submit <path|host:port> <jobfile> [--summary F] [--runs F]
//                     [--report F] [--connect-timeout-ms M] [--trace]
//                     [--quiet]
//   distapx_cli submit <path|host:port> {--ping | --stats | --shutdown}
//   distapx_cli loadgen <path|host:port> <jobfile> [--clients K]
//                     [--repeat R] [--pipeline P] [--connect-timeout-ms M]
//                     [--quiet]
//   distapx_cli cache <dir> {stats | ls | verify [--quarantine|--delete] |
//                     gc --budget SIZE | clear | prewarm | checkpoint}
//
// Algorithms:
//   luby           Luby's MIS
//   nmis           nearly-maximal IS (Sec 3.1)
//   maxis-alg2     Δ-approx weighted MaxIS, randomized (Thm 2.3)
//   maxis-alg3     Δ-approx weighted MaxIS, deterministic (Sec 2.3)
//   mwm-lr         2-approx MWM, randomized (Thm 2.10)
//   mwm-lr-det     2-approx MWM, deterministic (Thm 2.10)
//   mcm-2eps       (2+ε)-approx MCM (Thm 3.2)
//   mwm-2eps       (2+ε)-approx MWM (App B.1)
//   mcm-1eps       (1+ε)-approx MCM (Thm B.12)
//   proposal       (2+ε)-approx MCM via proposals (App B.4)
//
// Options:
//   --graph FILE       load edge list (see graph/io.hpp)
//   --gen SPEC         generator spec (full list: graph/genspec.hpp)
//   --seed S           run seed (default 1)
//   --eps E            epsilon for the (2+ε)/(1+ε) algorithms
//   --maxw W           random integer weights in [1, W] (default 100)
//   --out FILE         write the solution (ids, one per line)
#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/genspec.hpp"
#include "graph/io.hpp"
#include "net/client.hpp"
#include "net/http_admin.hpp"
#include "net/socket.hpp"
#include "matching/lr_matching.hpp"
#include "matching/lr_matching_det.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/luby.hpp"
#include "service/batch_server.hpp"
#include "service/cache_manager.hpp"
#include "service/daemon.hpp"
#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "service/socket_server.hpp"
#include "support/assert.hpp"
#include "support/fsutil.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/parse.hpp"
#include "support/procstat.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

using namespace distapx;

namespace {

struct Options {
  std::string algorithm;
  std::string graph_file;
  std::string gen_spec = "gnp:200:0.04";
  std::string out_file;
  std::uint64_t seed = 1;
  double eps = 0.25;
  Weight max_w = 100;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\nrun with no arguments for usage\n";
  std::exit(2);
}

std::uint64_t flag_uint(const std::string& flag, const std::string& tok,
                        std::uint64_t max_value = UINT64_MAX) {
  const auto v = parse_uint_strict(tok, max_value);
  if (!v) usage_error(flag + " " + tok + " is not a non-negative integer");
  return *v;
}

double flag_double(const std::string& flag, const std::string& tok) {
  const auto v = parse_double_strict(tok);
  if (!v) usage_error(flag + " " + tok + " is not a finite number");
  return *v;
}

std::uint64_t flag_size(const std::string& flag, const std::string& tok) {
  const auto v = parse_size_bytes(tok);
  if (!v) {
    usage_error(flag + " " + tok +
                " is not a byte size (integer with optional k/m/g suffix)");
  }
  return *v;
}

/// Declarative option table: each subcommand registers its flags once —
/// typed target, value placeholder, range — and shares one parse loop,
/// uniform unknown-flag / missing-value / out-of-range diagnostics, and a
/// usage line generated from the same table parse() accepts, so the two
/// can never drift. Positional arguments stay with the subcommand; the
/// table covers everything that starts with "--".
class FlagSet {
 public:
  /// `cmd` names the subcommand in diagnostics ("unknown serve flag");
  /// `positionals` is the head of the generated usage line.
  FlagSet(std::string cmd, std::string positionals)
      : cmd_(std::move(cmd)), positionals_(std::move(positionals)) {}

  /// String-valued flag (paths, addresses, generator specs).
  FlagSet& str(const char* name, const char* arg, std::string* out) {
    return add(name, arg, [out](const std::string&, const std::string& tok) {
      *out = tok;
    });
  }

  /// Non-negative integer flag with an inclusive cap; `min_value` lets a
  /// flag reject 0 without a bespoke check.
  template <typename T>
  FlagSet& uint(const char* name, const char* arg, T* out,
                std::uint64_t max_value = UINT64_MAX,
                std::uint64_t min_value = 0) {
    return add(name, arg,
               [out, max_value, min_value](const std::string& flag,
                                           const std::string& tok) {
                 const std::uint64_t v = flag_uint(flag, tok, max_value);
                 if (v < min_value) usage_error(flag + " must be positive");
                 *out = static_cast<T>(v);
               });
  }

  /// Byte-size flag (integer with optional k/m/g suffix). `seen` reports
  /// that the flag appeared, for subcommands where it is mandatory.
  template <typename T>
  FlagSet& size(const char* name, const char* arg, T* out,
                bool* seen = nullptr) {
    return add(name, arg,
               [out, seen](const std::string& flag, const std::string& tok) {
                 *out = static_cast<T>(flag_size(flag, tok));
                 if (seen != nullptr) *seen = true;
               });
  }

  FlagSet& real(const char* name, const char* arg, double* out) {
    return add(name, arg,
               [out](const std::string& flag, const std::string& tok) {
                 *out = flag_double(flag, tok);
               });
  }

  /// Valueless flag; writes `value` (so --no-X can clear a default-on
  /// option).
  FlagSet& toggle(const char* name, bool* out, bool value = true) {
    return add(name, "", [out, value](const std::string&, const std::string&) {
      *out = value;
    });
  }

  /// Parses the remaining argv tokens: every token must be a registered
  /// flag (plus its value). Unknown flags die with the generated usage
  /// line so the operator sees what this subcommand does accept.
  void parse(const std::vector<std::string>& args) const {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& flag = args[i];
      const Spec* spec = find(flag);
      if (spec == nullptr) {
        usage_error("unknown " + (cmd_.empty() ? "" : cmd_ + " ") + "flag " +
                    flag + "\nusage: " + usage_line());
      }
      std::string value;
      if (!spec->arg.empty()) {
        if (i + 1 >= args.size()) usage_error("missing value for " + flag);
        value = args[++i];
      }
      spec->apply(flag, value);
    }
  }

  /// "distapx_cli <positionals> [--flag ARG]..." — derived from the table.
  [[nodiscard]] std::string usage_line() const {
    std::string line = "distapx_cli " + positionals_;
    for (const auto& s : specs_) {
      line += " [" + s.name + (s.arg.empty() ? "" : " " + s.arg) + "]";
    }
    return line;
  }

 private:
  struct Spec {
    std::string name;
    std::string arg;  ///< value placeholder; empty = toggle
    std::function<void(const std::string&, const std::string&)> apply;
  };

  FlagSet& add(const char* name, const char* arg,
               std::function<void(const std::string&, const std::string&)> fn) {
    specs_.push_back({name, arg, std::move(fn)});
    return *this;
  }

  [[nodiscard]] const Spec* find(const std::string& flag) const {
    for (const auto& s : specs_) {
      if (s.name == flag) return &s;
    }
    return nullptr;
  }

  std::string cmd_;
  std::string positionals_;
  std::vector<Spec> specs_;
};

/// argv[first..argc) as strings, for FlagSet::parse.
std::vector<std::string> arg_rest(int argc, char** argv, int first) {
  std::vector<std::string> rest;
  for (int i = first; i < argc; ++i) rest.emplace_back(argv[i]);
  return rest;
}

/// --durability for the writing subcommands; empty = keep the default
/// (full). "none" turns every fsync in the publication paths into a
/// no-op — benchmarks and throwaway runs only.
void apply_durability(const std::string& spec) {
  if (spec.empty()) return;
  const auto level = fsutil::parse_durability(spec);
  if (!level) {
    usage_error("--durability " + spec + " is not one of none|full");
  }
  fsutil::set_durability(*level);
}

/// Mirrors the process-wide fsync count into `registry`'s fsync_total
/// counter for this scope (serving loops, cache commands), detaching
/// before the registry dies.
struct FsyncCounterScope {
  explicit FsyncCounterScope(metrics::Registry& registry) {
    fsutil::set_fsync_counter(&registry.counter("fsync_total"));
  }
  ~FsyncCounterScope() { fsutil::set_fsync_counter(nullptr); }
  FsyncCounterScope(const FsyncCounterScope&) = delete;
  FsyncCounterScope& operator=(const FsyncCounterScope&) = delete;
};

/// --log-level for the serving subcommands; empty = keep the default.
void apply_log_level(const std::string& spec) {
  if (spec.empty()) return;
  const auto level = logx::parse_level(spec);
  if (!level) {
    usage_error("--log-level " + spec +
                " is not one of debug|info|warn|error|off");
  }
  logx::set_level(*level);
}

/// --admin for the serving subcommands: binds and starts the HTTP admin
/// endpoint on `registry` and prints the bound address ("admin on ...",
/// the line CI scrapes for the ephemeral port). `admin` must be declared
/// after the registry and server it observes, so it stops first.
void start_admin(
    const std::string& addr, metrics::Registry& registry,
    std::optional<net::AdminServer>& admin,
    const trace::TraceSink* trace_sink = nullptr,
    std::vector<std::pair<std::string, std::string>> status_fields = {}) {
  if (addr.empty()) return;
  try {
    net::AdminOptions aopts;
    aopts.endpoint = addr;
    aopts.registry = &registry;
    aopts.trace_sink = trace_sink;
    aopts.status_fields = std::move(status_fields);
    admin.emplace(std::move(aopts));
    admin->start();
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
  std::cout << "admin on " << admin->endpoint().to_string() << "\n"
            << std::flush;
}

void print_metrics(const sim::RunMetrics& m) {
  std::cout << "  rounds=" << m.rounds << " messages=" << m.messages
            << " total_bits=" << m.total_bits
            << " max_bits/edge/round=" << m.max_edge_bits;
  if (m.bandwidth_cap > 0) std::cout << " (cap " << m.bandwidth_cap << ")";
  std::cout << "\n";
}

void write_ids(const std::string& path, const std::vector<NodeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (NodeId v : ids) os << v << '\n';
  std::cout << "  solution written to " << path << "\n";
}

void write_edges(const std::string& path, const std::vector<EdgeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (EdgeId e : ids) os << e << '\n';
  std::cout << "  solution written to " << path << "\n";
}

void write_table(const std::string& path, const Table& table, bool json) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) usage_error("cannot write " + path);
  if (json) {
    table.write_json(os);
  } else {
    table.write_csv(os);
  }
  std::cout << "wrote " << path << "\n";
}

/// `distapx_cli batch <jobfile>`: serve a mixed workload through the batch
/// server and emit the per-job summary (and optionally per-run rows).
int run_batch(int argc, char** argv) {
  if (argc < 3) {
    usage_error("batch needs a job file (one key=value job per line)");
  }
  const std::string job_file = argv[2];
  service::BatchOptions batch_opts;
  std::string csv_file, json_file, runs_file, cache_dir, durability;
  std::uint64_t cache_budget = 0;
  bool quiet = false;
  FlagSet flags("batch", "batch <jobfile>");
  flags.uint("--threads", "N", &batch_opts.threads, 1u << 16)
      .str("--cache", "DIR", &cache_dir)
      .size("--cache-budget", "SIZE", &cache_budget)
      .str("--durability", "LEVEL", &durability)
      .str("--csv", "F", &csv_file)
      .str("--json", "F", &json_file)
      .str("--runs", "F", &runs_file)
      .toggle("--quiet", &quiet);
  flags.parse(arg_rest(argc, argv, 3));
  apply_durability(durability);

  if (cache_budget != 0 && cache_dir.empty()) {
    usage_error("--cache-budget needs --cache DIR");
  }
  std::optional<service::ResultCache> cache;
  if (!cache_dir.empty()) {
    try {
      cache.emplace(cache_dir, cache_budget);
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
    batch_opts.cache = &*cache;
  }

  service::BatchServer server(batch_opts);
  try {
    server.submit_all(service::load_job_file(job_file));
  } catch (const std::exception& e) {
    std::cerr << "error: " << job_file << ": " << e.what() << "\n";
    return 2;
  }
  if (server.num_jobs() == 0) {
    std::cerr << "error: " << job_file << " contains no jobs\n";
    return 2;
  }

  service::BatchResult result;
  try {
    result = server.serve();
  } catch (const std::exception& e) {
    // e.g. a CONGEST violation under an enforcing policy mid-batch.
    std::cerr << "error: batch failed: " << e.what() << "\n";
    return 1;
  }
  const Table summary = service::summary_table(result);
  const Table runs = service::runs_table(result);
  if (!quiet) {
    summary.print(std::cout);
    std::cout << result.total_runs << " runs over " << result.jobs.size()
              << " jobs on " << result.threads_used << " threads in "
              << Table::fmt(result.wall_seconds, 3) << "s\n";
    if (cache) {
      std::cout << "cache: " << result.cache_hits << " hits, "
                << result.computed << " computed (hit rate "
                << Table::fmt(result.total_runs == 0
                                  ? 0.0
                                  : static_cast<double>(result.cache_hits) /
                                        static_cast<double>(result.total_runs),
                              3)
                << ") in " << cache_dir << "\n";
    }
  }
  write_table(csv_file, summary, /*json=*/false);
  write_table(json_file, summary, /*json=*/true);
  write_table(runs_file, runs, /*json=*/false);
  return 0;
}

int run_serve_socket(int argc, char** argv);

/// `distapx_cli serve <spool-dir>`: the long-lived spool-watching daemon.
/// Results land in <spool>/done, quarantined files in <spool>/failed; stop
/// it with SIGINT, `--max-files`, `--once`, or `touch <spool>/stop`.
int run_serve(int argc, char** argv) {
  if (argc < 3) {
    usage_error("serve needs a spool directory or --listen <path|host:port>");
  }
  // The socket server and the spool daemon are alternative front doors to
  // the same serve path; --listen anywhere selects the socket server.
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--listen") return run_serve_socket(argc, argv);
  }
  service::DaemonOptions opts;
  opts.spool_dir = argv[2];
  std::string admin_addr, log_level, durability;
  bool once = false;
  FlagSet flags("serve", "serve <spool-dir>");
  flags.str("--cache-dir", "DIR", &opts.cache_dir)
      .size("--cache-budget", "SIZE", &opts.cache_budget)
      .uint("--threads", "N", &opts.threads, 1u << 16)
      .uint("--poll-ms", "M", &opts.poll_ms, 1u << 24)
      .uint("--max-files", "K", &opts.max_files)
      .toggle("--once", &once)
      .str("--durability", "LEVEL", &durability)
      .str("--admin", "ADDR", &admin_addr)
      .str("--log-level", "LEVEL", &log_level)
      .uint("--slow-ms", "M", &opts.slow_ms, 1u << 30);
  flags.parse(arg_rest(argc, argv, 3));
  apply_log_level(log_level);
  apply_durability(durability);

  // One process registry shared by daemon, cache, and batch servers;
  // declared before the daemon and admin endpoint that borrow it.
  metrics::Registry registry;
  const FsyncCounterScope fsync_scope(registry);
  procstat::install_process_metrics(registry);
  opts.registry = &registry;
  // Per-file traces land here; /tracez renders them.
  trace::TraceSink trace_sink;
  opts.trace_sink = &trace_sink;
  std::optional<service::Daemon> daemon;
  try {
    daemon.emplace(opts);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
  std::optional<net::AdminServer> admin;
  start_admin(admin_addr, registry, admin, &trace_sink,
              {{"mode", "spool"},
               {"spool_dir", opts.spool_dir},
               {"cache_dir",
                opts.cache_dir.empty() ? "(none)" : opts.cache_dir},
               {"durability", durability.empty() ? "full" : durability}});
  std::cout << "serving spool " << opts.spool_dir
            << (opts.cache_dir.empty() ? std::string(" (no cache)")
                                       : " (cache " + opts.cache_dir + ")")
            << (once ? ", single drain\n" : "\n");

  const auto reports = once ? daemon->drain_once() : daemon->run();
  std::uint64_t failed = 0;
  for (const auto& r : reports) {
    if (r.resumed) {
      // Published by a crashed predecessor; this run only finished the
      // spool move (the crash-recovery e2e greps for this line).
      std::cout << r.name << ": resumed (already published)\n";
    } else if (r.ok) {
      std::cout << r.name << ": " << r.runs << " runs, " << r.cache_hits
                << " cached, " << r.computed << " computed (hit rate "
                << Table::fmt(r.hit_rate(), 3) << ") in "
                << Table::fmt(r.wall_seconds, 3) << "s\n";
    } else {
      ++failed;
      std::cout << r.name << ": QUARANTINED: " << r.error << "\n";
    }
  }
  std::cout << reports.size() << " job file(s) served, " << failed
            << " quarantined\n";
  return failed == 0 ? 0 : 1;
}

std::atomic<service::SocketServer*> g_socket_server{nullptr};

extern "C" void handle_stop_signal(int) {
  // request_stop is async-signal-safe (atomic store + one pipe write).
  service::SocketServer* server = g_socket_server.load();
  if (server != nullptr) server->request_stop();
}

/// `distapx_cli serve --listen <addr>`: the framed socket server. Same
/// serve path as the spool daemon (cache-backed BatchServer), but job
/// files arrive in SUBMIT frames and results return in RESULT frames.
/// Stop with SIGINT/SIGTERM (graceful drain), `--max-requests`, or a
/// client's SHUTDOWN frame.
int run_serve_socket(int argc, char** argv) {
  service::SocketServerOptions opts;
  std::string listen_addr, admin_addr, log_level, durability;
  // --listen is the mode selector, not an option of the mode: pull it
  // (and its value) out first, then hand the rest to the table.
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--listen") {
      if (i + 1 >= argc) usage_error("missing value for --listen");
      listen_addr = argv[++i];
    } else {
      rest.emplace_back(argv[i]);
    }
  }
  FlagSet flags("serve --listen", "serve --listen <path|host:port>");
  flags.str("--cache-dir", "DIR", &opts.cache_dir)
      .size("--cache-budget", "SIZE", &opts.cache_budget)
      .str("--journal", "PATH", &opts.journal_path)
      .uint("--threads", "N", &opts.threads, 1u << 16)
      .uint("--lanes", "N", &opts.lanes, 1u << 10)
      .uint("--max-requests", "K", &opts.max_requests)
      .uint("--idle-timeout-ms", "M", &opts.idle_timeout_ms, 1u << 30)
      .size("--max-frame", "SIZE", &opts.max_frame_bytes)
      .toggle("--no-remote-shutdown", &opts.allow_remote_shutdown, false)
      .str("--durability", "LEVEL", &durability)
      .str("--admin", "ADDR", &admin_addr)
      .str("--log-level", "LEVEL", &log_level)
      .uint("--slow-ms", "M", &opts.slow_ms, 1u << 30);
  flags.parse(rest);
  apply_log_level(log_level);
  apply_durability(durability);

  // One process registry shared by the server, its cache, and its batch
  // servers; the admin endpoint scrapes all of it from one page.
  metrics::Registry registry;
  const FsyncCounterScope fsync_scope(registry);
  procstat::install_process_metrics(registry);
  opts.registry = &registry;
  // Per-SUBMIT traces land here; /tracez renders them. Declared before
  // the server so it outlives run().
  trace::TraceSink trace_sink;
  opts.trace_sink = &trace_sink;
  std::optional<service::SocketServer> server;
  try {
    opts.endpoint = net::parse_endpoint(listen_addr);
    server.emplace(std::move(opts));
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
  std::optional<net::AdminServer> admin;
  const service::SocketServerOptions& sopts = server->options();
  start_admin(admin_addr, registry, admin, &trace_sink,
              {{"mode", "socket"},
               {"endpoint", server->endpoint().to_string()},
               {"lanes", std::to_string(sopts.lanes)},
               {"cache_dir",
                sopts.cache_dir.empty() ? "(none)" : sopts.cache_dir},
               {"journal",
                sopts.journal_path.empty() ? "(none)" : sopts.journal_path},
               {"durability", durability.empty() ? "full" : durability}});
  g_socket_server.store(&*server);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::cout << "listening on " << server->endpoint().to_string()
            << (server->options().cache_dir.empty()
                    ? std::string(" (no cache)")
                    : " (cache " + server->options().cache_dir + ")")
            << "\n"
            << std::flush;
  const service::SocketServerStats stats = server->run();
  // Restore default dispositions before the server object dies; a signal
  // between these lines still sees a live pointer (run() has returned,
  // so request_stop on it is a harmless no-op).
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_socket_server.store(nullptr);
  std::cout << "connections_accepted " << stats.connections_accepted << "\n"
            << "submits_accepted " << stats.submits_accepted << "\n"
            << "results_ok " << stats.results_ok << "\n"
            << "results_error " << stats.results_error << "\n"
            << "protocol_errors " << stats.protocol_errors << "\n"
            << "timeouts " << stats.timeouts << "\n"
            << "cache_hits " << stats.cache_hits << "\n"
            << "computed " << stats.computed << "\n"
            << "jobs_dropped " << stats.jobs_dropped << "\n";
  // Recent-window latency quantiles (last ~1-2 min of the run) next to
  // the lifetime counters, from the same registry the admin page reads.
  for (const auto& h : registry.snapshot().histograms) {
    if (h.recent.count == 0) continue;
    std::cout << h.name << " recent_p50=" << Table::fmt(h.recent.quantile(0.5), 3)
              << " recent_p95=" << Table::fmt(h.recent.quantile(0.95), 3)
              << " recent_p99=" << Table::fmt(h.recent.quantile(0.99), 3)
              << "\n";
  }
  return 0;
}

void write_text_or_die(const std::string& path, const std::string& text) {
  if (path.empty()) return;
  std::ofstream os(path);
  os << text;
  os.flush();
  if (!os) usage_error("cannot write " + path);
}

/// `distapx_cli submit <addr> <jobfile>`: one request over the socket.
/// Also the protocol's swiss-army probe: --ping / --stats / --shutdown.
int run_submit(int argc, char** argv) {
  if (argc < 4) {
    usage_error(
        "submit needs an address and a job file (or --ping / --stats / "
        "--shutdown)");
  }
  const std::string addr = argv[2];
  const std::string job_arg = argv[3];
  std::string summary_file, runs_file, report_file;
  // A freshly exec'd server needs a beat to bind; retrying transient
  // connect failures here removes the "sleep until the socket file
  // appears" dance from every script that starts a server.
  std::uint32_t connect_timeout_ms = 5000;
  bool quiet = false;
  bool want_trace = false;
  FlagSet flags("submit", "submit <path|host:port> <jobfile>");
  flags.str("--summary", "F", &summary_file)
      .str("--runs", "F", &runs_file)
      .str("--report", "F", &report_file)
      .uint("--connect-timeout-ms", "M", &connect_timeout_ms, 1u << 30)
      .toggle("--trace", &want_trace)
      .toggle("--quiet", &quiet);
  flags.parse(arg_rest(argc, argv, 4));

  try {
    net::Client client = net::Client::connect_retry(net::parse_endpoint(addr),
                                                    connect_timeout_ms);
    if (job_arg == "--ping") {
      client.ping();
      if (!quiet) std::cout << "pong from " << addr << "\n";
      return 0;
    }
    if (job_arg == "--stats") {
      std::cout << client.stats();
      return 0;
    }
    if (job_arg == "--shutdown") {
      const auto outcome = client.shutdown();
      if (!outcome.ok) {
        std::cerr << "error: " << outcome.error << "\n";
        return 1;
      }
      if (!quiet) std::cout << "server draining\n";
      return 0;
    }

    std::ifstream is(job_arg);
    if (!is) usage_error("cannot read job file " + job_arg);
    std::ostringstream job_text;
    job_text << is.rdbuf();
    const auto outcome = want_trace ? client.submit_traced(job_text.str())
                                    : client.submit(job_text.str());
    if (!outcome.ok) {
      std::cerr << "error: " << job_arg << ": " << outcome.error << "\n";
      return 1;
    }
    if (!quiet) std::cout << outcome.result.report_txt;
    // The server-side span tree (SUBMITTRACE echo) goes to stderr so
    // redirecting stdout still captures exactly the report bytes.
    if (want_trace) std::cerr << outcome.trace_txt;
    write_text_or_die(summary_file, outcome.result.summary_csv);
    write_text_or_die(runs_file, outcome.result.runs_csv);
    write_text_or_die(report_file, outcome.result.report_txt);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << addr << ": " << e.what() << "\n";
    return 1;
  }
}

/// `distapx_cli loadgen <addr> <jobfile>`: K concurrent clients, R
/// submissions each, over one server. `--pipeline P` keeps up to P
/// SUBMITs in flight per connection (the server answers each connection
/// in submit order). Reports throughput and latency and asserts every
/// response carried bit-identical rows — the wire-level determinism
/// check run under real client concurrency.
int run_loadgen(int argc, char** argv) {
  if (argc < 4) usage_error("loadgen needs an address and a job file");
  const std::string addr = argv[2];
  const std::string job_file = argv[3];
  std::uint64_t clients = 4;
  std::uint64_t repeat = 4;
  std::uint64_t pipeline = 1;
  std::uint32_t connect_timeout_ms = 5000;
  bool quiet = false;
  FlagSet flags("loadgen", "loadgen <path|host:port> <jobfile>");
  flags.uint("--clients", "K", &clients, 4096, 1)
      .uint("--repeat", "R", &repeat, 1u << 20, 1)
      .uint("--pipeline", "P", &pipeline, 1u << 16, 1)
      .uint("--connect-timeout-ms", "M", &connect_timeout_ms, 1u << 30)
      .toggle("--quiet", &quiet);
  flags.parse(arg_rest(argc, argv, 4));

  std::ifstream is(job_file);
  if (!is) usage_error("cannot read job file " + job_file);
  std::ostringstream job_text_os;
  job_text_os << is.rdbuf();
  const std::string job_text = job_text_os.str();
  net::Endpoint endpoint;
  try {
    endpoint = net::parse_endpoint(addr);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }

  std::mutex mu;
  std::vector<double> latencies_ms;  // guarded by mu
  std::string reference_runs;        // guarded by mu; first response's rows
  std::uint64_t errors = 0;          // guarded by mu
  std::uint64_t mismatches = 0;      // guarded by mu

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::uint64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      std::uint64_t finished = 0;
      try {
        net::Client client = net::Client::connect_retry(endpoint,
                                                        connect_timeout_ms);
        // Sliding pipeline window: keep up to `pipeline` SUBMITs in
        // flight; each response is matched to the oldest outstanding
        // send (per-connection FIFO), so latency covers queueing at the
        // server — the number a real pipelined consumer experiences.
        std::deque<std::chrono::steady_clock::time_point> sent_at;
        std::uint64_t submitted = 0;
        while (finished < repeat) {
          while (submitted < repeat && submitted - finished < pipeline) {
            client.send_submit(job_text);
            sent_at.push_back(std::chrono::steady_clock::now());
            ++submitted;
          }
          const auto outcome = client.recv_submit();
          const double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent_at.front())
                  .count();
          sent_at.pop_front();
          ++finished;
          std::lock_guard lock(mu);
          if (!outcome.ok) {
            ++errors;
            continue;
          }
          latencies_ms.push_back(ms);
          if (reference_runs.empty()) {
            reference_runs = outcome.result.runs_csv;
          } else if (outcome.result.runs_csv != reference_runs) {
            ++mismatches;
          }
        }
      } catch (const std::exception&) {
        // The connection died; only the requests it never completed count
        // (the ones above were already tallied as ok or error).
        std::lock_guard lock(mu);
        errors += repeat - finished;
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Summary lat;
  for (const double ms : latencies_ms) lat.add(ms);
  const std::uint64_t ok = latencies_ms.size();
  if (!quiet) {
    // percentile() requires a nonempty sample; when every request failed
    // the latency columns have nothing to say.
    const auto pct = [&](double q) {
      return ok == 0 ? std::string("-")
                     : Table::fmt(percentile(latencies_ms, q), 2);
    };
    Table t({"clients", "requests", "ok", "errors", "mismatches", "wall_s",
             "req_per_s", "lat_mean_ms", "lat_p50_ms", "lat_p95_ms",
             "lat_max_ms"});
    t.add_row({Table::fmt(clients), Table::fmt(clients * repeat),
               Table::fmt(ok), Table::fmt(errors), Table::fmt(mismatches),
               Table::fmt(wall, 3),
               Table::fmt(wall > 0 ? static_cast<double>(ok) / wall : 0.0, 1),
               ok == 0 ? "-" : Table::fmt(lat.mean(), 2), pct(0.5), pct(0.95),
               ok == 0 ? "-" : Table::fmt(lat.max(), 2)});
    t.print(std::cout);
    if (mismatches == 0 && ok > 0) {
      std::cout << "all " << ok << " responses carried bit-identical rows\n";
    }
  }
  if (mismatches != 0) {
    std::cerr << "error: " << mismatches
              << " responses differed from the first response's rows\n";
    return 1;
  }
  return errors == 0 ? 0 : 1;
}

/// `distapx_cli cache <dir> <command>`: inspect and repair a result-cache
/// directory. Output is stable `key value` lines (stats/gc) or a table
/// (ls), so CI and scripts can assert on it.
int run_cache(int argc, char** argv) {
  if (argc < 4) {
    usage_error(
        "cache needs a directory and a command: "
        "stats | ls | verify [--quarantine|--delete] | gc --budget SIZE | "
        "clear | prewarm | checkpoint");
  }
  const std::string dir = argv[2];
  const std::string command = argv[3];

  std::optional<service::CacheManager> manager;
  try {
    manager.emplace(dir);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }

  if (command == "stats") {
    if (argc > 4) usage_error("cache stats takes no flags");
    // stats() refreshes the walk-derived gauges; the printed numbers then
    // come from the registry snapshot — the same source /metrics reads.
    static_cast<void>(manager->stats());
    const auto s =
        service::cache_dir_stats_from(manager->registry().snapshot());
    std::cout << "entries " << s.entries << "\n"
              << "bytes " << s.bytes << "\n"
              << "manifest_bytes " << s.manifest_bytes << "\n"
              << "quarantined " << s.quarantined << "\n";
    return 0;
  }

  if (command == "ls") {
    std::uint64_t limit = 0;
    FlagSet flags("cache ls", "cache <dir> ls");
    flags.uint("--limit", "N", &limit);
    flags.parse(arg_rest(argc, argv, 4));
    // LRU first: the top of the listing is what gc would evict next.
    const auto entries = manager->entries_lru();
    Table t({"key", "bytes", "last_access"});
    std::uint64_t shown = 0;
    for (const auto& e : entries) {
      if (limit != 0 && shown++ >= limit) break;
      t.add_row({e.key.hex(), Table::fmt(e.size), Table::fmt(e.last_access)});
    }
    t.print(std::cout);
    std::cout << entries.size() << " entries (least recently used first)\n";
    return 0;
  }

  if (command == "verify") {
    bool quarantine = false;
    bool unlink = false;
    FlagSet flags("cache verify", "cache <dir> verify");
    flags.toggle("--quarantine", &quarantine).toggle("--delete", &unlink);
    flags.parse(arg_rest(argc, argv, 4));
    const service::RepairMode mode =
        unlink ? service::RepairMode::kDelete
               : quarantine ? service::RepairMode::kQuarantine
                            : service::RepairMode::kReport;
    const auto report = manager->verify(mode);
    for (const auto& f : report.findings) {
      std::cout << "invalid " << f.path << " ("
                << service::entry_status_name(f.status) << ")\n";
    }
    std::cout << "checked " << report.checked << "\n"
              << "ok " << report.ok << "\n"
              << "invalid " << report.invalid << "\n"
              << "quarantined " << report.quarantined << "\n"
              << "deleted " << report.deleted << "\n"
              << "foreign " << report.foreign << "\n";
    return report.invalid == report.quarantined + report.deleted ? 0 : 1;
  }

  if (command == "gc") {
    std::uint64_t budget = 0;
    bool have_budget = false;
    FlagSet flags("cache gc", "cache <dir> gc");
    flags.size("--budget", "SIZE", &budget, &have_budget);
    flags.parse(arg_rest(argc, argv, 4));
    if (!have_budget) usage_error("cache gc needs --budget SIZE");
    const auto report = manager->gc(budget);
    std::cout << "evicted_entries " << report.evicted_entries << "\n"
              << "evicted_bytes " << report.evicted_bytes << "\n"
              << "live_entries " << report.live_entries << "\n"
              << "live_bytes " << report.live_bytes << "\n";
    return 0;
  }

  if (command == "clear") {
    if (argc > 4) usage_error("cache clear takes no flags");
    std::cout << "removed " << manager->clear() << "\n";
    return 0;
  }

  if (command == "prewarm") {
    if (argc > 4) usage_error("cache prewarm takes no flags");
    // Journal-driven: validates (and page-caches) every entry the replay
    // knows about, without a directory walk.
    const auto report = manager->prewarm();
    std::cout << "checked " << report.checked << "\n"
              << "ok " << report.ok << "\n"
              << "invalid " << report.invalid << "\n"
              << "bytes " << report.bytes << "\n";
    return report.invalid == 0 ? 0 : 1;
  }

  if (command == "checkpoint") {
    if (argc > 4) usage_error("cache checkpoint takes no flags");
    manager->checkpoint();
    const auto* journal = manager->journal();
    std::cout << "snapshot_records "
              << (journal ? journal->snapshot_records() : 0) << "\n"
              << "tail_records " << (journal ? journal->tail_records() : 0)
              << "\n";
    return 0;
  }

  usage_error("unknown cache command " + command);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout
        << "usage: distapx_cli <algorithm> [--graph FILE | --gen SPEC] "
           "[--seed S] [--eps E] [--maxw W] [--out FILE]\n"
           "       distapx_cli batch <jobfile> [--threads N] [--cache DIR] "
           "[--cache-budget SIZE] [--durability none|full] [--csv F] "
           "[--json F] [--runs F] [--quiet]\n"
           "       distapx_cli serve <spool-dir> [--cache-dir DIR] "
           "[--cache-budget SIZE] [--threads N] [--poll-ms M] "
           "[--max-files K] [--once] [--durability none|full] "
           "[--admin ADDR] [--log-level LEVEL]\n"
           "       distapx_cli serve --listen <path|host:port> "
           "[--cache-dir DIR] [--cache-budget SIZE] [--journal PATH] "
           "[--threads N] [--lanes N] [--max-requests K] "
           "[--idle-timeout-ms M] [--max-frame SIZE] "
           "[--no-remote-shutdown] [--durability none|full] [--admin ADDR] "
           "[--log-level LEVEL]\n"
           "       distapx_cli submit <path|host:port> <jobfile> "
           "[--summary F] [--runs F] [--report F] "
           "[--connect-timeout-ms M] [--quiet]\n"
           "       distapx_cli submit <path|host:port> "
           "{--ping | --stats | --shutdown}\n"
           "       distapx_cli loadgen <path|host:port> <jobfile> "
           "[--clients K] [--repeat R] [--pipeline P] "
           "[--connect-timeout-ms M] [--quiet]\n"
           "       distapx_cli cache <dir> {stats | ls [--limit N] | verify "
           "[--quarantine|--delete] | gc --budget SIZE | clear | prewarm | "
           "checkpoint}\n"
           "algorithms: luby nmis maxis-alg2 maxis-alg3 mwm-lr mwm-lr-det "
           "mcm-2eps mwm-2eps mcm-1eps proposal\n"
           "gen specs: " << gen::spec_usage() << "\n";
    return 0;
  }
  if (std::string(argv[1]) == "batch") return run_batch(argc, argv);
  if (std::string(argv[1]) == "serve") return run_serve(argc, argv);
  if (std::string(argv[1]) == "submit") return run_submit(argc, argv);
  if (std::string(argv[1]) == "loadgen") return run_loadgen(argc, argv);
  if (std::string(argv[1]) == "cache") return run_cache(argc, argv);
  Options opt;
  opt.algorithm = argv[1];
  FlagSet flags("", "<algorithm>");
  flags.str("--graph", "FILE", &opt.graph_file)
      .str("--gen", "SPEC", &opt.gen_spec)
      .uint("--seed", "S", &opt.seed)
      .real("--eps", "E", &opt.eps)
      .uint("--maxw", "W", &opt.max_w, 1u << 30)
      .str("--out", "FILE", &opt.out_file);
  flags.parse(arg_rest(argc, argv, 2));

  Rng rng(hash_combine(opt.seed, 0xc11));
  Graph g;
  std::optional<EdgeWeights> loaded_ew;
  if (!opt.graph_file.empty()) {
    try {
      auto loaded = io::load_edge_list(opt.graph_file);
      g = std::move(loaded.graph);
      loaded_ew = std::move(loaded.edge_weights);
    } catch (const EnsureError& e) {
      usage_error(e.what());
    }
  } else {
    try {
      g = gen::from_spec(opt.gen_spec, rng);
    } catch (const gen::SpecError& e) {
      usage_error(e.what());
    }
  }
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Δ=" << g.max_degree() << "\n";

  const NodeWeights nw =
      gen::uniform_node_weights(g.num_nodes(), opt.max_w, rng);
  const EdgeWeights ew =
      loaded_ew ? *loaded_ew
                : gen::uniform_edge_weights(g.num_edges(), opt.max_w, rng);

  const std::string& a = opt.algorithm;
  try {
  if (a == "luby") {
    const auto r = run_luby_mis(g, opt.seed);
    std::cout << "MIS size " << r.independent_set.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "nmis") {
    const auto r = run_nmis(g, opt.seed);
    std::cout << "nearly-maximal IS size " << r.independent_set.size()
              << ", undecided " << r.undecided.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg2") {
    const auto r = run_layered_maxis(g, nw, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg3") {
    const auto r =
        run_coloring_maxis(g, nw, ColoringSource::kLinial, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << " ("
              << r.num_colors << " colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  selection:";
    print_metrics(r.maxis_metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "mwm-lr") {
    const auto r = run_lr_matching(g, ew, opt.seed);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-lr-det") {
    const auto r = run_lr_matching_deterministic(g, ew);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " (" << r.num_colors
              << " line colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  matching:";
    print_metrics(r.matching_metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-2eps") {
    Nmm2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_nmm_2eps_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " ("
              << r.super_rounds << " super-rounds, "
              << r.undecided_edges.size() << " undecided edges)\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-2eps") {
    Weighted2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_weighted_2eps_matching(g, ew, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " ("
              << r.rounds_parallel << " parallel rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-1eps") {
    McmCongestParams p;
    p.epsilon = opt.eps;
    const auto r = run_mcm_1eps_congest(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " over "
              << r.stages << " stages (" << r.deactivated.size()
              << " deactivated, ~" << r.rounds << " rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "proposal") {
    ProposalParams p;
    p.epsilon = opt.eps;
    const auto r = run_proposal_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else {
    usage_error("unknown algorithm " + a);
  }
  } catch (const EnsureError& e) {
    // A violated invariant (e.g. a CONGEST cap breach) is a diagnostic,
    // not a crash.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
