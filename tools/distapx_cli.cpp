// distapx_cli — run any of the paper's algorithms on a generated or
// file-loaded graph, printing the solution and the CONGEST accounting;
// or serve a whole mixed-workload job file through the batch server.
//
// Usage:
//   distapx_cli <algorithm> [options]
//   distapx_cli batch <jobfile> [--threads N] [--cache DIR]
//                     [--cache-budget SIZE] [--csv F] [--json F] [--runs F]
//                     [--quiet]
//   distapx_cli serve <spool-dir> [--cache-dir DIR] [--cache-budget SIZE]
//                     [--threads N] [--poll-ms M] [--max-files K] [--once]
//   distapx_cli cache <dir> {stats | ls | verify [--quarantine|--delete] |
//                     gc --budget SIZE | clear}
//
// Algorithms:
//   luby           Luby's MIS
//   nmis           nearly-maximal IS (Sec 3.1)
//   maxis-alg2     Δ-approx weighted MaxIS, randomized (Thm 2.3)
//   maxis-alg3     Δ-approx weighted MaxIS, deterministic (Sec 2.3)
//   mwm-lr         2-approx MWM, randomized (Thm 2.10)
//   mwm-lr-det     2-approx MWM, deterministic (Thm 2.10)
//   mcm-2eps       (2+ε)-approx MCM (Thm 3.2)
//   mwm-2eps       (2+ε)-approx MWM (App B.1)
//   mcm-1eps       (1+ε)-approx MCM (Thm B.12)
//   proposal       (2+ε)-approx MCM via proposals (App B.4)
//
// Options:
//   --graph FILE       load edge list (see graph/io.hpp)
//   --gen SPEC         generator spec (full list: graph/genspec.hpp)
//   --seed S           run seed (default 1)
//   --eps E            epsilon for the (2+ε)/(1+ε) algorithms
//   --maxw W           random integer weights in [1, W] (default 100)
//   --out FILE         write the solution (ids, one per line)
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/genspec.hpp"
#include "graph/io.hpp"
#include "matching/lr_matching.hpp"
#include "matching/lr_matching_det.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/luby.hpp"
#include "service/batch_server.hpp"
#include "service/cache_manager.hpp"
#include "service/daemon.hpp"
#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

using namespace distapx;

namespace {

struct Options {
  std::string algorithm;
  std::string graph_file;
  std::string gen_spec = "gnp:200:0.04";
  std::string out_file;
  std::uint64_t seed = 1;
  double eps = 0.25;
  Weight max_w = 100;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\nrun with no arguments for usage\n";
  std::exit(2);
}

std::uint64_t flag_uint(const std::string& flag, const std::string& tok,
                        std::uint64_t max_value = UINT64_MAX) {
  const auto v = parse_uint_strict(tok, max_value);
  if (!v) usage_error(flag + " " + tok + " is not a non-negative integer");
  return *v;
}

double flag_double(const std::string& flag, const std::string& tok) {
  const auto v = parse_double_strict(tok);
  if (!v) usage_error(flag + " " + tok + " is not a finite number");
  return *v;
}

std::uint64_t flag_size(const std::string& flag, const std::string& tok) {
  const auto v = parse_size_bytes(tok);
  if (!v) {
    usage_error(flag + " " + tok +
                " is not a byte size (integer with optional k/m/g suffix)");
  }
  return *v;
}

void print_metrics(const sim::RunMetrics& m) {
  std::cout << "  rounds=" << m.rounds << " messages=" << m.messages
            << " total_bits=" << m.total_bits
            << " max_bits/edge/round=" << m.max_edge_bits;
  if (m.bandwidth_cap > 0) std::cout << " (cap " << m.bandwidth_cap << ")";
  std::cout << "\n";
}

void write_ids(const std::string& path, const std::vector<NodeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (NodeId v : ids) os << v << '\n';
  std::cout << "  solution written to " << path << "\n";
}

void write_edges(const std::string& path, const std::vector<EdgeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (EdgeId e : ids) os << e << '\n';
  std::cout << "  solution written to " << path << "\n";
}

void write_table(const std::string& path, const Table& table, bool json) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) usage_error("cannot write " + path);
  if (json) {
    table.write_json(os);
  } else {
    table.write_csv(os);
  }
  std::cout << "wrote " << path << "\n";
}

/// `distapx_cli batch <jobfile>`: serve a mixed workload through the batch
/// server and emit the per-job summary (and optionally per-run rows).
int run_batch(int argc, char** argv) {
  if (argc < 3) {
    usage_error("batch needs a job file (one key=value job per line)");
  }
  const std::string job_file = argv[2];
  service::BatchOptions batch_opts;
  std::string csv_file, json_file, runs_file, cache_dir;
  std::uint64_t cache_budget = 0;
  bool quiet = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--threads") {
      batch_opts.threads =
          static_cast<unsigned>(flag_uint(flag, value(), 1u << 16));
    } else if (flag == "--cache") {
      cache_dir = value();
    } else if (flag == "--cache-budget") {
      cache_budget = flag_size(flag, value());
    } else if (flag == "--csv") {
      csv_file = value();
    } else if (flag == "--json") {
      json_file = value();
    } else if (flag == "--runs") {
      runs_file = value();
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      usage_error("unknown batch flag " + flag);
    }
  }

  if (cache_budget != 0 && cache_dir.empty()) {
    usage_error("--cache-budget needs --cache DIR");
  }
  std::optional<service::ResultCache> cache;
  if (!cache_dir.empty()) {
    try {
      cache.emplace(cache_dir, cache_budget);
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
    batch_opts.cache = &*cache;
  }

  service::BatchServer server(batch_opts);
  try {
    server.submit_all(service::load_job_file(job_file));
  } catch (const std::exception& e) {
    std::cerr << "error: " << job_file << ": " << e.what() << "\n";
    return 2;
  }
  if (server.num_jobs() == 0) {
    std::cerr << "error: " << job_file << " contains no jobs\n";
    return 2;
  }

  service::BatchResult result;
  try {
    result = server.serve();
  } catch (const std::exception& e) {
    // e.g. a CONGEST violation under an enforcing policy mid-batch.
    std::cerr << "error: batch failed: " << e.what() << "\n";
    return 1;
  }
  const Table summary = service::summary_table(result);
  const Table runs = service::runs_table(result);
  if (!quiet) {
    summary.print(std::cout);
    std::cout << result.total_runs << " runs over " << result.jobs.size()
              << " jobs on " << result.threads_used << " threads in "
              << Table::fmt(result.wall_seconds, 3) << "s\n";
    if (cache) {
      std::cout << "cache: " << result.cache_hits << " hits, "
                << result.computed << " computed (hit rate "
                << Table::fmt(result.total_runs == 0
                                  ? 0.0
                                  : static_cast<double>(result.cache_hits) /
                                        static_cast<double>(result.total_runs),
                              3)
                << ") in " << cache_dir << "\n";
    }
  }
  write_table(csv_file, summary, /*json=*/false);
  write_table(json_file, summary, /*json=*/true);
  write_table(runs_file, runs, /*json=*/false);
  return 0;
}

/// `distapx_cli serve <spool-dir>`: the long-lived spool-watching daemon.
/// Results land in <spool>/done, quarantined files in <spool>/failed; stop
/// it with SIGINT, `--max-files`, `--once`, or `touch <spool>/stop`.
int run_serve(int argc, char** argv) {
  if (argc < 3) usage_error("serve needs a spool directory");
  service::DaemonOptions opts;
  opts.spool_dir = argv[2];
  bool once = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--cache-dir") {
      opts.cache_dir = value();
    } else if (flag == "--cache-budget") {
      opts.cache_budget = flag_size(flag, value());
    } else if (flag == "--threads") {
      opts.threads = static_cast<unsigned>(flag_uint(flag, value(), 1u << 16));
    } else if (flag == "--poll-ms") {
      opts.poll_ms = static_cast<std::uint32_t>(flag_uint(flag, value(), 1u << 24));
    } else if (flag == "--max-files") {
      opts.max_files = flag_uint(flag, value());
    } else if (flag == "--once") {
      once = true;
    } else {
      usage_error("unknown serve flag " + flag);
    }
  }

  std::optional<service::Daemon> daemon;
  try {
    daemon.emplace(opts);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }
  std::cout << "serving spool " << opts.spool_dir
            << (opts.cache_dir.empty() ? std::string(" (no cache)")
                                       : " (cache " + opts.cache_dir + ")")
            << (once ? ", single drain\n" : "\n");

  const auto reports = once ? daemon->drain_once() : daemon->run();
  std::uint64_t failed = 0;
  for (const auto& r : reports) {
    if (r.ok) {
      std::cout << r.name << ": " << r.runs << " runs, " << r.cache_hits
                << " cached, " << r.computed << " computed (hit rate "
                << Table::fmt(r.hit_rate(), 3) << ") in "
                << Table::fmt(r.wall_seconds, 3) << "s\n";
    } else {
      ++failed;
      std::cout << r.name << ": QUARANTINED: " << r.error << "\n";
    }
  }
  std::cout << reports.size() << " job file(s) served, " << failed
            << " quarantined\n";
  return failed == 0 ? 0 : 1;
}

/// `distapx_cli cache <dir> <command>`: inspect and repair a result-cache
/// directory. Output is stable `key value` lines (stats/gc) or a table
/// (ls), so CI and scripts can assert on it.
int run_cache(int argc, char** argv) {
  if (argc < 4) {
    usage_error(
        "cache needs a directory and a command: "
        "stats | ls | verify [--quarantine|--delete] | gc --budget SIZE | "
        "clear");
  }
  const std::string dir = argv[2];
  const std::string command = argv[3];

  std::optional<service::CacheManager> manager;
  try {
    manager.emplace(dir);
  } catch (const std::exception& e) {
    usage_error(e.what());
  }

  if (command == "stats") {
    if (argc > 4) usage_error("cache stats takes no flags");
    const auto s = manager->stats();
    std::cout << "entries " << s.entries << "\n"
              << "bytes " << s.bytes << "\n"
              << "manifest_bytes " << s.manifest_bytes << "\n"
              << "quarantined " << s.quarantined << "\n";
    return 0;
  }

  if (command == "ls") {
    std::uint64_t limit = 0;
    for (int i = 4; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--limit") {
        if (i + 1 >= argc) usage_error("missing value for " + flag);
        limit = flag_uint(flag, argv[++i]);
      } else {
        usage_error("unknown cache ls flag " + flag);
      }
    }
    // LRU first: the top of the listing is what gc would evict next.
    const auto entries = manager->entries_lru();
    Table t({"key", "bytes", "last_access"});
    std::uint64_t shown = 0;
    for (const auto& e : entries) {
      if (limit != 0 && shown++ >= limit) break;
      t.add_row({e.key.hex(), Table::fmt(e.size), Table::fmt(e.last_access)});
    }
    t.print(std::cout);
    std::cout << entries.size() << " entries (least recently used first)\n";
    return 0;
  }

  if (command == "verify") {
    service::RepairMode mode = service::RepairMode::kReport;
    for (int i = 4; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--quarantine") {
        mode = service::RepairMode::kQuarantine;
      } else if (flag == "--delete") {
        mode = service::RepairMode::kDelete;
      } else {
        usage_error("unknown cache verify flag " + flag);
      }
    }
    const auto report = manager->verify(mode);
    for (const auto& f : report.findings) {
      std::cout << "invalid " << f.path << " ("
                << service::entry_status_name(f.status) << ")\n";
    }
    std::cout << "checked " << report.checked << "\n"
              << "ok " << report.ok << "\n"
              << "invalid " << report.invalid << "\n"
              << "quarantined " << report.quarantined << "\n"
              << "deleted " << report.deleted << "\n"
              << "foreign " << report.foreign << "\n";
    return report.invalid == report.quarantined + report.deleted ? 0 : 1;
  }

  if (command == "gc") {
    std::uint64_t budget = 0;
    bool have_budget = false;
    for (int i = 4; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--budget") {
        if (i + 1 >= argc) usage_error("missing value for " + flag);
        budget = flag_size(flag, argv[++i]);
        have_budget = true;
      } else {
        usage_error("unknown cache gc flag " + flag);
      }
    }
    if (!have_budget) usage_error("cache gc needs --budget SIZE");
    const auto report = manager->gc(budget);
    std::cout << "evicted_entries " << report.evicted_entries << "\n"
              << "evicted_bytes " << report.evicted_bytes << "\n"
              << "live_entries " << report.live_entries << "\n"
              << "live_bytes " << report.live_bytes << "\n";
    return 0;
  }

  if (command == "clear") {
    if (argc > 4) usage_error("cache clear takes no flags");
    std::cout << "removed " << manager->clear() << "\n";
    return 0;
  }

  usage_error("unknown cache command " + command);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout
        << "usage: distapx_cli <algorithm> [--graph FILE | --gen SPEC] "
           "[--seed S] [--eps E] [--maxw W] [--out FILE]\n"
           "       distapx_cli batch <jobfile> [--threads N] [--cache DIR] "
           "[--cache-budget SIZE] [--csv F] [--json F] [--runs F] [--quiet]\n"
           "       distapx_cli serve <spool-dir> [--cache-dir DIR] "
           "[--cache-budget SIZE] [--threads N] [--poll-ms M] "
           "[--max-files K] [--once]\n"
           "       distapx_cli cache <dir> {stats | ls [--limit N] | verify "
           "[--quarantine|--delete] | gc --budget SIZE | clear}\n"
           "algorithms: luby nmis maxis-alg2 maxis-alg3 mwm-lr mwm-lr-det "
           "mcm-2eps mwm-2eps mcm-1eps proposal\n"
           "gen specs: " << gen::spec_usage() << "\n";
    return 0;
  }
  if (std::string(argv[1]) == "batch") return run_batch(argc, argv);
  if (std::string(argv[1]) == "serve") return run_serve(argc, argv);
  if (std::string(argv[1]) == "cache") return run_cache(argc, argv);
  Options opt;
  opt.algorithm = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--graph") {
      opt.graph_file = value();
    } else if (flag == "--gen") {
      opt.gen_spec = value();
    } else if (flag == "--seed") {
      opt.seed = flag_uint(flag, value());
    } else if (flag == "--eps") {
      opt.eps = flag_double(flag, value());
    } else if (flag == "--maxw") {
      opt.max_w = static_cast<Weight>(flag_uint(flag, value(), 1u << 30));
    } else if (flag == "--out") {
      opt.out_file = value();
    } else {
      usage_error("unknown flag " + flag);
    }
  }

  Rng rng(hash_combine(opt.seed, 0xc11));
  Graph g;
  std::optional<EdgeWeights> loaded_ew;
  if (!opt.graph_file.empty()) {
    try {
      auto loaded = io::load_edge_list(opt.graph_file);
      g = std::move(loaded.graph);
      loaded_ew = std::move(loaded.edge_weights);
    } catch (const EnsureError& e) {
      usage_error(e.what());
    }
  } else {
    try {
      g = gen::from_spec(opt.gen_spec, rng);
    } catch (const gen::SpecError& e) {
      usage_error(e.what());
    }
  }
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Δ=" << g.max_degree() << "\n";

  const NodeWeights nw =
      gen::uniform_node_weights(g.num_nodes(), opt.max_w, rng);
  const EdgeWeights ew =
      loaded_ew ? *loaded_ew
                : gen::uniform_edge_weights(g.num_edges(), opt.max_w, rng);

  const std::string& a = opt.algorithm;
  try {
  if (a == "luby") {
    const auto r = run_luby_mis(g, opt.seed);
    std::cout << "MIS size " << r.independent_set.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "nmis") {
    const auto r = run_nmis(g, opt.seed);
    std::cout << "nearly-maximal IS size " << r.independent_set.size()
              << ", undecided " << r.undecided.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg2") {
    const auto r = run_layered_maxis(g, nw, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg3") {
    const auto r =
        run_coloring_maxis(g, nw, ColoringSource::kLinial, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << " ("
              << r.num_colors << " colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  selection:";
    print_metrics(r.maxis_metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "mwm-lr") {
    const auto r = run_lr_matching(g, ew, opt.seed);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-lr-det") {
    const auto r = run_lr_matching_deterministic(g, ew);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " (" << r.num_colors
              << " line colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  matching:";
    print_metrics(r.matching_metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-2eps") {
    Nmm2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_nmm_2eps_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " ("
              << r.super_rounds << " super-rounds, "
              << r.undecided_edges.size() << " undecided edges)\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-2eps") {
    Weighted2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_weighted_2eps_matching(g, ew, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " ("
              << r.rounds_parallel << " parallel rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-1eps") {
    McmCongestParams p;
    p.epsilon = opt.eps;
    const auto r = run_mcm_1eps_congest(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " over "
              << r.stages << " stages (" << r.deactivated.size()
              << " deactivated, ~" << r.rounds << " rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "proposal") {
    ProposalParams p;
    p.epsilon = opt.eps;
    const auto r = run_proposal_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else {
    usage_error("unknown algorithm " + a);
  }
  } catch (const EnsureError& e) {
    // A violated invariant (e.g. a CONGEST cap breach) is a diagnostic,
    // not a crash.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
