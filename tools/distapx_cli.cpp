// distapx_cli — run any of the paper's algorithms on a generated or
// file-loaded graph, printing the solution and the CONGEST accounting.
//
// Usage:
//   distapx_cli <algorithm> [options]
//
// Algorithms:
//   luby           Luby's MIS
//   nmis           nearly-maximal IS (Sec 3.1)
//   maxis-alg2     Δ-approx weighted MaxIS, randomized (Thm 2.3)
//   maxis-alg3     Δ-approx weighted MaxIS, deterministic (Sec 2.3)
//   mwm-lr         2-approx MWM, randomized (Thm 2.10)
//   mwm-lr-det     2-approx MWM, deterministic (Thm 2.10)
//   mcm-2eps       (2+ε)-approx MCM (Thm 3.2)
//   mwm-2eps       (2+ε)-approx MWM (App B.1)
//   mcm-1eps       (1+ε)-approx MCM (Thm B.12)
//   proposal       (2+ε)-approx MCM via proposals (App B.4)
//
// Options:
//   --graph FILE       load edge list (see graph/io.hpp)
//   --gen SPEC         generate: gnp:N:P | regular:N:D | grid:R:C |
//                      tree:N | bipartite:A:B:P | star:N | path:N
//   --seed S           run seed (default 1)
//   --eps E            epsilon for the (2+ε)/(1+ε) algorithms
//   --maxw W           random integer weights in [1, W] (default 100)
//   --out FILE         write the solution (ids, one per line)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "matching/lr_matching.hpp"
#include "matching/lr_matching_det.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/luby.hpp"

using namespace distapx;

namespace {

struct Options {
  std::string algorithm;
  std::string graph_file;
  std::string gen_spec = "gnp:200:0.04";
  std::string out_file;
  std::uint64_t seed = 1;
  double eps = 0.25;
  Weight max_w = 100;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\nrun with no arguments for usage\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

Graph generate(const std::string& spec, Rng& rng) {
  const auto parts = split(spec, ':');
  const auto arg = [&](std::size_t i) {
    if (i >= parts.size()) usage_error("missing parameter in --gen " + spec);
    return parts[i];
  };
  const std::string& family = arg(0);
  if (family == "gnp") {
    return gen::gnp(static_cast<NodeId>(std::stoul(arg(1))),
                    std::stod(arg(2)), rng);
  }
  if (family == "regular") {
    return gen::random_regular(static_cast<NodeId>(std::stoul(arg(1))),
                               static_cast<std::uint32_t>(std::stoul(arg(2))),
                               rng);
  }
  if (family == "grid") {
    return gen::grid(static_cast<NodeId>(std::stoul(arg(1))),
                     static_cast<NodeId>(std::stoul(arg(2))));
  }
  if (family == "tree") {
    return gen::random_tree(static_cast<NodeId>(std::stoul(arg(1))), rng);
  }
  if (family == "bipartite") {
    return gen::bipartite_gnp(static_cast<NodeId>(std::stoul(arg(1))),
                              static_cast<NodeId>(std::stoul(arg(2))),
                              std::stod(arg(3)), rng);
  }
  if (family == "star") {
    return gen::star(static_cast<NodeId>(std::stoul(arg(1))));
  }
  if (family == "path") {
    return gen::path(static_cast<NodeId>(std::stoul(arg(1))));
  }
  usage_error("unknown family in --gen " + spec);
}

void print_metrics(const sim::RunMetrics& m) {
  std::cout << "  rounds=" << m.rounds << " messages=" << m.messages
            << " total_bits=" << m.total_bits
            << " max_bits/edge/round=" << m.max_edge_bits;
  if (m.bandwidth_cap > 0) std::cout << " (cap " << m.bandwidth_cap << ")";
  std::cout << "\n";
}

void write_ids(const std::string& path, const std::vector<NodeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (NodeId v : ids) os << v << '\n';
  std::cout << "  solution written to " << path << "\n";
}

void write_edges(const std::string& path, const std::vector<EdgeId>& ids) {
  if (path.empty()) return;
  std::ofstream os(path);
  for (EdgeId e : ids) os << e << '\n';
  std::cout << "  solution written to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout
        << "usage: distapx_cli <algorithm> [--graph FILE | --gen SPEC] "
           "[--seed S] [--eps E] [--maxw W] [--out FILE]\n"
           "algorithms: luby nmis maxis-alg2 maxis-alg3 mwm-lr mwm-lr-det "
           "mcm-2eps mwm-2eps mcm-1eps proposal\n"
           "gen specs: gnp:N:P regular:N:D grid:R:C tree:N "
           "bipartite:A:B:P star:N path:N\n";
    return 0;
  }
  Options opt;
  opt.algorithm = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--graph") {
      opt.graph_file = value();
    } else if (flag == "--gen") {
      opt.gen_spec = value();
    } else if (flag == "--seed") {
      opt.seed = std::stoull(value());
    } else if (flag == "--eps") {
      opt.eps = std::stod(value());
    } else if (flag == "--maxw") {
      opt.max_w = std::stoll(value());
    } else if (flag == "--out") {
      opt.out_file = value();
    } else {
      usage_error("unknown flag " + flag);
    }
  }

  Rng rng(hash_combine(opt.seed, 0xc11));
  Graph g;
  std::optional<EdgeWeights> loaded_ew;
  if (!opt.graph_file.empty()) {
    auto loaded = io::load_edge_list(opt.graph_file);
    g = std::move(loaded.graph);
    loaded_ew = std::move(loaded.edge_weights);
  } else {
    g = generate(opt.gen_spec, rng);
  }
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Δ=" << g.max_degree() << "\n";

  const NodeWeights nw =
      gen::uniform_node_weights(g.num_nodes(), opt.max_w, rng);
  const EdgeWeights ew =
      loaded_ew ? *loaded_ew
                : gen::uniform_edge_weights(g.num_edges(), opt.max_w, rng);

  const std::string& a = opt.algorithm;
  if (a == "luby") {
    const auto r = run_luby_mis(g, opt.seed);
    std::cout << "MIS size " << r.independent_set.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "nmis") {
    const auto r = run_nmis(g, opt.seed);
    std::cout << "nearly-maximal IS size " << r.independent_set.size()
              << ", undecided " << r.undecided.size() << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg2") {
    const auto r = run_layered_maxis(g, nw, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << "\n";
    print_metrics(r.metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "maxis-alg3") {
    const auto r =
        run_coloring_maxis(g, nw, ColoringSource::kLinial, opt.seed);
    std::cout << "IS size " << r.independent_set.size() << " weight "
              << set_weight(nw, r.independent_set) << " ("
              << r.num_colors << " colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  selection:";
    print_metrics(r.maxis_metrics);
    write_ids(opt.out_file, r.independent_set);
  } else if (a == "mwm-lr") {
    const auto r = run_lr_matching(g, ew, opt.seed);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-lr-det") {
    const auto r = run_lr_matching_deterministic(g, ew);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " (" << r.num_colors
              << " line colors)\n";
    std::cout << "  coloring:";
    print_metrics(r.coloring_metrics);
    std::cout << "  matching:";
    print_metrics(r.matching_metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-2eps") {
    Nmm2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_nmm_2eps_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " ("
              << r.super_rounds << " super-rounds, "
              << r.undecided_edges.size() << " undecided edges)\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else if (a == "mwm-2eps") {
    Weighted2EpsParams p;
    p.epsilon = opt.eps;
    const auto r = run_weighted_2eps_matching(g, ew, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " weight "
              << matching_weight(ew, r.matching) << " ("
              << r.rounds_parallel << " parallel rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "mcm-1eps") {
    McmCongestParams p;
    p.epsilon = opt.eps;
    const auto r = run_mcm_1eps_congest(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << " over "
              << r.stages << " stages (" << r.deactivated.size()
              << " deactivated, ~" << r.rounds << " rounds)\n";
    write_edges(opt.out_file, r.matching);
  } else if (a == "proposal") {
    ProposalParams p;
    p.epsilon = opt.eps;
    const auto r = run_proposal_matching(g, opt.seed, p);
    std::cout << "matching size " << r.matching.size() << "\n";
    print_metrics(r.metrics);
    write_edges(opt.out_file, r.matching);
  } else {
    usage_error("unknown algorithm " + a);
  }
  return 0;
}
