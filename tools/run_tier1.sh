#!/usr/bin/env sh
# Tier-1 verify: configure, build everything, run the full test suite.
# Usage: tools/run_tier1.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)"
# Every suite is labeled tier1 (CMakeLists.txt); slow/fuzz are additional
# labels for finer selection (ctest -LE slow, ctest -L fuzz).
ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"
