#include "bench_common.hpp"

#include <cstdlib>

namespace distapx::bench {

void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n"
            << "paper claim: " << claim << "\n\n";
}

unsigned default_threads() {
  if (const char* env = std::getenv("DISTAPX_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return sim::resolve_threads(0, ~std::size_t{0});
}

std::vector<std::uint64_t> seed_sequence(int reps, std::uint64_t base_seed) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    seeds.push_back(hash_combine(base_seed, static_cast<std::uint64_t>(r)));
  }
  return seeds;
}

double ratio(double opt, double got) {
  if (got <= 0) return opt <= 0 ? 1.0 : 0.0;
  return opt / got;
}

}  // namespace distapx::bench
