#include "bench_common.hpp"

namespace distapx::bench {

void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n"
            << "paper claim: " << claim << "\n\n";
}

double ratio(double opt, double got) {
  if (got <= 0) return opt <= 0 ? 1.0 : 0.0;
  return opt / got;
}

}  // namespace distapx::bench
