// Ablation E8 — Algorithm 2's weight-layer prioritization.
//
// The layering (topmost weight layer runs the MIS first) is what yields
// the O(MIS · log W) bound of Theorem 2.3: each MIS execution empties the
// top layer. Without it every undecided node participates each iteration;
// the Δ-approximation survives (Lemma 2.2 holds for any independent set)
// but rounds are no longer tied to log W.
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "maxis/layered_maxis.hpp"

namespace distapx {
namespace {

void progress_curve() {
  bench::banner(
      "E8b: per-round decision progress (layer-chain, W=2^12)",
      "layering drains one layer per MIS sweep: the halted-node curve "
      "climbs in staircase steps, one per layer");
  // The adversarial layer-chain of E1a: 13 layers x 24 nodes.
  const int log_w = 12;
  const NodeId group = 24;
  GraphBuilder b(static_cast<NodeId>(log_w + 1) * group);
  for (int i = 0; i < log_w; ++i) {
    for (NodeId x = 0; x < group; ++x)
      for (NodeId y = 0; y < group; ++y)
        b.add_edge(static_cast<NodeId>(i) * group + x,
                   static_cast<NodeId>(i + 1) * group + y);
  }
  const Graph g = b.build();
  Rng rng(3);
  NodeWeights w(g.num_nodes());
  for (int i = 0; i <= log_w; ++i) {
    for (NodeId x = 0; x < group; ++x) {
      const Weight lo = i == 0 ? 1 : (Weight{1} << (i - 1)) + 1;
      w[static_cast<NodeId>(i) * group + x] =
          rng.next_in(lo, Weight{1} << i);
    }
  }
  Table t({"round", "halted nodes", "msgs this round"});
  sim::Network net(g);
  sim::RunOptions opts;
  opts.seed = 1;
  opts.policy = sim::BandwidthPolicy::congest(32);
  opts.observer = [&](const sim::RoundSample& s) {
    if (s.round % 4 == 0) {  // one sample per super-iteration
      t.add_row({Table::fmt(std::uint64_t{s.round}),
                 Table::fmt(std::uint64_t{s.nodes_halted}),
                 Table::fmt(s.messages)});
    }
  };
  const Weight max_w = Weight{1} << log_w;
  net.run(make_layered_maxis_program(g, w, max_w), opts);
  t.print(std::cout);
}

void layered_vs_flat() {
  bench::banner("E8: Algorithm 2 with vs without layer prioritization",
                "layered rounds track log W; the unlayered variant's "
                "quality stays Δ-approximate but loses the bound");
  Table t({"log2W", "layered rounds", "unlayered rounds",
           "layered weight", "unlayered weight"});
  for (int logw : {4, 8, 12, 16, 20}) {
    Summary lr, ur, lw, uw;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(hash_combine(seed, logw));
      const Graph g = gen::random_regular(512, 8, rng);
      const auto w =
          gen::log_uniform_node_weights(512, Weight{1} << logw, rng);
      LayeredMaxIsParams layered;
      LayeredMaxIsParams flat;
      flat.use_layers = false;
      const auto a = run_layered_maxis(g, w, seed, layered);
      const auto b = run_layered_maxis(g, w, seed, flat);
      lr.add(a.metrics.rounds);
      ur.add(b.metrics.rounds);
      lw.add(static_cast<double>(set_weight(w, a.independent_set)));
      uw.add(static_cast<double>(set_weight(w, b.independent_set)));
    }
    t.add_row({Table::fmt(static_cast<std::int64_t>(logw)),
               Table::fmt(lr.mean(), 1), Table::fmt(ur.mean(), 1),
               Table::fmt(lw.mean(), 0), Table::fmt(uw.mean(), 0)});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Ablation E8: Algorithm 2 layer prioritization [Sec 2.2]\n";
  distapx::layered_vs_flat();
  distapx::progress_curve();
  return 0;
}
