// Ablation E9 — Algorithm 2's MIS black box.
//
// Theorem 2.3 charges O(MIS(G)) rounds per weight layer to whatever MIS
// procedure is plugged in. We compare per-iteration selection rules: one
// Luby iteration (the paper's CONGEST choice), a fair-coin marking rule,
// and the deterministic highest-id rule.
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "maxis/layered_maxis.hpp"

namespace distapx {
namespace {

const char* rule_name(MisSelectionRule r) {
  switch (r) {
    case MisSelectionRule::kLubyValue:
      return "luby-value";
    case MisSelectionRule::kCoin:
      return "coin(1/2)";
    case MisSelectionRule::kIdGreedy:
      return "id-greedy";
  }
  return "?";
}

void blackbox_sweep() {
  bench::banner("E9: Algorithm 2 under different MIS selection rules",
                "rounds = O(MIS(G) log W): the black box sets the factor");
  Table t({"workload", "rule", "rounds(mean)", "weight(mean)"});
  struct Workload {
    std::string name;
    Graph graph;
  };
  Rng rng(7);
  std::vector<Workload> workloads;
  workloads.push_back({"gnp(512, deg~8)", gen::gnp(512, 8.0 / 512, rng)});
  workloads.push_back({"regular(512,16)",
                       gen::random_regular(512, 16, rng)});
  workloads.push_back({"path(512)", gen::path(512)});
  for (const auto& wl : workloads) {
    for (MisSelectionRule rule :
         {MisSelectionRule::kLubyValue, MisSelectionRule::kCoin,
          MisSelectionRule::kIdGreedy}) {
      Summary rounds, weight;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng wrng(hash_combine(seed, wl.graph.num_edges()));
        const auto w = gen::uniform_node_weights(wl.graph.num_nodes(),
                                                 1 << 10, wrng);
        LayeredMaxIsParams params;
        params.rule = rule;
        const auto res = run_layered_maxis(wl.graph, w, seed, params);
        rounds.add(res.metrics.rounds);
        weight.add(static_cast<double>(set_weight(w, res.independent_set)));
      }
      t.add_row({wl.name, rule_name(rule), Table::fmt(rounds.mean(), 1),
                 Table::fmt(weight.mean(), 0)});
    }
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Ablation E9: the MIS black box inside Algorithm 2 "
               "[Thm 2.3]\n";
  distapx::blackbox_sweep();
  return 0;
}
