// Table 1, row 2 — deterministic Δ-approximation for weighted MaxIS
// (Algorithm 3): O(Δ + log* n) rounds given the [BEK14] coloring black box.
// Our deterministic coloring substitute is Linial + class elimination
// (O(Δ² + log* n)); the bench therefore reports the coloring phase and the
// Algorithm-3 phase separately — the paper's contribution is the latter,
// whose O(Δ) / n-independence shape is what we validate.
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/lr_matching_det.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/exact.hpp"

namespace distapx {
namespace {

void rounds_vs_delta() {
  bench::banner(
      "E2a: Algorithm 3 rounds vs Δ (n=2048 regular, W=1000)",
      "post-coloring stage is O(#colors) = O(Δ); coloring is the "
      "documented O(Δ²+log* n) substitute");
  Table t({"Delta", "colors", "coloring rounds", "alg3 rounds",
           "alg3 rounds/Δ"});
  for (std::uint32_t d : {2u, 4u, 8u, 16u, 32u}) {
    Summary coloring_rounds, maxis_rounds, colors;
    const auto runs = bench::per_seed(1, 3, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, d));
      const Graph g = gen::random_regular(2048, d, rng);
      const auto w = gen::uniform_node_weights(2048, 1000, rng);
      return run_coloring_maxis(g, w, ColoringSource::kLinial, seed);
    });
    for (const auto& res : runs) {
      coloring_rounds.add(res.coloring_metrics.rounds);
      maxis_rounds.add(res.maxis_metrics.rounds);
      colors.add(res.num_colors);
    }
    t.add_row({Table::fmt(std::uint64_t{d}),
               Table::fmt(colors.mean(), 1),
               Table::fmt(coloring_rounds.mean(), 1),
               Table::fmt(maxis_rounds.mean(), 1),
               Table::fmt(maxis_rounds.mean() / d, 2)});
  }
  t.print(std::cout);
}

void rounds_vs_n() {
  bench::banner("E2b: Algorithm 3 rounds vs n (4-regular, W=1000)",
                "post-coloring rounds are independent of n");
  Table t({"n", "coloring rounds", "alg3 rounds"});
  for (NodeId n : {128u, 512u, 2048u, 8192u}) {
    Summary coloring_rounds, maxis_rounds;
    const auto runs = bench::per_seed(1, 3, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, n));
      const Graph g = gen::random_regular(n, 4, rng);
      const auto w = gen::uniform_node_weights(n, 1000, rng);
      return run_coloring_maxis(g, w, ColoringSource::kLinial, seed);
    });
    for (const auto& res : runs) {
      coloring_rounds.add(res.coloring_metrics.rounds);
      maxis_rounds.add(res.maxis_metrics.rounds);
    }
    t.add_row({Table::fmt(std::uint64_t{n}),
               Table::fmt(coloring_rounds.mean(), 1),
               Table::fmt(maxis_rounds.mean(), 1)});
  }
  t.print(std::cout);
}

void quality() {
  bench::banner("E2c: Algorithm 3 approximation quality",
                "deterministic Δ-approximation (Sec. 2.3)");
  Table t({"workload", "Delta", "OPT/ALG(mean)", "OPT/ALG(max)", "bound"});
  for (int variant = 0; variant < 2; ++variant) {
    Summary r;
    double worst = 0;
    std::uint32_t delta = 0;
    const auto runs = bench::per_seed(1, 8, [&](std::uint64_t seed) {
      Rng rng(seed + (variant ? 900 : 0));
      const Graph g = variant == 0 ? gen::gnp(20, 0.2, rng)
                                   : gen::caterpillar(60, 3);
      const auto w =
          gen::exponential_node_weights(g.num_nodes(), 1 << 10, rng);
      const Weight opt =
          variant == 0
              ? set_weight(w, exact_maxis(g, w).independent_set)
              : set_weight(w, exact_maxis_forest(g, w).independent_set);
      const auto res =
          run_coloring_maxis(g, w, ColoringSource::kLinial, seed);
      const double x = bench::ratio(
          static_cast<double>(opt),
          static_cast<double>(set_weight(w, res.independent_set)));
      return std::pair<double, std::uint32_t>{x, g.max_degree()};
    });
    for (const auto& [x, d] : runs) {
      r.add(x);
      worst = std::max(worst, x);
      delta = std::max(delta, d);
    }
    t.add_row({variant == 0 ? "gnp(20,0.2)" : "caterpillar(60,3)",
               Table::fmt(std::uint64_t{delta}), Table::fmt(r.mean(), 3),
               Table::fmt(worst, 3), Table::fmt(std::uint64_t{delta})});
  }
  t.print(std::cout);
}

void det_mwm() {
  bench::banner(
      "E2d: deterministic 2-approx MWM (Thm 2.10, Algorithm 3 on L(G))",
      "same sweeps on the line graph via the Thm 2.8 mechanism; "
      "2-approximation of maximum weight matching");
  Table t({"workload", "L(G) colors", "coloring rounds", "matching rounds",
           "OPT/ALG", "bound"});
  for (int variant = 0; variant < 2; ++variant) {
    struct SeedStats {
      double colors = 0, c_rounds = 0, m_rounds = 0, q = 0;
    };
    const auto runs = bench::per_seed(1, 4, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, variant));
      const Graph g = variant == 0
                          ? gen::bipartite_gnp(30, 30, 0.1, rng)
                          : gen::gnp(18, 0.25, rng);
      const auto w = gen::uniform_edge_weights(g.num_edges(), 1000, rng);
      const auto res = run_lr_matching_deterministic(g, w);
      const Weight opt =
          variant == 0
              ? matching_weight(w, exact_mwm_bipartite(g, w).matching)
              : matching_weight(w, exact_mwm_small(g, w).matching);
      return SeedStats{
          static_cast<double>(res.num_colors),
          static_cast<double>(res.coloring_metrics.rounds),
          static_cast<double>(res.matching_metrics.rounds),
          bench::ratio(
              static_cast<double>(opt),
              static_cast<double>(matching_weight(w, res.matching)))};
    });
    Summary colors, c_rounds, m_rounds, q;
    for (const auto& s : runs) {
      colors.add(s.colors);
      c_rounds.add(s.c_rounds);
      m_rounds.add(s.m_rounds);
      q.add(s.q);
    }
    t.add_row({variant == 0 ? "bipartite(30,30,0.1)" : "gnp(18,0.25)",
               Table::fmt(colors.mean(), 1), Table::fmt(c_rounds.mean(), 1),
               Table::fmt(m_rounds.mean(), 1), Table::fmt(q.mean(), 3),
               "2"});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Table 1 row 2: MaxIS Δ-approx / MWM 2-approx, "
               "deterministic, O(Δ + log* n) rounds [Sec 2.3, Thm 2.10]\n";
  distapx::rounds_vs_delta();
  distapx::rounds_vs_n();
  distapx::quality();
  distapx::det_mwm();
  return 0;
}
