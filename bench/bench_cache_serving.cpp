// Result-cache serving throughput: cold (compute + fill) vs warm (every
// run served from disk).
//
// The local-ratio algorithms are deterministic functions of (spec, seed),
// so a warm cache replays a whole mixed workload from 97-byte entries —
// the recomputation-avoidance lever the ISSUE names. The contract checked
// here is twofold: warm rows are bit-identical to cold rows (cache hits
// may never change results), and warm serving clears a conservative 5x
// throughput floor over cold serving on the mixed example workload (in
// practice it is far higher — a warm "run" is one open+read+checksum).
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <iostream>

#include "bench_common.hpp"
#include "service/batch_server.hpp"
#include "service/cache_manager.hpp"
#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "support/assert.hpp"
#include "support/fsutil.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;

service::JobSpec job(const std::string& name, const std::string& gen,
                     const std::string& algo, std::uint32_t seeds,
                     Weight max_w = 100) {
  service::JobSpec spec;
  spec.name = name;
  spec.gen_spec = gen;
  spec.algorithm = algo;
  spec.first_seed = 1;
  spec.num_seeds = seeds;
  spec.max_w = max_w;
  return spec;
}

/// The bench_batch_serving mixed workload (same shape as
/// examples/jobs_mixed.txt): IS + matching algorithms over heterogeneous
/// families and seed counts.
std::vector<service::JobSpec> workload() {
  return {
      job("gnp-luby", "gnp:600:0.02", "luby", 24),
      job("reg-maxis2", "regular:512:8", "maxis-alg2", 6, 1 << 12),
      job("grid-mcm2eps", "grid:24:24", "mcm-2eps", 12),
      job("tree-mwm", "tree:800", "mwm-lr", 4, 64),
      job("plaw-nmis", "powerlaw:700:2.5:6", "nmis", 16),
      job("bip-proposal", "bipartite:300:300:0.03", "proposal", 8),
      job("cat-maxis2", "caterpillar:120:4", "maxis-alg2", 5, 1 << 10),
      job("cycle-luby", "cycle:2000", "luby", 3),
  };
}

service::BatchResult serve(const std::vector<service::JobSpec>& jobs,
                           unsigned threads, service::ResultCache* cache) {
  service::BatchServer server({threads, cache});
  server.submit_all(jobs);
  return server.serve();
}

void cold_vs_warm() {
  const unsigned threads = bench::default_threads();
  bench::banner(
      "E11: content-addressed result cache, cold vs warm serving",
      "Each RunRow is a pure function of (canonical spec, algorithm, seed, "
      "engine version); a warm cache replays the mixed workload from disk "
      "with bit-identical rows at >= 5x the cold throughput.");

  const auto jobs = workload();
  std::uint64_t total_runs = 0;
  for (const auto& j : jobs) total_runs += j.num_seeds;
  std::cout << jobs.size() << " jobs, " << total_runs << " runs, " << threads
            << " worker threads\n\n";

  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("distapx-bench-cache-" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);

  // Uncached reference + warm-up (first-touch faults, lazy allocations).
  const auto reference = serve(jobs, threads, nullptr);

  service::ResultCache cache(cache_dir.string());
  const int reps = 5;
  double cold_s = 0, warm_best = 0, warm_mean = 0;
  service::BatchResult cold, warm;
  {
    auto result = serve(jobs, threads, &cache);
    cold_s = result.wall_seconds;
    DISTAPX_ENSURE(result.cache_hits == 0);
    DISTAPX_ENSURE(result.computed == total_runs);
    cold = std::move(result);
  }
  for (int r = 0; r < reps; ++r) {
    auto result = serve(jobs, threads, &cache);
    DISTAPX_ENSURE(result.cache_hits == total_runs);
    DISTAPX_ENSURE(result.computed == 0);
    warm_best = r == 0 ? result.wall_seconds
                       : std::min(warm_best, result.wall_seconds);
    warm_mean += result.wall_seconds / reps;
    if (r == 0) warm = std::move(result);
  }

  // Bit-identical rows: uncached == cold-cached == warm-cached.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    DISTAPX_ENSURE(cold.jobs[j].rows == reference.jobs[j].rows);
    DISTAPX_ENSURE(warm.jobs[j].rows == reference.jobs[j].rows);
  }

  Table t({"mode", "wall_s", "runs_per_s", "speedup_vs_cold"});
  t.add_row({"cold (compute+fill)", Table::fmt(cold_s, 4),
             Table::fmt(static_cast<double>(total_runs) / cold_s, 1),
             "1.00"});
  t.add_row({"warm (all hits)", Table::fmt(warm_best, 4),
             Table::fmt(static_cast<double>(total_runs) / warm_best, 1),
             Table::fmt(cold_s / warm_best, 2)});
  t.print(std::cout);
  const auto st = cache.stats();
  std::cout << "\ncache: " << st.stores << " entries filled, " << st.hits
            << " hits over " << reps << " warm reps, " << st.rejected
            << " rejected\n(warm rows verified bit-identical to cold and "
               "uncached serving)\n";

  // The acceptance floor. Warm serving does no simulation at all, so this
  // holds with an order of magnitude to spare on any hardware; a failure
  // means the cache is recomputing (or the fingerprint went unstable).
  DISTAPX_ENSURE(cold_s >= 5.0 * warm_best);
  std::cout << "speedup floor: " << Table::fmt(cold_s / warm_best, 2)
            << "x >= 5x PASS\n";

  fs::remove_all(cache_dir);
}

void warm_thread_scaling() {
  bench::banner(
      "E11b: warm-cache serving across thread counts",
      "Warm rows are bit-identical at every thread count; lookup "
      "throughput scales until the filesystem becomes the bottleneck.");

  const auto jobs = workload();
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("distapx-bench-cache-t-" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  service::ResultCache cache(cache_dir.string());
  (void)serve(jobs, bench::default_threads(), &cache);  // fill

  std::uint64_t total_runs = 0;
  for (const auto& j : jobs) total_runs += j.num_seeds;
  Table t({"threads", "wall_s", "lookups_per_s"});
  std::vector<service::BatchResult> results;
  for (const unsigned threads : {1u, 2u, 4u, bench::default_threads()}) {
    results.push_back(serve(jobs, threads, &cache));
    DISTAPX_ENSURE(results.back().cache_hits == total_runs);
    const double s = results.back().wall_seconds;
    t.add_row({Table::fmt(static_cast<std::uint64_t>(threads)),
               Table::fmt(s, 4),
               Table::fmt(static_cast<double>(total_runs) / s, 1)});
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    for (std::size_t j = 0; j < results[i].jobs.size(); ++j) {
      DISTAPX_ENSURE(results[i].jobs[j].rows == results[0].jobs[j].rows);
    }
  }
  t.print(std::cout);
  std::cout << "\n(warm rows bit-identical across all thread counts)\n";
  fs::remove_all(cache_dir);
}

void budgeted_warm() {
  bench::banner(
      "E11c: warm serving under a byte budget (cache lifecycle)",
      "A budgeted cache LRU-evicts to its byte budget; warm hit rate "
      "degrades with the budget while rows stay bit-identical (evicted "
      "entries recompute and refill).");

  const auto jobs = workload();
  std::uint64_t total_runs = 0;
  for (const auto& j : jobs) total_runs += j.num_seeds;
  const std::uint64_t full_bytes = total_runs * service::entry_file_size();

  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("distapx-bench-cache-b-" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  const unsigned threads = bench::default_threads();

  service::ResultCache cache(cache_dir.string());
  const auto reference = serve(jobs, threads, &cache);  // cold fill
  DISTAPX_ENSURE(cache.stats().stores == total_runs);

  Table t({"budget_pct", "budget_bytes", "surviving", "hits", "hit_rate",
           "warm_wall_s"});
  for (const double frac : {1.0, 0.5, 0.25, 0.1}) {
    const auto budget =
        static_cast<std::uint64_t>(static_cast<double>(full_bytes) * frac);
    // Trim to the budget, then serve warm: hits = what survived eviction,
    // misses recompute (and refill, re-exceeding the budget — the steady
    // state a long-lived budgeted daemon cycles through). The serving
    // cache above is unbudgeted (no manager, no journal), so its refills
    // bypass the changelog; rescan() converges with the directory before
    // evicting, as any manager sharing a dir with a foreign writer must.
    service::CacheManager manager(cache_dir.string());
    manager.rescan();
    const auto gc = manager.gc(budget);
    DISTAPX_ENSURE(gc.live_bytes <= budget);

    cache.reset_stats();
    const auto warm = serve(jobs, threads, &cache);
    DISTAPX_ENSURE(warm.cache_hits == gc.live_entries);
    DISTAPX_ENSURE(warm.cache_hits + warm.computed == total_runs);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      DISTAPX_ENSURE(warm.jobs[j].rows == reference.jobs[j].rows);
    }
    t.add_row({Table::fmt(100.0 * frac, 0), Table::fmt(budget),
               Table::fmt(gc.live_entries), Table::fmt(warm.cache_hits),
               Table::fmt(static_cast<double>(warm.cache_hits) /
                              static_cast<double>(total_runs),
                          3),
               Table::fmt(warm.wall_seconds, 4)});
  }
  t.print(std::cout);
  std::cout << "\n(rows bit-identical to the uncached reference at every "
               "budget; hits == entries surviving gc)\n";
  fs::remove_all(cache_dir);
}

void snapshot_open() {
  bench::banner(
      "E11d: manifest changelog — snapshot+tail open vs full directory scan",
      "A checkpointed cache opens by replaying the manifest changelog in "
      "O(snapshot + tail) without touching an entry file; only a journal-"
      "less directory pays the recursive scan. The fsync discipline behind "
      "the durability knob is costed per fill.");

  constexpr int kEntries = 1000;
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("distapx-bench-cache-d-" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);

  const auto fill = [&](const fs::path& dir, int count) {
    // A budgeted cache carries a manager, so every fill is journaled.
    service::ResultCache cache(dir.string(),
                               static_cast<std::uint64_t>(count + 1) *
                                   service::entry_file_size());
    service::JobSpec spec = job("bench-open", "gnp:60:0.08", "luby", 1);
    for (int i = 0; i < count; ++i) {
      service::RunRow row;
      row.seed = static_cast<std::uint64_t>(i);
      row.rounds = 5;
      row.completed = true;
      cache.store(service::run_fingerprint(spec, row.seed), row);
    }
    cache.manager()->checkpoint();
  };

  // Fill under each durability level, costing the fsync discipline.
  Table fsync_t({"durability", "fill_wall_s", "fsyncs", "fsyncs_per_fill"});
  for (const auto mode :
       {fsutil::Durability::kFull, fsutil::Durability::kNone}) {
    fs::remove_all(cache_dir);
    fsutil::set_durability(mode);
    const std::uint64_t before = fsutil::fsync_total();
    const auto t0 = std::chrono::steady_clock::now();
    fill(cache_dir, kEntries);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t syncs = fsutil::fsync_total() - before;
    fsync_t.add_row(
        {mode == fsutil::Durability::kFull ? "full" : "none",
         Table::fmt(secs, 4), Table::fmt(syncs),
         Table::fmt(static_cast<double>(syncs) / kEntries, 2)});
    DISTAPX_ENSURE(mode == fsutil::Durability::kFull ? syncs >= 2 * kEntries
                                                     : syncs == 0);
  }
  fsutil::set_durability(fsutil::Durability::kFull);
  fsync_t.print(std::cout);
  std::cout << "\n";

  // The directory now holds kEntries entries and a checkpointed
  // changelog: opening must replay, not scan — that is the acceptance
  // assertion, with the timing printed alongside.
  double replay_s = 0, scan_s = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    service::CacheManager manager(cache_dir.string());
    replay_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    DISTAPX_ENSURE(
        manager.registry().counter("cache_open_replays_total").value() == 1);
    DISTAPX_ENSURE(
        manager.registry().counter("cache_open_scans_total").value() == 0);
    DISTAPX_ENSURE(manager.live_entries() == kEntries);
  }
  // Strip the journal: the open falls back to the full recursive walk
  // (the pre-changelog cost on every open).
  fs::remove(cache_dir / "manifest.log");
  fs::remove(cache_dir / "manifest.snap");
  {
    const auto t0 = std::chrono::steady_clock::now();
    service::CacheManager manager(cache_dir.string());
    scan_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    DISTAPX_ENSURE(
        manager.registry().counter("cache_open_scans_total").value() == 1);
    DISTAPX_ENSURE(manager.live_entries() == kEntries);
  }

  Table t({"open_path", "wall_s", "entries"});
  t.add_row({"replay (snapshot+tail)", Table::fmt(replay_s, 5),
             Table::fmt(static_cast<std::uint64_t>(kEntries))});
  t.add_row({"full directory scan", Table::fmt(scan_s, 5),
             Table::fmt(static_cast<std::uint64_t>(kEntries))});
  t.print(std::cout);
  std::cout << "\n(checkpointed open verified journal-driven by counter: "
               "1 replay, 0 scans on a "
            << kEntries << "-entry directory)\n";
  fs::remove_all(cache_dir);
}

}  // namespace
}  // namespace distapx

int main() {
  distapx::cold_vs_warm();
  distapx::warm_thread_scaling();
  distapx::budgeted_warm();
  distapx::snapshot_open();
  return 0;
}
