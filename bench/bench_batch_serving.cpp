// Batch-serving throughput: one shared worker pool over a heterogeneous
// job mix vs sequential per-job serving.
//
// Sequential serving gives each job the whole pool but forks/joins per
// job: a job with fewer seeds than threads leaves workers idle, and every
// job boundary drains the pool before the next one starts. The shared
// BatchServer pool shards all jobs into one unit queue, so short jobs
// ride along with long ones and the pool stays saturated end to end.
// Results are bit-identical either way (asserted below) — the contract is
// that co-scheduling changes wall time only.
#include <iostream>

#include "bench_common.hpp"
#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "support/assert.hpp"

namespace distapx {
namespace {

service::JobSpec job(const std::string& name, const std::string& gen,
                     const std::string& algo, std::uint32_t seeds,
                     Weight max_w = 100) {
  service::JobSpec spec;
  spec.name = name;
  spec.gen_spec = gen;
  spec.algorithm = algo;
  spec.first_seed = 1;
  spec.num_seeds = seeds;
  spec.max_w = max_w;
  return spec;
}

/// The mixed workload: IS and matching algorithms over five graph
/// families, with seed counts deliberately straddling the thread count so
/// per-job pools cannot stay full.
std::vector<service::JobSpec> workload() {
  return {
      job("gnp-luby", "gnp:600:0.02", "luby", 24),
      job("reg-maxis2", "regular:512:8", "maxis-alg2", 6, 1 << 12),
      job("grid-mcm2eps", "grid:24:24", "mcm-2eps", 12),
      job("tree-mwm", "tree:800", "mwm-lr", 4, 64),
      job("plaw-nmis", "powerlaw:700:2.5:6", "nmis", 16),
      job("bip-proposal", "bipartite:300:300:0.03", "proposal", 8),
      job("cat-maxis2", "caterpillar:120:4", "maxis-alg2", 5, 1 << 10),
      job("cycle-luby", "cycle:2000", "luby", 3),
  };
}

double serve_sequential(const std::vector<service::JobSpec>& jobs,
                        unsigned threads,
                        std::vector<service::BatchResult>& out) {
  double total = 0;
  out.clear();
  for (const auto& spec : jobs) {
    service::BatchServer server({threads});
    server.submit(spec);
    out.push_back(server.serve());
    total += out.back().wall_seconds;
  }
  return total;
}

void mixed_throughput() {
  const unsigned threads = bench::default_threads();
  bench::banner(
      "E10: sharded batch serving vs sequential per-job pools",
      "One shared unit queue keeps all workers busy across job "
      "boundaries; per-job fork/join idles threads whenever a job has "
      "fewer seeds than workers. Same results, less wall time.");

  const auto jobs = workload();
  std::uint64_t total_runs = 0;
  for (const auto& j : jobs) total_runs += j.num_seeds;
  std::cout << jobs.size() << " jobs, " << total_runs << " runs, "
            << threads << " worker threads\n\n";

  // Warm-up pass (first-touch page faults, lazy allocations).
  {
    service::BatchServer warm({threads});
    warm.submit_all(jobs);
    (void)warm.serve();
  }

  const int reps = 5;
  Table t({"mode", "best_s", "mean_s", "runs_per_s_best", "speedup_best"});
  double seq_best = 0, seq_mean = 0, pool_best = 0, pool_mean = 0;
  service::BatchResult pooled;
  std::vector<service::BatchResult> sequential;
  for (int r = 0; r < reps; ++r) {
    std::vector<service::BatchResult> seq_out;
    const double seq = serve_sequential(jobs, threads, seq_out);
    seq_best = r == 0 ? seq : std::min(seq_best, seq);
    seq_mean += seq / reps;
    if (r == 0) sequential = std::move(seq_out);

    service::BatchServer server({threads});
    server.submit_all(jobs);
    auto result = server.serve();
    const double pool = result.wall_seconds;
    pool_best = r == 0 ? pool : std::min(pool_best, pool);
    pool_mean += pool / reps;
    if (r == 0) pooled = std::move(result);
  }

  // Determinism guard: pooled rows == per-job rows, every job.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    DISTAPX_ENSURE(sequential[j].jobs.size() == 1);
    DISTAPX_ENSURE(pooled.jobs[j].rows == sequential[j].jobs[0].rows);
  }

  t.add_row({"sequential-per-job", Table::fmt(seq_best, 4),
             Table::fmt(seq_mean, 4),
             Table::fmt(static_cast<double>(total_runs) / seq_best, 1),
             "1.00"});
  t.add_row({"shared-pool", Table::fmt(pool_best, 4),
             Table::fmt(pool_mean, 4),
             Table::fmt(static_cast<double>(total_runs) / pool_best, 1),
             Table::fmt(seq_best / pool_best, 2)});
  t.print(std::cout);
  std::cout << "\n(pooled rows verified bit-identical to per-job rows)\n";
}

void thread_scaling() {
  bench::banner(
      "E10b: shared-pool scaling across thread counts",
      "Rows are bit-identical at every thread count (the determinism "
      "contract); wall time should shrink until the unit queue drains.");

  const auto jobs = workload();
  Table t({"threads", "wall_s", "runs_per_s"});
  std::vector<service::BatchResult> results;
  std::uint64_t total_runs = 0;
  for (const auto& j : jobs) total_runs += j.num_seeds;
  for (const unsigned threads : {1u, 2u, 4u, bench::default_threads()}) {
    service::BatchServer server({threads});
    server.submit_all(jobs);
    results.push_back(server.serve());
    const double s = results.back().wall_seconds;
    t.add_row({Table::fmt(static_cast<std::uint64_t>(threads)),
               Table::fmt(s, 4),
               Table::fmt(static_cast<double>(total_runs) / s, 1)});
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    for (std::size_t j = 0; j < results[i].jobs.size(); ++j) {
      DISTAPX_ENSURE(results[i].jobs[j].rows == results[0].jobs[j].rows);
    }
  }
  t.print(std::cout);
  std::cout << "\n(rows bit-identical across all thread counts)\n";
}

}  // namespace
}  // namespace distapx

int main() {
  distapx::mixed_throughput();
  distapx::thread_scaling();
  return 0;
}
