// Ablation E7 — the Sec. 2.4 congestion claim: executing a line-graph
// algorithm through the Theorem 2.8 aggregation mechanism keeps per-edge
// load at O(log n) bits, while naive simulation pays Θ(Δ log n).
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "matching/nmm_2eps.hpp"
#include "mis/nmis_agg.hpp"
#include "sim/aggregation.hpp"

namespace distapx {
namespace {

void congestion_vs_delta() {
  bench::banner(
      "E7: per-edge bits — aggregation (Thm 2.8) vs naive line-graph "
      "simulation, both *measured* by running the NMIS matching program "
      "in each transport",
      "aggregation stays at the CONGEST cap; naive grows linearly in Δ");
  Table t({"graph", "Delta", "CONGEST cap (bits)",
           "aggregation max bits/edge/rnd", "naive max bits/edge/rnd",
           "naive / cap", "naive total bits / agg total bits"});
  struct Workload {
    std::string name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  for (std::uint32_t d : {8u, 32u, 128u, 512u}) {
    workloads.push_back({"star(" + std::to_string(d + 1) + ")",
                         gen::star(d + 1)});
  }
  Rng rng(5);
  workloads.push_back({"regular(512,16)", gen::random_regular(512, 16, rng)});
  workloads.push_back({"powerlaw(512)", gen::power_law(512, 2.3, 6.0, rng)});

  for (const auto& wl : workloads) {
    std::uint32_t line_delta = 1;
    for (EdgeId e = 0; e < wl.graph.num_edges(); ++e) {
      const auto [u, v] = wl.graph.endpoints(e);
      line_delta = std::max(line_delta,
                            wl.graph.degree(u) + wl.graph.degree(v) - 2);
    }
    NmisAggProgram prog(line_delta, nmm_params_for(0.25, line_delta));
    sim::RunOptions opts;
    opts.seed = 3;
    opts.policy = sim::BandwidthPolicy::congest(32);
    const auto agg = sim::run_on_line_graph(wl.graph, prog, opts);
    const auto naive = sim::run_on_line_graph_naive(wl.graph, prog, opts);
    t.add_row(
        {wl.name, Table::fmt(std::uint64_t{wl.graph.max_degree()}),
         Table::fmt(std::uint64_t{agg.metrics.bandwidth_cap}),
         Table::fmt(std::uint64_t{agg.metrics.max_edge_bits}),
         Table::fmt(std::uint64_t{naive.metrics.max_edge_bits}),
         Table::fmt(static_cast<double>(naive.metrics.max_edge_bits) /
                        agg.metrics.bandwidth_cap,
                    2),
         Table::fmt(static_cast<double>(naive.metrics.total_bits) /
                        static_cast<double>(
                            std::max<std::uint64_t>(agg.metrics.total_bits,
                                                    1)),
                    2)});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Ablation E7: local aggregation vs naive line-graph "
               "simulation [Sec 2.4, Thm 2.8]\n";
  distapx::congestion_vs_delta();
  return 0;
}
