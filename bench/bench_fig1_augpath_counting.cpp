// Figure 1 — augmenting paths in a bipartite graph: the forward/backward
// BFS-layered traversal that counts, per node, the shortest augmenting
// paths through it (Claims B.5/B.6).
//
// Regenerated artifacts:
//  (a) a Figure-1-style instance with the per-node counts printed the way
//      the figure annotates them
//  (b) validation of the traversal against brute-force path enumeration
//  (c) scaling: the traversal costs Θ(d) rounds regardless of path counts
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "matching/augmenting.hpp"
#include "matching/bipartite_paths.hpp"
#include "matching/hopcroft_karp.hpp"

namespace distapx {
namespace {

/// Builds a Figure-1-like instance: A-column and B-column, partial
/// matching, several overlapping length-5 augmenting paths.
struct Fig1Instance {
  Graph graph;
  Bipartition parts;
  std::vector<NodeId> mate;
};

Fig1Instance figure1_instance() {
  // A = 0..4, B = 5..9. Matching: (1,6), (2,7), (3,8).
  GraphBuilder b(10);
  b.add_edge(0, 6);
  b.add_edge(0, 7);
  b.add_edge(1, 6);
  b.add_edge(1, 5);  // free B 5
  b.add_edge(2, 7);
  b.add_edge(2, 5);
  b.add_edge(3, 8);
  b.add_edge(2, 8);
  b.add_edge(3, 9);  // free B 9
  const Graph g = b.build();
  Bipartition parts;
  parts.side.assign(10, Side::kRight);
  for (NodeId v = 0; v < 5; ++v) parts.side[v] = Side::kLeft;
  std::vector<NodeId> mate(10, kInvalidNode);
  mate[1] = 6;
  mate[6] = 1;
  mate[2] = 7;
  mate[7] = 2;
  mate[3] = 8;
  mate[8] = 3;
  return {g, parts, mate};
}

void figure_counts() {
  bench::banner("E5a: Figure 1 per-node shortest-augmenting-path counts",
                "forward traversal reaches free B-nodes in d rounds; the "
                "backward split gives every node its path count");
  auto inst = figure1_instance();
  const std::uint32_t d =
      shortest_augmenting_path_length(inst.graph, inst.mate, 9);
  std::cout << "shortest augmenting path length d = " << d << "\n";
  const auto counts =
      count_augmenting_paths_per_node(inst.graph, inst.parts, inst.mate, d);
  const auto paths = enumerate_augmenting_paths(inst.graph, inst.mate, d);
  Table t({"node", "side", "state", "traversal count", "brute force"});
  std::vector<double> brute(inst.graph.num_nodes(), 0);
  for (const auto& p : paths) {
    for (NodeId v : p) brute[v] += 1;
  }
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v) {
    t.add_row({Table::fmt(std::uint64_t{v}),
               inst.parts.is_left(v) ? "A" : "B",
               inst.mate[v] == kInvalidNode ? "free" : "matched",
               Table::fmt(counts[v], 0), Table::fmt(brute[v], 0)});
  }
  t.print(std::cout);
  std::cout << "total length-" << d << " augmenting paths: " << paths.size()
            << "\n";
}

void validation_sweep() {
  bench::banner("E5b: traversal vs brute force on random bipartite graphs",
                "Claim B.5: the numbers received equal the true counts");
  Table t({"n per side", "d", "instances", "max |error|"});
  for (std::uint32_t d : {1u, 3u, 5u}) {
    struct SeedStats {
      bool counted = false;
      double max_err = 0;
    };
    const auto runs = bench::per_seed(1, 10, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, d));
      const Graph g = gen::bipartite_gnp(12, 12, 0.22, rng);
      const auto parts = try_bipartition(g);
      if (!parts) return SeedStats{};
      std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
      std::vector<EdgeId> me(g.num_nodes(), kInvalidEdge);
      // Establish the shortest-length-d precondition.
      bool ok = true;
      for (std::uint32_t s = 1; s < d && ok; s += 2) {
        for (;;) {
          const auto paths = enumerate_augmenting_paths(g, mate, s);
          if (paths.empty()) break;
          std::vector<bool> used(g.num_nodes(), false);
          bool any = false;
          for (const auto& path : paths) {
            if (std::any_of(path.begin(), path.end(),
                            [&](NodeId v) { return used[v]; })) {
              continue;
            }
            for (NodeId v : path) used[v] = true;
            flip_augmenting_path(g, mate, me, path);
            any = true;
          }
          if (!any) break;
        }
      }
      if (shortest_augmenting_path_length(g, mate, d) != d) {
        return SeedStats{};
      }
      SeedStats out;
      out.counted = true;
      const auto counts =
          count_augmenting_paths_per_node(g, *parts, mate, d);
      std::vector<double> brute(g.num_nodes(), 0);
      for (const auto& p : enumerate_augmenting_paths(g, mate, d)) {
        for (NodeId v : p) brute[v] += 1;
      }
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        out.max_err = std::max(out.max_err, std::abs(counts[v] - brute[v]));
      }
      return out;
    });
    double max_err = 0;
    int instances = 0;
    for (const auto& s : runs) {
      if (!s.counted) continue;
      ++instances;
      max_err = std::max(max_err, s.max_err);
    }
    t.add_row({"12", Table::fmt(std::uint64_t{d}),
               Table::fmt(static_cast<std::int64_t>(instances)),
               Table::fmt(max_err, 9)});
  }
  t.print(std::cout);
}

void scaling() {
  bench::banner("E5c: traversal round cost",
                "2d rounds per forward+backward sweep, independent of the "
                "(possibly exponential) number of paths");
  Table t({"n per side", "p", "d", "paths through busiest node",
           "rounds (2d)"});
  for (NodeId n : {50u, 200u, 800u}) {
    Rng rng(n);
    const Graph g = gen::bipartite_gnp(n, n, 8.0 / n, rng);
    const auto parts = try_bipartition(g);
    std::vector<NodeId> mate(g.num_nodes(), kInvalidNode);
    std::vector<EdgeId> me(g.num_nodes(), kInvalidEdge);
    // Maximal set of length-1 paths so that d=3 is the shortest.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (mate[u] == kInvalidNode && mate[v] == kInvalidNode) {
        mate[u] = v;
        mate[v] = u;
        me[u] = me[v] = e;
      }
    }
    const std::uint32_t d = 3;
    const auto counts = count_augmenting_paths_per_node(g, *parts, mate, d);
    double busiest = 0;
    for (double c : counts) busiest = std::max(busiest, c);
    t.add_row({Table::fmt(std::uint64_t{n}), Table::fmt(8.0 / n, 4),
               Table::fmt(std::uint64_t{d}), Table::fmt(busiest, 0),
               Table::fmt(std::uint64_t{2 * d})});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Figure 1: augmenting-path counting in bipartite graphs "
               "[App B.3, Claims B.5/B.6]\n";
  distapx::figure_counts();
  distapx::validation_sweep();
  distapx::scaling();
  return 0;
}
