// Ablation E6 — the probability-update base K of the modified
// nearly-maximal IS (Sec. 3.1, Theorem 3.1).
//
// Theorem 3.1 budget: β(log Δ / log K + K² log 1/δ). The paper picks
// K = Θ(log^0.1 Δ) to balance the two terms. We sweep K and report both
// the theoretical budget and the empirical rounds until every node
// decides (no budget cut-off), plus the leftover fraction under the
// theorem's budget.
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "mis/ghaffari_nmis.hpp"

namespace distapx {
namespace {

void sweep(std::uint32_t delta) {
  bench::banner("E6: NMIS K sweep on random " + std::to_string(delta) +
                    "-regular graphs (n=1024)",
                "budget = β(logΔ/logK + K² log 1/δ); small K wins at small "
                "Δ, the K² term dominates as K grows");
  Table t({"K", "theory budget", "rounds-to-drain(mean)",
           "undecided frac @budget", "IS size"});
  for (std::uint32_t K : {2u, 3u, 4u, 6u, 8u}) {
    NmisParams theory;
    theory.K = K;
    const auto budget = nmis_iteration_budget(delta, theory);
    Summary drain_rounds, undecided_frac, is_size;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(hash_combine(seed, K));
      const Graph g = gen::random_regular(1024, delta, rng);
      // Empirical drain: huge budget, nodes decide naturally.
      NmisParams free_run = theory;
      free_run.iterations = 100000;
      const auto res = run_nmis(g, seed, free_run);
      drain_rounds.add(res.metrics.rounds);
      is_size.add(static_cast<double>(res.independent_set.size()));
      // Leftovers under the theorem budget.
      const auto capped = run_nmis(g, hash_combine(seed, 7), theory);
      undecided_frac.add(static_cast<double>(capped.undecided.size()) /
                         g.num_nodes());
    }
    t.add_row({Table::fmt(std::uint64_t{K}),
               Table::fmt(std::uint64_t{budget}),
               Table::fmt(drain_rounds.mean(), 1),
               Table::fmt(undecided_frac.mean(), 4),
               Table::fmt(is_size.mean(), 1)});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Ablation E6: the K parameter of the nearly-maximal IS "
               "[Sec 3.1, Thm 3.1]\n";
  distapx::sweep(8);
  distapx::sweep(32);
  return 0;
}
