// Socket serving throughput: the same mixed job file served through the
// three transports that now front the cache-backed BatchServer —
// in-process (`batch`), spool directory (the PR-3 daemon), and the framed
// socket tier — cold and warm, plus socket client-concurrency scaling.
//
// The guarantee under measurement is the determinism contract across
// transports: every serving path returns byte-identical runs CSV for the
// same job file, so the transport choice is purely an ops/latency
// decision. The bench asserts that equality on every single response
// while reporting what each transport costs.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "service/batch_server.hpp"
#include "service/daemon.hpp"
#include "service/job_spec.hpp"
#include "service/report_sink.hpp"
#include "service/result_cache.hpp"
#include "service/socket_server.hpp"
#include "support/assert.hpp"
#include "support/trace.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Mixed IS + matching workload, small enough for a CI smoke run but
/// heterogeneous like examples/jobs_mixed.txt.
const char* kJobFile =
    "gen=gnp:300:0.02   algo=luby       seeds=1:12 name=gnp-luby\n"
    "gen=grid:14:14     algo=mcm-2eps   seeds=1:6  eps=0.25 name=grid-mcm\n"
    "gen=regular:256:6  algo=maxis-alg2 seeds=1:5  maxw=512 name=reg-maxis\n"
    "gen=tree:500       algo=mwm-lr     seeds=1:4  maxw=64  name=tree-mwm\n";
constexpr std::uint64_t kTotalRuns = 12 + 6 + 5 + 4;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("distapx-bench-socket-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// One in-process serve rendered to the same CSV bytes every transport
/// must reproduce.
std::string serve_in_process(unsigned threads, service::ResultCache* cache,
                             const std::string& job_file = kJobFile) {
  std::istringstream is(job_file);
  service::BatchServer server({threads, cache});
  server.submit_all(service::parse_job_file(is));
  return service::render_result("bench", server.serve()).runs_csv;
}

/// Polls the server's STATS text until `line` shows up (lane execution is
/// asynchronous with respect to the submitting client).
bool wait_for_stats_line(const net::Endpoint& ep, const std::string& line,
                         int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    net::Client client = net::Client::connect(ep);
    if (client.stats().find(line) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

void transports_cold_vs_warm() {
  const unsigned threads = bench::default_threads();
  bench::banner(
      "E12: one job file, three transports (in-process / spool / socket)",
      "The socket tier returns byte-identical rows to `batch` and the "
      "spool daemon — the transport is an ops choice, not a semantics "
      "choice. Cold = compute + fill cache, warm = all cache hits.");
  std::cout << "4 jobs, " << kTotalRuns << " runs per request, " << threads
            << " worker threads\n\n";

  const std::string reference = serve_in_process(threads, nullptr);
  const int warm_reps = 3;
  Table t({"transport", "cold_s", "warm_s", "warm_req_per_s",
           "cold_over_warm"});

  const auto add_row = [&](const std::string& name, double cold_s,
                           double warm_s) {
    t.add_row({name, Table::fmt(cold_s, 4), Table::fmt(warm_s, 4),
               Table::fmt(1.0 / warm_s, 1), Table::fmt(cold_s / warm_s, 1)});
  };

  // ---- in-process ----------------------------------------------------------
  {
    const fs::path cache_dir = scratch_dir("inproc");
    service::ResultCache cache(cache_dir.string());
    auto t0 = Clock::now();
    DISTAPX_ENSURE(serve_in_process(threads, &cache) == reference);
    const double cold_s = seconds_since(t0);
    double warm_best = 0;
    for (int r = 0; r < warm_reps; ++r) {
      t0 = Clock::now();
      DISTAPX_ENSURE(serve_in_process(threads, &cache) == reference);
      const double s = seconds_since(t0);
      warm_best = r == 0 ? s : std::min(warm_best, s);
    }
    DISTAPX_ENSURE(cache.stats().hits ==
                   static_cast<std::uint64_t>(warm_reps) * kTotalRuns);
    add_row("in-process batch", cold_s, warm_best);
    fs::remove_all(cache_dir);
  }

  // ---- spool daemon --------------------------------------------------------
  {
    const fs::path spool = scratch_dir("spool");
    const fs::path cache_dir = scratch_dir("spool-cache");
    service::DaemonOptions opts;
    opts.spool_dir = spool.string();
    opts.cache_dir = cache_dir.string();
    opts.threads = threads;
    service::Daemon daemon(opts);
    const auto submit_and_drain = [&](const std::string& name) {
      {
        std::ofstream os(spool / (name + ".tmp"));
        os << kJobFile;
      }
      fs::rename(spool / (name + ".tmp"), spool / (name + ".job"));
      const auto t0 = Clock::now();
      const auto reports = daemon.drain_once();
      const double s = seconds_since(t0);
      DISTAPX_ENSURE(reports.size() == 1 && reports[0].ok);
      DISTAPX_ENSURE(slurp(spool / "done" / (name + ".runs.csv")) ==
                     reference);
      return s;
    };
    const double cold_s = submit_and_drain("cold");
    double warm_best = 0;
    for (int r = 0; r < warm_reps; ++r) {
      const double s = submit_and_drain("warm" + std::to_string(r));
      warm_best = r == 0 ? s : std::min(warm_best, s);
    }
    add_row("spool daemon", cold_s, warm_best);
    fs::remove_all(spool);
    fs::remove_all(cache_dir);
  }

  // ---- socket --------------------------------------------------------------
  {
    const fs::path sock_dir = scratch_dir("sock");
    const fs::path cache_dir = scratch_dir("sock-cache");
    fs::create_directories(sock_dir);
    service::SocketServerOptions opts;
    opts.endpoint = net::parse_endpoint((sock_dir / "dx.sock").string());
    opts.threads = threads;
    opts.cache_dir = cache_dir.string();
    service::SocketServer server(std::move(opts));
    std::thread io([&] { (void)server.run(); });
    net::Client client = net::Client::connect(server.endpoint());
    const auto submit_once = [&] {
      const auto t0 = Clock::now();
      const auto outcome = client.submit(kJobFile);
      const double s = seconds_since(t0);
      DISTAPX_ENSURE(outcome.ok);
      DISTAPX_ENSURE(outcome.result.runs_csv == reference);
      return s;
    };
    const double cold_s = submit_once();
    double warm_best = 0;
    for (int r = 0; r < warm_reps; ++r) {
      const double s = submit_once();
      warm_best = r == 0 ? s : std::min(warm_best, s);
    }
    add_row("unix socket", cold_s, warm_best);
    server.request_stop();
    io.join();
    fs::remove_all(sock_dir);
    fs::remove_all(cache_dir);
  }

  t.print(std::cout);
  std::cout << "\n(every response above verified byte-identical to the "
               "in-process reference rows)\n";
}

void socket_client_scaling() {
  const unsigned threads = bench::default_threads();
  bench::banner(
      "E12b: socket serving under client concurrency (warm cache)",
      "K concurrent clients hammer one server over a Unix socket; every "
      "response carries bit-identical rows. The executor lanes run "
      "SUBMITs from different connections concurrently while each "
      "connection still sees its responses in submit order.");

  const fs::path sock_dir = scratch_dir("scale");
  const fs::path cache_dir = scratch_dir("scale-cache");
  fs::create_directories(sock_dir);
  service::SocketServerOptions opts;
  opts.endpoint = net::parse_endpoint((sock_dir / "dx.sock").string());
  opts.threads = threads;
  opts.cache_dir = cache_dir.string();
  service::SocketServer server(std::move(opts));
  std::thread io([&] { (void)server.run(); });

  const std::string reference = serve_in_process(threads, nullptr);
  {
    // Warm the cache once before measuring.
    net::Client client = net::Client::connect(server.endpoint());
    const auto outcome = client.submit(kJobFile);
    DISTAPX_ENSURE(outcome.ok && outcome.result.runs_csv == reference);
  }

  constexpr int kRequestsPerClient = 8;
  Table t({"clients", "requests", "wall_s", "req_per_s"});
  for (const int clients : {1, 2, 4, 8}) {
    std::atomic<int> mismatches{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        net::Client client = net::Client::connect(server.endpoint());
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const auto outcome = client.submit(kJobFile);
          if (!outcome.ok || outcome.result.runs_csv != reference) {
            ++mismatches;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall = seconds_since(t0);
    DISTAPX_ENSURE(mismatches.load() == 0);
    const int total = clients * kRequestsPerClient;
    t.add_row({Table::fmt(static_cast<std::uint64_t>(clients)),
               Table::fmt(static_cast<std::uint64_t>(total)),
               Table::fmt(wall, 4),
               Table::fmt(static_cast<double>(total) / wall, 1)});
  }
  t.print(std::cout);
  std::cout << "\n(all responses bit-identical across all client counts)\n";

  server.request_stop();
  io.join();
  fs::remove_all(sock_dir);
  fs::remove_all(cache_dir);
}

void socket_lane_scaling() {
  const unsigned hw = std::thread::hardware_concurrency();
  bench::banner(
      "E12b.2: executor lane scaling (cold, compute-bound)",
      "No cache and engine threads pinned to 1, so the executor lanes are "
      "the only parallelism in the server; 4 pipelined clients keep the "
      "shared queue full. Rows stay bit-identical at every lane count.");
  std::cout << "hardware threads: " << hw << "\n\n";

  const std::string reference = serve_in_process(1, nullptr);
  std::vector<unsigned> lane_counts{1, 2};
  if (const unsigned top = std::min(hw, 4u); top > 2) {
    lane_counts.push_back(top);
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 2;
  constexpr int kTotal = kClients * kRequestsPerClient;
  Table t({"lanes", "requests", "wall_s", "req_per_s", "speedup_vs_1"});
  std::vector<double> walls;
  for (const unsigned lanes : lane_counts) {
    const fs::path sock_dir = scratch_dir("lanes" + std::to_string(lanes));
    fs::create_directories(sock_dir);
    service::SocketServerOptions opts;
    opts.endpoint = net::parse_endpoint((sock_dir / "dx.sock").string());
    opts.threads = 1;
    opts.lanes = lanes;
    service::SocketServer server(std::move(opts));
    std::thread io([&] { (void)server.run(); });

    std::atomic<int> mismatches{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      workers.emplace_back([&] {
        net::Client client = net::Client::connect(server.endpoint());
        // Fully pipelined: every request in flight before the first read.
        for (int r = 0; r < kRequestsPerClient; ++r) {
          client.send_submit(kJobFile);
        }
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const auto outcome = client.recv_submit();
          if (!outcome.ok || outcome.result.runs_csv != reference) {
            ++mismatches;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall = seconds_since(t0);
    DISTAPX_ENSURE(mismatches.load() == 0);
    server.request_stop();
    io.join();
    fs::remove_all(sock_dir);

    walls.push_back(wall);
    t.add_row({Table::fmt(static_cast<std::uint64_t>(lanes)),
               Table::fmt(static_cast<std::uint64_t>(kTotal)),
               Table::fmt(wall, 4),
               Table::fmt(static_cast<double>(kTotal) / wall, 1),
               Table::fmt(walls.front() / wall, 2)});
  }
  t.print(std::cout);
  if (hw >= 2) {
    // Monotone improvement is the contract the lanes were built for; on a
    // multi-core box the top lane count must visibly beat one lane.
    DISTAPX_ENSURE(walls.back() <= walls.front() * 0.95);
    std::cout << "\n(max lanes " << Table::fmt(walls.front() / walls.back(), 2)
              << "x faster than 1 lane; all rows bit-identical)\n";
  } else {
    std::cout << "\n(single hardware thread: lane scaling reported, not "
                 "asserted; all rows bit-identical)\n";
  }
}

void socket_long_vs_short_isolation() {
  const unsigned hw = std::thread::hardware_concurrency();
  bench::banner(
      "E12c: short-job latency isolation under a long sweep",
      "One client keeps a long sweep running while another submits a tiny "
      "job. With 1 lane the short job waits out the sweep (head-of-line "
      "blocking); with 2 lanes it overtakes on the free lane.");

  const std::string kShortJob = "gen=path:200 algo=luby seeds=1:4 name=short\n";
  const std::string kLongJob =
      "gen=gnp:3000:0.01 algo=luby seeds=1:10 name=sweep\n";
  const std::string short_ref = serve_in_process(1, nullptr, kShortJob);
  const std::string long_ref = serve_in_process(1, nullptr, kLongJob);

  Table t({"lanes", "solo_ms", "busy_worst_ms", "inflation"});
  for (const unsigned lanes : {1u, 2u}) {
    const fs::path sock_dir = scratch_dir("iso" + std::to_string(lanes));
    fs::create_directories(sock_dir);
    service::SocketServerOptions opts;
    opts.endpoint = net::parse_endpoint((sock_dir / "dx.sock").string());
    opts.threads = 1;
    opts.lanes = lanes;
    service::SocketServer server(std::move(opts));
    std::thread io([&] { (void)server.run(); });
    net::Client short_client = net::Client::connect(server.endpoint());

    const auto short_once = [&] {
      const auto t0 = Clock::now();
      const auto outcome = short_client.submit(kShortJob);
      const double ms = seconds_since(t0) * 1e3;
      DISTAPX_ENSURE(outcome.ok && outcome.result.runs_csv == short_ref);
      return ms;
    };

    // Baseline: the short job on an idle server (best of 5).
    double solo_ms = short_once();
    for (int r = 0; r < 4; ++r) solo_ms = std::min(solo_ms, short_once());

    // Contention: a sweeper keeps exactly one long SUBMIT outstanding —
    // one lane stays busy for the whole measurement window without ever
    // saturating the second lane (which is the short jobs' escape hatch).
    std::atomic<bool> stop{false};
    std::atomic<int> long_bad{0};
    std::thread sweeper([&] {
      net::Client lc = net::Client::connect(server.endpoint());
      do {
        const auto outcome = lc.submit(kLongJob);
        if (!outcome.ok || outcome.result.runs_csv != long_ref) ++long_bad;
      } while (!stop.load());
    });
    DISTAPX_ENSURE(wait_for_stats_line(server.endpoint(), "executing 1"));

    double busy_worst = 0;
    for (int r = 0; r < 8; ++r) busy_worst = std::max(busy_worst, short_once());
    stop.store(true);
    sweeper.join();
    DISTAPX_ENSURE(long_bad.load() == 0);
    server.request_stop();
    io.join();
    fs::remove_all(sock_dir);

    t.add_row({Table::fmt(static_cast<std::uint64_t>(lanes)),
               Table::fmt(solo_ms, 2), Table::fmt(busy_worst, 2),
               Table::fmt(busy_worst / solo_ms, 1)});
    if (hw >= 2 && lanes >= 2) {
      // The regression being guarded: with a free lane, the short job
      // must never wait out the sweep. The ceiling is generous (cache
      // misses, scheduler noise) but far below the sweep's runtime.
      DISTAPX_ENSURE(busy_worst <= std::max(solo_ms * 4.0, solo_ms + 60.0));
    }
  }
  t.print(std::cout);
  std::cout << "\n(short + long responses bit-identical to in-process runs "
               "at both lane counts"
            << (hw >= 2 ? "; 2-lane inflation ceiling asserted" : "")
            << ")\n";
}

void socket_tracing_overhead() {
  const unsigned threads = bench::default_threads();
  bench::banner(
      "E12d: tracing overhead (always-on spans vs DISTAPX_TRACE=off)",
      "The same warm-cache pipelined workload served with per-SUBMIT span "
      "collection + sink publication on, and with the kill switch off (no "
      "collectors at all). Tracing must stay within 3% of the baseline "
      "and never change a result byte — at 1 lane and at 4 lanes.");

  const std::string reference = serve_in_process(threads, nullptr);
  const bool was_enabled = trace::enabled();
  constexpr int kClients = 2;
  constexpr int kPerClient = 6;
  constexpr int kMaxRounds = 8;  // remeasure until the noise floor clears

  struct Mode {
    const char* name;
    bool tracing;
    fs::path sock_dir, cache_dir;
    std::optional<trace::TraceSink> sink;
    std::optional<service::SocketServer> server;
    std::optional<std::thread> io;
    double best_s = 1e9;
  };

  Table t({"lanes", "tracing", "best_s", "req_per_s", "overhead_pct"});
  for (const unsigned lanes : {1u, 4u}) {
    Mode modes[2] = {{"off", false}, {"on", true}};
    for (Mode& m : modes) {
      const std::string tag =
          std::string("trace-") + m.name + "-" + std::to_string(lanes);
      m.sock_dir = scratch_dir(tag);
      m.cache_dir = scratch_dir(tag + "-cache");
      fs::create_directories(m.sock_dir);
      m.sink.emplace();
      service::SocketServerOptions opts;
      opts.endpoint = net::parse_endpoint((m.sock_dir / "dx.sock").string());
      opts.threads = threads;
      opts.lanes = lanes;
      opts.cache_dir = m.cache_dir.string();
      opts.trace_sink = &*m.sink;
      m.server.emplace(std::move(opts));
      m.io.emplace([&server = *m.server] { (void)server.run(); });
      // Warm the cache (outside the measurement) under the mode's own
      // tracing state.
      trace::set_enabled(m.tracing);
      net::Client client = net::Client::connect(m.server->endpoint());
      const auto outcome = client.submit(kJobFile);
      DISTAPX_ENSURE(outcome.ok && outcome.result.runs_csv == reference);
    }

    const auto one_round = [&](Mode& m) {
      trace::set_enabled(m.tracing);
      std::atomic<int> mismatches{0};
      const auto t0 = Clock::now();
      std::vector<std::thread> workers;
      workers.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        workers.emplace_back([&] {
          net::Client client = net::Client::connect(m.server->endpoint());
          for (int r = 0; r < kPerClient; ++r) client.send_submit(kJobFile);
          for (int r = 0; r < kPerClient; ++r) {
            const auto outcome = client.recv_submit();
            if (!outcome.ok || outcome.result.runs_csv != reference) {
              ++mismatches;
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      const double wall = seconds_since(t0);
      DISTAPX_ENSURE(mismatches.load() == 0);
      return wall;
    };

    // Alternate on/off rounds and keep the per-mode minimum: interleaving
    // damps machine drift, min-wall damps one-off scheduler spikes. Stop
    // early once the ratio is inside the tolerance.
    double ratio = 1e9;
    for (int round = 0; round < kMaxRounds; ++round) {
      for (Mode& m : modes) m.best_s = std::min(m.best_s, one_round(m));
      ratio = modes[1].best_s / modes[0].best_s;
      if (round >= 2 && ratio <= 1.03) break;
    }

    for (Mode& m : modes) {
      m.server->request_stop();
      m.io->join();
    }
    // Off = no collectors anywhere, so nothing could have been published;
    // on = every completed SUBMIT landed in the sink.
    DISTAPX_ENSURE(modes[0].sink->published_total() == 0);
    DISTAPX_ENSURE(modes[1].sink->published_total() > 0);
    for (Mode& m : modes) {
      fs::remove_all(m.sock_dir);
      fs::remove_all(m.cache_dir);
    }

    constexpr int kTotal = kClients * kPerClient;
    for (const Mode& m : modes) {
      t.add_row({Table::fmt(static_cast<std::uint64_t>(lanes)), m.name,
                 Table::fmt(m.best_s, 4),
                 Table::fmt(static_cast<double>(kTotal) / m.best_s, 1),
                 m.tracing ? Table::fmt((ratio - 1.0) * 100.0, 2) : "-"});
    }
    DISTAPX_ENSURE(ratio <= 1.03);
  }
  trace::set_enabled(was_enabled);
  t.print(std::cout);
  std::cout << "\n(tracing-on within 3% of the kill-switch baseline at both "
               "lane counts; all rows bit-identical with tracing on and "
               "off)\n";
}

}  // namespace
}  // namespace distapx

int main() {
  distapx::transports_cold_vs_warm();
  distapx::socket_client_scaling();
  distapx::socket_lane_scaling();
  distapx::socket_long_vs_short_isolation();
  distapx::socket_tracing_overhead();
  std::cout << "\nbench_socket_serving: all determinism guards passed\n";
  return 0;
}
