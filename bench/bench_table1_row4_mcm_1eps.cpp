// Table 1, row 4 — (1+ε)-approximate maximum cardinality matching in
// O(log Δ / log log Δ) rounds (Thm B.4 LOCAL, Thm B.12 CONGEST).
//
// Series regenerated:
//  (a) quality vs exact across ε for the CONGEST algorithm (Thm B.12)
//  (b) LOCAL framework (hypergraph NMM) conflict rounds vs Δ
//  (c) alternative (2+ε) proposal algorithm (App B.4) for context
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "matching/blossom.hpp"
#include "matching/hk_framework.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/proposal.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

void congest_quality() {
  bench::banner("E4a: Thm B.12 CONGEST (1+ε) MCM quality",
                "|ALG| >= |OPT|/(1+ε) modulo the δ-deactivated nodes");
  Table t({"workload", "eps", "OPT/ALG(mean)", "OPT/ALG(max)",
           "deactivated", "bound 1+ε"});
  for (double eps : {0.5, 1.0 / 3.0}) {
    for (int variant = 0; variant < 2; ++variant) {
      Summary r, deact;
      double worst = 0;
      const auto runs = bench::per_seed(1, 4, [&](std::uint64_t seed) {
        Rng rng(hash_combine(seed, variant * 10 + (eps < 0.4)));
        const Graph g = variant == 0
                            ? gen::bipartite_gnp(60, 60, 0.06, rng)
                            : gen::gnp(120, 0.04, rng);
        McmCongestParams params;
        params.epsilon = eps;
        const auto res = run_mcm_1eps_congest(g, seed, params);
        const auto opt = blossom_mcm(g).matching.size();
        const double x =
            bench::ratio(static_cast<double>(opt),
                         static_cast<double>(res.matching.size()));
        return std::pair<double, double>{
            x, static_cast<double>(res.deactivated.size())};
      });
      for (const auto& [x, d] : runs) {
        r.add(x);
        worst = std::max(worst, x);
        deact.add(d);
      }
      t.add_row({variant == 0 ? "bipartite(60,60)" : "gnp(120,0.04)",
                 Table::fmt(eps, 2), Table::fmt(r.mean(), 3),
                 Table::fmt(worst, 3), Table::fmt(deact.mean(), 1),
                 Table::fmt(1.0 + eps, 2)});
    }
  }
  t.print(std::cout);
}

void local_rounds_vs_delta() {
  bench::banner(
      "E4b: LOCAL (1+ε) conflict-graph rounds vs Δ (Thm B.4)",
      "nearly-maximal hypergraph matching drains in O(d² logΔ/loglogΔ) "
      "iterations; each is O(1/ε) network rounds");
  Table t({"Delta", "conflict rounds (mean)", "rounds/log2Δ",
           "OPT/ALG"});
  for (std::uint32_t d : {4u, 8u, 16u, 32u}) {
    Summary rounds, quality;
    const auto runs = bench::per_seed(1, 3, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, d));
      const Graph g = gen::random_regular(200, d, rng);
      HkApproxParams params;
      params.epsilon = 1.0 / 3.0;
      params.algo = PathSetAlgo::kHypergraphNmm;
      const auto res = run_hk_matching_local(g, seed, params);
      const auto opt = blossom_mcm(g).matching.size();
      return std::pair<double, double>{
          static_cast<double>(res.conflict_rounds),
          bench::ratio(static_cast<double>(opt),
                       static_cast<double>(res.matching.size()))};
    });
    for (const auto& [rnds, q] : runs) {
      rounds.add(rnds);
      quality.add(q);
    }
    t.add_row({Table::fmt(std::uint64_t{d}), Table::fmt(rounds.mean(), 1),
               Table::fmt(rounds.mean() / ceil_log2(d), 2),
               Table::fmt(quality.mean(), 3)});
  }
  t.print(std::cout);
}

void proposal_context() {
  bench::banner(
      "E4c: App B.4 proposal algorithm ((2+ε), "
      "O(logΔ/log(logΔ/log(1/ε))) rounds)",
      "simple alternative; unlucky left-node fraction <= ε/2 (Lemma B.13)");
  Table t({"Delta", "rounds", "unlucky frac", "OPT/ALG"});
  for (std::uint32_t d : {4u, 16u, 64u}) {
    Summary rounds, unlucky, quality;
    struct SeedStats {
      double rounds = 0, unlucky = 0, quality = 0;
    };
    const auto runs = bench::per_seed(1, 4, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, d));
      const Graph g = gen::bipartite_gnp(400, 400, d / 400.0, rng);
      const auto parts = try_bipartition(g);
      ProposalParams params;
      params.epsilon = 0.2;
      const auto res =
          run_proposal_matching_bipartite(g, *parts, seed, params);
      const auto opt = hopcroft_karp(g, *parts).matching.size();
      return SeedStats{
          static_cast<double>(res.metrics.rounds),
          static_cast<double>(res.unlucky.size()) / 400.0,
          bench::ratio(static_cast<double>(opt),
                       static_cast<double>(res.matching.size()))};
    });
    for (const auto& s : runs) {
      rounds.add(s.rounds);
      unlucky.add(s.unlucky);
      quality.add(s.quality);
    }
    t.add_row({Table::fmt(std::uint64_t{d}), Table::fmt(rounds.mean(), 1),
               Table::fmt(unlucky.mean(), 4),
               Table::fmt(quality.mean(), 3)});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Table 1 row 4: MCM (1+ε)-approximation, randomized, "
               "O(log Δ / log log Δ) rounds [Thms B.4, B.12]\n";
  distapx::congest_quality();
  distapx::local_rounds_vs_delta();
  distapx::proposal_context();
  return 0;
}
