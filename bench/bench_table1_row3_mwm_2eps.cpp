// Table 1, row 3 — (2+ε)-approximate maximum weight matching in
// O(log Δ / log log Δ) rounds (Thm 3.2 + Appendix B.1).
//
// Series regenerated:
//  (a) unweighted NMM super-rounds vs Δ — sublogarithmic growth, compared
//      against the O(log n)-type local-ratio matching (row 1 machinery)
//  (b) cardinality quality vs exact (blossom)
//  (c) weighted pipeline (bucketing + refinement) quality vs exact MWM
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "matching/blossom.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/lr_matching.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/weighted_2eps.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

void rounds_vs_delta() {
  bench::banner(
      "E3a: NMM super-rounds vs Δ (n=2048 regular)",
      "O(log Δ / log log Δ): flat-ish in Δ, vs the O(log n)-round "
      "local-ratio matching baseline");
  Table t({"Delta", "log2Δ", "nmm super-rounds", "nmm/log2Δ",
           "lr-matching rounds (baseline)"});
  for (std::uint32_t d : {4u, 8u, 16u, 32u, 64u}) {
    Summary nmm_rounds, lr_rounds;
    const auto runs = bench::per_seed(1, 3, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, d));
      const Graph g = gen::random_regular(2048, d, rng);
      Nmm2EpsParams params;
      params.epsilon = 0.25;
      const double nmm = run_nmm_2eps_matching(g, seed, params).super_rounds;
      const double lr =
          run_lr_matching(g, gen::unit_edge_weights(g.num_edges()), seed)
              .metrics.rounds;
      return std::pair<double, double>{nmm, lr};
    });
    for (const auto& [nmm, lr] : runs) {
      nmm_rounds.add(nmm);
      lr_rounds.add(lr);
    }
    t.add_row({Table::fmt(std::uint64_t{d}),
               Table::fmt(std::int64_t{ceil_log2(d)}),
               Table::fmt(nmm_rounds.mean(), 1),
               Table::fmt(nmm_rounds.mean() / ceil_log2(d), 2),
               Table::fmt(lr_rounds.mean(), 1)});
  }
  t.print(std::cout);
}

void cardinality_quality() {
  bench::banner("E3b: (2+ε) MCM quality vs exact",
                "|ALG| >= |OPT| / (2+ε), ε=0.25");
  Table t({"workload", "OPT/ALG(mean)", "OPT/ALG(max)", "bound 2+ε"});
  for (const char* name : {"gnp(300,0.02)", "regular(300,8)",
                           "powerlaw(300)"}) {
    Summary r;
    double worst = 0;
    const auto ratios = bench::per_seed(1, 5, [&](std::uint64_t seed) {
      Rng rng(hash_combine(seed, std::string(name).size()));
      Graph g = std::string(name) == "gnp(300,0.02)"
                    ? gen::gnp(300, 0.02, rng)
                    : std::string(name) == "regular(300,8)"
                          ? gen::random_regular(300, 8, rng)
                          : gen::power_law(300, 2.5, 5.0, rng);
      Nmm2EpsParams params;
      params.epsilon = 0.25;
      const auto res = run_nmm_2eps_matching(g, seed, params);
      const auto opt = blossom_mcm(g).matching.size();
      return bench::ratio(static_cast<double>(opt),
                          static_cast<double>(res.matching.size()));
    });
    for (const double x : ratios) {
      r.add(x);
      worst = std::max(worst, x);
    }
    t.add_row({name, Table::fmt(r.mean(), 3), Table::fmt(worst, 3),
               "2.25"});
  }
  t.print(std::cout);
}

void weighted_quality() {
  bench::banner(
      "E3c: weighted (2+ε) pipeline (B.1: bucketing + refinement)",
      "stage 1 = O(1)-approx [LPSR09]; stage 2 refines to 2+ε [LPSP15]");
  Table t({"workload", "eps", "OPT/stage1", "OPT/full", "bound 2+ε"});
  for (double eps : {0.5, 0.25}) {
    Summary s1, s2;
    const auto runs = bench::per_seed(1, 5, [&](std::uint64_t seed) {
      Rng rng(seed);
      const Graph g = gen::bipartite_gnp(60, 60, 0.08, rng);
      const auto w =
          gen::uniform_edge_weights(g.num_edges(), 1 << 12, rng);
      const Weight opt =
          matching_weight(w, exact_mwm_bipartite(g, w).matching);
      Weighted2EpsParams params;
      params.epsilon = eps;
      const auto stage1 = run_bucketed_o1_mwm(g, w, seed, params);
      const auto full = run_weighted_2eps_matching(g, w, seed, params);
      return std::pair<double, double>{
          bench::ratio(
              static_cast<double>(opt),
              static_cast<double>(matching_weight(w, stage1.matching))),
          bench::ratio(
              static_cast<double>(opt),
              static_cast<double>(matching_weight(w, full.matching)))};
    });
    for (const auto& [a, b] : runs) {
      s1.add(a);
      s2.add(b);
    }
    t.add_row({"bipartite_gnp(60,60,0.08)", Table::fmt(eps, 2),
               Table::fmt(s1.mean(), 3), Table::fmt(s2.mean(), 3),
               Table::fmt(2.0 + eps, 2)});
  }
  t.print(std::cout);
}

void run_many_throughput() {
  bench::banner(
      "E3d: multi-seed throughput through sim run_many",
      "seeded runs are independent, so batching them over the run_many "
      "scheduler scales with cores (engine-level, not a paper claim)");
  const int kSeeds = 16;
  Rng rng(42);
  const Graph g = gen::random_regular(1024, 16, rng);
  auto one_seed = [&](std::uint64_t seed, std::size_t) {
    Nmm2EpsParams params;
    params.epsilon = 0.25;
    return run_nmm_2eps_matching(g, seed, params).matching.size();
  };
  const auto seeds = bench::seed_sequence(kSeeds, 7);
  auto timed = [&](unsigned threads) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto sizes = sim::run_many_tasks(seeds, threads, one_seed);
    const auto t1 = std::chrono::steady_clock::now();
    std::size_t total = 0;
    for (const std::size_t s : sizes) total += s;
    return std::pair<double, std::size_t>{
        std::chrono::duration<double>(t1 - t0).count(), total};
  };
  const auto [t1_sec, check1] = timed(1);
  const auto [t8_sec, check8] = timed(8);
  Table t({"threads", "wall sec", "speedup", "sum|M| (determinism check)"});
  t.add_row({"1", Table::fmt(t1_sec, 3), "1.00",
             Table::fmt(static_cast<std::uint64_t>(check1))});
  t.add_row({"8", Table::fmt(t8_sec, 3),
             Table::fmt(t8_sec > 0 ? t1_sec / t8_sec : 0.0, 2),
             Table::fmt(static_cast<std::uint64_t>(check8))});
  t.print(std::cout);
  std::cout << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n"
            << (check1 == check8 ? "outputs identical across thread counts\n"
                                 : "DETERMINISM VIOLATION\n");
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Table 1 row 3: MWM (2+ε)-approximation, randomized, "
               "O(log Δ / log log Δ) rounds [Thm 3.2, App B.1]\n";
  distapx::rounds_vs_delta();
  distapx::cardinality_quality();
  distapx::weighted_quality();
  distapx::run_many_throughput();
  return 0;
}
