// Table 1, row 1 — randomized Δ-approximation for weighted MaxIS
// (Algorithm 2): O(MIS(G) · log W) rounds with Luby as the MIS black box,
// i.e. O(log n · log W) in CONGEST.
//
// Series regenerated:
//  (a) rounds vs W at fixed topology   — should grow linearly in log W
//  (b) rounds vs n at fixed W          — should grow like log n
//  (c) approximation quality vs exact baselines (small graphs + forests)
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "maxis/exact.hpp"
#include "maxis/greedy_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "support/bits.hpp"

namespace distapx {
namespace {

/// Layer-chain workload: log2(W)+1 groups of `group` independent nodes,
/// complete bipartite links between consecutive groups, group i holding
/// weights in layer i. Layer i+1 blocks layer i until it drains, so the
/// run must walk the layers sequentially — the adversarial instance for
/// Theorem 2.3's O(MIS · log W) bound.
struct LayerChain {
  Graph graph;
  NodeWeights weights;
};

LayerChain layer_chain(int log_w, NodeId group, Rng& rng) {
  const int layers = log_w + 1;
  const NodeId n = static_cast<NodeId>(layers) * group;
  GraphBuilder b(n);
  for (int i = 0; i + 1 < layers; ++i) {
    for (NodeId x = 0; x < group; ++x) {
      for (NodeId y = 0; y < group; ++y) {
        b.add_edge(static_cast<NodeId>(i) * group + x,
                   static_cast<NodeId>(i + 1) * group + y);
      }
    }
  }
  LayerChain out{b.build(), NodeWeights(n)};
  for (int i = 0; i < layers; ++i) {
    for (NodeId x = 0; x < group; ++x) {
      const Weight lo = i == 0 ? 1 : (Weight{1} << (i - 1)) + 1;
      const Weight hi = Weight{1} << i;
      out.weights[static_cast<NodeId>(i) * group + x] =
          rng.next_in(lo, hi);
    }
  }
  return out;
}

void rounds_vs_w() {
  bench::banner(
      "E1a: Algorithm 2 rounds vs W, log-uniform weights",
      "rounds = O(MIS(G) log W). The bound binds on the layer-chain "
      "instance (layer i+1 blocks layer i); on sparse random graphs "
      "distant regions drain their layers in parallel and rounds are "
      "nearly flat");
  Table t({"topology", "W", "log2W", "rounds(mean)", "rounds(sd)",
           "rounds/log2W"});
  for (int chain = 1; chain >= 0; --chain) {
    std::vector<double> xs, ys;
    for (int logw : {1, 4, 8, 12, 16, 20}) {
      const Weight W = Weight{1} << logw;
      const auto stats =
          bench::sample_par(5, 100 + logw, [&](std::uint64_t seed) {
            Rng rng(seed);
            if (chain) {
              const auto inst = layer_chain(logw, 16, rng);
              return static_cast<double>(
                  run_layered_maxis(inst.graph, inst.weights, seed)
                      .metrics.rounds);
            }
            const Graph g = gen::random_regular(512, 4, rng);
            const auto w = gen::log_uniform_node_weights(512, W, rng);
            return static_cast<double>(
                run_layered_maxis(g, w, seed).metrics.rounds);
          });
      xs.push_back(logw);
      ys.push_back(stats.mean());
      t.add_row({chain ? "layer-chain(16/layer)" : "regular(512,4)",
                 Table::fmt(static_cast<std::uint64_t>(W)),
                 Table::fmt(static_cast<std::int64_t>(logw)),
                 Table::fmt(stats.mean(), 1), Table::fmt(stats.stddev(), 1),
                 Table::fmt(stats.mean() / logw, 2)});
    }
    const auto fit = fit_linear(xs, ys);
    std::cout << (chain ? "layer-chain" : "regular(512,4)")
              << ": rounds ~ " << Table::fmt(fit.intercept, 1) << " + "
              << Table::fmt(fit.slope, 2)
              << " * log2(W), r2=" << Table::fmt(fit.r2, 3) << "\n";
  }
  t.print(std::cout);
}

void rounds_vs_n() {
  bench::banner("E1b: Algorithm 2 rounds vs n (avg degree 8, W=2^10)",
                "MIS(G)=O(log n) via Luby; rounds grow ~ log n");
  Table t({"n", "log2n", "rounds(mean)", "rounds(sd)", "rounds/log2n"});
  for (NodeId n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const auto stats = bench::sample_par(3, 200 + n, [&](std::uint64_t seed) {
      Rng rng(seed);
      const Graph g = gen::gnp(n, 8.0 / n, rng);
      const auto w = gen::uniform_node_weights(n, 1 << 10, rng);
      return static_cast<double>(
          run_layered_maxis(g, w, seed).metrics.rounds);
    });
    const int logn = ceil_log2(n);
    t.add_row({Table::fmt(std::uint64_t{n}),
               Table::fmt(static_cast<std::int64_t>(logn)),
               Table::fmt(stats.mean(), 1), Table::fmt(stats.stddev(), 1),
               Table::fmt(stats.mean() / logn, 2)});
  }
  t.print(std::cout);
}

void quality() {
  bench::banner("E1c: Algorithm 2 approximation quality",
                "ALG >= OPT/Δ always (Thm 2.3); empirically far better");
  Table t({"workload", "Delta", "OPT/ALG(mean)", "OPT/ALG(max)",
           "bound Δ", "greedy OPT/ALG"});
  struct Case {
    std::string name;
    bool forest;
    NodeId n;
  };
  // Small random graphs vs branch & bound; forests vs the exact DP.
  for (int variant = 0; variant < 2; ++variant) {
    struct SeedStats {
      double r_alg = 0;
      double r_greedy = 0;
      std::uint32_t delta = 0;
    };
    const auto per_seed = bench::per_seed(1, 8, [&](std::uint64_t seed) {
          Rng rng(seed + (variant ? 500 : 0));
          const Graph g = variant == 0 ? gen::gnp(20, 0.2, rng)
                                       : gen::random_tree(300, rng);
          const auto w =
              gen::exponential_node_weights(g.num_nodes(), 1 << 12, rng);
          const Weight opt =
              variant == 0
                  ? set_weight(w, exact_maxis(g, w).independent_set)
                  : set_weight(w, exact_maxis_forest(g, w).independent_set);
          const auto alg = run_layered_maxis(g, w, seed);
          const auto greedy = greedy_maxis(g, w);
          SeedStats s;
          s.r_alg = bench::ratio(
              static_cast<double>(opt),
              static_cast<double>(set_weight(w, alg.independent_set)));
          s.r_greedy = bench::ratio(
              static_cast<double>(opt),
              static_cast<double>(set_weight(w, greedy.independent_set)));
          s.delta = g.max_degree();
          return s;
        });
    Summary ratio_alg, ratio_greedy;
    double worst = 0;
    std::uint32_t delta = 0;
    for (const auto& s : per_seed) {
      ratio_alg.add(s.r_alg);
      ratio_greedy.add(s.r_greedy);
      worst = std::max(worst, s.r_alg);
      delta = std::max(delta, s.delta);
    }
    t.add_row({variant == 0 ? "gnp(20,0.2)" : "random_tree(300)",
               Table::fmt(std::uint64_t{delta}),
               Table::fmt(ratio_alg.mean(), 3), Table::fmt(worst, 3),
               Table::fmt(std::uint64_t{delta}),
               Table::fmt(ratio_greedy.mean(), 3)});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace distapx

int main() {
  std::cout << "Table 1 row 1: MaxIS Δ-approximation, randomized, "
               "O(MIS(G) log W) rounds [Thm 2.3]\n";
  distapx::rounds_vs_w();
  distapx::rounds_vs_n();
  distapx::quality();
  return 0;
}
