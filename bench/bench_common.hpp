// Shared utilities for the benchmark harness.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "sim/run_many.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace distapx::bench {

/// Prints a section banner for one experiment.
void banner(const std::string& experiment, const std::string& claim);

/// Worker threads the benches use: DISTAPX_BENCH_THREADS when set,
/// otherwise the hardware concurrency.
unsigned default_threads();

/// The derived seed sequence sample()/sample_par() feed to `fn`.
std::vector<std::uint64_t> seed_sequence(int reps, std::uint64_t base_seed);

/// mean of `reps` samples produced by `fn(seed)`.
template <typename Fn>
Summary sample(int reps, std::uint64_t base_seed, Fn&& fn) {
  Summary s;
  for (const std::uint64_t seed : seed_sequence(reps, base_seed)) {
    s.add(fn(seed));
  }
  return s;
}

/// sample(), but the per-seed work runs through the sim::run_many_tasks
/// scheduler. The reduction folds in seed order, so the Summary is
/// bit-identical to the serial sample() at any thread count.
template <typename Fn>
Summary sample_par(int reps, std::uint64_t base_seed, Fn&& fn) {
  const auto seeds = seed_sequence(reps, base_seed);
  const auto values = sim::run_many_tasks(
      seeds, default_threads(),
      [&](std::uint64_t seed, std::size_t) -> double { return fn(seed); });
  Summary s;
  for (const double v : values) s.add(v);
  return s;
}

/// Per-seed results for seeds first_seed..first_seed+reps-1 computed
/// through the sim::run_many_tasks scheduler; results are in seed order
/// regardless of thread count.
template <typename Fn>
auto per_seed(std::uint64_t first_seed, int reps, Fn&& fn) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    seeds.push_back(first_seed + static_cast<std::uint64_t>(r));
  }
  return sim::run_many_tasks(
      seeds, default_threads(),
      [&](std::uint64_t seed, std::size_t) { return fn(seed); });
}

/// OPT/ALG ratio guard against divide-by-zero.
double ratio(double opt, double got);

}  // namespace distapx::bench
