// Shared utilities for the benchmark harness.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace distapx::bench {

/// Prints a section banner for one experiment.
void banner(const std::string& experiment, const std::string& claim);

/// mean of `reps` samples produced by `fn(seed)`.
template <typename Fn>
Summary sample(int reps, std::uint64_t base_seed, Fn&& fn) {
  Summary s;
  for (int r = 0; r < reps; ++r) {
    s.add(fn(hash_combine(base_seed, static_cast<std::uint64_t>(r))));
  }
  return s;
}

/// OPT/ALG ratio guard against divide-by-zero.
double ratio(double opt, double got);

}  // namespace distapx::bench
