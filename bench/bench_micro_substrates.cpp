// E10 — substrate micro-benchmarks (google-benchmark): generator and
// simulator throughput, so regressions in the platform underneath the
// experiments are visible.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/line_graph.hpp"
#include "matching/hopcroft_karp.hpp"
#include "mis/luby.hpp"
#include "sim/aggregation.hpp"
#include "support/random.hpp"

namespace distapx {
namespace {

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::gnp(n, 8.0 / n, rng));
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(8192);

void BM_RandomRegular(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::random_regular(n, 8, rng));
  }
}
BENCHMARK(BM_RandomRegular)->Arg(1024)->Arg(4096);

void BM_LineGraphConstruction(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::gnp(static_cast<NodeId>(state.range(0)), 0.02, rng);
  for (auto _ : state) {
    LineGraph lg(g);
    benchmark::DoNotOptimize(lg.graph().num_edges());
  }
}
BENCHMARK(BM_LineGraphConstruction)->Arg(512)->Arg(1024);

void BM_LubyMis(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_luby_mis(g, ++seed));
  }
}
BENCHMARK(BM_LubyMis)->Arg(1024)->Arg(4096);

void BM_HopcroftKarp(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::bipartite_gnp(n, n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(512)->Arg(2048);

/// Cost of one aggregation super-round on the line graph (the Thm 2.8
/// mechanism, no explicit line graph).
class NoopAgg final : public sim::AggProgram {
 public:
  std::vector<int> state_bits() const override { return {8}; }
  std::vector<sim::Aggregator> aggregators() const override {
    return {sim::agg_sum(
        [](std::span<const std::uint64_t> s) { return s[0]; }, 24)};
  }
  void init(sim::AggCtx& ctx) override { ctx.state()[0] = 1; }
  void round(sim::AggCtx& ctx) override {
    if (ctx.round() >= 16) ctx.halt(0);
  }
};

void BM_LineAggregationRounds(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, rng);
  for (auto _ : state) {
    NoopAgg prog;
    sim::RunOptions opts;
    opts.policy = sim::BandwidthPolicy::local();
    benchmark::DoNotOptimize(sim::run_on_line_graph(g, prog, opts));
  }
}
BENCHMARK(BM_LineAggregationRounds)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace distapx

BENCHMARK_MAIN();
