// Cross-module integration tests: all algorithms on shared workloads,
// CONGEST legality everywhere, end-to-end determinism.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/hk_framework.hpp"
#include "matching/lr_matching.hpp"
#include "matching/mcm_congest.hpp"
#include "matching/nmm_2eps.hpp"
#include "matching/proposal.hpp"
#include "matching/weighted_2eps.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/exact.hpp"
#include "maxis/layered_maxis.hpp"
#include "maxis/local_ratio_seq.hpp"
#include "mis/luby.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

TEST(Integration, AllMaxIsAlgorithmsRespectDeltaBoundOnOneWorkload) {
  Rng rng(1);
  const Graph g = gen::gnp(18, 0.25, rng);
  const auto w = gen::uniform_node_weights(g.num_nodes(), 40, rng);
  const Weight opt = test::brute_force_maxis_weight(g, w);
  const Weight delta = std::max<std::uint32_t>(g.max_degree(), 1);

  std::vector<std::pair<std::string, Weight>> results;
  results.emplace_back(
      "seq_single",
      set_weight(w, seq_local_ratio_maxis(
                        g, w, LocalRatioPolicy::kSingleMaxWeight)
                        .independent_set));
  results.emplace_back(
      "seq_toplayer",
      set_weight(w, seq_local_ratio_maxis(
                        g, w, LocalRatioPolicy::kTopLayerMis)
                        .independent_set));
  results.emplace_back(
      "alg2", set_weight(w, run_layered_maxis(g, w, 1).independent_set));
  results.emplace_back(
      "alg2_agg",
      set_weight(w, run_layered_maxis_agg(g, w, 1).independent_set));
  results.emplace_back(
      "alg3",
      set_weight(w, run_coloring_maxis_with(g, w, greedy_coloring(g))
                        .independent_set));
  for (const auto& [name, got] : results) {
    EXPECT_GE(got * delta, opt) << name;
    EXPECT_GT(got, 0) << name;
  }
}

TEST(Integration, AllMatchingAlgorithmsOnOneWorkload) {
  Rng rng(2);
  const Graph g = gen::gnp(16, 0.3, rng);
  const auto w = gen::uniform_edge_weights(g.num_edges(), 50, rng);
  const Weight opt_w = matching_weight(w, exact_mwm_small(g, w).matching);
  const std::size_t opt_c = blossom_mcm(g).matching.size();

  const auto lr = run_lr_matching(g, w, 2);
  EXPECT_GE(matching_weight(w, lr.matching) * 2, opt_w);

  const auto nmm = run_nmm_2eps_matching(g, 2);
  EXPECT_GE(nmm.matching.size() * 2.5, static_cast<double>(opt_c));

  const auto w2 = run_weighted_2eps_matching(g, w, 2);
  EXPECT_GE(matching_weight(w, w2.matching) * 3, opt_w);

  HkApproxParams hk;
  hk.algo = PathSetAlgo::kGreedyMaximal;
  const auto h = run_hk_matching_local(g, 2, hk);
  EXPECT_GE(h.matching.size() * (1.0 + hk.epsilon),
            static_cast<double>(opt_c));

  const auto mc = run_mcm_1eps_congest(g, 2);
  EXPECT_GE((mc.matching.size() + mc.deactivated.size()) * 1.4,
            static_cast<double>(opt_c));

  const auto prop = run_proposal_matching(g, 2);
  EXPECT_GE(prop.matching.size() * 2.5 + 1.0,
            static_cast<double>(opt_c));
}

TEST(Integration, CongestLegalityAcrossAlgorithms) {
  Rng rng(3);
  const Graph g = gen::power_law(120, 2.5, 5.0, rng);  // skewed degrees
  const auto nw = gen::uniform_node_weights(g.num_nodes(), 200, rng);
  const auto ew = gen::uniform_edge_weights(g.num_edges(), 200, rng);

  const auto mis = run_luby_mis(g, 3);
  EXPECT_LE(mis.metrics.max_edge_bits, mis.metrics.bandwidth_cap);

  const auto alg2 = run_layered_maxis(g, nw, 3);
  EXPECT_LE(alg2.metrics.max_edge_bits, alg2.metrics.bandwidth_cap);

  const auto lr = run_lr_matching(g, ew, 3);
  EXPECT_LE(lr.metrics.max_edge_bits, lr.metrics.bandwidth_cap);

  const auto nmm = run_nmm_2eps_matching(g, 3);
  EXPECT_LE(nmm.metrics.max_edge_bits, nmm.metrics.bandwidth_cap);
}

TEST(Integration, WeightedPipelineOnCaterpillar) {
  // Structured family with exact forest baseline at scale.
  const Graph g = gen::caterpillar(50, 3);
  Rng rng(4);
  const auto w =
      gen::exponential_node_weights(g.num_nodes(), 1 << 12, rng);
  const Weight opt = set_weight(w, exact_maxis_forest(g, w).independent_set);
  const auto alg2 = run_layered_maxis(g, w, 4);
  const auto alg3 = run_coloring_maxis(g, w, ColoringSource::kRandomized, 4);
  const Weight delta = g.max_degree();
  EXPECT_GE(set_weight(w, alg2.independent_set) * delta, opt);
  EXPECT_GE(set_weight(w, alg3.independent_set) * delta, opt);
}

TEST(Integration, DeterministicEndToEnd) {
  Rng rng(5);
  const Graph g = gen::gnp(50, 0.1, rng);
  const auto ew = gen::uniform_edge_weights(g.num_edges(), 64, rng);
  const auto a1 = run_nmm_2eps_matching(g, 77);
  const auto a2 = run_nmm_2eps_matching(g, 77);
  EXPECT_EQ(a1.matching, a2.matching);
  const auto b1 = run_weighted_2eps_matching(g, ew, 77);
  const auto b2 = run_weighted_2eps_matching(g, ew, 77);
  EXPECT_EQ(b1.matching, b2.matching);
  const auto c1 = run_mcm_1eps_congest(g, 77);
  const auto c2 = run_mcm_1eps_congest(g, 77);
  EXPECT_EQ(c1.matching, c2.matching);
}

TEST(Integration, EmptyAndTinyGraphs) {
  // Degenerate inputs should not crash any public entry point.
  const Graph empty = GraphBuilder(0).build();
  EXPECT_TRUE(run_luby_mis(empty, 1).independent_set.empty());
  EXPECT_TRUE(
      run_layered_maxis(empty, {}, 1).independent_set.empty());
  EXPECT_TRUE(run_lr_matching(empty, {}, 1).matching.empty());

  const Graph one = GraphBuilder(1).build();
  EXPECT_EQ(run_luby_mis(one, 1).independent_set.size(), 1u);
  EXPECT_EQ(run_layered_maxis(one, {5}, 1).independent_set.size(), 1u);

  GraphBuilder b2(2);
  b2.add_edge(0, 1);
  const Graph edge = b2.build();
  EXPECT_EQ(run_lr_matching(edge, {7}, 1).matching.size(), 1u);
  EXPECT_EQ(run_nmm_2eps_matching(edge, 1).matching.size(), 1u);
}

}  // namespace
}  // namespace distapx
