#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

TEST(GraphIo, RoundTripsUnweighted) {
  Rng rng(1);
  const Graph g = gen::gnp(40, 0.1, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const auto loaded = io::read_edge_list(ss);
  EXPECT_EQ(loaded.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_FALSE(loaded.edge_weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded.graph.endpoints(e), g.endpoints(e));
  }
}

TEST(GraphIo, RoundTripsWeighted) {
  Rng rng(2);
  const Graph g = gen::cycle(12);
  const auto w = gen::uniform_edge_weights(g.num_edges(), 50, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g, &w);
  const auto loaded = io::read_edge_list(ss);
  ASSERT_TRUE(loaded.edge_weights.has_value());
  EXPECT_EQ(*loaded.edge_weights, w);
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n3 2\n# edge block\n0 1\n\n1 2 # trailing\n");
  const auto loaded = io::read_edge_list(ss);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("");
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // missing edge
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("2 1\n0 5\n");  // endpoint out of range
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("3 2\n0 1 7\n1 2\n");  // mixed weighted/unweighted
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
}

TEST(GraphIo, NodeWeightsRoundTrip) {
  const NodeWeights w{5, -3, 12, 1};
  std::stringstream ss;
  io::write_node_weights(ss, w);
  EXPECT_EQ(io::read_node_weights(ss), w);
}

TEST(GraphIo, FileHelpers) {
  Rng rng(3);
  const Graph g = gen::random_tree(20, rng);
  const std::string path = "/tmp/distapx_io_test.graph";
  io::save_edge_list(path, g);
  const auto loaded = io::load_edge_list(path);
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_THROW(io::load_edge_list("/nonexistent/dir/x.graph"), EnsureError);
}

TEST(LogUniformWeights, CoversAllLayers) {
  Rng rng(4);
  const auto w = gen::log_uniform_node_weights(4000, 1 << 10, rng);
  std::vector<int> layer_count(11, 0);
  for (Weight x : w) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 1 << 10);
    ++layer_count[ceil_log2(static_cast<std::uint64_t>(x))];
  }
  // Every layer 1..10 should be substantially populated.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_GT(layer_count[i], 100) << "layer " << i;
  }
}

}  // namespace
}  // namespace distapx
