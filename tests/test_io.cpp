#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

TEST(GraphIo, RoundTripsUnweighted) {
  Rng rng(1);
  const Graph g = gen::gnp(40, 0.1, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const auto loaded = io::read_edge_list(ss);
  EXPECT_EQ(loaded.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_FALSE(loaded.edge_weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded.graph.endpoints(e), g.endpoints(e));
  }
}

TEST(GraphIo, RoundTripsWeighted) {
  Rng rng(2);
  const Graph g = gen::cycle(12);
  const auto w = gen::uniform_edge_weights(g.num_edges(), 50, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g, &w);
  const auto loaded = io::read_edge_list(ss);
  ASSERT_TRUE(loaded.edge_weights.has_value());
  EXPECT_EQ(*loaded.edge_weights, w);
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n3 2\n# edge block\n0 1\n\n1 2 # trailing\n");
  const auto loaded = io::read_edge_list(ss);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("");
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // missing edge
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("2 1\n0 5\n");  // endpoint out of range
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
  {
    std::stringstream ss("3 2\n0 1 7\n1 2\n");  // mixed weighted/unweighted
    EXPECT_THROW(io::read_edge_list(ss), EnsureError);
  }
}

TEST(GraphIo, NodeWeightsRoundTrip) {
  const NodeWeights w{5, -3, 12, 1};
  std::stringstream ss;
  io::write_node_weights(ss, w);
  EXPECT_EQ(io::read_node_weights(ss), w);
}

TEST(GraphIo, FileHelpers) {
  Rng rng(3);
  const Graph g = gen::random_tree(20, rng);
  const std::string path = "/tmp/distapx_io_test.graph";
  io::save_edge_list(path, g);
  const auto loaded = io::load_edge_list(path);
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_THROW(io::load_edge_list("/nonexistent/dir/x.graph"), EnsureError);
}

/// Canonical edge multiset: sorted (u, v) pairs with u < v. Two graphs on
/// the same labeled node set are equal iff these agree.
std::vector<std::pair<NodeId, NodeId>> canonical_edges(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges.push_back(g.endpoints(e));
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Golden round-trip over every small_families fixture: write → read →
/// identical labeled edge list (and therefore an isomorphic graph).
class GraphIoGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GraphIoGolden, EdgeListRoundTripsExactly) {
  const auto cases = test::small_families(99);
  const auto& fc = cases.at(GetParam());
  std::stringstream ss;
  io::write_edge_list(ss, fc.graph);
  const auto loaded = io::read_edge_list(ss);
  ASSERT_EQ(loaded.graph.num_nodes(), fc.graph.num_nodes()) << fc.name;
  ASSERT_EQ(loaded.graph.num_edges(), fc.graph.num_edges()) << fc.name;
  EXPECT_EQ(canonical_edges(loaded.graph), canonical_edges(fc.graph))
      << fc.name;
  // Degrees (and thus Δ) are determined by the edge list; spot-check the
  // derived structure too.
  EXPECT_EQ(loaded.graph.max_degree(), fc.graph.max_degree()) << fc.name;
  for (NodeId v = 0; v < fc.graph.num_nodes(); ++v) {
    ASSERT_EQ(loaded.graph.degree(v), fc.graph.degree(v))
        << fc.name << " node " << v;
  }
}

TEST_P(GraphIoGolden, WeightedRoundTripPreservesWeights) {
  const auto cases = test::small_families(99);
  const auto& fc = cases.at(GetParam());
  Rng rng(hash_combine(7, GetParam()));
  const auto w = gen::uniform_edge_weights(fc.graph.num_edges(), 1000, rng);
  std::stringstream ss;
  io::write_edge_list(ss, fc.graph, &w);
  const auto loaded = io::read_edge_list(ss);
  if (fc.graph.num_edges() == 0) {
    // An empty edge block carries no weight column to detect.
    EXPECT_FALSE(loaded.edge_weights.has_value()) << fc.name;
    return;
  }
  ASSERT_TRUE(loaded.edge_weights.has_value()) << fc.name;
  // Weights are keyed by EdgeId; ids follow file order, so compare the
  // (u, v, w) triples irrespective of edge numbering.
  std::vector<std::tuple<NodeId, NodeId, Weight>> before, after;
  for (EdgeId e = 0; e < fc.graph.num_edges(); ++e) {
    const auto [u, v] = fc.graph.endpoints(e);
    before.emplace_back(u, v, w[e]);
  }
  for (EdgeId e = 0; e < loaded.graph.num_edges(); ++e) {
    const auto [u, v] = loaded.graph.endpoints(e);
    after.emplace_back(u, v, (*loaded.edge_weights)[e]);
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallFamilies, GraphIoGolden,
    ::testing::Range<std::size_t>(0, 13),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return test::small_families(99).at(info.param).name;
    });

TEST(GraphIoGolden, CoversEveryFamilyCase) {
  // Keep the Range above in sync with the fixture list.
  EXPECT_EQ(test::small_families(99).size(), 13u);
}

TEST(LogUniformWeights, CoversAllLayers) {
  Rng rng(4);
  const auto w = gen::log_uniform_node_weights(4000, 1 << 10, rng);
  std::vector<int> layer_count(11, 0);
  for (Weight x : w) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 1 << 10);
    ++layer_count[ceil_log2(static_cast<std::uint64_t>(x))];
  }
  // Every layer 1..10 should be substantially populated.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_GT(layer_count[i], 100) << "layer " << i;
  }
}

}  // namespace
}  // namespace distapx
