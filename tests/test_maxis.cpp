#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "maxis/coloring_maxis.hpp"
#include "maxis/exact.hpp"
#include "maxis/greedy_maxis.hpp"
#include "maxis/layered_maxis.hpp"
#include "maxis/local_ratio_seq.hpp"
#include "support/bits.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

NodeWeights weights_for(const Graph& g, std::uint64_t seed, Weight max_w) {
  Rng rng(hash_combine(seed, 0xabc));
  return gen::uniform_node_weights(g.num_nodes(), max_w, rng);
}

// ---- exact baselines -------------------------------------------------------

TEST(ExactMaxIs, MatchesBruteForceOnSmallGraphs) {
  for (const auto& fc : test::small_families(1)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = weights_for(fc.graph, 1, 30);
    const auto exact = exact_maxis(fc.graph, w);
    EXPECT_TRUE(is_independent_set(fc.graph, exact.independent_set))
        << fc.name;
    EXPECT_EQ(set_weight(w, exact.independent_set),
              test::brute_force_maxis_weight(fc.graph, w))
        << fc.name;
  }
}

TEST(ExactMaxIs, UnweightedKnownValues) {
  const auto ones = gen::unit_node_weights(12);
  EXPECT_EQ(exact_maxis(gen::path(12), NodeWeights(12, 1))
                .independent_set.size(),
            6u);
  EXPECT_EQ(exact_maxis(gen::cycle(12), NodeWeights(12, 1))
                .independent_set.size(),
            6u);
  EXPECT_EQ(exact_maxis(gen::cycle(13), NodeWeights(13, 1))
                .independent_set.size(),
            6u);
  EXPECT_EQ(exact_maxis(gen::star(10), NodeWeights(10, 1))
                .independent_set.size(),
            9u);
  EXPECT_EQ(exact_maxis(gen::complete(10), NodeWeights(10, 1))
                .independent_set.size(),
            1u);
  (void)ones;
}

TEST(ExactMaxIs, NegativeWeightsExcluded) {
  const Graph p = gen::path(3);
  const auto res = exact_maxis(p, {5, -2, 7});
  EXPECT_EQ(set_weight({5, -2, 7}, res.independent_set), 12);
}

TEST(ExactMaxIsForest, MatchesBitsetSolverOnTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Graph t = gen::random_tree(18, rng);
    const auto w = weights_for(t, seed, 40);
    const auto dp = exact_maxis_forest(t, w);
    const auto bb = exact_maxis(t, w);
    EXPECT_TRUE(is_independent_set(t, dp.independent_set));
    EXPECT_EQ(set_weight(w, dp.independent_set),
              set_weight(w, bb.independent_set))
        << "seed " << seed;
  }
}

TEST(ExactMaxIsForest, LargeForestAndCycleRejection) {
  Rng rng(9);
  const Graph t = gen::random_tree(5000, rng);
  const auto w = weights_for(t, 2, 100);
  const auto dp = exact_maxis_forest(t, w);
  EXPECT_TRUE(is_independent_set(t, dp.independent_set));
  EXPECT_THROW(exact_maxis_forest(gen::cycle(5), NodeWeights(5, 1)),
               EnsureError);
}

// ---- Algorithm 1 (sequential local ratio) ---------------------------------

class SeqLocalRatioPolicies
    : public ::testing::TestWithParam<LocalRatioPolicy> {};

TEST_P(SeqLocalRatioPolicies, DeltaApproximationOnSmallFamilies) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto& fc : test::small_families(seed)) {
      if (fc.graph.num_nodes() > 20) continue;
      const auto w = weights_for(fc.graph, seed, 25);
      const auto res = seq_local_ratio_maxis(fc.graph, w, GetParam());
      EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
          << fc.name;
      const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
      const Weight got = set_weight(w, res.independent_set);
      const Weight delta =
          std::max<std::uint32_t>(fc.graph.max_degree(), 1);
      EXPECT_GE(got * delta, opt) << fc.name << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SeqLocalRatioPolicies,
                         ::testing::Values(
                             LocalRatioPolicy::kSingleMaxWeight,
                             LocalRatioPolicy::kGreedyMis,
                             LocalRatioPolicy::kTopLayerMis));

TEST(SeqLocalRatio, StarTrap) {
  // The paper's star example: center weight larger than each leaf but
  // smaller than their sum. Simultaneous naive reductions would kill all
  // nodes; the algorithm must still output a Δ-approximation.
  const Graph s = gen::star(5);
  const NodeWeights w{10, 4, 4, 4, 4};  // center 10, leaves 4
  const auto res = seq_local_ratio_maxis(s, w,
                                         LocalRatioPolicy::kGreedyMis);
  const Weight got = set_weight(w, res.independent_set);
  EXPECT_GE(got * 4, 16);  // OPT = 16 (all leaves), Δ = 4
  EXPECT_TRUE(is_independent_set(s, res.independent_set));
}

TEST(SeqLocalRatio, TopLayerPolicyUsesFewIterations) {
  // O(log W) iterations for the layered policy.
  Rng rng(5);
  const Graph g = gen::gnp(150, 0.05, rng);
  const auto w = weights_for(g, 5, 1 << 12);
  SeqLocalRatioStats stats;
  seq_local_ratio_maxis(g, w, LocalRatioPolicy::kTopLayerMis, &stats);
  EXPECT_LE(stats.iterations, 6u * 13u);
  SeqLocalRatioStats single_stats;
  seq_local_ratio_maxis(g, w, LocalRatioPolicy::kSingleMaxWeight,
                        &single_stats);
  EXPECT_GT(single_stats.iterations, stats.iterations);
}

TEST(SeqLocalRatio, IgnoresNonPositiveWeights) {
  const Graph p = gen::path(4);
  const auto res =
      seq_local_ratio_maxis(p, {0, 5, -3, 2}, LocalRatioPolicy::kGreedyMis);
  for (NodeId v : res.independent_set) {
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

// ---- Algorithm 2 (layered distributed) ------------------------------------

class LayeredMaxIsSeeds : public ::testing::TestWithParam<int> {};

TEST_P(LayeredMaxIsSeeds, DeltaApproximationSmall) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = weights_for(fc.graph, seed, 25);
    const auto res = run_layered_maxis(fc.graph, w, seed);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = std::max<std::uint32_t>(fc.graph.max_degree(), 1);
    EXPECT_GE(got * delta, opt) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredMaxIsSeeds, ::testing::Range(1, 6));

TEST(LayeredMaxIs, ForestRatioAtScale) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Graph t = gen::random_tree(400, rng);
    const auto w = weights_for(t, seed, 1000);
    const auto res = run_layered_maxis(t, w, seed);
    EXPECT_TRUE(is_independent_set(t, res.independent_set));
    const Weight opt =
        set_weight(w, exact_maxis_forest(t, w).independent_set);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = t.max_degree();
    EXPECT_GE(got * delta, opt);
    // Local ratio on trees is empirically much better than Δ.
    EXPECT_GE(got * 3, opt) << "seed " << seed;
  }
}

TEST(LayeredMaxIs, MediumFamiliesComplete) {
  for (const auto& fc : test::medium_families(2)) {
    const auto w = weights_for(fc.graph, 2, 100);
    const auto res = run_layered_maxis(fc.graph, w, 2);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    EXPECT_TRUE(res.metrics.completed) << fc.name;
    EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap)
        << fc.name;
  }
}

TEST(LayeredMaxIs, SelectionRuleVariants) {
  Rng rng(7);
  const Graph g = gen::gnp(60, 0.1, rng);
  const auto w = weights_for(g, 7, 64);
  for (MisSelectionRule rule :
       {MisSelectionRule::kLubyValue, MisSelectionRule::kCoin,
        MisSelectionRule::kIdGreedy}) {
    LayeredMaxIsParams params;
    params.rule = rule;
    const auto res = run_layered_maxis(g, w, 7, params);
    EXPECT_TRUE(is_independent_set(g, res.independent_set))
        << static_cast<int>(rule);
    EXPECT_GT(res.independent_set.size(), 0u);
  }
}

TEST(LayeredMaxIs, DeterministicPerSeed) {
  Rng rng(8);
  const Graph g = gen::gnp(50, 0.1, rng);
  const auto w = weights_for(g, 8, 32);
  const auto a = run_layered_maxis(g, w, 42);
  const auto b = run_layered_maxis(g, w, 42);
  EXPECT_EQ(a.independent_set, b.independent_set);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(LayeredMaxIs, RoundsScaleWithLogW) {
  // Theorem 2.3: rounds = O(MIS(G) log W). Fixing the graph, growing W
  // from 2 to 2^16 should grow rounds roughly linearly in log W.
  Rng rng(9);
  const Graph g = gen::random_regular(128, 4, rng);
  Rng wrng(10);
  NodeWeights w_small(g.num_nodes()), w_large(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    w_small[v] = wrng.next_in(1, 2);
    w_large[v] = wrng.next_in(1, 1 << 16);
  }
  const auto small = run_layered_maxis(g, w_small, 3);
  const auto large = run_layered_maxis(g, w_large, 3);
  EXPECT_GT(large.metrics.rounds, small.metrics.rounds);
  EXPECT_LE(large.metrics.rounds, small.metrics.rounds * 40);
}

TEST(LayeredMaxIs, UnitWeightsEqualsMisBehaviour) {
  // With W = 1 there is a single layer: the run is one MIS computation.
  Rng rng(11);
  const Graph g = gen::gnp(100, 0.08, rng);
  const auto res =
      run_layered_maxis(g, gen::unit_node_weights(g.num_nodes()), 4);
  EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
}

// ---- Algorithm 3 (coloring-based) ------------------------------------------

class ColoringMaxIsSeeds : public ::testing::TestWithParam<int> {};

TEST_P(ColoringMaxIsSeeds, DeltaApproximationSmall) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = weights_for(fc.graph, seed, 25);
    const auto res = run_coloring_maxis_with(fc.graph, w,
                                             greedy_coloring(fc.graph));
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = std::max<std::uint32_t>(fc.graph.max_degree(), 1);
    EXPECT_GE(got * delta, opt) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringMaxIsSeeds, ::testing::Range(1, 5));

TEST(ColoringMaxIs, FullPipelines) {
  Rng rng(3);
  const Graph g = gen::gnp(80, 0.07, rng);
  const auto w = weights_for(g, 3, 50);
  for (ColoringSource src :
       {ColoringSource::kLinial, ColoringSource::kRandomized}) {
    const auto res = run_coloring_maxis(g, w, src, 5);
    EXPECT_TRUE(is_independent_set(g, res.independent_set));
    EXPECT_GT(res.coloring_metrics.rounds, 0u);
    EXPECT_GT(res.maxis_metrics.rounds, 0u);
    EXPECT_LE(res.num_colors, g.max_degree() + 1);
  }
}

TEST(ColoringMaxIs, DeterministicWithLinial) {
  Rng rng(4);
  const Graph g = gen::gnp(60, 0.1, rng);
  const auto w = weights_for(g, 4, 20);
  const auto a = run_coloring_maxis(g, w, ColoringSource::kLinial);
  const auto b = run_coloring_maxis(g, w, ColoringSource::kLinial);
  EXPECT_EQ(a.independent_set, b.independent_set);
}

TEST(ColoringMaxIs, PostColoringRoundsScaleWithColors) {
  // Algorithm 3 proper takes O(#colors) sweeps, independent of n.
  Rng rng1(5), rng2(6);
  const Graph small = gen::random_regular(64, 4, rng1);
  const Graph large = gen::random_regular(512, 4, rng2);
  const auto ws = weights_for(small, 5, 100);
  const auto wl = weights_for(large, 6, 100);
  const auto rs = run_coloring_maxis_with(small, ws,
                                          greedy_coloring(small));
  const auto rl = run_coloring_maxis_with(large, wl,
                                          greedy_coloring(large));
  // Same Δ ⇒ same palette ⇒ comparable round counts despite 8x nodes.
  EXPECT_LE(rl.maxis_metrics.rounds, rs.maxis_metrics.rounds * 3);
}

TEST(ColoringMaxIs, RejectsImproperColoring) {
  const Graph p = gen::path(3);
  EXPECT_THROW(
      run_coloring_maxis_with(p, NodeWeights{1, 2, 3}, {0, 0, 1}),
      EnsureError);
}

// ---- greedy baseline --------------------------------------------------------

TEST(GreedyMaxIs, ValidAndReasonable) {
  for (const auto& fc : test::small_families(3)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = weights_for(fc.graph, 3, 25);
    const auto res = greedy_maxis(fc.graph, w);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = std::max<std::uint32_t>(fc.graph.max_degree(), 1);
    EXPECT_GE(got * delta, opt) << fc.name;  // greedy is also Δ-approx
  }
}

}  // namespace
}  // namespace distapx
