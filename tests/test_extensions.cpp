// Tests for the library extensions: structured generator families with
// known optima, matching completion, vertex-cover extraction, and
// simulator hardening (adversarial/degenerate usage).
#include <gtest/gtest.h>

#include <memory>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/matching.hpp"
#include "matching/nmm_2eps.hpp"
#include "maxis/exact.hpp"
#include "mis/luby.hpp"
#include "sim/network.hpp"
#include "support/assert.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

// ---- structured generators with known optima --------------------------------

TEST(Barbell, StructureAndMaxIs) {
  const Graph g = gen::barbell(5, 3);  // 2 K5s + 3 bridge nodes
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_EQ(g.num_edges(), 2u * 10 + 4);
  // MaxIS: one node per clique + every other bridge node.
  const auto res = exact_maxis(g, NodeWeights(g.num_nodes(), 1));
  EXPECT_EQ(res.independent_set.size(), 4u);
  EXPECT_TRUE(is_independent_set(g, res.independent_set));
}

TEST(CompleteMultipartite, MaxIsIsLargestPart) {
  const Graph g = gen::complete_multipartite({3, 5, 2});
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 3u * 5 + 3 * 2 + 5 * 2);
  const auto res = exact_maxis(g, NodeWeights(10, 1));
  EXPECT_EQ(res.independent_set.size(), 5u);
  // Distributed algorithms keep the Δ bound on it too.
  const auto mis = run_luby_mis(g, 3);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.independent_set));
}

TEST(BalancedBinaryTree, StructureAndMatching) {
  const Graph g = gen::balanced_binary_tree(4);  // 15 nodes
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.max_degree(), 3u);
  // König on the 15-node balanced tree: MaxIS = 8 leaves + 2 level-1
  // nodes = 10, so MCM = 15 - 10 = 5.
  EXPECT_EQ(blossom_mcm(g).matching.size(), 5u);
  EXPECT_EQ(exact_maxis(g, NodeWeights(15, 1)).independent_set.size(), 10u);
}

TEST(Lollipop, Structure) {
  const Graph g = gen::lollipop(4, 3);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 6u + 3);
  // MaxIS: 1 from the clique (the far end of the tail path alternates).
  const auto res = exact_maxis(g, NodeWeights(7, 1));
  EXPECT_EQ(res.independent_set.size(), 3u);
}

// ---- matching completion ----------------------------------------------------

TEST(CompleteMatching, UpgradesNearlyMaximal) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(120, 0.05, rng);
    const auto nmm = run_nmm_2eps_matching(g, seed);
    const auto completed = complete_matching_greedily(g, nmm.matching);
    EXPECT_TRUE(is_maximal_matching(g, completed)) << "seed " << seed;
    EXPECT_GE(completed.size(), nmm.matching.size());
    // Maximal ⇒ clean 2-approximation floor.
    const auto opt = blossom_mcm(g).matching.size();
    EXPECT_GE(completed.size() * 2, opt);
  }
}

TEST(CompleteMatching, RejectsNonMatchingInput) {
  const Graph p = gen::path(4);
  EXPECT_THROW(complete_matching_greedily(p, {0, 1}), EnsureError);
}

TEST(CompleteMatching, NoOpOnMaximal) {
  const Graph p = gen::path(5);
  const auto m = complete_matching_greedily(p, {0, 2});
  EXPECT_EQ(m.size(), 2u);
}

// ---- vertex cover extraction -------------------------------------------------

TEST(VertexCover, ComplementOfMaximalIsCovers) {
  for (const auto& fc : test::small_families(5)) {
    const auto mis = run_luby_mis(fc.graph, 5);
    const auto cover = complement_nodes(fc.graph, mis.independent_set);
    EXPECT_TRUE(is_vertex_cover(fc.graph, cover)) << fc.name;
    EXPECT_EQ(cover.size() + mis.independent_set.size(),
              fc.graph.num_nodes());
  }
}

TEST(VertexCover, CheckerCatchesGaps) {
  const Graph p = gen::path(4);
  EXPECT_TRUE(is_vertex_cover(p, {1, 2}));
  EXPECT_FALSE(is_vertex_cover(p, {0, 3}));  // edge (1,2) uncovered
  EXPECT_FALSE(is_vertex_cover(p, {9}));
}

// ---- simulator hardening ------------------------------------------------------

TEST(SimHardening, SendOnInvalidPortThrows) {
  class BadSender final : public sim::NodeProgram {
    void round(sim::Ctx& ctx) override {
      ctx.send(ctx.degree(), sim::Message(1));  // out of range
    }
  };
  const Graph g = gen::path(2);
  sim::Network net(g);
  sim::RunOptions opts;
  EXPECT_THROW(
      net.run([](NodeId) { return std::make_unique<BadSender>(); }, opts),
      EnsureError);
}

TEST(SimHardening, ZeroNodeNetwork) {
  const Graph g = GraphBuilder(0).build();
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) -> std::unique_ptr<sim::NodeProgram> {
        ADD_FAILURE() << "factory must not be called";
        return nullptr;
      },
      opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_EQ(res.metrics.rounds, 0u);
}

TEST(SimHardening, AllHaltAtInit) {
  class InstaHalt final : public sim::NodeProgram {
    void init(sim::Ctx& ctx) override { ctx.halt(42); }
    void round(sim::Ctx&) override { FAIL() << "round after halt"; }
  };
  const Graph g = gen::cycle(5);
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<InstaHalt>(); }, opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_EQ(res.metrics.rounds, 0u);
  for (auto o : res.outputs) EXPECT_EQ(o, 42);
}

TEST(SimHardening, SendAfterHaltStillDelivered) {
  // halt() takes effect at the end of the callback; the farewell message
  // sent in the same callback must be delivered.
  class Farewell final : public sim::NodeProgram {
   public:
    void init(sim::Ctx& ctx) override {
      if (ctx.id() == 0) {
        ctx.broadcast(sim::Message(7));
        ctx.halt(0);
      }
    }
    void round(sim::Ctx& ctx) override {
      ASSERT_EQ(ctx.inbox().size(), 1u);
      EXPECT_EQ(ctx.inbox()[0].msg.type(), 7u);
      ctx.halt(1);
    }
  };
  const Graph g = gen::path(2);
  sim::Network net(g);
  sim::RunOptions opts;
  const auto res = net.run(
      [](NodeId) { return std::make_unique<Farewell>(); }, opts);
  EXPECT_TRUE(res.metrics.completed);
}

TEST(SimHardening, MetricsAccumulateHelper) {
  sim::RunMetrics a;
  a.completed = true;
  a.rounds = 5;
  a.max_edge_bits = 10;
  sim::RunMetrics b;
  b.completed = true;
  b.rounds = 7;
  b.max_edge_bits = 30;
  b.messages = 4;
  sim::accumulate(a, b);
  EXPECT_EQ(a.rounds, 12u);
  EXPECT_EQ(a.max_edge_bits, 30u);
  EXPECT_EQ(a.messages, 4u);
  EXPECT_TRUE(a.completed);
}

}  // namespace
}  // namespace distapx
