// The spool-watching service daemon (service/daemon.hpp).
//
// Contract under test: a spooled job file produces byte-identical results
// to a direct BatchServer run of the same specs; malformed files are
// quarantined with their line-numbered JobError while the daemon keeps
// serving; and the spool protocol (".job" suffix claim, stop sentinel,
// max_files) behaves as documented.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "service/batch_server.hpp"
#include "service/cache_manager.hpp"
#include "service/daemon.hpp"
#include "service/job_spec.hpp"
#include "service/report_sink.hpp"
#include "support/changelog.hpp"
#include "support/failpoint.hpp"
#include "support/fsutil.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;
using test::ScopedTempDir;

const char* kGoodJobs =
    "gen=gnp:60:0.08  algo=luby     seeds=1:4 name=gnp-luby\n"
    "gen=grid:6:6     algo=mcm-2eps seeds=1:3 eps=0.3 name=grid-mcm\n"
    "gen=tree:50      algo=mwm-lr   seeds=2:3 maxw=32 name=tree-mwm\n";

void spool_file(const fs::path& spool, const std::string& name,
                const std::string& content) {
  // The documented producer protocol: write a temp name, rename to *.job.
  const fs::path tmp = spool / (name + ".tmp");
  {
    std::ofstream os(tmp);
    os << content;
  }
  fs::rename(tmp, spool / (name + ".job"));
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

service::DaemonOptions opts_for(const ScopedTempDir& spool,
                                const std::string& cache_dir = "") {
  service::DaemonOptions o;
  o.spool_dir = spool.str();
  o.cache_dir = cache_dir;
  o.threads = 2;
  o.poll_ms = 10;
  return o;
}

TEST(Daemon, SpooledJobFileMatchesDirectBatchServerByteForByte) {
  const ScopedTempDir spool("distapx-spool-direct");
  service::Daemon daemon(opts_for(spool));
  spool_file(spool.path, "sweep", kGoodJobs);

  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_EQ(reports[0].name, "sweep");
  EXPECT_EQ(reports[0].runs, 10u);
  EXPECT_EQ(reports[0].computed, 10u);  // no cache configured

  // The same specs served directly, at a different thread count.
  std::istringstream is(kGoodJobs);
  service::BatchServer server({5});
  server.submit_all(service::parse_job_file(is));
  const auto direct = server.serve();

  std::ostringstream runs_csv, summary_csv;
  service::runs_table(direct).write_csv(runs_csv);
  service::summary_table(direct).write_csv(summary_csv);
  const fs::path done = spool.path / "done";
  EXPECT_EQ(slurp(done / "sweep.runs.csv"), runs_csv.str());
  EXPECT_EQ(slurp(done / "sweep.summary.csv"), summary_csv.str());

  // The job file moved into done/ (audit trail), the spool is empty.
  EXPECT_TRUE(fs::exists(done / "sweep.job"));
  EXPECT_FALSE(fs::exists(spool.path / "sweep.job"));
  const std::string report = slurp(done / "sweep.report.txt");
  EXPECT_NE(report.find("runs 10"), std::string::npos) << report;
  EXPECT_NE(report.find("served_from_cache 0"), std::string::npos);
  EXPECT_NE(report.find("computed 10"), std::string::npos);
}

TEST(Daemon, MalformedFileIsQuarantinedAndServingContinues) {
  const ScopedTempDir spool("distapx-spool-quarantine");
  service::Daemon daemon(opts_for(spool));
  // Line 3 carries the error (line 2 is a comment).
  spool_file(spool.path, "a-bad",
             "gen=path:10 algo=luby\n"
             "# fine so far\n"
             "gen=path:10 algo=frobnicate\n");
  spool_file(spool.path, "b-good", kGoodJobs);

  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 2u);  // lexicographic: a-bad then b-good

  EXPECT_FALSE(reports[0].ok);
  EXPECT_EQ(reports[0].name, "a-bad");
  EXPECT_NE(reports[0].error.find("line 3"), std::string::npos)
      << reports[0].error;
  EXPECT_NE(reports[0].error.find("unknown algorithm \"frobnicate\""),
            std::string::npos)
      << reports[0].error;

  // Quarantined: file + line-numbered diagnostic in failed/, nothing in
  // done/, and the good file was still served.
  EXPECT_TRUE(fs::exists(spool.path / "failed" / "a-bad.job"));
  const std::string err = slurp(spool.path / "failed" / "a-bad.error");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_FALSE(fs::exists(spool.path / "done" / "a-bad.runs.csv"));

  EXPECT_TRUE(reports[1].ok);
  EXPECT_EQ(reports[1].runs, 10u);
  EXPECT_TRUE(fs::exists(spool.path / "done" / "b-good.runs.csv"));
}

TEST(Daemon, WarmCacheServesRepeatedFilesWithoutRecomputing) {
  const ScopedTempDir spool("distapx-spool-warm");
  const ScopedTempDir cache("distapx-spool-warm-cache");
  service::Daemon daemon(opts_for(spool, cache.str()));

  spool_file(spool.path, "cold", kGoodJobs);
  auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].cache_hits, 0u);
  EXPECT_EQ(reports[0].computed, 10u);

  // The same workload under a different file name: all hits, same bytes.
  spool_file(spool.path, "warm", kGoodJobs);
  reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_EQ(reports[0].cache_hits, 10u);
  EXPECT_EQ(reports[0].computed, 0u);
  EXPECT_DOUBLE_EQ(reports[0].hit_rate(), 1.0);

  const fs::path done = spool.path / "done";
  EXPECT_EQ(slurp(done / "warm.runs.csv"), slurp(done / "cold.runs.csv"));
  EXPECT_EQ(slurp(done / "warm.summary.csv"),
            slurp(done / "cold.summary.csv"));
}

TEST(Daemon, OnlyJobSuffixedFilesAreClaimed) {
  const ScopedTempDir spool("distapx-spool-suffix");
  service::Daemon daemon(opts_for(spool));
  {
    std::ofstream os(spool.path / "half-written.tmp");
    os << kGoodJobs;
  }
  {
    std::ofstream os(spool.path / "notes.txt");
    os << "not a job\n";
  }
  EXPECT_TRUE(daemon.drain_once().empty());
  EXPECT_TRUE(fs::exists(spool.path / "half-written.tmp"));  // untouched
}

TEST(Daemon, StopSentinelEndsRunAndIsConsumed) {
  const ScopedTempDir spool("distapx-spool-stop");
  service::Daemon daemon(opts_for(spool));
  {
    std::ofstream os(spool.path / "stop");
  }
  const auto reports = daemon.run();  // must return, not loop forever
  EXPECT_TRUE(reports.empty());
  EXPECT_FALSE(fs::exists(spool.path / "stop"));  // consumed
}

TEST(Daemon, RequestStopUnblocksRunFromAnotherThread) {
  const ScopedTempDir spool("distapx-spool-reqstop");
  service::Daemon daemon(opts_for(spool));
  std::thread runner([&] { (void)daemon.run(); });
  daemon.request_stop();
  runner.join();  // hangs forever if request_stop is broken
  EXPECT_TRUE(daemon.stop_requested());
}

TEST(Daemon, MaxFilesBoundsTheRun) {
  const ScopedTempDir spool("distapx-spool-maxfiles");
  auto opts = opts_for(spool);
  opts.max_files = 1;
  service::Daemon daemon(opts);
  spool_file(spool.path, "first", "gen=path:20 algo=luby seeds=1:2\n");
  spool_file(spool.path, "second", "gen=path:20 algo=luby seeds=1:2\n");

  const auto reports = daemon.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "first");             // lexicographic claim
  EXPECT_TRUE(fs::exists(spool.path / "second.job"));  // left for later
}

// ---- cross-filesystem move fallback ----------------------------------------

/// Forces every fsutil::move_file through the copy+rename fallback (the
/// EXDEV path a single-mount test box cannot trigger for real) for the
/// test's lifetime.
class ForcedCopyMove : public ::testing::Test {
 protected:
  void SetUp() override { fsutil::set_force_copy_move_for_testing(true); }
  void TearDown() override { fsutil::set_force_copy_move_for_testing(false); }
};

TEST_F(ForcedCopyMove, MoveFilePreservesContentAndLeavesNoDroppings) {
  const ScopedTempDir dir("distapx-move-copy");
  fs::create_directories(dir.path / "dest");
  const fs::path from = dir.path / "src.job";
  {
    std::ofstream os(from);
    os << kGoodJobs;
  }
  fsutil::move_file(from, dir.path / "dest" / "src.job");
  EXPECT_FALSE(fs::exists(from));  // source consumed
  EXPECT_EQ(slurp(dir.path / "dest" / "src.job"), kGoodJobs);
  // The intermediate temp name was renamed away, not left behind.
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    EXPECT_EQ(e.path().filename().string().rfind(".move-tmp.", 0),
              std::string::npos)
        << e.path();
  }
}

TEST_F(ForcedCopyMove, FailedMoveNeverExposesAPartialDestination) {
  const ScopedTempDir dir("distapx-move-fail");
  fs::create_directories(dir.path);
  const fs::path from = dir.path / "src.job";
  {
    std::ofstream os(from);
    os << kGoodJobs;
  }
  // Destination directory does not exist: the copy fails. The regression
  // contract: the destination *name* never appears (not even partially),
  // the source survives for a retry, and no temp files leak.
  const fs::path to = dir.path / "missing" / "src.job";
  EXPECT_THROW(fsutil::move_file(from, to), fs::filesystem_error);
  EXPECT_TRUE(fs::exists(from));
  EXPECT_FALSE(fs::exists(to));
  for (const auto& e : fs::recursive_directory_iterator(dir.path)) {
    EXPECT_EQ(e.path().filename().string().rfind(".move-tmp.", 0),
              std::string::npos)
        << e.path();
  }
}

TEST_F(ForcedCopyMove, DaemonSpoolMovesSurviveTheFallbackPath) {
  // End-to-end regression for the EXDEV fallback: the daemon's moves into
  // done/ and failed/ run through copy+rename, results are byte-identical
  // to the rename path, and the spool tree holds no half-copied files.
  const ScopedTempDir spool("distapx-spool-exdev");
  service::Daemon daemon(opts_for(spool));
  spool_file(spool.path, "good", kGoodJobs);
  spool_file(spool.path, "bad", "gen=path:10 algo=frobnicate\n");

  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 2u);  // lexicographic: bad then good
  EXPECT_FALSE(reports[0].ok);
  EXPECT_TRUE(reports[1].ok);

  // Both moves completed: full content at the final names.
  EXPECT_EQ(slurp(spool.path / "done" / "good.job"), kGoodJobs);
  EXPECT_EQ(slurp(spool.path / "failed" / "bad.job"),
            "gen=path:10 algo=frobnicate\n");
  EXPECT_FALSE(fs::exists(spool.path / "good.job"));
  EXPECT_FALSE(fs::exists(spool.path / "bad.job"));
  for (const auto& e : fs::recursive_directory_iterator(spool.path)) {
    EXPECT_EQ(e.path().filename().string().rfind(".move-tmp.", 0),
              std::string::npos)
        << e.path();
  }
}

TEST(Daemon, CacheBudgetKeepsTheCacheBoundedAcrossJobFiles) {
  const ScopedTempDir spool("distapx-spool-budget");
  const ScopedTempDir cache("distapx-spool-budget-cache");
  auto opts = opts_for(spool, cache.str());
  opts.cache_budget = 5 * service::entry_file_size();
  service::Daemon daemon(opts);

  spool_file(spool.path, "cold", kGoodJobs);
  auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_LE(daemon.cache()->manager()->live_bytes(), opts.cache_budget);

  // The same workload again: partial hits (only what survived eviction),
  // but the published rows are identical bytes — budget never changes
  // results, only hit rate.
  spool_file(spool.path, "warm", kGoodJobs);
  reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_LT(reports[0].cache_hits, reports[0].runs);
  const fs::path done = spool.path / "done";
  EXPECT_EQ(slurp(done / "warm.runs.csv"), slurp(done / "cold.runs.csv"));
  EXPECT_LE(daemon.cache()->manager()->live_bytes(), opts.cache_budget);
}

TEST(Daemon, CacheBudgetWithoutCacheDirIsRejected) {
  const ScopedTempDir spool("distapx-spool-budget-nodir");
  service::DaemonOptions opts;
  opts.spool_dir = spool.str();
  opts.cache_budget = 1024;
  EXPECT_THROW(service::Daemon{opts}, service::JobError);
}

// ---- shared report sink ----------------------------------------------------

TEST(ReportSink, RenderMatchesWhatTheDaemonPublishesByteForByte) {
  // The daemon's done/ files and the socket server's RESULT sections both
  // come out of render_result; this pins the daemon side of that
  // equivalence (the socket side is pinned in test_socket_server.cpp).
  const ScopedTempDir spool("distapx-spool-sink");
  service::Daemon daemon(opts_for(spool));
  spool_file(spool.path, "sweep", kGoodJobs);
  ASSERT_TRUE(daemon.drain_once()[0].ok);

  std::istringstream is(kGoodJobs);
  service::BatchServer server({3});
  server.submit_all(service::parse_job_file(is));
  const auto rendered =
      service::render_result("sweep.job", server.serve());

  const fs::path done = spool.path / "done";
  EXPECT_EQ(slurp(done / "sweep.summary.csv"), rendered.summary_csv);
  EXPECT_EQ(slurp(done / "sweep.runs.csv"), rendered.runs_csv);
  // report.txt carries wall-clock telemetry, so only its deterministic
  // prefix and counter lines are compared.
  const std::string report = slurp(done / "sweep.report.txt");
  EXPECT_NE(report.find("job_file sweep.job\n"), std::string::npos) << report;
  EXPECT_NE(rendered.report_txt.find("job_file sweep.job\n"),
            std::string::npos);
  for (const std::string line :
       {"jobs 3", "runs 10", "served_from_cache 0", "computed 10",
        "hit_rate 0.0000"}) {
    EXPECT_NE(report.find(line + "\n"), std::string::npos) << report;
    EXPECT_NE(rendered.report_txt.find(line + "\n"), std::string::npos)
        << rendered.report_txt;
  }
}

// ---- idle-poll backoff -----------------------------------------------------

TEST(Daemon, IdlePollBackoffDoublesFromOneMsAndCapsAtPollMs) {
  std::uint32_t wait = 0;
  std::vector<std::uint32_t> schedule;
  for (int i = 0; i < 12; ++i) {
    wait = service::next_idle_wait_ms(wait, 200);
    schedule.push_back(wait);
  }
  EXPECT_EQ(schedule, (std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64, 128,
                                                  200, 200, 200, 200}));
}

TEST(Daemon, IdlePollBackoffDegenerateCaps) {
  // cap 0: the legacy poll_ms=0 busy-drain loop keeps polling flat out.
  EXPECT_EQ(service::next_idle_wait_ms(0, 0), 0u);
  EXPECT_EQ(service::next_idle_wait_ms(0, 1), 1u);
  EXPECT_EQ(service::next_idle_wait_ms(1, 1), 1u);
  // No uint32 overflow near the cap.
  EXPECT_EQ(service::next_idle_wait_ms(0xffffffffu, 0xffffffffu), 0xffffffffu);
  EXPECT_EQ(service::next_idle_wait_ms(0x80000000u, 0xffffffffu), 0xffffffffu);
}

TEST(Daemon, RunServesABurstThenIdlesWithoutSpinning) {
  // Behavioral check on run() with the backoff in place: a file dropped
  // in, served, then an idle stretch bounded by max_files exit. The
  // backoff itself is pinned by the schedule tests above; this guards
  // run() still draining correctly around it.
  const ScopedTempDir spool("distapx-spool-backoff");
  auto opts = opts_for(spool);
  opts.max_files = 1;
  opts.poll_ms = 20;
  service::Daemon daemon(opts);
  spool_file(spool.path, "burst", "gen=path:20 algo=luby seeds=1:2\n");
  const auto reports = daemon.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
}

// ---- crash recovery ---------------------------------------------------------

TEST(Daemon, CrashBetweenPublishAndMoveIsResumedExactlyOnce) {
  const ScopedTempDir spool("distapx-spool-crash");
  {
    service::Daemon daemon(opts_for(spool));
    spool_file(spool.path, "sweep", kGoodJobs);
    // Kill the daemon in the publish->move window, after `P sweep` was
    // journaled. A failpoint Failure unwinds like a real crash — it must
    // not be swallowed into quarantine.
    failpoint::arm("daemon_publish_move");
    EXPECT_THROW(daemon.drain_once(), failpoint::Failure);
  }
  const fs::path done = spool.path / "done";
  ASSERT_TRUE(fs::exists(spool.path / "sweep.job"));  // move never happened
  ASSERT_TRUE(fs::exists(done / "sweep.runs.csv"));   // publication did
  const std::string runs = slurp(done / "sweep.runs.csv");
  const std::string summary = slurp(done / "sweep.summary.csv");
  const std::string report_txt = slurp(done / "sweep.report.txt");

  // The restarted daemon resumes: finishes the move, recomputes nothing,
  // rewrites nothing — every published byte is exactly the original.
  service::Daemon daemon(opts_for(spool));
  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_TRUE(reports[0].resumed);
  EXPECT_EQ(reports[0].runs, 0u);
  EXPECT_EQ(reports[0].computed, 0u);
  EXPECT_EQ(daemon.registry().counter("spool_resumed_total").value(), 1u);
  EXPECT_EQ(slurp(done / "sweep.runs.csv"), runs);
  EXPECT_EQ(slurp(done / "sweep.summary.csv"), summary);
  EXPECT_EQ(slurp(done / "sweep.report.txt"), report_txt);
  EXPECT_TRUE(fs::exists(done / "sweep.job"));
  EXPECT_FALSE(fs::exists(spool.path / "sweep.job"));
  // Settled for good: nothing left to claim, nothing to resume twice.
  EXPECT_TRUE(daemon.drain_once().empty());
}

TEST(Daemon, ClaimWhoseJobAlreadyLeftTheSpoolIsSettledAtStartup) {
  // Crash *after* the move but before the `D` record: the work is fully
  // done; the restarted daemon settles the dangling claim instead of
  // carrying it forever.
  const ScopedTempDir spool("distapx-spool-settle");
  fs::create_directories(spool.path);
  {
    Changelog journal((spool.path / "journal").string());
    ASSERT_TRUE(journal.append("P ghost"));
  }
  service::Daemon daemon(opts_for(spool));
  EXPECT_EQ(daemon.journal().snapshot_records(), 0u);
  EXPECT_EQ(daemon.journal().tail_records(), 0u);
  EXPECT_TRUE(daemon.drain_once().empty());
  EXPECT_EQ(daemon.registry().counter("spool_resumed_total").value(), 0u);
}

TEST(Daemon, IncompletePublicationIsRecomputedNotResumed) {
  const ScopedTempDir spool("distapx-spool-partial");
  {
    service::Daemon daemon(opts_for(spool));
    spool_file(spool.path, "sweep", kGoodJobs);
    failpoint::arm("daemon_publish_move");
    EXPECT_THROW(daemon.drain_once(), failpoint::Failure);
  }
  // One published artifact is gone (damaged disk, manual cleanup): the
  // resume precondition fails and the job is served from scratch.
  fs::remove(spool.path / "done" / "sweep.runs.csv");

  service::Daemon daemon(opts_for(spool));
  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_FALSE(reports[0].resumed);
  EXPECT_EQ(reports[0].runs, 10u);  // recomputed
  EXPECT_TRUE(fs::exists(spool.path / "done" / "sweep.runs.csv"));
  EXPECT_FALSE(fs::exists(spool.path / "sweep.job"));
  EXPECT_EQ(daemon.registry().counter("spool_resumed_total").value(), 0u);
}

TEST(Daemon, EmptyJobFileIsQuarantinedNotLooped) {
  const ScopedTempDir spool("distapx-spool-empty");
  service::Daemon daemon(opts_for(spool));
  spool_file(spool.path, "empty", "# only a comment\n");
  const auto reports = daemon.drain_once();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].ok);
  EXPECT_NE(reports[0].error.find("no jobs"), std::string::npos);
  EXPECT_TRUE(fs::exists(spool.path / "failed" / "empty.job"));
  // A second drain finds nothing: the file must not wedge the spool.
  EXPECT_TRUE(daemon.drain_once().empty());
}

}  // namespace
}  // namespace distapx
