#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/fingerprint.hpp"
#include "support/parse.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace distapx {
namespace {

TEST(Ensure, ThrowsWithMessage) {
  EXPECT_THROW(DISTAPX_ENSURE(1 == 2), EnsureError);
  try {
    DISTAPX_ENSURE_MSG(false, "context " << 42);
    FAIL();
  } catch (const EnsureError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng root(99);
  Rng s1 = root.split(7);
  Rng s1_again = root.split(7);
  Rng s2 = root.split(8);
  EXPECT_EQ(s1.next(), s1_again.next());
  EXPECT_NE(s1.next(), s2.next());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  constexpr int kTrials = 16000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kTrials / 8 * 0.85);
    EXPECT_LT(c, kTrials / 8 * 1.15);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const auto x = rng.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  EXPECT_EQ(rng.next_in(3, 3), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(11);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (auto x : sample) EXPECT_LT(x, 50u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), EnsureError);
}

TEST(Bits, BitsForValue) {
  EXPECT_EQ(bits_for_value(0), 1);
  EXPECT_EQ(bits_for_value(1), 1);
  EXPECT_EQ(bits_for_value(2), 2);
  EXPECT_EQ(bits_for_value(255), 8);
  EXPECT_EQ(bits_for_value(256), 9);
}

TEST(Bits, BitsForCount) {
  EXPECT_EQ(bits_for_count(1), 1);
  EXPECT_EQ(bits_for_count(2), 1);
  EXPECT_EQ(bits_for_count(3), 2);
  EXPECT_EQ(bits_for_count(1024), 10);
  EXPECT_EQ(bits_for_count(1025), 11);
}

TEST(Bits, Logs) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
}

TEST(Parse, UintStrictAcceptsWholeTokensInRange) {
  EXPECT_EQ(parse_uint_strict("0", 100), 0u);
  EXPECT_EQ(parse_uint_strict("42", 100), 42u);
  EXPECT_EQ(parse_uint_strict("100", 100), 100u);
  EXPECT_EQ(parse_uint_strict("18446744073709551615", UINT64_MAX),
            UINT64_MAX);
}

TEST(Parse, UintStrictRejectsPartialAndOutOfRange) {
  for (const char* bad : {"", "-1", "+1", "12x", "x12", "1 ", " 1", "1.5",
                          "0x10", "18446744073709551616"}) {
    EXPECT_FALSE(parse_uint_strict(bad, UINT64_MAX).has_value()) << bad;
  }
  EXPECT_FALSE(parse_uint_strict("101", 100).has_value());
}

TEST(Parse, DoubleStrictAcceptsPlainDecimals) {
  EXPECT_DOUBLE_EQ(*parse_double_strict("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double_strict("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("+0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*parse_double_strict(".5"), 0.5);
  EXPECT_DOUBLE_EQ(*parse_double_strict("2."), 2.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("2.5E-2"), 0.025);
  EXPECT_DOUBLE_EQ(*parse_double_strict("0"), 0.0);
}

TEST(Parse, DoubleStrictRejectsNonFiniteHexAndWhitespace) {
  // The "whole number or error" contract: everything strtod sneaks past a
  // full-consumption check must still be rejected — inf/nan (callers feed
  // the value into arithmetic assuming finiteness), hex floats, overflow
  // to infinity, leading whitespace (strtod skips it silently).
  for (const char* bad :
       {"", "inf", "+inf", "-inf", "infinity", "INF", "nan", "NaN",
        "nan(0x1)", "0x10", "0x1p3", "0X1.8P1", "1e999", "-1e999", " 1.5",
        "1.5 ", "\t2", "1.5x", "x1.5", "--1", "1e", "e5", ".", "+", "1.2.3",
        "1,5"}) {
    EXPECT_FALSE(parse_double_strict(bad).has_value()) << "\"" << bad << "\"";
  }
}

TEST(Parse, SizeBytesScalesBinarySuffixes) {
  EXPECT_EQ(*parse_size_bytes("0"), 0u);
  EXPECT_EQ(*parse_size_bytes("4096"), 4096u);
  EXPECT_EQ(*parse_size_bytes("2k"), 2048u);
  EXPECT_EQ(*parse_size_bytes("2K"), 2048u);
  EXPECT_EQ(*parse_size_bytes("3m"), 3u << 20);
  EXPECT_EQ(*parse_size_bytes("1G"), 1u << 30);
  for (const char* bad :
       {"", "k", "2kb", "2.5k", "-2k", "2 k", "0x2k", "1t",
        "18446744073709551615k"}) {
    EXPECT_FALSE(parse_size_bytes(bad).has_value()) << bad;
  }
}

TEST(Fingerprint, HexRoundTripsThroughFromHex) {
  Fingerprint fp;
  fp.hi = 0x0123456789abcdefULL;
  fp.lo = 0xfedcba9876543210ULL;
  const auto back = Fingerprint::from_hex(fp.hex());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fp);

  EXPECT_TRUE(Fingerprint::from_hex("0123456789ABCDEFfedcba9876543210")
                  .has_value());  // either case
  EXPECT_FALSE(Fingerprint::from_hex("").has_value());
  EXPECT_FALSE(Fingerprint::from_hex("0123").has_value());  // short
  EXPECT_FALSE(
      Fingerprint::from_hex("g123456789abcdeffedcba9876543210").has_value());
  EXPECT_FALSE(Fingerprint::from_hex(fp.hex() + "0").has_value());  // long
}

TEST(Stats, SummaryBasics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, SummaryEmpty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Table, PrintAndCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "hello"});
  t.add_row({Table::fmt(2.5, 1), "x,y"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("hello"), std::string::npos);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("\"x,y\""), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), EnsureError);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
}

TEST(Table, WriteJson) {
  Table t({"name", "count", "ratio"});
  t.add_row({"alpha", "12", "0.50"});
  t.add_row({"007", "-3", "say \"hi\"\n"});  // leading zero is NOT a number
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"count\": 12, \"ratio\": 0.50}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"007\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": -3"), std::string::npos) << json;
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos) << json;
}

}  // namespace
}  // namespace distapx
