#include <gtest/gtest.h>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "mis/ghaffari_nmis.hpp"
#include "mis/greedy.hpp"
#include "mis/luby.hpp"
#include "mis/nmis_agg.hpp"
#include "support/bits.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

class LubyFamilies : public ::testing::TestWithParam<int> {};

TEST_P(LubyFamilies, ProducesMaximalIndependentSet) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    const auto res = run_luby_mis(fc.graph, seed);
    EXPECT_TRUE(is_maximal_independent_set(fc.graph, res.independent_set))
        << fc.name;
    EXPECT_TRUE(res.undecided.empty()) << fc.name;
  }
  for (const auto& fc : test::medium_families(seed)) {
    const auto res = run_luby_mis(fc.graph, seed);
    EXPECT_TRUE(is_maximal_independent_set(fc.graph, res.independent_set))
        << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyFamilies, ::testing::Range(1, 6));

TEST(Luby, RoundsScaleLogarithmically) {
  // O(log n) w.h.p.: on G(n, 8/n) graphs, rounds should stay within a
  // small multiple of log2(n).
  for (NodeId n : {128u, 512u, 2048u}) {
    Rng rng(n);
    const Graph g = gen::gnp(n, 8.0 / n, rng);
    const auto res = run_luby_mis(g, 7);
    EXPECT_LE(res.metrics.rounds, 12 * ceil_log2(n)) << n;
  }
}

TEST(Luby, DeterministicForSeed) {
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.1, rng);
  const auto a = run_luby_mis(g, 11);
  const auto b = run_luby_mis(g, 11);
  EXPECT_EQ(a.independent_set, b.independent_set);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(Luby, IsolatedNodesJoin) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto res = run_luby_mis(g, 1);
  // Nodes 2 and 3 are isolated: always in the MIS.
  EXPECT_TRUE(std::count(res.independent_set.begin(),
                         res.independent_set.end(), 2));
  EXPECT_TRUE(std::count(res.independent_set.begin(),
                         res.independent_set.end(), 3));
}

TEST(Luby, RespectsCongestCap) {
  Rng rng(4);
  const Graph g = gen::gnp(100, 0.1, rng);
  sim::Network net(g);
  sim::RunOptions opts;
  opts.policy = sim::BandwidthPolicy::congest(8);
  const auto res = net.run(make_luby_program(g), opts);
  EXPECT_TRUE(res.metrics.completed);
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
}

TEST(NmisBudget, MatchesTheoremFormula) {
  NmisParams p;
  p.K = 2;
  p.delta = 1.0 / 64.0;
  p.beta = 1.5;
  const auto t = nmis_iteration_budget(64, p);
  // beta * (log2(64)/log2(2) + 4*ln(64)) + 1 = 1.5*(6+16.6)+1 ~ 35
  EXPECT_GE(t, 30u);
  EXPECT_LE(t, 40u);
  p.iterations = 123;
  EXPECT_EQ(nmis_iteration_budget(64, p), 123u);
}

class NmisFamilies : public ::testing::TestWithParam<int> {};

TEST_P(NmisFamilies, IndependenceAndCoverage) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::medium_families(seed)) {
    const auto res = run_nmis(fc.graph, seed);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    // Near-maximality: every node not undecided is in the IS or covered.
    std::vector<bool> in_is(fc.graph.num_nodes(), false);
    for (NodeId v : res.independent_set) in_is[v] = true;
    std::vector<bool> undecided(fc.graph.num_nodes(), false);
    for (NodeId v : res.undecided) undecided[v] = true;
    for (NodeId v = 0; v < fc.graph.num_nodes(); ++v) {
      if (in_is[v] || undecided[v]) continue;
      bool covered = false;
      for (const HalfEdge& he : fc.graph.neighbors(v)) {
        covered = covered || in_is[he.to];
      }
      EXPECT_TRUE(covered) << fc.name << " node " << v;
    }
    // Undecided nodes must not be adjacent to the IS (they could have
    // joined otherwise) and should be a small fraction (Thm 3.1).
    for (NodeId v : res.undecided) {
      for (const HalfEdge& he : fc.graph.neighbors(v)) {
        EXPECT_FALSE(in_is[he.to]) << fc.name;
      }
    }
    EXPECT_LE(res.undecided.size(),
              std::max<std::size_t>(4, fc.graph.num_nodes() / 10))
        << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmisFamilies, ::testing::Range(1, 5));

TEST(Nmis, ThenLubyIsMaximal) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(150, 0.05, rng);
    const auto res = run_nmis_then_luby(g, seed);
    EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
    EXPECT_TRUE(res.undecided.empty());
  }
}

TEST(Nmis, LargerKTradesRounds) {
  // Theorem 3.1: rounds ~ log Δ / log K + K² log 1/δ. When the K² log 1/δ
  // term is negligible (δ close to 1), doubling K halves the budget; when
  // δ is tiny, small K wins. Both directions of the tradeoff:
  NmisParams p2{.K = 2, .delta = 0.9, .beta = 1.0, .iterations = 0};
  NmisParams p4{.K = 4, .delta = 0.9, .beta = 1.0, .iterations = 0};
  EXPECT_LT(nmis_iteration_budget(1u << 20, p4),
            nmis_iteration_budget(1u << 20, p2));
  p2.delta = p4.delta = 1e-6;
  EXPECT_LT(nmis_iteration_budget(1u << 20, p2),
            nmis_iteration_budget(1u << 20, p4));
}

TEST(GreedyMis, MaximalOnFamilies) {
  for (const auto& fc : test::small_families(2)) {
    EXPECT_TRUE(
        is_maximal_independent_set(fc.graph, greedy_mis(fc.graph)))
        << fc.name;
  }
  Rng rng(3);
  const Graph g = gen::gnp(80, 0.08, rng);
  EXPECT_TRUE(is_maximal_independent_set(g, greedy_mis_random(g, rng)));
}

TEST(GreedyMis, RespectsOrder) {
  const Graph p = gen::path(4);
  const auto mis = greedy_mis(p, {1, 3, 0, 2});
  EXPECT_EQ(mis, (std::vector<NodeId>{1, 3}));
}

TEST(NmisAgg, MatchesMessagePassingGuarantees) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(120, 0.06, rng);
    const auto res = run_nmis_agg_on_nodes(g, seed);
    EXPECT_TRUE(is_independent_set(g, res.independent_set));
    std::vector<bool> in_is(g.num_nodes(), false);
    for (NodeId v : res.independent_set) in_is[v] = true;
    for (NodeId v : res.undecided) {
      for (const HalfEdge& he : g.neighbors(v)) {
        EXPECT_FALSE(in_is[he.to]);
      }
    }
    EXPECT_LE(res.undecided.size(), g.num_nodes() / 10u);
  }
}

TEST(NearlyMaximalMatching, ValidAndNearMaximal) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp(80, 0.08, rng);
    const auto res = run_nearly_maximal_matching(g, seed);
    EXPECT_TRUE(is_matching(g, res.matching));
    // Every edge not undecided is matched or touches a matched node.
    std::vector<bool> used(g.num_nodes(), false);
    for (EdgeId e : res.matching) {
      const auto [u, v] = g.endpoints(e);
      used[u] = used[v] = true;
    }
    std::vector<bool> undecided(g.num_edges(), false);
    for (EdgeId e : res.undecided) undecided[e] = true;
    std::size_t uncovered = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (!used[u] && !used[v]) {
        ++uncovered;
        EXPECT_TRUE(undecided[e]) << "edge " << e;
      }
    }
    EXPECT_LE(uncovered, std::max<std::size_t>(3, g.num_edges() / 10));
  }
}

TEST(NearlyMaximalMatching, CongestionIndependentOfDegree) {
  // The headline Theorem 2.8/3.2 systems claim: running NMIS on the line
  // graph of a high-degree star stays within the CONGEST cap.
  const Graph g = gen::star(128);
  const auto res = run_nearly_maximal_matching(g, 5);
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
  EXPECT_TRUE(is_matching(g, res.matching));
  // A star's matching has exactly one edge; near-maximality should find it
  // (any undecided edge would be uncovered otherwise).
  EXPECT_LE(res.matching.size(), 1u);
}

TEST(Nmis, RoundsGrowSlowlyWithDegree) {
  // O(log Δ)-type growth: quadrupling Δ should far less than quadruple
  // the rounds.
  std::uint32_t rounds_small = 0, rounds_large = 0;
  {
    Rng rng(9);
    const Graph g = gen::random_regular(256, 4, rng);
    rounds_small = run_nmis(g, 3).metrics.rounds;
  }
  {
    Rng rng(10);
    const Graph g = gen::random_regular(256, 16, rng);
    rounds_large = run_nmis(g, 3).metrics.rounds;
  }
  EXPECT_LT(rounds_large, rounds_small * 3);
}


TEST(Nmis, Theorem31CoverageGuaranteeStatistically) {
  // Thm 3.1: after the budgeted iterations, each node fails to be covered
  // with probability at most δ. Aggregating over many seeded runs, the
  // uncovered fraction must stay below δ with comfortable margin.
  NmisParams params;
  params.delta = 1.0 / 16.0;
  std::size_t uncovered = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(hash_combine(seed, 0x31));
    const Graph g = gen::random_regular(256, 8, rng);
    const auto res = run_nmis(g, seed, params);
    uncovered += res.undecided.size();
    total += g.num_nodes();
  }
  EXPECT_LT(static_cast<double>(uncovered) / static_cast<double>(total),
            params.delta);
}

TEST(Nmis, AdversarialLocality) {
  // Thm 3.1's "even if coin tosses outside N²(v) are adversarial": as a
  // proxy, a node's coverage must not depend on far-away topology. Two
  // graphs sharing a node's 3-neighborhood (disjoint unions) give the
  // same local decision for the same seeds.
  Rng rng(5);
  const Graph core = gen::cycle(8);
  // core plus a far-away clique; node ids of the core are unchanged.
  GraphBuilder b(16);
  for (EdgeId e = 0; e < core.num_edges(); ++e) {
    const auto [u, v] = core.endpoints(e);
    b.add_edge(u, v);
  }
  for (NodeId u = 8; u < 16; ++u)
    for (NodeId v = u + 1; v < 16; ++v) b.add_edge(u, v);
  const Graph with_far = b.build();
  const auto a = run_nmis(core, 7);
  const auto c = run_nmis(with_far, 7);
  // Same per-node RNG streams + same neighborhoods => identical outcomes
  // for the core nodes.
  std::vector<bool> in_a(8, false), in_c(8, false);
  for (NodeId v : a.independent_set) in_a[v] = true;
  for (NodeId v : c.independent_set)
    if (v < 8) in_c[v] = true;
  EXPECT_EQ(in_a, in_c);
}

}  // namespace
}  // namespace distapx
