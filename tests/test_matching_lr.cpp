// Theorem 2.9/2.10 tests: Algorithm 2 as a local aggregation program, and
// the congestion-free 2-approximate MWM on line graphs.
#include <gtest/gtest.h>

#include "graph/algos.hpp"
#include "graph/generators.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/lr_matching.hpp"
#include "sim/aggregation.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

NodeWeights node_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0x11));
  return gen::uniform_node_weights(g.num_nodes(), max_w, rng);
}

EdgeWeights edge_weights_for(const Graph& g, std::uint64_t seed,
                             Weight max_w) {
  Rng rng(hash_combine(seed, 0x22));
  return gen::uniform_edge_weights(g.num_edges(), max_w, rng);
}

class AggMaxIsSeeds : public ::testing::TestWithParam<int> {};

TEST_P(AggMaxIsSeeds, DeltaApproximationOnNodes) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20) continue;
    const auto w = node_weights_for(fc.graph, seed, 25);
    const auto res = run_layered_maxis_agg(fc.graph, w, seed);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    const Weight opt = test::brute_force_maxis_weight(fc.graph, w);
    const Weight got = set_weight(w, res.independent_set);
    const Weight delta = std::max<std::uint32_t>(fc.graph.max_degree(), 1);
    EXPECT_GE(got * delta, opt) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggMaxIsSeeds, ::testing::Range(1, 5));

TEST(AggMaxIs, MediumFamilies) {
  for (const auto& fc : test::medium_families(3)) {
    const auto w = node_weights_for(fc.graph, 3, 100);
    const auto res = run_layered_maxis_agg(fc.graph, w, 3);
    EXPECT_TRUE(is_independent_set(fc.graph, res.independent_set))
        << fc.name;
    EXPECT_TRUE(res.metrics.completed) << fc.name;
  }
}

TEST(AggMaxIs, UnitWeightsGiveMaximalIs) {
  Rng rng(4);
  const Graph g = gen::gnp(100, 0.06, rng);
  const auto res =
      run_layered_maxis_agg(g, gen::unit_node_weights(g.num_nodes()), 4);
  EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
}

class LrMatchingSeeds : public ::testing::TestWithParam<int> {};

TEST_P(LrMatchingSeeds, TwoApproximationSmall) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    if (fc.graph.num_nodes() > 20 || fc.graph.num_edges() == 0) continue;
    const auto w = edge_weights_for(fc.graph, seed, 25);
    const auto res = run_lr_matching(fc.graph, w, seed);
    EXPECT_TRUE(is_matching(fc.graph, res.matching)) << fc.name;
    const Weight opt =
        matching_weight(w, exact_mwm_small(fc.graph, w).matching);
    const Weight got = matching_weight(w, res.matching);
    EXPECT_GE(got * 2, opt) << fc.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrMatchingSeeds, ::testing::Range(1, 6));

TEST(LrMatching, BipartiteAtScale) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Graph g = gen::bipartite_gnp(40, 40, 0.08, rng);
    const auto w = edge_weights_for(g, seed, 100);
    const auto res = run_lr_matching(g, w, seed);
    EXPECT_TRUE(is_matching(g, res.matching));
    const Weight opt =
        matching_weight(w, exact_mwm_bipartite(g, w).matching);
    EXPECT_GE(matching_weight(w, res.matching) * 2, opt)
        << "seed " << seed;
  }
}

TEST(LrMatching, UnweightedIsMaximalMatching) {
  // Unit weights: the IS on L(G) is an MIS of L(G) = a maximal matching,
  // hence a 2-approximation of MCM.
  Rng rng(5);
  const Graph g = gen::gnp(60, 0.08, rng);
  const auto res =
      run_lr_matching(g, gen::unit_edge_weights(g.num_edges()), 5);
  EXPECT_TRUE(is_maximal_matching(g, res.matching));
}

TEST(LrMatching, CongestionBoundedOnHighDegreeGraphs) {
  // The whole point of Sec. 2.4: Θ(Δ)-degree graphs stay within the
  // CONGEST cap when executed through the aggregation mechanism.
  const Graph star = gen::star(200);
  const auto w = edge_weights_for(star, 6, 1000);
  const auto res = run_lr_matching(star, w, 6);
  EXPECT_TRUE(is_matching(star, res.matching));
  EXPECT_EQ(res.matching.size(), 1u);  // stars have a 1-edge maximum
  EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap);
  // The naive simulation would need Θ(Δ log n) bits per edge.
  EXPECT_GT(sim::naive_line_congestion_bits(star, 64),
            res.metrics.bandwidth_cap);
}

TEST(LrMatching, StarPicksHeaviestEdgeByWeightDominance) {
  // On a star, 2-approximation requires picking an edge with at least
  // half the best weight; local ratio actually picks the heaviest layer.
  const Graph star = gen::star(12);
  EdgeWeights w(star.num_edges(), 1);
  w[4] = 1000;
  const auto res = run_lr_matching(star, w, 7);
  ASSERT_EQ(res.matching.size(), 1u);
  EXPECT_GE(matching_weight(w, res.matching) * 2, 1000);
}

TEST(LrMatching, DeterministicPerSeed) {
  Rng rng(8);
  const Graph g = gen::gnp(40, 0.12, rng);
  const auto w = edge_weights_for(g, 8, 64);
  const auto a = run_lr_matching(g, w, 9);
  const auto b = run_lr_matching(g, w, 9);
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
}

TEST(LrMatching, MediumFamiliesComplete) {
  for (const auto& fc : test::medium_families(9)) {
    if (fc.graph.num_edges() == 0) continue;
    const auto w = edge_weights_for(fc.graph, 9, 50);
    const auto res = run_lr_matching(fc.graph, w, 9);
    EXPECT_TRUE(is_matching(fc.graph, res.matching)) << fc.name;
    EXPECT_TRUE(res.metrics.completed) << fc.name;
    EXPECT_LE(res.metrics.max_edge_bits, res.metrics.bandwidth_cap)
        << fc.name;
  }
}

}  // namespace
}  // namespace distapx
