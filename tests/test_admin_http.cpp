// HTTP admin endpoint: request routing/status at the string level, and a
// live AdminServer scraped over a real TCP socket while writer threads
// hammer the registry — the scrape-while-serving property the admin plane
// exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "net/http_admin.hpp"
#include "net/socket.hpp"
#include "support/fdio.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace distapx::net {
namespace {

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string body_of(const std::string& response) {
  const std::size_t blank = response.find("\r\n\r\n");
  return blank == std::string::npos ? std::string()
                                    : response.substr(blank + 4);
}

TEST(AdminHttp, MetricsRouteRendersTheRegistry) {
  metrics::Registry reg;
  reg.counter("results_ok_total").inc(12);
  const std::string resp =
      admin_handle_request("GET /metrics HTTP/1.0\r\n\r\n", reg);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(body_of(resp).find("distapx_results_ok_total 12\n"),
            std::string::npos);
}

TEST(AdminHttp, MetricsRouteIgnoresQueryString) {
  metrics::Registry reg;
  const std::string resp =
      admin_handle_request("GET /metrics?debug=1 HTTP/1.0\r\n\r\n", reg);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
}

TEST(AdminHttp, HealthzReflectsReadyAndDrainingGauges) {
  metrics::Registry reg;
  // No gauges yet: the serving loop has not come up.
  std::string resp = admin_handle_request("GET /healthz HTTP/1.0\r\n\r\n", reg);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 503 Service Unavailable");
  EXPECT_EQ(body_of(resp), "starting\n");

  reg.gauge("ready").set(1);
  resp = admin_handle_request("GET /healthz HTTP/1.0\r\n\r\n", reg);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  EXPECT_EQ(body_of(resp), "ok\n");

  // Draining wins over ready: a draining server must fail its health
  // check even though its loop is still up flushing responses.
  reg.gauge("draining").set(1);
  resp = admin_handle_request("GET /healthz HTTP/1.0\r\n\r\n", reg);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 503 Service Unavailable");
  EXPECT_EQ(body_of(resp), "draining\n");
}

TEST(AdminHttp, UnknownRouteBadMethodAndGarbageGetClassified) {
  metrics::Registry reg;
  EXPECT_EQ(status_line(admin_handle_request("GET /nope HTTP/1.0\r\n\r\n",
                                             reg)),
            "HTTP/1.0 404 Not Found");
  EXPECT_EQ(status_line(admin_handle_request("POST /metrics HTTP/1.0\r\n\r\n",
                                             reg)),
            "HTTP/1.0 405 Method Not Allowed");
  EXPECT_EQ(status_line(admin_handle_request("garbage\r\n\r\n", reg)),
            "HTTP/1.0 400 Bad Request");
}

TEST(AdminHttp, StatuszRendersBuildStatusFieldsAndProcessGauges) {
  metrics::Registry reg;
  reg.gauge("ready").set(1);
  reg.gauge("connections_open").set(3);
  reg.float_gauge("process_cpu_seconds_total").set(1.25);
  reg.gauge("process_max_rss_bytes").set(123456);

  std::vector<std::pair<std::string, std::string>> fields = {
      {"mode", "socket"}, {"cache_dir", "(none)"}};
  AdminContext ctx;
  ctx.status_fields = &fields;
  ctx.start_time = std::chrono::steady_clock::now();
  const std::string resp =
      admin_handle_request("GET /statusz HTTP/1.0\r\n\r\n", reg, ctx);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("uptime_seconds"), std::string::npos);
  EXPECT_NE(body.find("mode: socket"), std::string::npos);
  EXPECT_NE(body.find("cache_dir: (none)"), std::string::npos);
  EXPECT_NE(body.find("ready: 1"), std::string::npos);
  EXPECT_NE(body.find("connections_open: 3"), std::string::npos);
  EXPECT_NE(body.find("process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(body.find("process_max_rss_bytes: 123456"), std::string::npos);
}

TEST(AdminHttp, VarsRendersCountersFloatsAndRecentQuantiles) {
  metrics::Registry reg;
  reg.counter("results_ok_total").inc(7);
  reg.float_gauge("process_cpu_seconds_total").set(0.5);
  metrics::Histogram& lat =
      reg.histogram("job_latency_ms", metrics::default_latency_buckets_ms());
  for (int i = 0; i < 100; ++i) lat.observe(10.0);

  const std::string resp =
      admin_handle_request("GET /vars HTTP/1.0\r\n\r\n", reg, AdminContext{});
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("results_ok_total 7"), std::string::npos);
  EXPECT_NE(body.find("process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(body.find("job_latency_ms_count 100"), std::string::npos);
  EXPECT_NE(body.find("job_latency_ms_p95"), std::string::npos);
  EXPECT_NE(body.find("job_latency_ms_recent_count 100"), std::string::npos);
  EXPECT_NE(body.find("job_latency_ms_recent_p99"), std::string::npos);
}

TEST(AdminHttp, TracezRendersSinkOrExplainsItsAbsence) {
  metrics::Registry reg;
  // No sink attached: the page says so instead of 404ing, so operators
  // can tell "no traces yet" from "wrong URL".
  std::string resp =
      admin_handle_request("GET /tracez HTTP/1.0\r\n\r\n", reg, AdminContext{});
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  EXPECT_NE(body_of(resp).find("not attached"), std::string::npos);

  trace::TraceSink sink;
  trace::Collector c(42, "submit");
  const std::uint32_t s = c.begin("lane-execute");
  c.end(s);
  sink.publish(c.finish());
  AdminContext ctx;
  ctx.sink = &sink;
  resp = admin_handle_request("GET /tracez HTTP/1.0\r\n\r\n", reg, ctx);
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("trace 42"), std::string::npos);
  EXPECT_NE(body.find("lane-execute"), std::string::npos);
}

TEST(AdminHttp, LegacyTwoArgOverloadStillRoutes) {
  metrics::Registry reg;
  reg.counter("x_total").inc(1);
  EXPECT_EQ(status_line(admin_handle_request("GET /statusz HTTP/1.0\r\n\r\n",
                                             reg)),
            "HTTP/1.0 200 OK");
  EXPECT_EQ(status_line(admin_handle_request("GET /vars HTTP/1.0\r\n\r\n",
                                             reg)),
            "HTTP/1.0 200 OK");
  EXPECT_EQ(status_line(admin_handle_request("GET /tracez HTTP/1.0\r\n\r\n",
                                             reg)),
            "HTTP/1.0 200 OK");
}

/// One blocking HTTP/1.0 exchange against a live admin endpoint.
std::string http_get(const Endpoint& ep, const std::string& target) {
  fdio::Fd fd = connect_endpoint_retry(ep, 5000);
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(fdio::write_fully(fd.get(), req.data(), req.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t r = fdio::read_some(fd.get(), buf, sizeof buf);
    if (r > 0) {
      resp.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    break;  // EOF (server closes after the response) or hard error
  }
  return resp;
}

TEST(AdminHttp, ScrapesWhileWritersHammerTheRegistry) {
  metrics::Registry reg;
  reg.gauge("ready").set(1);
  // Register up front so the first scrape already sees the series (the
  // serving tier resolves its handles before accepting work, too).
  reg.counter("results_ok_total");
  reg.histogram("job_latency_ms", metrics::default_latency_buckets_ms());

  AdminOptions opts;
  opts.endpoint = "127.0.0.1:0";
  opts.registry = &reg;
  AdminServer admin(std::move(opts));
  admin.start();

  // Writers play the serving tier: counters, a gauge, and a histogram
  // updated continuously while scrapes land.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &stop] {
      metrics::Counter& ok = reg.counter("results_ok_total");
      metrics::Histogram& lat =
          reg.histogram("job_latency_ms", metrics::default_latency_buckets_ms());
      while (!stop.load(std::memory_order_relaxed)) {
        ok.inc();
        lat.observe(1.5);
        reg.gauge("queue_depth").add(1);
        reg.gauge("queue_depth").add(-1);
      }
    });
  }

  for (int i = 0; i < 20; ++i) {
    const std::string resp = http_get(admin.endpoint(), "/metrics");
    ASSERT_EQ(status_line(resp), "HTTP/1.0 200 OK") << resp;
    const std::string body = body_of(resp);
    EXPECT_NE(body.find("# TYPE distapx_results_ok_total counter"),
              std::string::npos);
    EXPECT_NE(body.find("distapx_job_latency_ms_count"), std::string::npos);
    const std::string health = http_get(admin.endpoint(), "/healthz");
    EXPECT_EQ(status_line(health), "HTTP/1.0 200 OK");
  }

  stop.store(true);
  for (auto& w : writers) w.join();
  admin.stop();

  // After the writers stop, one more scrape sees a settled, parseable
  // count equal to the counter's final value.
  const std::uint64_t final_ok = reg.counter("results_ok_total").value();
  const std::string rendered = metrics::render_prometheus(reg.snapshot());
  EXPECT_NE(rendered.find("distapx_results_ok_total " +
                          std::to_string(final_ok) + "\n"),
            std::string::npos);
}

TEST(AdminHttp, OversizedRequestIsRejected) {
  metrics::Registry reg;
  reg.gauge("ready").set(1);
  AdminOptions opts;
  opts.endpoint = "127.0.0.1:0";
  opts.registry = &reg;
  opts.max_request_bytes = 128;
  AdminServer admin(std::move(opts));
  admin.start();

  fdio::Fd fd = connect_endpoint_retry(admin.endpoint(), 5000);
  const std::string junk(1024, 'x');  // no blank line, over the cap
  ASSERT_TRUE(fdio::write_fully(fd.get(), junk.data(), junk.size()));
  std::string resp;
  char buf[1024];
  for (;;) {
    const ssize_t r = fdio::read_some(fd.get(), buf, sizeof buf);
    if (r > 0) {
      resp.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    break;
  }
  EXPECT_EQ(status_line(resp), "HTTP/1.0 400 Bad Request");
  admin.stop();
}

TEST(AdminHttp, UnixSocketEndpointServes) {
  metrics::Registry reg;
  reg.counter("spool_files_served_total").inc(2);
  const std::string path =
      ::testing::TempDir() + "/admin-" + std::to_string(::getpid()) + ".sock";
  AdminOptions opts;
  opts.endpoint = path;
  opts.registry = &reg;
  AdminServer admin(std::move(opts));
  admin.start();
  const std::string resp = http_get(admin.endpoint(), "/metrics");
  EXPECT_EQ(status_line(resp), "HTTP/1.0 200 OK");
  EXPECT_NE(body_of(resp).find("distapx_spool_files_served_total 2"),
            std::string::npos);
  admin.stop();
}

}  // namespace
}  // namespace distapx::net
