// The content-addressed result cache (service/result_cache.hpp).
//
// Correctness here is adversarial: a cache hit must be bit-identical to
// recomputation at any thread count, and every way an entry can be wrong —
// corrupted, truncated, stale engine version, foreign magic, a file
// renamed under a different key — must be detected and served as a miss,
// never as a wrong row.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/genspec.hpp"
#include "service/batch_server.hpp"
#include "service/job_spec.hpp"
#include "service/result_cache.hpp"
#include "support/fingerprint.hpp"
#include "support/fsutil.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;
using test::ScopedTempDir;

service::JobSpec luby_spec(std::uint32_t num_seeds = 4) {
  service::JobSpec spec;
  spec.name = "luby";
  spec.gen_spec = "gnp:60:0.08";
  spec.algorithm = "luby";
  spec.num_seeds = num_seeds;
  return spec;
}

/// Small mixed workload exercising leased-network and multi-phase
/// algorithm adapters.
std::vector<service::JobSpec> mixed_jobs() {
  std::istringstream is(
      "gen=gnp:60:0.08   algo=luby       seeds=1:4 name=gnp-luby\n"
      "gen=grid:6:6      algo=mcm-2eps   seeds=1:3 eps=0.3 name=grid-mcm\n"
      "gen=tree:50       algo=mwm-lr     seeds=2:3 maxw=32 name=tree-mwm\n"
      "gen=regular:48:4  algo=maxis-alg2 seeds=1:3 maxw=64 name=reg-maxis\n");
  return service::parse_job_file(is);
}

service::BatchResult serve(const std::vector<service::JobSpec>& jobs,
                           unsigned threads,
                           service::ResultCache* cache = nullptr) {
  service::BatchServer server({threads, cache});
  server.submit_all(jobs);
  return server.serve();
}

// ---- fingerprint stability -------------------------------------------------

TEST(Fingerprint, DeterministicAndOrderSensitive) {
  Fingerprinter a, b;
  a.add_u64(1).add_u64(2);
  b.add_u64(1).add_u64(2);
  EXPECT_EQ(a.digest(), b.digest());

  Fingerprinter swapped;
  swapped.add_u64(2).add_u64(1);
  EXPECT_NE(a.digest(), swapped.digest());

  EXPECT_EQ(a.digest().hex().size(), 32u);
  EXPECT_NE(a.digest().hex(), Fingerprint{}.hex());
}

TEST(Fingerprint, StringFramingPreventsConcatenationCollisions) {
  Fingerprinter ab_c, a_bc;
  ab_c.add_string("ab").add_string("c");
  a_bc.add_string("a").add_string("bc");
  EXPECT_NE(ab_c.digest(), a_bc.digest());

  Fingerprinter empty1, empty2;
  empty1.add_string("").add_string("x");
  empty2.add_string("x").add_string("");
  EXPECT_NE(empty1.digest(), empty2.digest());

  // Strings longer than one 64-bit word keep every byte significant.
  Fingerprinter long_a, long_b;
  long_a.add_string("abcdefghiJ");
  long_b.add_string("abcdefghiK");
  EXPECT_NE(long_a.digest(), long_b.digest());
}

TEST(RunFingerprint, CanonicallyEqualSpecsShareKeys) {
  EXPECT_EQ(gen::canonical_spec("gnp:0060:0.080"), "gnp:60:0.08");
  EXPECT_EQ(gen::canonical_spec("gnp:60:.08"), "gnp:60:0.08");
  EXPECT_EQ(gen::canonical_spec("grid:007:6"), "grid:7:6");

  service::JobSpec a = luby_spec();
  service::JobSpec b = luby_spec();
  b.gen_spec = "gnp:0060:0.080";
  EXPECT_EQ(service::run_fingerprint(a, 1), service::run_fingerprint(b, 1));
  b.name = "different-label";  // the label is reporting-only
  EXPECT_EQ(service::run_fingerprint(a, 1), service::run_fingerprint(b, 1));
}

TEST(RunFingerprint, EveryRunInputPerturbsTheKey) {
  const service::JobSpec base = luby_spec();
  const Fingerprint fp = service::run_fingerprint(base, 1);

  EXPECT_NE(fp, service::run_fingerprint(base, 2));  // seed

  service::JobSpec v = base;
  v.algorithm = "nmis";
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.gen_spec = "gnp:60:0.09";
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.graph_seed = 7;
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.max_w = 101;
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.eps = 0.5;
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.max_rounds = 123;
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.policy = sim::BandwidthPolicy::local();
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
  v = base;
  v.policy = sim::BandwidthPolicy::congest(16);
  EXPECT_NE(fp, service::run_fingerprint(v, 1));

  // gen:X and file:X must not collide.
  v = base;
  v.gen_spec.clear();
  v.graph_file = base.gen_spec;
  EXPECT_NE(fp, service::run_fingerprint(v, 1));
}

// ---- hit / miss / fill round-trips -----------------------------------------

TEST(ResultCache, MissFillHitRoundTrip) {
  const ScopedTempDir dir("distapx-cache-roundtrip");
  service::ResultCache cache(dir.str());
  const Fingerprint key = service::run_fingerprint(luby_spec(), 3);

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  service::RunRow row;
  row.seed = 3;
  row.rounds = 17;
  row.messages = 424242;
  row.total_bits = 999999;
  row.max_edge_bits = 96;
  row.completed = true;
  row.solution_size = 21;
  row.objective = 1234;
  cache.store(key, row);
  EXPECT_EQ(cache.stats().stores, 1u);

  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, row);  // every field, bit for bit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().rejected, 0u);

  // Negative objectives survive the int64 round-trip.
  row.objective = -77;
  cache.store(key, row);
  ASSERT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.lookup(key)->objective, -77);
}

TEST(ResultCache, WarmReplayBitIdenticalAcrossThreadCounts) {
  const ScopedTempDir dir("distapx-cache-replay");
  service::ResultCache cache(dir.str());
  const auto jobs = mixed_jobs();

  const auto uncached = serve(jobs, 2);
  const auto cold = serve(jobs, 2, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.computed, cold.total_runs);

  // The acceptance matrix: warm replay at 1, 2, and 8 threads.
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto warm = serve(jobs, threads, &cache);
    EXPECT_EQ(warm.cache_hits, warm.total_runs) << threads << " threads";
    EXPECT_EQ(warm.computed, 0u);
    ASSERT_EQ(warm.jobs.size(), uncached.jobs.size());
    for (std::size_t j = 0; j < warm.jobs.size(); ++j) {
      ASSERT_EQ(warm.jobs[j].rows, uncached.jobs[j].rows)
          << warm.jobs[j].name << " at " << threads << " threads";
      EXPECT_EQ(warm.jobs[j].rows, cold.jobs[j].rows);
    }
    // The emitted CSV (the cross-process determinism witness) matches too.
    std::ostringstream a, b;
    service::runs_table(uncached).write_csv(a);
    service::runs_table(warm).write_csv(b);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(ResultCache, StoreFailureDegradesToUncachedServing) {
  const ScopedTempDir dir("distapx-cache-storefail");
  service::ResultCache cache(dir.str());

  // Block one key's entry path with a directory: rename-into-place fails,
  // so store() throws for exactly that unit.
  service::JobSpec spec = luby_spec(2);
  const Fingerprint blocked = service::run_fingerprint(spec, spec.seed_at(0));
  fs::create_directories(cache.entry_path(blocked));
  EXPECT_THROW(cache.store(blocked, service::RunRow{}), service::JobError);

  // The batch must still complete with correct rows — the fill failure
  // degrades that unit to uncached serving instead of aborting the batch.
  const auto uncached = serve({spec}, 2);
  const auto through_cache = serve({spec}, 2, &cache);
  EXPECT_EQ(through_cache.jobs[0].rows, uncached.jobs[0].rows);
  EXPECT_EQ(through_cache.cache_hits, 0u);

  // The unblocked seed was filled; the blocked one misses again warm.
  const auto warm = serve({spec}, 2, &cache);
  EXPECT_EQ(warm.jobs[0].rows, uncached.jobs[0].rows);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.computed, 1u);
}

// ---- publication durability -------------------------------------------------

TEST(ResultCache, StoreFsyncsPerTheDurabilityKnob) {
  const ScopedTempDir dir("distapx-cache-fsync");
  service::ResultCache cache(dir.str());
  const fsutil::Durability saved = fsutil::durability();

  fsutil::set_durability(fsutil::Durability::kFull);
  const std::uint64_t before_full = fsutil::fsync_total();
  service::RunRow row;
  row.seed = 1;
  row.completed = true;
  cache.store(service::run_fingerprint(luby_spec(), 1), row);
  // Data blocks before the rename, the directory entry after it: at least
  // two syncs per publication.
  EXPECT_GE(fsutil::fsync_total(), before_full + 2);

  fsutil::set_durability(fsutil::Durability::kNone);
  const std::uint64_t before_none = fsutil::fsync_total();
  cache.store(service::run_fingerprint(luby_spec(), 2), row);
  EXPECT_EQ(fsutil::fsync_total(), before_none);
  fsutil::set_durability(saved);

  // The knob trades crash-durability for speed; it never changes bytes.
  EXPECT_TRUE(
      cache.lookup(service::run_fingerprint(luby_spec(), 1)).has_value());
  EXPECT_TRUE(
      cache.lookup(service::run_fingerprint(luby_spec(), 2)).has_value());
  EXPECT_EQ(cache.stats().rejected, 0u);
}

// ---- corruption / truncation / version skew --------------------------------

class CacheRejection : public ::testing::Test {
 protected:
  void fill() {
    cache_.emplace(dir_.str());
    key_ = service::run_fingerprint(luby_spec(), 1);
    row_.seed = 1;
    row_.rounds = 5;
    row_.messages = 100;
    row_.completed = true;
    cache_->store(key_, row_);
    path_ = cache_->entry_path(key_);
    ASSERT_TRUE(cache_->lookup(key_).has_value());
    cache_->reset_stats();
  }

  std::vector<char> read_entry() {
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void write_entry(const std::vector<char>& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// The entry must be rejected (miss + rejected counter), and a fresh
  /// store must transparently repair it.
  void expect_rejected_then_recomputed() {
    EXPECT_FALSE(cache_->lookup(key_).has_value());
    EXPECT_EQ(cache_->stats().rejected, 1u);
    EXPECT_EQ(cache_->stats().misses, 1u);
    EXPECT_EQ(cache_->stats().hits, 0u);
    cache_->store(key_, row_);  // "recompute" and refill
    const auto repaired = cache_->lookup(key_);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, row_);
  }

  ScopedTempDir dir_{"distapx-cache-reject"};
  std::optional<service::ResultCache> cache_;
  Fingerprint key_;
  service::RunRow row_;
  std::string path_;
};

TEST_F(CacheRejection, FlippedPayloadByteFailsChecksum) {
  fill();
  auto bytes = read_entry();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_entry(bytes);
  expect_rejected_then_recomputed();
}

TEST_F(CacheRejection, TruncatedEntryRejected) {
  fill();
  auto bytes = read_entry();
  bytes.resize(bytes.size() - 9);
  write_entry(bytes);
  expect_rejected_then_recomputed();
}

TEST_F(CacheRejection, EmptyEntryRejected) {
  fill();
  write_entry({});
  expect_rejected_then_recomputed();
}

TEST_F(CacheRejection, StaleEngineVersionRejected) {
  fill();
  auto bytes = read_entry();
  // The engine version lives at offset 8 (after magic + format version);
  // recompute the trailing checksum so *only* the version differs — this
  // is exactly what a cache written by an older engine looks like.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  const Fingerprint sum = fingerprint_bytes(bytes.data(), bytes.size() - 16);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 16 + i] =
        static_cast<char>((sum.hi >> (8 * i)) & 0xff);
    bytes[bytes.size() - 8 + i] =
        static_cast<char>((sum.lo >> (8 * i)) & 0xff);
  }
  write_entry(bytes);
  expect_rejected_then_recomputed();
}

TEST_F(CacheRejection, ForeignMagicRejected) {
  fill();
  auto bytes = read_entry();
  bytes[0] = 'X';
  write_entry(bytes);
  expect_rejected_then_recomputed();
}

TEST_F(CacheRejection, EveryTruncationBoundaryRejectedByteByByte) {
  fill();
  const auto good = read_entry();
  ASSERT_EQ(good.size(), service::entry_file_size());
  // A file truncated at *any* byte boundary — including exactly at the
  // header/key/checksum field edges a lazy length check could misread —
  // must reject. Generated byte by byte: every prefix length from 0 to
  // full-1.
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_entry({good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len)});
    service::RunRow row;
    EXPECT_EQ(service::check_entry_file(path_, key_, &row),
              service::EntryStatus::kBadLength)
        << "prefix of " << len << " bytes";
    EXPECT_FALSE(cache_->lookup(key_).has_value()) << len << " bytes";
  }
  EXPECT_EQ(cache_->stats().rejected, good.size());
  EXPECT_EQ(cache_->stats().hits, 0u);

  // One byte too long is equally rejected (a concatenated/garbage file).
  auto extended = good;
  extended.push_back('\0');
  write_entry(extended);
  EXPECT_EQ(service::check_entry_file(path_, key_, nullptr),
            service::EntryStatus::kBadLength);
  EXPECT_FALSE(cache_->lookup(key_).has_value());

  // And the exact full-length image still round-trips afterwards.
  write_entry(good);
  const auto hit = cache_->lookup(key_);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, row_);
}

TEST_F(CacheRejection, CheckEntryFileReportsTheFirstFailingCheck) {
  fill();
  EXPECT_EQ(service::check_entry_file(path_, key_, nullptr),
            service::EntryStatus::kOk);
  EXPECT_EQ(service::check_entry_file(path_ + ".nope", key_, nullptr),
            service::EntryStatus::kMissing);

  // An entry path that exists but cannot be read as a file (here: a
  // directory squatting on it) is an I/O error, not "missing" — verify
  // must never call a file its own directory walk listed "missing".
  const std::string blocked = path_ + ".blocked";
  fs::create_directories(blocked);
  EXPECT_EQ(service::check_entry_file(blocked, key_, nullptr),
            service::EntryStatus::kIoError);

  // Wrong key against a valid file: key mismatch, not checksum.
  const Fingerprint other = service::run_fingerprint(luby_spec(), 555);
  EXPECT_EQ(service::check_entry_file(path_, other, nullptr),
            service::EntryStatus::kKeyMismatch);

  auto bytes = read_entry();
  bytes[0] = 'X';
  write_entry(bytes);
  EXPECT_EQ(service::check_entry_file(path_, key_, nullptr),
            service::EntryStatus::kBadMagic);

  bytes = read_entry();
  bytes[0] = 'D';  // restore magic, break the format version instead
  bytes[4] = static_cast<char>(bytes[4] + 1);
  write_entry(bytes);
  EXPECT_EQ(service::check_entry_file(path_, key_, nullptr),
            service::EntryStatus::kBadFormat);

  bytes[4] = static_cast<char>(bytes[4] - 1);
  bytes[bytes.size() / 2] ^= 0x40;
  write_entry(bytes);
  EXPECT_EQ(service::check_entry_file(path_, key_, nullptr),
            service::EntryStatus::kBadChecksum);
}

TEST_F(CacheRejection, EntryRenamedUnderWrongKeyRejected) {
  fill();
  // A filesystem-level mixup (entry copied to another key's path) must be
  // caught by the embedded key echo even though the checksum is valid.
  const Fingerprint other = service::run_fingerprint(luby_spec(), 99);
  const std::string other_path = cache_->entry_path(other);
  fs::create_directories(fs::path(other_path).parent_path());
  fs::copy_file(path_, other_path);
  EXPECT_FALSE(cache_->lookup(other).has_value());
  EXPECT_EQ(cache_->stats().rejected, 1u);
  EXPECT_TRUE(cache_->lookup(key_).has_value());  // original still fine
}

// ---- concurrency -----------------------------------------------------------

TEST(ResultCache, ConcurrentFillOfTheSameKeysIsSafe) {
  const ScopedTempDir dir("distapx-cache-concurrent");
  service::ResultCache cache(dir.str());

  // 8 threads race to fill and read the same 16 keys. Every lookup must
  // return either a miss or the exact row for that key — never a torn or
  // mixed-up entry.
  constexpr int kKeys = 16;
  std::vector<Fingerprint> keys;
  std::vector<service::RunRow> rows;
  for (int k = 0; k < kKeys; ++k) {
    keys.push_back(service::run_fingerprint(luby_spec(), 1000 + k));
    service::RunRow row;
    row.seed = 1000 + k;
    row.rounds = 10 + k;
    row.messages = 100000ull + static_cast<std::uint64_t>(k);
    row.completed = true;
    row.objective = k * 7;
    rows.push_back(row);
  }

  std::atomic<int> bad{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        const int k = (t + rep) % kKeys;
        cache.store(keys[k], rows[k]);
        const auto got = cache.lookup(keys[k]);
        if (!got.has_value() || !(*got == rows[k])) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(bad.load(), 0);
  for (int k = 0; k < kKeys; ++k) {
    const auto got = cache.lookup(keys[k]);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, rows[k]) << k;
  }
  EXPECT_EQ(cache.stats().rejected, 0u);
  // No temp droppings left behind by the rename protocol.
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    EXPECT_TRUE(entry.is_directory() || entry.path().extension() == ".rr")
        << entry.path();
  }
}

}  // namespace
}  // namespace distapx
