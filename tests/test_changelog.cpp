// Write-ahead changelog (support/changelog.hpp) and failpoints
// (support/failpoint.hpp).
//
// Contracts under test: append -> reopen replays exactly what was
// appended, in order, binary payloads included; a tail truncated at ANY
// byte boundary (crash mid-append) replays exactly the longest valid
// record prefix and is repaired so later appends extend clean state;
// snapshot() compacts atomically and resets the tail; foreign files are
// refused, never clobbered; the fsync discipline follows the fsutil
// durability knob; and the write-failure seam feeds the failure counters
// the cache manager's manifest_append_failures_total is built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "support/changelog.hpp"
#include "support/failpoint.hpp"
#include "support/fsutil.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

namespace fs = std::filesystem;
using test::ScopedTempDir;

/// File-format constants mirrored from changelog.cpp — the torn-tail
/// sweep needs frame geometry to predict the valid prefix per cut.
constexpr std::uint64_t kHeaderBytes = 16;
constexpr std::uint64_t kFrameBytes = 12;

std::string base_in(const ScopedTempDir& dir) {
  fs::create_directories(dir.path);
  return (dir.path / "wal").string();
}

std::string read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

/// Restores the process-wide durability level on scope exit (the knob is
/// global; a test must not leak kNone into its neighbors).
struct DurabilityGuard {
  fsutil::Durability saved = fsutil::durability();
  ~DurabilityGuard() { fsutil::set_durability(saved); }
};

TEST(Changelog, AppendReopenReplaysInOrder) {
  const ScopedTempDir dir("distapx-wal-roundtrip");
  const std::string base = base_in(dir);
  // Binary-safe: payloads with NUL, newline, and frame-magic-ish bytes.
  const std::vector<std::string> payloads = {
      "F abc 97", std::string("bin\0ary\n", 8), "DXLG not a header", ""};
  {
    Changelog log(base);
    EXPECT_TRUE(log.replayed().snapshot.empty());
    EXPECT_TRUE(log.replayed().tail.empty());
    EXPECT_EQ(log.replayed().torn_bytes, 0u);
    for (const auto& p : payloads) EXPECT_TRUE(log.append(p));
    EXPECT_EQ(log.tail_records(), payloads.size());
  }
  Changelog log(base);
  EXPECT_TRUE(log.replayed().snapshot.empty());
  EXPECT_EQ(log.replayed().tail, payloads);
  EXPECT_EQ(log.replayed().torn_bytes, 0u);
  EXPECT_EQ(log.tail_records(), payloads.size());
}

TEST(Changelog, AppendBatchIsOneContiguousWrite) {
  const ScopedTempDir dir("distapx-wal-batch");
  const std::string base = base_in(dir);
  Changelog log(base);
  EXPECT_TRUE(log.append_batch({"one", "two", "three"}));
  EXPECT_TRUE(log.append_batch({}));  // empty batch is a no-op success
  EXPECT_EQ(log.tail_records(), 3u);
  EXPECT_EQ(log.payload_bytes(), 3u + 3u + 5u);
  Changelog reopened(base);
  EXPECT_EQ(reopened.replayed().tail,
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(Changelog, SnapshotCompactsAndResetsTail) {
  const ScopedTempDir dir("distapx-wal-snap");
  const std::string base = base_in(dir);
  {
    Changelog log(base);
    EXPECT_TRUE(log.append("old-1"));
    EXPECT_TRUE(log.append("old-2"));
    EXPECT_TRUE(log.snapshot({"merged"}));
    EXPECT_EQ(log.tail_records(), 0u);
    EXPECT_EQ(log.snapshot_records(), 1u);
    EXPECT_TRUE(log.append("new-after-snap"));
  }
  // Replay order: snapshot first, then the post-compaction tail. The old
  // records are gone for good.
  Changelog log(base);
  EXPECT_EQ(log.replayed().snapshot, std::vector<std::string>{"merged"});
  EXPECT_EQ(log.replayed().tail, std::vector<std::string>{"new-after-snap"});
  // The tail file itself was cut back to its header.
  EXPECT_EQ(fs::file_size(log.log_path()),
            kHeaderBytes + kFrameBytes + std::string("new-after-snap").size());
}

TEST(Changelog, EmptySnapshotReportsZeroPayloadBytes) {
  const ScopedTempDir dir("distapx-wal-empty");
  const std::string base = base_in(dir);
  Changelog log(base);
  EXPECT_TRUE(log.append("soon gone"));
  EXPECT_GT(log.payload_bytes(), 0u);
  EXPECT_TRUE(log.snapshot({}));
  // Headers and framing are excluded by contract: a cleared changelog
  // reports 0 even though both files still carry 16-byte headers.
  EXPECT_EQ(log.payload_bytes(), 0u);
}

// The satellite-4 regression: cut the log at EVERY byte boundary and
// assert replay yields exactly the longest valid record prefix — no torn
// record ever surfaces, no valid record is ever lost, and the repaired
// log accepts appends again.
TEST(Changelog, TornTailAtEveryByteReplaysExactPrefix) {
  const ScopedTempDir dir("distapx-wal-torn");
  const std::string base = base_in(dir);
  const std::vector<std::string> payloads = {"alpha", "bravo!", "charlie-3"};
  {
    Changelog log(base);
    for (const auto& p : payloads) ASSERT_TRUE(log.append(p));
  }
  const std::string image = read_bytes(base + ".log");
  // Frame end offsets, from the mirrored geometry.
  std::vector<std::uint64_t> ends;
  std::uint64_t off = kHeaderBytes;
  for (const auto& p : payloads) {
    off += kFrameBytes + p.size();
    ends.push_back(off);
  }
  ASSERT_EQ(image.size(), ends.back());

  for (std::uint64_t cut = 0; cut <= image.size(); ++cut) {
    const ScopedTempDir scratch("distapx-wal-torn-cut");
    fs::create_directories(scratch.path);
    const std::string cut_base = (scratch.path / "wal").string();
    write_bytes(cut_base + ".log", image.substr(0, cut));

    Changelog log(cut_base);
    std::vector<std::string> expect;
    std::uint64_t valid_end = kHeaderBytes;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      if (ends[i] <= cut) {
        expect.push_back(payloads[i]);
        valid_end = ends[i];
      }
    }
    EXPECT_EQ(log.replayed().tail, expect) << "cut at byte " << cut;
    if (cut >= kHeaderBytes) {
      EXPECT_EQ(log.replayed().torn_bytes, cut - valid_end)
          << "cut at byte " << cut;
      // The torn residue was truncated away, not left to interleave with
      // future appends.
      EXPECT_EQ(fs::file_size(cut_base + ".log"), valid_end)
          << "cut at byte " << cut;
    } else {
      // A sub-header fragment is reinitialized to a clean empty log.
      EXPECT_EQ(fs::file_size(cut_base + ".log"), kHeaderBytes)
          << "cut at byte " << cut;
    }
    // The repaired log must be appendable, and the append must survive a
    // reopen alongside the surviving prefix.
    EXPECT_TRUE(log.append("post-repair")) << "cut at byte " << cut;
    Changelog reopened(cut_base);
    expect.push_back("post-repair");
    EXPECT_EQ(reopened.replayed().tail, expect) << "cut at byte " << cut;
  }
}

TEST(Changelog, CorruptedMidRecordStopsReplayAtPrefix) {
  const ScopedTempDir dir("distapx-wal-corrupt");
  const std::string base = base_in(dir);
  {
    Changelog log(base);
    ASSERT_TRUE(log.append("keep-me"));
    ASSERT_TRUE(log.append("flip-me"));
    ASSERT_TRUE(log.append("unreachable"));
  }
  std::string image = read_bytes(base + ".log");
  // Flip one payload byte of the middle record: its checksum fails, and
  // the scan must stop there — record 3 is unreachable even though its
  // own frame is intact (an offset after corruption cannot be trusted).
  const std::uint64_t flip_at =
      kHeaderBytes + kFrameBytes + 7 + kFrameBytes + 2;
  image[flip_at] = static_cast<char>(image[flip_at] ^ 0x5a);
  write_bytes(base + ".log", image);

  Changelog log(base);
  EXPECT_EQ(log.replayed().tail, std::vector<std::string>{"keep-me"});
  EXPECT_GT(log.replayed().torn_bytes, 0u);
}

TEST(Changelog, ForeignFilesAreRefusedNotClobbered) {
  const ScopedTempDir dir("distapx-wal-foreign");
  const std::string base = base_in(dir);
  const std::string legacy = "F abcdef 97\nT abcdef\n";
  write_bytes(base + ".log", legacy);
  EXPECT_THROW(Changelog log(base), ChangelogError);
  // The foreign bytes must be exactly as we left them.
  EXPECT_EQ(read_bytes(base + ".log"), legacy);

  fs::remove(base + ".log");
  write_bytes(base + ".snap", "not a changelog snapshot either");
  EXPECT_THROW(Changelog log(base), ChangelogError);
  EXPECT_EQ(read_bytes(base + ".snap"), "not a changelog snapshot either");
}

TEST(Changelog, FsyncCountFollowsDurabilityKnob) {
  const ScopedTempDir dir("distapx-wal-fsync");
  const std::string base = base_in(dir);
  const DurabilityGuard guard;

  fsutil::set_durability(fsutil::Durability::kNone);
  const std::uint64_t before_none = fsutil::fsync_total();
  {
    Changelog log(base);
    EXPECT_TRUE(log.append("unsynced"));
    EXPECT_TRUE(log.snapshot({"unsynced"}));
  }
  EXPECT_EQ(fsutil::fsync_total(), before_none);

  fsutil::set_durability(fsutil::Durability::kFull);
  const std::uint64_t before_full = fsutil::fsync_total();
  {
    Changelog log(base);
    EXPECT_TRUE(log.append("synced"));
  }
  EXPECT_GT(fsutil::fsync_total(), before_full);
}

TEST(Changelog, WriteFailureSeamCountsAndDegrades) {
  const ScopedTempDir dir("distapx-wal-fail");
  const std::string base = base_in(dir);
  Changelog log(base);
  ASSERT_TRUE(log.append("before"));

  Changelog::set_write_failure_for_testing(true);
  EXPECT_FALSE(log.append("dropped"));
  EXPECT_FALSE(log.append_batch({"also", "dropped"}));
  EXPECT_FALSE(log.snapshot({"dropped"}));
  Changelog::set_write_failure_for_testing(false);
  EXPECT_EQ(log.write_failures(), 3u);

  // Failures leave the on-disk state consistent: the pre-failure record
  // is intact and the log accepts appends again.
  EXPECT_TRUE(log.append("after"));
  Changelog reopened(base);
  EXPECT_EQ(reopened.replayed().tail,
            (std::vector<std::string>{"before", "after"}));
}

TEST(Changelog, ConcurrentAppendersLoseNothing) {
  const ScopedTempDir dir("distapx-wal-mt");
  const std::string base = base_in(dir);
  const DurabilityGuard guard;
  fsutil::set_durability(fsutil::Durability::kNone);  // keep the test fast
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  {
    Changelog log(base);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&log, t] {
        for (int i = 0; i < kPerThread; ++i) {
          log.append("t" + std::to_string(t) + "-" + std::to_string(i));
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(log.tail_records(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  Changelog log(base);
  EXPECT_EQ(log.replayed().tail.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// ---- failpoints -------------------------------------------------------------

TEST(Changelog, FailpointThrowsOnceThenDisarms) {
  failpoint::disarm_all();
  const std::uint64_t hits_before = failpoint::hits_total();

  failpoint::hit("changelog_test_point");  // unarmed: no-op
  failpoint::arm("changelog_test_point");
  EXPECT_TRUE(failpoint::armed("changelog_test_point"));
  EXPECT_THROW(failpoint::hit("changelog_test_point"), failpoint::Failure);
  // One-shot: the same name passes clean on the recovery path.
  EXPECT_FALSE(failpoint::armed("changelog_test_point"));
  failpoint::hit("changelog_test_point");
  EXPECT_EQ(failpoint::hits_total(), hits_before + 1);

  failpoint::arm("changelog_other_point");
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::armed("changelog_other_point"));
}

}  // namespace
}  // namespace distapx
