#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "coloring/linial.hpp"
#include "coloring/rand_coloring.hpp"
#include "graph/generators.hpp"
#include "support/bits.hpp"
#include "test_helpers.hpp"

namespace distapx {
namespace {

TEST(GreedyColoring, ProperAndBounded) {
  for (const auto& fc : test::small_families(1)) {
    const auto colors = greedy_coloring(fc.graph);
    EXPECT_TRUE(is_proper_coloring(fc.graph, colors)) << fc.name;
    for (Color c : colors) EXPECT_LE(c, fc.graph.max_degree()) << fc.name;
  }
}

TEST(NextPrime, SmallValues) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(100), 101u);
}

TEST(LinialSchedule, ReachesQuadraticPalette) {
  const auto s = build_linial_schedule(1u << 16, 8);
  EXPECT_GT(s.steps.size(), 0u);
  EXPECT_LE(s.steps.size(), 6u);  // log*-ish
  EXPECT_LE(s.final_colors, 4ull * (2 * 8 + 1) * (2 * 8 + 1));
  // Each step must strictly shrink and be internally consistent.
  std::uint64_t m = 1u << 16;
  for (const auto& step : s.steps) {
    EXPECT_EQ(step.m_in, m);
    EXPECT_LT(step.m_out, step.m_in);
    EXPECT_EQ(step.m_out, step.q * step.q);
    EXPECT_GT(step.q, static_cast<std::uint64_t>(step.degree) * 8);
    // q^{d+1} >= m so every color has a polynomial representation.
    double pow = 1;
    for (std::uint32_t i = 0; i <= step.degree; ++i) {
      pow *= static_cast<double>(step.q);
    }
    EXPECT_GE(pow, static_cast<double>(step.m_in));
    m = step.m_out;
  }
  EXPECT_EQ(s.final_colors, m);
}

TEST(LinialSchedule, TrivialWhenFewNodes) {
  const auto s = build_linial_schedule(4, 3);
  EXPECT_TRUE(s.steps.empty());
  EXPECT_EQ(s.final_colors, 4u);
}

class LinialFamilies : public ::testing::TestWithParam<int> {};

TEST_P(LinialFamilies, ProperDeltaPlusOneColoring) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    const auto res = linial_coloring(fc.graph);
    EXPECT_TRUE(is_proper_coloring(fc.graph, res.colors)) << fc.name;
    EXPECT_LE(res.num_colors, fc.graph.max_degree() + 1) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinialFamilies, ::testing::Values(1, 2));

TEST(Linial, MediumGraphs) {
  for (const auto& fc : test::medium_families(1)) {
    const auto res = linial_coloring(fc.graph);
    EXPECT_TRUE(is_proper_coloring(fc.graph, res.colors)) << fc.name;
    EXPECT_LE(res.num_colors, fc.graph.max_degree() + 1) << fc.name;
  }
}

TEST(Linial, DeterministicAndRoundStructure) {
  Rng rng(3);
  const Graph g = gen::gnp(100, 0.06, rng);
  const auto a = linial_coloring(g);
  const auto b = linial_coloring(g);
  EXPECT_EQ(a.colors, b.colors);
  // Rounds = reduction steps + class-elimination rounds (O(Δ²) dominated).
  const auto schedule = build_linial_schedule(100, g.max_degree());
  const std::uint64_t expect =
      schedule.steps.size() +
      (schedule.final_colors > g.max_degree() + 1
           ? schedule.final_colors - g.max_degree() - 1
           : 0);
  EXPECT_EQ(a.metrics.rounds, expect);
}

TEST(Linial, EliminationRoundsScaleWithDeltaNotN) {
  // The log* n part is tiny; elimination is O(Δ²) independent of n.
  Rng rng1(4), rng2(5);
  const Graph small_n = gen::random_regular(128, 4, rng1);
  const Graph large_n = gen::random_regular(1024, 4, rng2);
  const auto r1 = linial_coloring(small_n);
  const auto r2 = linial_coloring(large_n);
  // Same Δ: rounds should be within a couple of reduction steps.
  EXPECT_LE(r2.metrics.rounds,
            r1.metrics.rounds + 6);
}

class RandColoringFamilies : public ::testing::TestWithParam<int> {};

TEST_P(RandColoringFamilies, ProperDeltaPlusOne) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& fc : test::small_families(seed)) {
    const auto res = randomized_coloring(fc.graph, seed);
    EXPECT_TRUE(is_proper_coloring(fc.graph, res.colors)) << fc.name;
    EXPECT_LE(res.num_colors, fc.graph.max_degree() + 1) << fc.name;
  }
  for (const auto& fc : test::medium_families(seed)) {
    const auto res = randomized_coloring(fc.graph, seed);
    EXPECT_TRUE(is_proper_coloring(fc.graph, res.colors)) << fc.name;
    EXPECT_LE(res.num_colors, fc.graph.max_degree() + 1) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandColoringFamilies,
                         ::testing::Range(1, 5));

TEST(RandColoring, LogarithmicRounds) {
  for (NodeId n : {256u, 1024u}) {
    Rng rng(n);
    const Graph g = gen::gnp(n, 6.0 / n, rng);
    const auto res = randomized_coloring(g, 3);
    EXPECT_LE(res.metrics.rounds, 14 * ceil_log2(n)) << n;
  }
}

TEST(RandColoring, CompleteGraphUsesWholePalette) {
  const Graph g = gen::complete(9);
  const auto res = randomized_coloring(g, 2);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  EXPECT_EQ(res.num_colors, 9u);
}

}  // namespace
}  // namespace distapx
